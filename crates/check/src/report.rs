//! The typed violation report every checker produces.

use paotr_core::plan::verify::PlanViolation;
use paotr_stats::Table;
use std::fmt;

/// One violation found by any checker layer, tagged with where it came
/// from. Every variant carries enough context to point at the exact
/// plan path, snapshot field, or source offset.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// A single-plan violation (see
    /// [`paotr_core::plan::verify::verify_plan`]); `query` indexes the
    /// workload when the plan was checked as part of a joint plan.
    Plan {
        /// Workload index of the owning query, when applicable.
        query: Option<usize>,
        /// The underlying violation with its path into the plan.
        violation: PlanViolation,
    },
    /// A joint-plan violation (see [`crate::verify_joint`]).
    Joint(crate::plan::JointViolation),
    /// A snapshot-document violation (see [`crate::check_snapshot`]).
    Snapshot(crate::snapshot::SnapshotViolation),
    /// A qlang source lint (see [`crate::lint_query`]).
    Lint(crate::qlint::QueryLint),
}

impl CheckError {
    /// Stable kebab-case rule name.
    pub fn rule(&self) -> &'static str {
        match self {
            CheckError::Plan { violation, .. } => violation.rule(),
            CheckError::Joint(v) => v.rule(),
            CheckError::Snapshot(v) => v.rule(),
            CheckError::Lint(l) => l.rule.name(),
        }
    }

    /// The checker layer that produced this error.
    pub fn layer(&self) -> &'static str {
        match self {
            CheckError::Plan { .. } => "plan",
            CheckError::Joint(_) => "joint",
            CheckError::Snapshot(_) => "snapshot",
            CheckError::Lint(_) => "qlang",
        }
    }

    /// Where the violation sits: a path into the plan/snapshot, or a
    /// byte offset for source lints.
    pub fn location(&self) -> String {
        match self {
            CheckError::Plan { query, violation } => match query {
                Some(q) => format!("queries[{q}].{}", violation.path()),
                None => violation.path().to_string(),
            },
            CheckError::Joint(v) => v.path(),
            CheckError::Snapshot(v) => v.path(),
            CheckError::Lint(l) => format!("byte {}", l.offset),
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Plan { query, violation } => match query {
                Some(q) => write!(f, "queries[{q}].{violation}"),
                None => write!(f, "{violation}"),
            },
            CheckError::Joint(v) => write!(f, "{v}"),
            CheckError::Snapshot(v) => write!(f, "{v}"),
            CheckError::Lint(l) => write!(f, "{l}"),
        }
    }
}

/// The outcome of running one or more checkers over one subject:
/// every violation found (never just the first), plus how many
/// distinct checks ran — so "clean" is distinguishable from "nothing
/// was checked".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    /// What was checked (a plan label, a file path, a planner name).
    pub subject: String,
    /// Violations found, in discovery order.
    pub errors: Vec<CheckError>,
    /// Number of individual invariants evaluated.
    pub checks_run: usize,
}

impl CheckReport {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> CheckReport {
        CheckReport {
            subject: subject.into(),
            errors: Vec::new(),
            checks_run: 0,
        }
    }

    /// True when every check passed.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Records a violation.
    pub fn push(&mut self, e: CheckError) {
        self.errors.push(e);
    }

    /// Folds another report's findings and counters into this one.
    pub fn merge(&mut self, other: CheckReport) {
        self.errors.extend(other.errors);
        self.checks_run += other.checks_run;
    }

    /// The findings as a [`paotr_stats`] table (layer / rule /
    /// location / detail), ready for CSV or Markdown serialization.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["layer", "rule", "location", "detail"]);
        for e in &self.errors {
            t.push_row([
                e.layer().to_string(),
                e.rule().to_string(),
                e.location(),
                e.to_string(),
            ]);
        }
        t
    }

    /// Human-readable rendering: a verdict line plus (when dirty) the
    /// findings as a Markdown table.
    pub fn render(&self) -> String {
        if self.is_clean() {
            format!(
                "{}: OK ({} checks, 0 violations)\n",
                self.subject, self.checks_run
            )
        } else {
            format!(
                "{}: FAILED ({} checks, {} violations)\n{}",
                self.subject,
                self.checks_run,
                self.errors.len(),
                self.to_table().to_markdown()
            )
        }
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}
