//! CI entry point for the custom source lint.
//!
//! Usage: `src-lint [workspace-root]`. With no argument, walks up from
//! the current directory to the first ancestor containing both a
//! `Cargo.toml` and a `crates/` directory. Prints one line per finding
//! and exits non-zero when anything fired.

use paotr_check::srclint::lint_tree;
use std::path::PathBuf;
use std::process::ExitCode;

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match find_root() {
            Some(r) => r,
            None => {
                eprintln!(
                    "src-lint: no workspace root found (run from inside the repo or pass it)"
                );
                return ExitCode::FAILURE;
            }
        },
    };
    match lint_tree(&root) {
        Ok(hits) if hits.is_empty() => {
            println!("src-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(hits) => {
            for h in &hits {
                println!("{h}");
            }
            eprintln!("src-lint: {} violation(s)", hits.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("src-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
