//! Lints for qlang query sources.
//!
//! `paotr check query` runs these over a parsed query and reports each
//! finding with the byte offset of the offending predicate, rendered as
//! the same caret diagnostic the parser uses for syntax errors:
//!
//! * **unused-stream** — a stream declared in the cost table
//!   (`--costs A=2`) is never referenced by the query;
//! * **duplicate-term** — two AND-terms probe the identical predicate
//!   set: `X OR X` can only waste planning work;
//! * **constant-leaf** — a predicate annotated `@ 0` or `@ 1` is
//!   constant-foldable: an always-false leaf kills its whole AND-term,
//!   an always-true leaf can be dropped from it (its window would still
//!   be pulled at full price);
//! * **absorbed-term** — a term whose predicate set is a strict
//!   superset of another term's is shadowed by absorption
//!   (`X ∨ (X ∧ Y) = X`): it can never decide the query alone.

use crate::report::{CheckError, CheckReport};
use paotr_qlang::{Expr, PredicateAst};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// The lint rules `paotr check query` knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintRule {
    /// A declared stream the query never reads.
    UnusedStream,
    /// Two AND-terms with the same predicate set.
    DuplicateTerm,
    /// A `p ∈ {0, 1}` predicate that folds to a constant.
    ConstantLeaf,
    /// A term shadowed by absorption.
    AbsorbedTerm,
}

impl LintRule {
    /// Stable kebab-case rule name.
    pub fn name(&self) -> &'static str {
        match self {
            LintRule::UnusedStream => "unused-stream",
            LintRule::DuplicateTerm => "duplicate-term",
            LintRule::ConstantLeaf => "constant-leaf",
            LintRule::AbsorbedTerm => "absorbed-term",
        }
    }
}

/// One lint finding, anchored at a byte offset of the source (offset 0
/// for findings without a source site, like an unused declaration that
/// only exists in the cost table).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLint {
    /// Which rule fired.
    pub rule: LintRule,
    /// Byte offset of the offending predicate (parser convention).
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl QueryLint {
    /// Renders the same one-line caret diagnostic as
    /// [`paotr_qlang::ParseError::render`].
    pub fn render(&self, source: &str) -> String {
        let offset = self.offset.min(source.len());
        format!(
            "warning[{}]: {}\n  | {}\n  | {}^",
            self.rule.name(),
            self.message,
            source,
            " ".repeat(source[..offset].chars().count())
        )
    }
}

impl fmt::Display for QueryLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} (at byte {})",
            self.rule.name(),
            self.message,
            self.offset
        )
    }
}

/// A term flattened to comparable predicate keys plus the offset of its
/// first predicate. The key is the predicate's full semantics
/// (aggregate, stream, window, comparison, threshold, probability), so
/// two terms compare equal exactly when they probe the same thing.
struct FlatTerm {
    keys: BTreeSet<String>,
    offset: usize,
}

fn predicate_key(p: &PredicateAst) -> String {
    format!(
        "{}({},{}){}{}@{:?}",
        p.agg.name(),
        p.stream,
        p.window,
        p.cmp.symbol(),
        p.threshold,
        p.prob
    )
}

/// Walks `expr` in source order, handing each predicate its offset from
/// the parser's span vector.
fn each_predicate<'e>(
    expr: &'e Expr,
    offsets: &[usize],
    f: &mut impl FnMut(&'e PredicateAst, usize),
) {
    fn walk<'e>(
        e: &'e Expr,
        offsets: &[usize],
        next: &mut usize,
        f: &mut impl FnMut(&'e PredicateAst, usize),
    ) {
        match e {
            Expr::Pred(p) => {
                let off = offsets.get(*next).copied().unwrap_or(0);
                *next += 1;
                f(p, off);
            }
            Expr::And(cs) | Expr::Or(cs) => {
                for c in cs {
                    walk(c, offsets, next, f);
                }
            }
        }
    }
    let mut next = 0;
    walk(expr, offsets, &mut next, f);
}

/// The query's top-level AND-terms (a bare predicate or conjunction is
/// one term), flattened to predicate-key sets. `None` for nested
/// shapes where "term" has no flat meaning — term-level lints skip
/// those, predicate-level lints still run.
fn flat_terms(expr: &Expr, offsets: &[usize]) -> Option<Vec<FlatTerm>> {
    let mut next = 0;
    let mut term_of = |e: &Expr| -> Option<FlatTerm> {
        let mut keys = BTreeSet::new();
        let mut offset = usize::MAX;
        let mut flat = true;
        let mut count = |p: &PredicateAst, off: usize| {
            keys.insert(predicate_key(p));
            if offset == usize::MAX {
                offset = off;
            }
        };
        match e {
            Expr::Pred(p) => {
                count(p, offsets.get(next).copied().unwrap_or(0));
                next += 1;
            }
            Expr::And(cs) => {
                for c in cs {
                    match c {
                        Expr::Pred(p) => {
                            count(p, offsets.get(next).copied().unwrap_or(0));
                            next += 1;
                        }
                        _ => flat = false,
                    }
                }
            }
            Expr::Or(_) => flat = false,
        }
        flat.then_some(FlatTerm {
            keys,
            offset: if offset == usize::MAX { 0 } else { offset },
        })
    };
    match expr {
        Expr::Or(parts) => parts.iter().map(&mut term_of).collect(),
        other => term_of(other).map(|t| vec![t]),
    }
}

/// Lints `source` against the rules above. `declared` is the stream
/// cost table the query was compiled with (`--costs`); pass an empty
/// map when none was given. Parse failures are *not* lints — the
/// caller should surface the parser's own error instead; this returns
/// an empty clean report for unparseable sources.
pub fn lint_query(source: &str, declared: &HashMap<String, f64>) -> CheckReport {
    let mut report = CheckReport::new("query");
    let Ok((expr, offsets)) = paotr_qlang::parse_spanned(source) else {
        return report;
    };
    let push = |report: &mut CheckReport, lint: QueryLint| report.push(CheckError::Lint(lint));

    // unused-stream: declared cost table entries the query never reads.
    report.checks_run += 1;
    let mut used = BTreeSet::new();
    each_predicate(&expr, &offsets, &mut |p, _| {
        used.insert(p.stream.clone());
    });
    let mut unused: Vec<&String> = declared.keys().filter(|n| !used.contains(*n)).collect();
    unused.sort();
    for name in unused {
        push(
            &mut report,
            QueryLint {
                rule: LintRule::UnusedStream,
                offset: 0,
                message: format!("stream `{name}` is declared in the cost table but never read"),
            },
        );
    }

    // constant-leaf: p ∈ {0, 1} probabilities fold.
    report.checks_run += 1;
    each_predicate(&expr, &offsets, &mut |p, off| {
        if let Some(prob) = p.prob {
            if prob == 0.0 || prob == 1.0 {
                push(
                    &mut report,
                    QueryLint {
                        rule: LintRule::ConstantLeaf,
                        offset: off,
                        message: format!(
                            "predicate on `{}` is annotated `@ {prob}` and folds to a constant",
                            p.stream
                        ),
                    },
                );
            }
        }
    });

    // duplicate-term / absorbed-term need the flat DNF term view.
    report.checks_run += 2;
    if let Some(terms) = flat_terms(&expr, &offsets) {
        for (i, a) in terms.iter().enumerate() {
            for b in terms.iter().take(i) {
                if a.keys == b.keys {
                    push(
                        &mut report,
                        QueryLint {
                            rule: LintRule::DuplicateTerm,
                            offset: a.offset,
                            message: "this OR-term duplicates an earlier term".into(),
                        },
                    );
                    break;
                }
            }
        }
        for (i, a) in terms.iter().enumerate() {
            // `a` is absorbed when some other term's predicates are a
            // strict subset of its own.
            let absorbed = terms
                .iter()
                .enumerate()
                .any(|(j, b)| i != j && b.keys.len() < a.keys.len() && b.keys.is_subset(&a.keys));
            if absorbed {
                push(
                    &mut report,
                    QueryLint {
                        rule: LintRule::AbsorbedTerm,
                        offset: a.offset,
                        message: "this OR-term is absorbed by a smaller term \
                                  (X OR (X AND Y) = X)"
                            .into(),
                    },
                );
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(source: &str, declared: &[(&str, f64)]) -> Vec<&'static str> {
        let declared: HashMap<String, f64> =
            declared.iter().map(|(n, c)| (n.to_string(), *c)).collect();
        lint_query(source, &declared)
            .errors
            .iter()
            .map(|e| e.rule())
            .collect()
    }

    #[test]
    fn clean_query_is_clean() {
        assert!(rules_of("A < 1 AND B > 2", &[("A", 1.0), ("B", 2.0)]).is_empty());
    }

    #[test]
    fn unused_declared_stream_is_flagged() {
        assert_eq!(
            rules_of("A < 1", &[("A", 1.0), ("C", 5.0)]),
            ["unused-stream"]
        );
    }

    #[test]
    fn constant_probabilities_are_flagged() {
        assert_eq!(rules_of("A < 1 @0", &[]), ["constant-leaf"]);
        assert_eq!(rules_of("A < 1 @1", &[]), ["constant-leaf"]);
        assert!(rules_of("A < 1 @0.5", &[]).is_empty());
    }

    #[test]
    fn duplicate_terms_are_flagged_once_at_the_later_term() {
        let report = lint_query("A < 1 OR A < 1", &HashMap::new());
        let dups: Vec<&QueryLint> = report
            .errors
            .iter()
            .filter_map(|e| match e {
                CheckError::Lint(l) if l.rule == LintRule::DuplicateTerm => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(dups.len(), 1);
        // offset points at the second `A`
        assert_eq!(dups[0].offset, 9);
    }

    #[test]
    fn absorbed_superset_term_is_flagged() {
        assert_eq!(
            rules_of("A < 1 OR (A < 1 AND B > 2)", &[]),
            ["absorbed-term"]
        );
        // distinct predicates on the same stream are not absorption
        assert!(rules_of("A < 1 OR (A < 2 AND B > 2)", &[]).is_empty());
    }

    #[test]
    fn unparseable_source_is_not_a_lint() {
        assert!(lint_query("AND AND", &HashMap::new()).is_clean());
    }
}
