//! Plan and joint-plan verification.
//!
//! Single plans are verified by [`paotr_core::plan::verify`] (that is
//! also the `debug_assertions` hook the `Engine` runs on every fresh
//! plan); this module wraps it into a [`CheckReport`] and adds the
//! joint-plan layer on top: execution-order and schedule integrity,
//! predicted-cost reproduction under the shared coverage model,
//! materialization acquirability, and worst-case per-tick energy
//! feasibility under an [`EnergyBudget`].

use crate::report::{CheckError, CheckReport};
use paotr_core::plan::verify::{self, COST_REL_TOL};
use paotr_core::plan::{Plan, QueryRef};
use paotr_core::schedule::DnfSchedule;
use paotr_core::stream::StreamCatalog;
use paotr_exec::{AdmissionCtx, EnergyBudget};
use paotr_multi::cost::{isolated_costs, predict_shared};
use paotr_multi::{JointPlan, Workload};
use std::fmt;

/// One statically checkable defect in a [`JointPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum JointViolation {
    /// `order` is not a permutation of the workload's query indices.
    OrderNotPermutation {
        /// What is missing, duplicated, or out of range.
        detail: String,
    },
    /// A per-query vector has the wrong length.
    LengthMismatch {
        /// Which field (`plans`, `schedules`, …).
        field: &'static str,
        /// Actual vs. expected lengths.
        detail: String,
    },
    /// A schedule is not a valid leaf permutation of its query's tree.
    ScheduleInvalid {
        /// Workload index of the query.
        query: usize,
        /// The schedule validation error.
        detail: String,
    },
    /// A stored cost is NaN, infinite, or negative.
    NonFiniteCost {
        /// Path into the joint plan.
        path: String,
        /// The offending value.
        value: f64,
    },
    /// A predicted per-query cost does not reproduce under the shared
    /// coverage model (or isolated evaluation, for non-shared plans).
    PredictedCostMismatch {
        /// Workload index of the query.
        query: usize,
        /// The cost the joint plan claims.
        stored: f64,
        /// The cost re-evaluation produced.
        recomputed: f64,
    },
    /// A materialization names a stream outside the catalog.
    MaterializedStreamUnresolved {
        /// Index into `materialized`.
        index: usize,
        /// The unresolved stream id.
        stream: usize,
    },
    /// A materialized window is not acquirable: zero, inconsistent with
    /// its priced term, or wider than the fill-amortization horizon.
    WindowNotAcquirable {
        /// Index into `materialized`.
        index: usize,
        /// What makes the window unacquirable.
        detail: String,
    },
    /// A materialization with no readers can never pay for itself.
    ZeroReaderMaterialization {
        /// Index into `materialized`.
        index: usize,
    },
    /// The workload's worst-case per-tick energy (retries included)
    /// exceeds the energy budget.
    EnergyInfeasible {
        /// Worst-case per-tick energy of the full workload.
        worst_case: f64,
        /// The budget it must fit under.
        budget: f64,
    },
}

impl JointViolation {
    /// Stable kebab-case rule name.
    pub fn rule(&self) -> &'static str {
        match self {
            JointViolation::OrderNotPermutation { .. } => "order-not-permutation",
            JointViolation::LengthMismatch { .. } => "length-mismatch",
            JointViolation::ScheduleInvalid { .. } => "schedule-invalid",
            JointViolation::NonFiniteCost { .. } => "non-finite-cost",
            JointViolation::PredictedCostMismatch { .. } => "predicted-cost-mismatch",
            JointViolation::MaterializedStreamUnresolved { .. } => "materialized-stream-unresolved",
            JointViolation::WindowNotAcquirable { .. } => "window-not-acquirable",
            JointViolation::ZeroReaderMaterialization { .. } => "zero-reader-materialization",
            JointViolation::EnergyInfeasible { .. } => "energy-infeasible",
        }
    }

    /// Path into the joint-plan document.
    pub fn path(&self) -> String {
        match self {
            JointViolation::OrderNotPermutation { .. } => "order".into(),
            JointViolation::LengthMismatch { field, .. } => (*field).into(),
            JointViolation::ScheduleInvalid { query, .. } => format!("schedules[{query}]"),
            JointViolation::NonFiniteCost { path, .. } => path.clone(),
            JointViolation::PredictedCostMismatch { query, .. } => {
                format!("predicted_costs[{query}]")
            }
            JointViolation::MaterializedStreamUnresolved { index, .. }
            | JointViolation::WindowNotAcquirable { index, .. }
            | JointViolation::ZeroReaderMaterialization { index } => {
                format!("materialized[{index}]")
            }
            JointViolation::EnergyInfeasible { .. } => "energy".into(),
        }
    }
}

impl fmt::Display for JointViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JointViolation::OrderNotPermutation { detail } => {
                write!(f, "order: not a permutation of the workload: {detail}")
            }
            JointViolation::LengthMismatch { field, detail } => {
                write!(f, "{field}: length mismatch: {detail}")
            }
            JointViolation::ScheduleInvalid { query, detail } => {
                write!(f, "schedules[{query}]: {detail}")
            }
            JointViolation::NonFiniteCost { path, value } => {
                write!(f, "{path}: cost {value} is not finite/non-negative")
            }
            JointViolation::PredictedCostMismatch {
                query,
                stored,
                recomputed,
            } => write!(
                f,
                "predicted_costs[{query}]: stored {stored} does not reproduce \
                 (re-evaluated {recomputed})"
            ),
            JointViolation::MaterializedStreamUnresolved { index, stream } => {
                write!(f, "materialized[{index}]: stream {stream} not in catalog")
            }
            JointViolation::WindowNotAcquirable { index, detail } => {
                write!(f, "materialized[{index}]: window not acquirable: {detail}")
            }
            JointViolation::ZeroReaderMaterialization { index } => {
                write!(f, "materialized[{index}]: zero readers — can never pay off")
            }
            JointViolation::EnergyInfeasible { worst_case, budget } => write!(
                f,
                "worst-case per-tick energy {worst_case} exceeds budget {budget}"
            ),
        }
    }
}

/// Verifies a single [`Plan`] against the query and catalog it claims
/// to be for, as a [`CheckReport`]. See
/// [`paotr_core::plan::verify::verify_plan`] for the invariants.
pub fn verify_plan(plan: &Plan, query: &QueryRef<'_>, catalog: &StreamCatalog) -> CheckReport {
    let mut report = CheckReport::new(format!("plan[{}]", plan.planner));
    // Structure, provenance, price, bound: one logical check per axis.
    report.checks_run += 4;
    for violation in verify::verify_plan(plan, query, catalog) {
        report.push(CheckError::Plan {
            query: None,
            violation,
        });
    }
    report
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / f64::max(1.0, f64::max(a.abs(), b.abs()))
}

/// Verifies a [`JointPlan`] against the workload it was planned for:
///
/// * `order` is a permutation of the workload's query indices, and the
///   per-query vectors all have workload length;
/// * every per-query [`Plan`] passes single-plan verification against
///   its tree, and every execution schedule is a valid leaf permutation
///   of it;
/// * `independent_costs` are finite and non-negative;
/// * `predicted_costs` reproduce (≤ 1e-9 relative) under the shared
///   coverage model ([`predict_shared`]) when `shared_execution` holds,
///   or under isolated evaluation otherwise;
/// * every materialization resolves in the catalog, keeps
///   `window ≤ horizon` (the ring must be fillable within the ticks it
///   is amortized over), agrees with its priced term, and has readers.
///
/// Energy feasibility needs a budget, which is not part of the plan —
/// see [`verify_energy`].
pub fn verify_joint(joint: &JointPlan, workload: &Workload) -> CheckReport {
    let mut report = CheckReport::new(format!("joint-plan[{}]", joint.planner));
    let n = workload.len();
    let catalog = workload.catalog();

    // Execution order covers every query exactly once.
    report.checks_run += 1;
    let mut seen = vec![false; n];
    let mut order_ok = joint.order.len() == n;
    if !order_ok {
        report.push(CheckError::Joint(JointViolation::OrderNotPermutation {
            detail: format!("{} entries for {n} queries", joint.order.len()),
        }));
    }
    for &q in &joint.order {
        if q >= n {
            order_ok = false;
            report.push(CheckError::Joint(JointViolation::OrderNotPermutation {
                detail: format!("query index {q} out of range"),
            }));
        } else if seen[q] {
            order_ok = false;
            report.push(CheckError::Joint(JointViolation::OrderNotPermutation {
                detail: format!("query {q} appears twice"),
            }));
        } else {
            seen[q] = true;
        }
    }

    // Per-query vectors line up with the workload.
    report.checks_run += 1;
    for (field, len) in [
        ("plans", joint.plans.len()),
        ("schedules", joint.schedules.len()),
        ("independent_costs", joint.independent_costs.len()),
        ("predicted_costs", joint.predicted_costs.len()),
    ] {
        if len != n {
            report.push(CheckError::Joint(JointViolation::LengthMismatch {
                field,
                detail: format!("{len} entries for {n} queries"),
            }));
        }
    }
    if joint.plans.len() != n || joint.schedules.len() != n {
        return report;
    }

    // Every per-query plan passes single-plan verification, and every
    // execution schedule is a valid permutation of its tree's leaves.
    report.checks_run += 2;
    for (q, wq) in workload.queries().iter().enumerate() {
        let query = QueryRef::from(&wq.tree);
        for violation in verify::verify_plan(&joint.plans[q], &query, catalog) {
            report.push(CheckError::Plan {
                query: Some(q),
                violation,
            });
        }
        if let Err(e) = DnfSchedule::new(joint.schedules[q].order().to_vec(), &wq.tree) {
            report.push(CheckError::Joint(JointViolation::ScheduleInvalid {
                query: q,
                detail: e.to_string(),
            }));
        }
    }

    // Costs: independent finite, predicted reproducible.
    report.checks_run += 2;
    for (q, &c) in joint.independent_costs.iter().enumerate() {
        if !c.is_finite() || c < 0.0 {
            report.push(CheckError::Joint(JointViolation::NonFiniteCost {
                path: format!("independent_costs[{q}]"),
                value: c,
            }));
        }
    }
    if order_ok && joint.predicted_costs.len() == n {
        let recomputed = if joint.shared_execution {
            predict_shared(workload, &joint.order, &joint.schedules).per_query
        } else {
            isolated_costs(workload, &joint.schedules)
        };
        for (q, (&stored, &re)) in joint.predicted_costs.iter().zip(&recomputed).enumerate() {
            if !stored.is_finite() || stored < 0.0 {
                report.push(CheckError::Joint(JointViolation::NonFiniteCost {
                    path: format!("predicted_costs[{q}]"),
                    value: stored,
                }));
            } else if rel_diff(stored, re) > COST_REL_TOL {
                report.push(CheckError::Joint(JointViolation::PredictedCostMismatch {
                    query: q,
                    stored,
                    recomputed: re,
                }));
            }
        }
    }

    // Materializations are acquirable.
    report.checks_run += 1;
    for (i, m) in joint.materialized.iter().enumerate() {
        if m.stream.0 >= catalog.len() {
            report.push(CheckError::Joint(
                JointViolation::MaterializedStreamUnresolved {
                    index: i,
                    stream: m.stream.0,
                },
            ));
            continue;
        }
        if m.window == 0 {
            report.push(CheckError::Joint(JointViolation::WindowNotAcquirable {
                index: i,
                detail: "window is zero".into(),
            }));
        }
        if m.term.window != m.window {
            report.push(CheckError::Joint(JointViolation::WindowNotAcquirable {
                index: i,
                detail: format!(
                    "window {} disagrees with priced term window {}",
                    m.window, m.term.window
                ),
            }));
        }
        // NaN horizon must fail too, hence not `window > horizon`.
        if m.term.horizon.is_nan() || f64::from(m.window) > m.term.horizon {
            report.push(CheckError::Joint(JointViolation::WindowNotAcquirable {
                index: i,
                detail: format!(
                    "window {} exceeds the fill-amortization horizon {}",
                    m.window, m.term.horizon
                ),
            }));
        }
        if m.term.readers == 0 {
            report.push(CheckError::Joint(
                JointViolation::ZeroReaderMaterialization { index: i },
            ));
        }
    }

    report
}

/// Checks that serving the whole workload in one tick is feasible under
/// `budget`, in the worst case and retries included: the admission
/// layer's worst-case bound ([`AdmissionCtx::worst_case_set`]) over
/// *all* queries — shared-pull coalesced when the joint plan shares
/// execution — must fit in `budget.budget_per_tick`. `retry_factor` is
/// the fault layer's worst-case contact multiplier (`1.0` for
/// fault-free serving).
pub fn verify_energy(
    joint: &JointPlan,
    workload: &Workload,
    budget: &EnergyBudget,
    retry_factor: f64,
) -> CheckReport {
    let mut report = CheckReport::new(format!("joint-plan[{}].energy", joint.planner));
    report.checks_run += 1;
    let catalog = workload.catalog();
    let n_streams = catalog.len();
    // Per-query worst case on each stream: its widest window there.
    let windows: Vec<Vec<u32>> = workload
        .queries()
        .iter()
        .map(|wq| {
            let mut w = vec![0u32; n_streams];
            for (_, leaf) in wq.tree.leaves() {
                let k = leaf.stream.0;
                w[k] = w[k].max(leaf.items);
            }
            w
        })
        .collect();
    let weights = workload.weights();
    let costs = AdmissionCtx::stream_costs(catalog);
    let pending = vec![0u64; workload.len()];
    let ctx = AdmissionCtx {
        weights: &weights,
        windows: &windows,
        costs: &costs,
        pending_since: &pending,
        shared: joint.shared_execution,
        retry_factor,
    };
    let all: Vec<usize> = (0..workload.len()).collect();
    let worst_case = ctx.worst_case_set(&all);
    if worst_case > budget.budget_per_tick + 1e-9 {
        report.push(CheckError::Joint(JointViolation::EnergyInfeasible {
            worst_case,
            budget: budget.budget_per_tick,
        }));
    }
    report
}
