//! Static validation of daemon snapshot documents.
//!
//! `paotr check snapshot <path>` runs these checks on a v1/v2 snapshot
//! *before* a daemon ever restores it: referential integrity between
//! sessions and the catalog, monotone tick counters, and refcount
//! balance in the arrangements section (persisted reader counts must
//! equal the acquisitions the sessions would recompute — the same
//! cross-check `Daemon::from_snapshot` performs, done here without
//! building a daemon). A snapshot that passes may still fail to
//! restore for environmental reasons (planner name unknown to a future
//! build, say), but one that fails here is definitely corrupt.

use crate::report::{CheckError, CheckReport};
use paotr_core::cost::arrange::ArrangeTerm;
use paotr_serverd::snapshot::SessionSnap;
use paotr_serverd::Snapshot;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// One statically checkable defect in a snapshot document.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotViolation {
    /// The document does not parse at all.
    ParseFailed {
        /// The parser's error.
        detail: String,
    },
    /// Two sessions share an id.
    DuplicateSessionId {
        /// The duplicated id.
        id: u64,
    },
    /// `order` is not a permutation of the session ids.
    OrderMismatch {
        /// What is missing, duplicated, or unknown.
        detail: String,
    },
    /// `next_id` does not strictly exceed every session id, so a future
    /// registration would collide.
    NextIdBehind {
        /// The stored `next_id`.
        next_id: u64,
        /// The largest live session id.
        max_session: u64,
    },
    /// More live sessions than `config.max_sessions` allows.
    SessionLimitExceeded {
        /// Live session count.
        sessions: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// A counter runs backwards (registration after the snapshot tick,
    /// pending-before-registration, telemetry disagreeing with `tick`).
    NonMonotoneTick {
        /// Path into the snapshot.
        path: String,
        /// The inconsistent values.
        detail: String,
    },
    /// A catalog entry is unusable (duplicate name, non-finite or
    /// non-positive cost).
    CatalogInvalid {
        /// Path into the snapshot.
        path: String,
        /// What is wrong with the entry.
        detail: String,
    },
    /// A session's query source does not parse/compile, or is not
    /// DNF-shaped.
    SessionSourceInvalid {
        /// The session id.
        id: u64,
        /// The compiler's error.
        detail: String,
    },
    /// A session references a stream the snapshot catalog lacks.
    UnresolvedStream {
        /// The session id.
        id: u64,
        /// The stream name.
        stream: String,
    },
    /// A session's window exceeds `config.max_window`.
    WindowLimitExceeded {
        /// The session id.
        id: u64,
        /// The offending window and the limit.
        detail: String,
    },
    /// A session's persisted state disagrees with its query (wrong
    /// calibration arity, successes exceeding totals, probabilities
    /// outside [0, 1], bad weight, invalid schedule).
    SessionStateInvalid {
        /// The session id.
        id: u64,
        /// Path within the session.
        path: String,
        /// The inconsistency.
        detail: String,
    },
    /// The snapshot persists arrangements although the config has them
    /// off (or a v1 document carries an arrangements section).
    ArrangementsUnexpected {
        /// Why the section cannot be there.
        detail: String,
    },
    /// An arrangement entry is malformed (unknown stream, zero window,
    /// duplicate `(stream, window)` key, clock regressions).
    ArrangementInvalid {
        /// Index into `arrangements.entries`.
        index: usize,
        /// What is malformed.
        detail: String,
    },
    /// A persisted reader refcount differs from the acquisitions the
    /// sessions recompute.
    RefcountImbalance {
        /// The arrangement's stream id.
        stream: usize,
        /// The arrangement's window.
        window: u32,
        /// The refcount the snapshot persists.
        persisted: u32,
        /// The refcount the sessions actually hold.
        expected: u32,
    },
    /// Sessions read through an arrangement the snapshot does not
    /// persist.
    MissingArrangement {
        /// The arrangement's stream id.
        stream: usize,
        /// The arrangement's window.
        window: u32,
    },
}

impl SnapshotViolation {
    /// Stable kebab-case rule name.
    pub fn rule(&self) -> &'static str {
        match self {
            SnapshotViolation::ParseFailed { .. } => "parse-failed",
            SnapshotViolation::DuplicateSessionId { .. } => "duplicate-session-id",
            SnapshotViolation::OrderMismatch { .. } => "order-mismatch",
            SnapshotViolation::NextIdBehind { .. } => "next-id-behind",
            SnapshotViolation::SessionLimitExceeded { .. } => "session-limit-exceeded",
            SnapshotViolation::NonMonotoneTick { .. } => "non-monotone-tick",
            SnapshotViolation::CatalogInvalid { .. } => "catalog-invalid",
            SnapshotViolation::SessionSourceInvalid { .. } => "session-source-invalid",
            SnapshotViolation::UnresolvedStream { .. } => "unresolved-stream",
            SnapshotViolation::WindowLimitExceeded { .. } => "window-limit-exceeded",
            SnapshotViolation::SessionStateInvalid { .. } => "session-state-invalid",
            SnapshotViolation::ArrangementsUnexpected { .. } => "arrangements-unexpected",
            SnapshotViolation::ArrangementInvalid { .. } => "arrangement-invalid",
            SnapshotViolation::RefcountImbalance { .. } => "refcount-imbalance",
            SnapshotViolation::MissingArrangement { .. } => "missing-arrangement",
        }
    }

    /// Path into the snapshot document.
    pub fn path(&self) -> String {
        match self {
            SnapshotViolation::ParseFailed { .. } => "document".into(),
            SnapshotViolation::DuplicateSessionId { id } => format!("sessions[id={id}]"),
            SnapshotViolation::OrderMismatch { .. } => "order".into(),
            SnapshotViolation::NextIdBehind { .. } => "next_id".into(),
            SnapshotViolation::SessionLimitExceeded { .. } => "sessions".into(),
            SnapshotViolation::NonMonotoneTick { path, .. } => path.clone(),
            SnapshotViolation::CatalogInvalid { path, .. } => path.clone(),
            SnapshotViolation::SessionSourceInvalid { id, .. } => {
                format!("sessions[id={id}].source")
            }
            SnapshotViolation::UnresolvedStream { id, .. } => format!("sessions[id={id}]"),
            SnapshotViolation::WindowLimitExceeded { id, .. } => format!("sessions[id={id}]"),
            SnapshotViolation::SessionStateInvalid { id, path, .. } => {
                format!("sessions[id={id}].{path}")
            }
            SnapshotViolation::ArrangementsUnexpected { .. } => "arrangements".into(),
            SnapshotViolation::ArrangementInvalid { index, .. } => {
                format!("arrangements.entries[{index}]")
            }
            SnapshotViolation::RefcountImbalance { stream, window, .. }
            | SnapshotViolation::MissingArrangement { stream, window } => {
                format!("arrangements.entries[stream={stream},window={window}]")
            }
        }
    }
}

impl fmt::Display for SnapshotViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotViolation::ParseFailed { detail } => write!(f, "does not parse: {detail}"),
            SnapshotViolation::DuplicateSessionId { id } => {
                write!(f, "session id {id} appears twice")
            }
            SnapshotViolation::OrderMismatch { detail } => {
                write!(f, "order is not a permutation of the session ids: {detail}")
            }
            SnapshotViolation::NextIdBehind {
                next_id,
                max_session,
            } => write!(
                f,
                "next_id {next_id} does not exceed live session id {max_session}"
            ),
            SnapshotViolation::SessionLimitExceeded { sessions, limit } => {
                write!(f, "{sessions} sessions exceed max_sessions {limit}")
            }
            SnapshotViolation::NonMonotoneTick { path, detail } => {
                write!(f, "{path}: counter not monotone: {detail}")
            }
            SnapshotViolation::CatalogInvalid { path, detail } => write!(f, "{path}: {detail}"),
            SnapshotViolation::SessionSourceInvalid { id, detail } => {
                write!(f, "session {id}: {detail}")
            }
            SnapshotViolation::UnresolvedStream { id, stream } => {
                write!(f, "session {id}: stream `{stream}` missing from catalog")
            }
            SnapshotViolation::WindowLimitExceeded { id, detail } => {
                write!(f, "session {id}: {detail}")
            }
            SnapshotViolation::SessionStateInvalid { id, path, detail } => {
                write!(f, "session {id} {path}: {detail}")
            }
            SnapshotViolation::ArrangementsUnexpected { detail } => write!(f, "{detail}"),
            SnapshotViolation::ArrangementInvalid { index, detail } => {
                write!(f, "entry {index}: {detail}")
            }
            SnapshotViolation::RefcountImbalance {
                stream,
                window,
                persisted,
                expected,
            } => write!(
                f,
                "stream {stream} window {window}: persists {persisted} readers, \
                 sessions hold {expected}"
            ),
            SnapshotViolation::MissingArrangement { stream, window } => write!(
                f,
                "sessions read through an arrangement the snapshot does not persist \
                 (stream {stream} window {window})"
            ),
        }
    }
}

/// A compiled-out view of one session: its per-global-stream widest
/// windows, or `None` when the source itself is invalid (reported
/// separately).
fn session_windows(
    snap: &SessionSnap,
    catalog_names: &HashMap<String, usize>,
    report: &mut CheckReport,
) -> Option<(Vec<(usize, u32)>, usize)> {
    let push =
        |report: &mut CheckReport, v: SnapshotViolation| report.push(CheckError::Snapshot(v));
    let expr = match paotr_qlang::parse(&snap.source) {
        Ok(e) => e,
        Err(e) => {
            push(
                report,
                SnapshotViolation::SessionSourceInvalid {
                    id: snap.id,
                    detail: format!("unparseable source: {}", e.message),
                },
            );
            return None;
        }
    };
    let compiled = match paotr_qlang::compile(&expr, &HashMap::new()) {
        Ok(c) => c,
        Err(e) => {
            push(
                report,
                SnapshotViolation::SessionSourceInvalid {
                    id: snap.id,
                    detail: e.message,
                },
            );
            return None;
        }
    };
    let Some(dnf) = compiled.tree.as_dnf() else {
        push(
            report,
            SnapshotViolation::SessionSourceInvalid {
                id: snap.id,
                detail: "source is not DNF-shaped".into(),
            },
        );
        return None;
    };
    let num_leaves = compiled.tree.num_leaves();
    // Widest window per *global* stream id, resolving by name the way
    // `restore_session` does.
    let mut windows: BTreeMap<usize, u32> = BTreeMap::new();
    let mut ok = true;
    for k in 0..compiled.catalog.len() {
        let name = compiled.catalog.name(paotr_core::stream::StreamId(k));
        let Some(&global) = catalog_names.get(&name) else {
            push(
                report,
                SnapshotViolation::UnresolvedStream {
                    id: snap.id,
                    stream: name,
                },
            );
            ok = false;
            continue;
        };
        let widest = dnf
            .leaves()
            .filter(|(_, leaf)| leaf.stream.0 == k)
            .map(|(_, leaf)| leaf.items)
            .max()
            .unwrap_or(0);
        windows.insert(global, widest);
    }
    ok.then(|| (windows.into_iter().collect(), num_leaves))
}

/// Statically validates a parsed snapshot document. See the module
/// docs for the invariant list.
pub fn check_snapshot(snap: &Snapshot) -> CheckReport {
    let mut report = CheckReport::new(format!("snapshot[v{}]", snap.version));
    let push =
        |report: &mut CheckReport, v: SnapshotViolation| report.push(CheckError::Snapshot(v));

    // Catalog: unique names, usable costs.
    report.checks_run += 1;
    let mut catalog_names: HashMap<String, usize> = HashMap::new();
    for (k, (name, cost)) in snap.catalog.iter().enumerate() {
        if catalog_names.insert(name.clone(), k).is_some() {
            push(
                &mut report,
                SnapshotViolation::CatalogInvalid {
                    path: format!("catalog[{k}]"),
                    detail: format!("duplicate stream name `{name}`"),
                },
            );
        }
        if !cost.is_finite() || *cost <= 0.0 {
            push(
                &mut report,
                SnapshotViolation::CatalogInvalid {
                    path: format!("catalog[{k}]"),
                    detail: format!("stream `{name}` has unusable cost {cost}"),
                },
            );
        }
    }

    // Session registry integrity.
    report.checks_run += 1;
    let mut ids = BTreeSet::new();
    for s in &snap.sessions {
        if !ids.insert(s.id) {
            push(
                &mut report,
                SnapshotViolation::DuplicateSessionId { id: s.id },
            );
        }
    }
    if let Some(&max_id) = ids.iter().next_back() {
        if snap.next_id <= max_id {
            push(
                &mut report,
                SnapshotViolation::NextIdBehind {
                    next_id: snap.next_id,
                    max_session: max_id,
                },
            );
        }
    }
    if snap.sessions.len() > snap.config.max_sessions {
        push(
            &mut report,
            SnapshotViolation::SessionLimitExceeded {
                sessions: snap.sessions.len(),
                limit: snap.config.max_sessions,
            },
        );
    }
    let order_set: BTreeSet<u64> = snap.order.iter().copied().collect();
    if order_set != ids || snap.order.len() != snap.sessions.len() {
        push(
            &mut report,
            SnapshotViolation::OrderMismatch {
                detail: format!(
                    "order lists {} ids over {} sessions",
                    snap.order.len(),
                    snap.sessions.len()
                ),
            },
        );
    }

    // Monotone tick counters.
    report.checks_run += 1;
    if snap.telemetry.ticks != snap.tick {
        push(
            &mut report,
            SnapshotViolation::NonMonotoneTick {
                path: "telemetry.ticks".into(),
                detail: format!(
                    "telemetry counts {} ticks, snapshot is at tick {}",
                    snap.telemetry.ticks, snap.tick
                ),
            },
        );
    }
    for s in &snap.sessions {
        if s.registered_tick > snap.tick {
            push(
                &mut report,
                SnapshotViolation::NonMonotoneTick {
                    path: format!("sessions[id={}].registered_tick", s.id),
                    detail: format!(
                        "registered at tick {} after snapshot tick {}",
                        s.registered_tick, snap.tick
                    ),
                },
            );
        }
        if let Some(p) = s.pending_since {
            if p > snap.tick {
                push(
                    &mut report,
                    SnapshotViolation::NonMonotoneTick {
                        path: format!("sessions[id={}].pending_since", s.id),
                        detail: format!("pending since tick {p} after snapshot tick {}", snap.tick),
                    },
                );
            }
        }
    }

    // Per-session referential integrity and state consistency; collect
    // the arrangement acquisitions each valid session would hold.
    report.checks_run += 2;
    let mut expected: BTreeMap<(usize, u32), u32> = BTreeMap::new();
    for s in &snap.sessions {
        if !s.weight.is_finite() || s.weight <= 0.0 {
            push(
                &mut report,
                SnapshotViolation::SessionStateInvalid {
                    id: s.id,
                    path: "weight".into(),
                    detail: format!("unusable weight {}", s.weight),
                },
            );
        }
        for (i, (&succ, &total)) in s.successes.iter().zip(&s.totals).enumerate() {
            if succ > total {
                push(
                    &mut report,
                    SnapshotViolation::SessionStateInvalid {
                        id: s.id,
                        path: format!("successes[{i}]"),
                        detail: format!("{succ} successes out of {total} trials"),
                    },
                );
            }
        }
        for (i, &p) in s.calibrated.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) {
                push(
                    &mut report,
                    SnapshotViolation::SessionStateInvalid {
                        id: s.id,
                        path: format!("calibrated[{i}]"),
                        detail: format!("probability {p} outside [0, 1]"),
                    },
                );
            }
        }
        let Some((windows, num_leaves)) = session_windows(s, &catalog_names, &mut report) else {
            continue;
        };
        if s.calibrated.len() != num_leaves {
            push(
                &mut report,
                SnapshotViolation::SessionStateInvalid {
                    id: s.id,
                    path: "calibrated".into(),
                    detail: format!(
                        "calibration covers {} leaves, query has {num_leaves}",
                        s.calibrated.len()
                    ),
                },
            );
        }
        if s.schedule.len() != num_leaves {
            push(
                &mut report,
                SnapshotViolation::SessionStateInvalid {
                    id: s.id,
                    path: "schedule".into(),
                    detail: format!(
                        "schedule covers {} leaves, query has {num_leaves}",
                        s.schedule.len()
                    ),
                },
            );
        }
        for &(_, w) in &windows {
            if w > snap.config.max_window {
                push(
                    &mut report,
                    SnapshotViolation::WindowLimitExceeded {
                        id: s.id,
                        detail: format!("window {w} exceeds max_window {}", snap.config.max_window),
                    },
                );
            }
        }
        // The acquisitions this session holds: exactly the daemon's
        // maintain-vs-repull rule, one reader re-pulling `w` items per
        // tick against one delta item.
        if snap.config.arrange.is_some() {
            for &(k, w) in &windows {
                if w > 0 && ArrangeTerm::new(w, 1, 1.0, f64::from(w)).should_materialize() {
                    *expected.entry((k, w)).or_default() += 1;
                }
            }
        }
    }

    // Arrangements: allowed, well-formed, refcount-balanced.
    report.checks_run += 2;
    match &snap.arrangements {
        None => {}
        Some(arr) => {
            if snap.config.arrange.is_none() {
                push(
                    &mut report,
                    SnapshotViolation::ArrangementsUnexpected {
                        detail: "snapshot persists arrangements but config.arrange is off".into(),
                    },
                );
            }
            let mut keys = BTreeSet::new();
            for (i, e) in arr.entries.iter().enumerate() {
                if e.stream >= snap.catalog.len() {
                    push(
                        &mut report,
                        SnapshotViolation::ArrangementInvalid {
                            index: i,
                            detail: format!("stream {} not in catalog", e.stream),
                        },
                    );
                }
                if e.window == 0 {
                    push(
                        &mut report,
                        SnapshotViolation::ArrangementInvalid {
                            index: i,
                            detail: "zero-item window".into(),
                        },
                    );
                }
                if !keys.insert((e.stream, e.window)) {
                    push(
                        &mut report,
                        SnapshotViolation::ArrangementInvalid {
                            index: i,
                            detail: format!(
                                "duplicate arrangement for stream {} window {}",
                                e.stream, e.window
                            ),
                        },
                    );
                }
                // `maintained_to` is stream time, not the store's
                // maintenance clock — the two advance at different
                // rates, so no cross-check is possible statically.
                if let Some(z) = e.zero_reader_since {
                    if z > arr.clock {
                        push(
                            &mut report,
                            SnapshotViolation::NonMonotoneTick {
                                path: format!("arrangements.entries[{i}].zero_reader_since"),
                                detail: format!("idle since {z} past store clock {}", arr.clock),
                            },
                        );
                    }
                }
            }
            // Refcount balance against the sessions' recomputed
            // acquisitions (only meaningful when every session
            // compiled; source errors were already reported).
            let sources_ok = !report.errors.iter().any(|e| {
                matches!(
                    e,
                    CheckError::Snapshot(
                        SnapshotViolation::SessionSourceInvalid { .. }
                            | SnapshotViolation::UnresolvedStream { .. }
                    )
                )
            });
            if sources_ok {
                let mut expected = expected.clone();
                for e in &arr.entries {
                    let want = expected.remove(&(e.stream, e.window)).unwrap_or(0);
                    if e.readers != want {
                        push(
                            &mut report,
                            SnapshotViolation::RefcountImbalance {
                                stream: e.stream,
                                window: e.window,
                                persisted: e.readers,
                                expected: want,
                            },
                        );
                    }
                }
                for &(k, w) in expected.keys() {
                    push(
                        &mut report,
                        SnapshotViolation::MissingArrangement {
                            stream: k,
                            window: w,
                        },
                    );
                }
            }
        }
    }

    report
}

/// Parses and validates a snapshot from its serialized form.
pub fn check_snapshot_str(input: &str) -> CheckReport {
    match Snapshot::parse(input) {
        Ok(snap) => check_snapshot(&snap),
        Err(e) => {
            let mut report = CheckReport::new("snapshot");
            report.checks_run += 1;
            report.push(CheckError::Snapshot(SnapshotViolation::ParseFailed {
                detail: e.to_string(),
            }));
            report
        }
    }
}

/// Reads, parses, and validates a snapshot file.
pub fn check_snapshot_file(path: &str) -> std::io::Result<CheckReport> {
    Ok(check_snapshot_str(&std::fs::read_to_string(path)?))
}
