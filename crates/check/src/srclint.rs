//! The repo's custom source lint (the `src-lint` bin).
//!
//! Three rules, each born from a real defect class in this codebase's
//! history:
//!
//! * **float-cmp** — `partial_cmp(..).unwrap()` / `.expect(..)` in f64
//!   comparators. PR 4 fixed a family of NaN-sort panics scattered
//!   across six planners; `total_cmp` is total and never panics.
//!   Applies everywhere, bins included.
//! * **bare-unwrap** — `.unwrap()` with no message in library code.
//!   Outside tests and bins an invariant worth unwrapping is worth
//!   documenting (`expect("why this holds")`) or worth a typed error.
//! * **unsafe-block** — `unsafe` anywhere but the two audited files
//!   (`par/src/pool.rs`, `serverd/src/json.rs`). New unsafe code must
//!   land in an audited file or carry an explicit allow.
//!
//! Any line can opt out with an inline `// lint:allow(<rule>)` on the
//! same line or the line directly above; the escape hatch is meant to
//! be grep-able, so each use stays visible.
//!
//! The walker is std-only (same pattern as `bench-diff`): no syn, no
//! regex — line-oriented scanning, cheap enough to run on every CI
//! push. Code after a `#[cfg(test)]` marker is treated as test code.

use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers, as written inside `lint:allow(..)`.
pub const RULES: [&str; 3] = ["float-cmp", "bare-unwrap", "unsafe-block"];

/// Files where `unsafe` is permitted (workspace-relative, audited).
pub const UNSAFE_ALLOWED: [&str; 2] = ["crates/par/src/pool.rs", "crates/serverd/src/json.rs"];

/// Crates whose `src/` is binary-facing: `bare-unwrap` does not apply
/// (a CLI that unwraps prints a panic to its own user; the daemon and
/// library paths must not).
const BIN_CRATES: [&str; 3] = ["crates/cli", "crates/experiments", "crates/bench"];

/// The lint's own implementation necessarily spells out the patterns it
/// hunts for; it is fully exempt (and lives in a `forbid(unsafe_code)`
/// crate regardless).
const SELF: &str = "crates/check/src/srclint.rs";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintHit {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl fmt::Display for LintHit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.snippet
        )
    }
}

/// True when `line` (or the previous line) carries a
/// `lint:allow(<rule>)` marker for `rule`.
fn allowed(rule: &str, line: &str, prev: Option<&str>) -> bool {
    let marker = |l: &str| {
        l.split("lint:allow(").skip(1).any(|rest| {
            rest.split(')')
                .next()
                .is_some_and(|rules| rules.split(',').any(|r| r.trim() == rule))
        })
    };
    marker(line) || prev.is_some_and(marker)
}

/// True when the byte after an `unsafe` match keeps it from being the
/// keyword (`unsafe_code`, `unsafely`, ...).
fn is_unsafe_keyword(line: &str, idx: usize) -> bool {
    // Preceded by start or a non-identifier character…
    if idx > 0 {
        let before = line.as_bytes()[idx - 1];
        if before.is_ascii_alphanumeric() || before == b'_' {
            return false;
        }
    }
    // …and followed by one too.
    match line.as_bytes().get(idx + "unsafe".len()) {
        Some(&c) => !(c.is_ascii_alphanumeric() || c == b'_'),
        None => true,
    }
}

/// True when the line is inside a string literal context we can cheaply
/// dodge: doc comments and plain comments. (Full string-literal
/// tracking is overkill for three rules; the allow marker covers the
/// rare false positive.)
fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("*") || t.starts_with("/*")
}

/// Scans one file's text. `path` is the workspace-relative label used
/// in findings and for the per-file rule exemptions; pass the real
/// relative path when linting a tree, or any label in tests.
pub fn lint_source(path: &str, text: &str) -> Vec<LintHit> {
    let norm = path.replace('\\', "/");
    if norm.ends_with(SELF) {
        return Vec::new();
    }
    let in_tests_dir = norm.contains("/tests/") || norm.ends_with("/tests.rs");
    let in_bin = norm.contains("/bin/")
        || norm.ends_with("/main.rs")
        || BIN_CRATES
            .iter()
            .any(|c| norm.starts_with(&format!("{c}/")));
    let unsafe_allowed = UNSAFE_ALLOWED.iter().any(|f| norm.ends_with(f));

    let mut hits = Vec::new();
    let mut prev: Option<&str> = None;
    // Everything after the first `#[cfg(test)]` is treated as test code
    // (the repo keeps test modules at the end of each file). Brace
    // counting would be tempting but breaks on files whose string
    // literals contain braces, like the JSON codec.
    let mut in_test_mod = false;

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.contains("#[cfg(test)]") {
            in_test_mod = true;
        }

        if is_comment(line) {
            prev = Some(line);
            continue;
        }
        let exempt_code = in_tests_dir || in_test_mod;

        // float-cmp: a partial_cmp whose Option is force-unwrapped.
        if !exempt_code
            && line.contains("partial_cmp")
            && (line.contains(".unwrap()") || line.contains(".expect("))
            && !allowed("float-cmp", line, prev)
        {
            hits.push(LintHit {
                file: norm.clone(),
                line: lineno,
                rule: "float-cmp",
                snippet: line.trim().to_string(),
            });
        }

        // bare-unwrap: undocumented unwraps in library code.
        if !exempt_code
            && !in_bin
            && line.contains(".unwrap()")
            && !line.contains("partial_cmp") // already reported above
            && !allowed("bare-unwrap", line, prev)
        {
            hits.push(LintHit {
                file: norm.clone(),
                line: lineno,
                rule: "bare-unwrap",
                snippet: line.trim().to_string(),
            });
        }

        // unsafe-block: the keyword outside the audited files. Test
        // modules are not exempt — unsafe in tests is still unsafe.
        if !unsafe_allowed && !allowed("unsafe-block", line, prev) {
            let mut search = 0;
            while let Some(pos) = line[search..].find("unsafe") {
                let idx = search + pos;
                if is_unsafe_keyword(line, idx) {
                    hits.push(LintHit {
                        file: norm.clone(),
                        line: lineno,
                        rule: "unsafe-block",
                        snippet: line.trim().to_string(),
                    });
                    break;
                }
                search = idx + "unsafe".len();
            }
        }

        prev = Some(line);
    }
    hits
}

/// Recursively collects `.rs` files under `dir`, sorted for stable
/// output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src` tree under `workspace_root`. Paths in
/// findings are workspace-relative.
pub fn lint_tree(workspace_root: &Path) -> std::io::Result<Vec<LintHit>> {
    let crates_dir = workspace_root.join("crates");
    let mut crates: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    let mut hits = Vec::new();
    for krate in crates {
        let src = krate.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for file in files {
            let text = std::fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(workspace_root)
                .unwrap_or(&file)
                .to_string_lossy()
                .to_string();
            hits.extend(lint_source(&rel, &text));
        }
    }
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, text: &str) -> Vec<&'static str> {
        lint_source(path, text)
            .into_iter()
            .map(|h| h.rule)
            .collect()
    }

    #[test]
    fn partial_cmp_unwrap_fires_everywhere_even_in_bins() {
        let bad = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert_eq!(rules_of("crates/core/src/x.rs", bad), ["float-cmp"]);
        assert_eq!(rules_of("crates/cli/src/x.rs", bad), ["float-cmp"]);
        let expect = "v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\"));\n";
        assert_eq!(rules_of("crates/core/src/x.rs", expect), ["float-cmp"]);
    }

    #[test]
    fn total_cmp_is_clean() {
        let good = "v.sort_by(|a, b| a.total_cmp(b));\n";
        assert!(rules_of("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn bare_unwrap_fires_in_lib_code_only() {
        let bad = "let x = map.get(&k).unwrap();\n";
        assert_eq!(rules_of("crates/core/src/x.rs", bad), ["bare-unwrap"]);
        // bins, tests dirs, and post-#[cfg(test)] code are exempt
        assert!(rules_of("crates/cli/src/x.rs", bad).is_empty());
        assert!(rules_of("crates/core/src/bin/tool.rs", bad).is_empty());
        assert!(rules_of("crates/core/tests/x.rs", bad).is_empty());
        let tested = format!("fn f() {{}}\n#[cfg(test)]\nmod tests {{\n{bad}}}\n");
        assert!(rules_of("crates/core/src/x.rs", &tested).is_empty());
        // expect() with a message is the sanctioned form
        let expect = "let x = map.get(&k).expect(\"inserted above\");\n";
        assert!(rules_of("crates/core/src/x.rs", expect).is_empty());
    }

    #[test]
    fn unsafe_fires_outside_audited_files_including_tests() {
        let bad = "let p = unsafe { &*ptr };\n";
        assert_eq!(rules_of("crates/core/src/x.rs", bad), ["unsafe-block"]);
        let tested = format!("#[cfg(test)]\nmod tests {{\n{bad}}}\n");
        assert_eq!(rules_of("crates/core/src/x.rs", &tested), ["unsafe-block"]);
        for audited in UNSAFE_ALLOWED {
            assert!(rules_of(audited, bad).is_empty(), "{audited}");
        }
        // identifier containing the substring is not the keyword
        let ident = "forbid_unsafe_code_everywhere();\n";
        assert!(rules_of("crates/core/src/x.rs", ident).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_on_same_or_previous_line() {
        let same = "let x = o.unwrap(); // lint:allow(bare-unwrap)\n";
        assert!(rules_of("crates/core/src/x.rs", same).is_empty());
        let prev = "// lint:allow(bare-unwrap)\nlet x = o.unwrap();\n";
        assert!(rules_of("crates/core/src/x.rs", prev).is_empty());
        // marker for a different rule does not suppress
        let wrong = "let x = o.unwrap(); // lint:allow(float-cmp)\n";
        assert_eq!(rules_of("crates/core/src/x.rs", wrong), ["bare-unwrap"]);
    }

    #[test]
    fn comment_lines_do_not_fire() {
        let doc = "// calls .unwrap() internally\nlet y = 1;\n";
        assert!(rules_of("crates/core/src/x.rs", doc).is_empty());
    }

    #[test]
    fn the_lint_is_self_exempt() {
        assert!(rules_of(SELF, "let x = o.unwrap(); unsafe {}\n").is_empty());
    }
}
