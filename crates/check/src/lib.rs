//! Static verification for paotr: plan/joint-plan verifiers, snapshot
//! integrity checks, qlang query lints, and the repo's custom source
//! lint.
//!
//! Everything here analyses *artifacts* — a [`paotr_core::plan::Plan`],
//! a [`paotr_multi::JointPlan`], a serialized
//! [`paotr_serverd::snapshot::Snapshot`], a qlang source string, a Rust
//! source tree — without executing anything. The same single-plan
//! checks also run automatically (debug builds only) at every
//! `Engine::plan*` exit via `paotr_core::plan::verify`.
//!
//! All checkers return a [`CheckReport`] collecting every violation
//! found rather than stopping at the first, so one run paints the full
//! picture.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod plan;
pub mod qlint;
pub mod report;
pub mod snapshot;
pub mod srclint;

pub use plan::{verify_energy, verify_joint, verify_plan, JointViolation};
pub use qlint::{lint_query, LintRule, QueryLint};
pub use report::{CheckError, CheckReport};
pub use snapshot::{check_snapshot, check_snapshot_file, check_snapshot_str, SnapshotViolation};
pub use srclint::{lint_source, lint_tree, LintHit};
