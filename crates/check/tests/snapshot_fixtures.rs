//! The snapshot checker against committed fixtures: both daemon
//! formats must pass, and the two seeded corruptions must fail with
//! the expected violation classes.

use paotr_check::{check_snapshot_str, CheckError, SnapshotViolation};

const V1: &str = include_str!("../../serverd/tests/fixtures/snapshot_v1.snap");
const V2: &str = include_str!("../../serverd/tests/fixtures/snapshot_v2.snap");
const TRUNCATED: &str = include_str!("fixtures/snapshot_truncated.snap");
const IMBALANCED: &str = include_str!("fixtures/snapshot_refcount_imbalance.snap");

#[test]
fn committed_v1_fixture_is_accepted() {
    let report = check_snapshot_str(V1);
    assert!(report.is_clean(), "{report}");
    assert!(report.checks_run > 0);
}

#[test]
fn committed_v2_fixture_is_accepted() {
    let report = check_snapshot_str(V2);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn truncated_snapshot_is_rejected_as_parse_failure() {
    let report = check_snapshot_str(TRUNCATED);
    assert!(
        report.errors.iter().any(|e| matches!(
            e,
            CheckError::Snapshot(SnapshotViolation::ParseFailed { .. })
        )),
        "{report}"
    );
}

#[test]
fn refcount_imbalanced_snapshot_is_rejected() {
    let report = check_snapshot_str(IMBALANCED);
    assert!(
        report.errors.iter().any(|e| matches!(
            e,
            CheckError::Snapshot(SnapshotViolation::RefcountImbalance { .. })
        )),
        "{report}"
    );
}
