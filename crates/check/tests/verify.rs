//! Acceptance and mutation-rejection tests for the static verifiers.
//!
//! Accept side: every registered per-query planner and every workload
//! planner must produce verifier-clean plans on generated instances
//! (fixed sizes 4/16/64 plus proptest-randomized shapes). Reject side:
//! one test per seeded mutation class — a verifier that accepts
//! everything is worse than none.

use paotr_check::{verify_joint, verify_plan};
use paotr_core::cost::arrange::{ArrangeTerm, DEFAULT_HORIZON};
use paotr_core::plan::{Engine, PlanBody, QueryRef};
use paotr_core::schedule::DnfSchedule;
use paotr_gen::workload::{workload_instance, WorkloadConfig};
use paotr_multi::planner::Materialization;
use paotr_multi::{default_planners, Workload};
use proptest::prelude::*;
use std::sync::Arc;

fn workload(queries: usize, overlap: f64, seed: usize) -> Workload {
    let (trees, catalog) = workload_instance(WorkloadConfig::with_overlap(queries, overlap), seed);
    Workload::from_trees(trees, catalog).expect("generated workloads are valid")
}

/// Every workload planner, on every required size, verifier-clean.
#[test]
fn all_workload_planners_verify_clean_at_4_16_64() {
    let engine = Engine::new();
    for queries in [4usize, 16, 64] {
        let w = workload(queries, 0.5, queries);
        for p in default_planners() {
            let joint = p.plan(&w, &engine).expect("planning succeeds");
            let report = verify_joint(&joint, &w);
            assert!(
                report.is_clean(),
                "{} on {queries} queries:\n{report}",
                p.name()
            );
            assert!(report.checks_run > 0);
        }
    }
}

/// Every registered per-query planner that supports the query,
/// verifier-clean on every query of a generated workload.
#[test]
fn all_registry_planners_verify_clean() {
    let engine = Engine::new();
    let w = workload(4, 0.5, 1);
    for wq in w.queries() {
        let q = QueryRef::from(&wq.tree);
        for name in engine.registry().names() {
            let p = engine.registry().get(name).expect("name from names()");
            if !p.supports(&q) {
                continue;
            }
            let plan = engine
                .plan_with(name, &wq.tree, w.catalog())
                .expect("planning succeeds");
            let report = verify_plan(&plan, &q, w.catalog());
            assert!(report.is_clean(), "{name}:\n{report}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random workload shapes: every planner's joint plan passes.
    #[test]
    fn random_workloads_verify_clean(
        queries in 1usize..12,
        overlap_pct in 0usize..=10,
        seed in 0usize..1000,
    ) {
        let engine = Engine::new();
        let w = workload(queries, overlap_pct as f64 / 10.0, seed);
        for p in default_planners() {
            let joint = p.plan(&w, &engine).expect("planning succeeds");
            let report = verify_joint(&joint, &w);
            prop_assert!(report.is_clean(), "{} seed {seed}:\n{report}", p.name());
        }
    }
}

// ---- mutation classes: each must be rejected --------------------------

/// Plans query 0 of a fixed workload with the default planner and hands
/// the pieces to a mutation test.
fn planned_query() -> (Workload, paotr_core::plan::Plan) {
    let w = workload(4, 0.5, 2);
    let engine = Engine::new();
    let plan = engine
        .plan(&w.query(0).tree, w.catalog())
        .expect("planning succeeds");
    (w, plan)
}

fn rules(report: &paotr_check::CheckReport) -> Vec<&'static str> {
    report.errors.iter().map(|e| e.rule()).collect()
}

#[test]
fn mutation_dropped_leaf_is_rejected() {
    let (w, plan) = planned_query();
    let mut mutated = plan.clone();
    let PlanBody::Dnf(s) = &plan.body else {
        panic!("default planner emits DNF schedules")
    };
    let mut order = s.order().to_vec();
    order.pop();
    mutated.body = PlanBody::Dnf(DnfSchedule::from_order_unchecked(order));
    let report = verify_plan(&mutated, &QueryRef::from(&w.query(0).tree), w.catalog());
    assert!(rules(&report).contains(&"missing-leaf"), "{report}");
}

#[test]
fn mutation_duplicated_leaf_is_rejected() {
    let (w, plan) = planned_query();
    let mut mutated = plan.clone();
    let PlanBody::Dnf(s) = &plan.body else {
        panic!("default planner emits DNF schedules")
    };
    let mut order = s.order().to_vec();
    order[0] = *order.last().expect("schedules are non-empty");
    mutated.body = PlanBody::Dnf(DnfSchedule::from_order_unchecked(order));
    let report = verify_plan(&mutated, &QueryRef::from(&w.query(0).tree), w.catalog());
    assert!(rules(&report).contains(&"duplicate-leaf"), "{report}");
}

#[test]
fn mutation_perturbed_cost_is_rejected() {
    let (w, plan) = planned_query();
    let mut mutated = plan.clone();
    // Just past the 1e-9 relative tolerance with margin.
    mutated.expected_cost = mutated.expected_cost.map(|c| c * (1.0 + 1e-6));
    let report = verify_plan(&mutated, &QueryRef::from(&w.query(0).tree), w.catalog());
    assert!(rules(&report).contains(&"cost-mismatch"), "{report}");
}

#[test]
fn mutation_window_past_horizon_is_rejected() {
    let w = workload(4, 0.5, 2);
    let engine = Engine::new();
    let mut joint = default_planners()
        .into_iter()
        .find(|p| p.name() == "shared-greedy")
        .expect("shared-greedy is registered")
        .plan(&w, &engine)
        .expect("planning succeeds");
    // A window wider than the maintenance horizon can never be
    // acquired: repulling would always be cheaper than maintaining.
    let window = DEFAULT_HORIZON as u32 + 64;
    joint.materialized.push(Materialization {
        stream: paotr_core::stream::StreamId(0),
        window,
        term: ArrangeTerm::new(window, 2, 1.0, DEFAULT_HORIZON),
    });
    let report = verify_joint(&joint, &w);
    assert!(
        rules(&report).contains(&"window-not-acquirable"),
        "{report}"
    );
}

#[test]
fn mutation_inflated_bound_is_rejected() {
    // Realized by deflating the stored cost below the admissible B&B
    // lower bound — the bound itself is recomputed, not stored.
    let w = workload(4, 0.5, 2);
    let engine = Engine::new();
    let tree = &w.query(0).tree;
    let mut plan = engine
        .plan_with("branch-and-bound", tree, w.catalog())
        .expect("planning succeeds");
    plan.expected_cost = plan.expected_cost.map(|c| c * 1e-3);
    let report = verify_plan(&plan, &QueryRef::from(tree), w.catalog());
    assert!(rules(&report).contains(&"bound-exceeds-cost"), "{report}");
}

/// A mutated plan smuggled into a joint plan is caught through
/// `verify_joint` too (the per-query layer composes).
#[test]
fn mutation_inside_joint_plan_is_rejected() {
    let w = workload(4, 0.5, 2);
    let engine = Engine::new();
    let mut joint = default_planners()
        .into_iter()
        .find(|p| p.name() == "independent")
        .expect("independent is registered")
        .plan(&w, &engine)
        .expect("planning succeeds");
    let mut mutated = (*joint.plans[1]).clone();
    mutated.expected_cost = mutated.expected_cost.map(|c| c * (1.0 + 1e-5));
    joint.plans[1] = Arc::new(mutated);
    let report = verify_joint(&joint, &w);
    assert!(rules(&report).contains(&"cost-mismatch"), "{report}");
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.location().starts_with("queries[1]")),
        "violation should carry the query index: {report}"
    );
}
