//! # paotr-stats — statistics and figure plumbing for the experiments
//!
//! * [`summary`] — ratio aggregates (the paper's inline Figure-4 numbers:
//!   max ratio, %>10%, %>1%, tie rate) and best-heuristic win counting;
//! * [`profile`] — performance profiles (the ratio-vs-fraction curves of
//!   Figures 5 and 6);
//! * [`table`] — dependency-free CSV / Markdown table writers;
//! * [`svg`] — dependency-free SVG line/scatter charts;
//! * [`ascii`] — terminal charts for the examples.
#![forbid(unsafe_code)]

pub mod ascii;
pub mod profile;
pub mod summary;
pub mod svg;
pub mod table;

pub use ascii::AsciiChart;
pub use profile::{ratios, Profile};
pub use summary::{best_counts, best_counts_with_tolerance, percentile, RatioSummary};
pub use svg::{Chart, Series, Style};
pub use table::{fmt_f64, fmt_short, Table};
