//! Minimal dependency-free SVG charts.
//!
//! Enough of a plotting library to regenerate the paper's three figures:
//! multi-series line charts (Figures 5, 6) and large scatter/line overlays
//! (Figure 4). Output is a standalone `.svg` file.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Plot area geometry.
const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 560.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 230.0; // room for the legend
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

/// A qualitative 10-colour palette (one per heuristic curve).
pub const PALETTE: [&str; 10] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf",
];

/// How a series is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Connected polyline.
    Line,
    /// Unconnected dots (for Figure-4-style clouds).
    Dots,
}

/// One data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` samples.
    pub points: Vec<(f64, f64)>,
    /// Drawing style.
    pub style: Style,
    /// Stroke/fill colour (any SVG colour string).
    pub color: String,
}

impl Series {
    /// A line series with an automatic palette colour.
    pub fn line(name: impl Into<String>, points: Vec<(f64, f64)>, index: usize) -> Series {
        Series {
            name: name.into(),
            points,
            style: Style::Line,
            color: PALETTE[index % PALETTE.len()].to_string(),
        }
    }

    /// A dot series with an automatic palette colour.
    pub fn dots(name: impl Into<String>, points: Vec<(f64, f64)>, index: usize) -> Series {
        Series {
            name: name.into(),
            points,
            style: Style::Dots,
            color: PALETTE[index % PALETTE.len()].to_string(),
        }
    }
}

/// A 2-D chart with labelled axes and a legend.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Chart title.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// Data series.
    pub series: Vec<Series>,
    /// Optional fixed axis ranges (auto-fitted when `None`).
    pub x_range: Option<(f64, f64)>,
    /// Optional fixed Y range.
    pub y_range: Option<(f64, f64)>,
}

impl Chart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Chart {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            x_range: None,
            y_range: None,
        }
    }

    /// Adds a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    fn ranges(&self) -> ((f64, f64), (f64, f64)) {
        let fit = |get: fn(&(f64, f64)) -> f64| -> (f64, f64) {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for s in &self.series {
                for p in &s.points {
                    lo = lo.min(get(p));
                    hi = hi.max(get(p));
                }
            }
            if !lo.is_finite() || !hi.is_finite() {
                (0.0, 1.0)
            } else if lo == hi {
                (lo - 0.5, hi + 0.5)
            } else {
                (lo, hi)
            }
        };
        (
            self.x_range.unwrap_or_else(|| fit(|p| p.0)),
            self.y_range.unwrap_or_else(|| fit(|p| p.1)),
        )
    }

    /// Renders the chart as an SVG document.
    pub fn to_svg(&self) -> String {
        let ((x0, x1), (y0, y1)) = self.ranges();
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = move |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
        let sy = move |y: f64| MARGIN_T + plot_h - (y - y0) / (y1 - y0) * plot_h;

        let mut out = String::with_capacity(16 * 1024);
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
        );
        let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
        let _ = writeln!(
            out,
            r#"<text x="{}" y="24" text-anchor="middle" font-family="sans-serif" font-size="16">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            xml_escape(&self.title)
        );

        // axes box
        let _ = writeln!(
            out,
            r#"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="black"/>"#
        );

        // ticks: 6 per axis
        for i in 0..=5 {
            let fx = x0 + (x1 - x0) * i as f64 / 5.0;
            let px = sx(fx);
            let _ = writeln!(
                out,
                r#"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="black"/>"#,
                MARGIN_T + plot_h,
                MARGIN_T + plot_h + 5.0
            );
            let _ = writeln!(
                out,
                r#"<text x="{px}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="11">{}</text>"#,
                MARGIN_T + plot_h + 18.0,
                tick_label(fx)
            );
            let fy = y0 + (y1 - y0) * i as f64 / 5.0;
            let py = sy(fy);
            let _ = writeln!(
                out,
                r#"<line x1="{}" y1="{py}" x2="{MARGIN_L}" y2="{py}" stroke="black"/>"#,
                MARGIN_L - 5.0
            );
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" text-anchor="end" font-family="sans-serif" font-size="11">{}</text>"#,
                MARGIN_L - 8.0,
                py + 4.0,
                tick_label(fy)
            );
        }

        // axis labels
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="13">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            xml_escape(&self.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="18" y="{}" text-anchor="middle" font-family="sans-serif" font-size="13" transform="rotate(-90 18 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml_escape(&self.y_label)
        );

        // series
        for s in &self.series {
            match s.style {
                Style::Line => {
                    let pts: Vec<String> = s
                        .points
                        .iter()
                        .map(|&(x, y)| {
                            format!("{:.2},{:.2}", sx(x.clamp(x0, x1)), sy(y.clamp(y0, y1)))
                        })
                        .collect();
                    let _ = writeln!(
                        out,
                        r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="1.8"/>"#,
                        pts.join(" "),
                        s.color
                    );
                }
                Style::Dots => {
                    for &(x, y) in &s.points {
                        let _ = writeln!(
                            out,
                            r#"<circle cx="{:.2}" cy="{:.2}" r="1.2" fill="{}" fill-opacity="0.5"/>"#,
                            sx(x.clamp(x0, x1)),
                            sy(y.clamp(y0, y1)),
                            s.color
                        );
                    }
                }
            }
        }

        // legend
        for (i, s) in self.series.iter().enumerate() {
            let lx = MARGIN_L + plot_w + 15.0;
            let ly = MARGIN_T + 14.0 + i as f64 * 18.0;
            let _ = writeln!(
                out,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{}" stroke-width="3"/>"#,
                lx + 22.0,
                s.color
            );
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12">{}</text>"#,
                lx + 28.0,
                ly + 4.0,
                xml_escape(&s.name)
            );
        }

        out.push_str("</svg>\n");
        out
    }

    /// Writes the SVG to a file, creating parent directories.
    pub fn write_svg(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_svg())
    }
}

fn tick_label(v: f64) -> String {
    if v.abs() >= 1000.0 || (v - v.round()).abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_svg() {
        let mut c = Chart::new("t", "x", "y");
        c.push(Series::line("a", vec![(0.0, 1.0), (1.0, 2.0)], 0));
        c.push(Series::dots("b", vec![(0.5, 1.5)], 1));
        let svg = c.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("circle"));
        assert!(svg.matches("<text").count() >= 10);
    }

    #[test]
    fn escapes_xml_in_labels() {
        let c = Chart::new("a<b&c", "x", "y");
        let svg = c.to_svg();
        assert!(svg.contains("a&lt;b&amp;c"));
    }

    #[test]
    fn fixed_ranges_are_respected() {
        let mut c = Chart::new("t", "x", "y");
        c.x_range = Some((0.0, 100.0));
        c.y_range = Some((1.0, 10.0));
        c.push(Series::line("a", vec![(0.0, 1.0), (200.0, 20.0)], 0));
        let svg = c.to_svg();
        // out-of-range points are clamped, not dropped
        assert!(svg.contains("polyline"));
    }

    #[test]
    fn empty_chart_still_renders() {
        let c = Chart::new("empty", "x", "y");
        assert!(c.to_svg().contains("</svg>"));
    }

    #[test]
    fn write_creates_directories() {
        let dir = std::env::temp_dir().join(format!("paotr_svg_{}", std::process::id()));
        let path = dir.join("a/b/plot.svg");
        Chart::new("t", "x", "y").write_svg(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
