//! ASCII charts for terminal output.
//!
//! The example binaries print quick performance-profile sketches without
//! leaving the terminal. One character cell per grid position; each series
//! draws with its own glyph, later series win collisions.

/// A terminal chart over a fixed character grid.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    x_range: (f64, f64),
    y_range: (f64, f64),
    grid: Vec<Vec<char>>,
    legend: Vec<(char, String)>,
}

/// Glyphs assigned to series, in order.
pub const GLYPHS: [char; 10] = ['*', '+', 'o', 'x', '#', '@', '%', '&', '=', '~'];

impl AsciiChart {
    /// Creates an empty chart of `width x height` character cells mapped
    /// onto the given data ranges.
    pub fn new(
        width: usize,
        height: usize,
        x_range: (f64, f64),
        y_range: (f64, f64),
    ) -> AsciiChart {
        assert!(width >= 10 && height >= 4, "chart too small to be legible");
        assert!(
            x_range.0 < x_range.1 && y_range.0 < y_range.1,
            "empty axis range"
        );
        AsciiChart {
            width,
            height,
            x_range,
            y_range,
            grid: vec![vec![' '; width]; height],
            legend: Vec::new(),
        }
    }

    /// Plots a series with the next free glyph.
    pub fn plot(&mut self, name: impl Into<String>, points: &[(f64, f64)]) {
        let glyph = GLYPHS[self.legend.len() % GLYPHS.len()];
        self.legend.push((glyph, name.into()));
        for &(x, y) in points {
            if let Some((cx, cy)) = self.cell(x, y) {
                self.grid[cy][cx] = glyph;
            }
        }
    }

    fn cell(&self, x: f64, y: f64) -> Option<(usize, usize)> {
        let (x0, x1) = self.x_range;
        let (y0, y1) = self.y_range;
        if !(x0..=x1).contains(&x) || !(y0..=y1).contains(&y) {
            return None;
        }
        let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
        let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
        Some((cx, self.height - 1 - cy))
    }

    /// Renders the chart with a frame, y-range annotations and legend.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>8.3} ┌{}┐\n",
            self.y_range.1,
            "─".repeat(self.width)
        ));
        for (i, row) in self.grid.iter().enumerate() {
            let label = if i + 1 == self.height {
                format!("{:>8.3} ", self.y_range.0)
            } else {
                " ".repeat(9)
            };
            out.push_str(&label);
            out.push('│');
            out.extend(row.iter());
            out.push_str("│\n");
        }
        out.push_str(&format!(
            "{}└{}┘\n{}{:<10.2}{:>width$.2}\n",
            " ".repeat(9),
            "─".repeat(self.width),
            " ".repeat(10),
            self.x_range.0,
            self.x_range.1,
            width = self.width - 6
        ));
        for (glyph, name) in &self.legend {
            out.push_str(&format!("  {glyph} {name}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_points_in_grid() {
        let mut c = AsciiChart::new(20, 5, (0.0, 10.0), (0.0, 1.0));
        c.plot("s", &[(0.0, 0.0), (10.0, 1.0), (5.0, 0.5)]);
        let r = c.render();
        assert!(r.contains('*'));
        assert!(r.contains("s\n"));
        // corner points land in corners: first grid row has the max point
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[1].trim_start().starts_with('│') || lines[1].contains('*'));
    }

    #[test]
    fn out_of_range_points_are_dropped() {
        let mut c = AsciiChart::new(20, 5, (0.0, 1.0), (0.0, 1.0));
        c.plot("s", &[(5.0, 5.0)]);
        // only the legend mentions the glyph; the plot area stays empty
        assert_eq!(c.render().matches('*').count(), 1);
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let mut c = AsciiChart::new(20, 5, (0.0, 1.0), (0.0, 1.0));
        c.plot("a", &[(0.2, 0.2)]);
        c.plot("b", &[(0.8, 0.8)]);
        let r = c.render();
        assert!(r.contains('*') && r.contains('+'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_grids() {
        AsciiChart::new(2, 2, (0.0, 1.0), (0.0, 1.0));
    }
}
