//! Ratio summaries — the paper's inline Figure-4 statistics.
//!
//! Section III-B summarizes the AND-tree experiment with four numbers:
//! the worst ratio of the read-once greedy to the optimal (1.86), the
//! fraction of instances more than 10% worse (19.54%), more than 1% worse
//! (60.20%), and the fraction of exact ties (11.29%). [`RatioSummary`]
//! computes those numbers (plus a few more robust aggregates) from a list
//! of cost ratios.

/// Tolerance below which two costs count as a tie.
pub const TIE_EPSILON: f64 = 1e-9;

/// Aggregate statistics over cost ratios (`candidate / baseline`, so 1.0
/// means "as good as the baseline" and ratios are `>= 1` when the baseline
/// is optimal).
#[derive(Debug, Clone, PartialEq)]
pub struct RatioSummary {
    /// Number of ratios summarized.
    pub count: usize,
    /// Largest ratio observed.
    pub max: f64,
    /// Arithmetic mean of the ratios.
    pub mean: f64,
    /// Geometric mean of the ratios.
    pub geometric_mean: f64,
    /// Fraction of ratios strictly above `1 + 10%`.
    pub frac_over_10pct: f64,
    /// Fraction of ratios strictly above `1 + 1%`.
    pub frac_over_1pct: f64,
    /// Fraction of ratios within [`TIE_EPSILON`] of 1 (exact ties).
    pub frac_ties: f64,
    /// Median ratio.
    pub median: f64,
    /// 99th percentile ratio.
    pub p99: f64,
}

impl RatioSummary {
    /// Summarizes a list of ratios.
    ///
    /// # Panics
    /// Panics on an empty list or non-finite ratios.
    pub fn from_ratios(ratios: &[f64]) -> RatioSummary {
        assert!(!ratios.is_empty(), "cannot summarize zero ratios");
        assert!(
            ratios.iter().all(|r| r.is_finite()),
            "ratios must be finite"
        );
        let n = ratios.len() as f64;
        let mut sorted = ratios.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let max = *sorted.last().expect("non-empty");
        let mean = ratios.iter().sum::<f64>() / n;
        let geometric_mean = (ratios.iter().map(|r| r.max(1e-300).ln()).sum::<f64>() / n).exp();
        let count_over = |thr: f64| ratios.iter().filter(|&&r| r > thr).count() as f64 / n;
        RatioSummary {
            count: ratios.len(),
            max,
            mean,
            geometric_mean,
            frac_over_10pct: count_over(1.10),
            frac_over_1pct: count_over(1.01),
            frac_ties: ratios
                .iter()
                .filter(|&&r| (r - 1.0).abs() <= TIE_EPSILON)
                .count() as f64
                / n,
            median: percentile(&sorted, 50.0),
            p99: percentile(&sorted, 99.0),
        }
    }

    /// Renders the summary as the sentence structure used in the paper.
    pub fn paper_sentence(&self, candidate: &str, baseline: &str) -> String {
        format!(
            "{candidate} can lead to costs up to {:.2} times larger than {baseline}. \
             It leads to costs more than 10% larger for {:.2}% of the instances, \
             and more than 1% larger for {:.2}% of the instances. \
             The two lead to the same cost for {:.2}% of the instances.",
            self.max,
            self.frac_over_10pct * 100.0,
            self.frac_over_1pct * 100.0,
            self.frac_ties * 100.0
        )
    }
}

/// Linear-interpolated percentile of a pre-sorted slice (`p` in 0..=100).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Counts, for each candidate, how often it is (one of) the best across
/// instances. `costs[i][h]` is the cost of candidate `h` on instance `i`;
/// returns per-candidate win counts (ties award a win to every tied
/// candidate, as in the paper's "best heuristic in 94.5% of the cases").
pub fn best_counts(costs: &[Vec<f64>]) -> Vec<usize> {
    best_counts_with_tolerance(costs, 0.0)
}

/// [`best_counts`] with a *relative* tie tolerance: a candidate within
/// `rel_tol` of the row minimum counts as best. Useful when several
/// near-identical variants trade sub-0.1% differences (as the AND-ordered
/// family does on large instances).
pub fn best_counts_with_tolerance(costs: &[Vec<f64>], rel_tol: f64) -> Vec<usize> {
    if costs.is_empty() {
        return Vec::new();
    }
    let h = costs[0].len();
    let mut wins = vec![0usize; h];
    for row in costs {
        assert_eq!(row.len(), h, "ragged cost matrix");
        let best = row.iter().copied().fold(f64::INFINITY, f64::min);
        let cutoff = best * (1.0 + rel_tol) + TIE_EPSILON;
        for (j, &c) in row.iter().enumerate() {
            if c <= cutoff {
                wins[j] += 1;
            }
        }
    }
    wins
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_on_known_data() {
        let ratios = [1.0, 1.0, 1.005, 1.05, 1.2, 1.86];
        let s = RatioSummary::from_ratios(&ratios);
        assert_eq!(s.count, 6);
        assert!((s.max - 1.86).abs() < 1e-12);
        assert!((s.frac_ties - 2.0 / 6.0).abs() < 1e-12);
        assert!((s.frac_over_10pct - 2.0 / 6.0).abs() < 1e-12);
        assert!((s.frac_over_1pct - 3.0 / 6.0).abs() < 1e-12);
        assert!(s.geometric_mean <= s.mean + 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 4.0);
        assert!((percentile(&sorted, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn paper_sentence_mentions_all_numbers() {
        let s = RatioSummary::from_ratios(&[1.0, 1.86]);
        let txt = s.paper_sentence("the algorithm in [7]", "optimal");
        assert!(txt.contains("1.86"));
        assert!(txt.contains("50.00%"));
    }

    #[test]
    fn best_counts_awards_ties() {
        let costs = vec![
            vec![1.0, 1.0, 2.0],
            vec![3.0, 2.0, 2.0],
            vec![5.0, 4.0, 3.0],
        ];
        assert_eq!(best_counts(&costs), vec![1, 2, 2]);
    }

    #[test]
    fn tolerant_best_counts_absorb_near_ties() {
        let costs = vec![vec![1.0, 1.0005, 1.2]];
        assert_eq!(best_counts(&costs), vec![1, 0, 0]);
        assert_eq!(best_counts_with_tolerance(&costs, 0.001), vec![1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "zero ratios")]
    fn empty_summary_panics() {
        RatioSummary::from_ratios(&[]);
    }
}
