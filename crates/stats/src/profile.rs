//! Performance profiles — the curves of Figures 5 and 6.
//!
//! For one heuristic over a set of instances, the profile maps a fraction
//! `x` in [0, 100] to the smallest ratio `y` such that the heuristic is
//! within a factor `y` of the baseline on `x` percent of the instances.
//! "A point at (80, 2) means that the heuristic leads to schedules that
//! are within a factor 2 of optimal for 80% of the instances." Lower
//! curves are better.

use crate::summary::percentile;

/// A named performance profile (one curve of Figure 5/6).
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Curve label (heuristic name).
    pub name: String,
    /// Ratios sorted in non-decreasing order.
    sorted_ratios: Vec<f64>,
}

impl Profile {
    /// Builds a profile from raw (unsorted) ratios.
    ///
    /// # Panics
    /// Panics on empty or non-finite input.
    pub fn new(name: impl Into<String>, ratios: &[f64]) -> Profile {
        assert!(!ratios.is_empty(), "profile of zero instances");
        assert!(
            ratios.iter().all(|r| r.is_finite()),
            "ratios must be finite"
        );
        let mut sorted = ratios.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Profile {
            name: name.into(),
            sorted_ratios: sorted,
        }
    }

    /// Number of instances behind the curve.
    pub fn len(&self) -> usize {
        self.sorted_ratios.len()
    }

    /// True when the profile has no instances (cannot happen via `new`).
    pub fn is_empty(&self) -> bool {
        self.sorted_ratios.is_empty()
    }

    /// The ratio achieved at percentage `x` of the instances
    /// (the quantile function).
    pub fn ratio_at(&self, x_percent: f64) -> f64 {
        percentile(&self.sorted_ratios, x_percent)
    }

    /// Fraction of instances (in percent) with ratio at most `y`.
    pub fn coverage_at(&self, y: f64) -> f64 {
        let n = self.sorted_ratios.len();
        let covered = self.sorted_ratios.partition_point(|&r| r <= y);
        covered as f64 / n as f64 * 100.0
    }

    /// Samples the curve on an `points`-point uniform percentage grid,
    /// returning `(percentage, ratio)` pairs ready for plotting.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "a curve needs at least two points");
        (0..points)
            .map(|i| {
                let x = 100.0 * i as f64 / (points - 1) as f64;
                (x, self.ratio_at(x))
            })
            .collect()
    }

    /// Area under the curve on the percentage grid — a scalar quality
    /// score used to rank heuristics (smaller is better).
    pub fn auc(&self, points: usize) -> f64 {
        let c = self.curve(points);
        let mut area = 0.0;
        for w in c.windows(2) {
            area += (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0;
        }
        area / 100.0
    }
}

/// Computes ratios-to-baseline from parallel cost arrays.
///
/// # Panics
/// Panics when lengths differ or a baseline cost is zero while the
/// candidate cost is not (the ratio would be infinite). When both are
/// zero the ratio is defined as 1.
pub fn ratios(candidate: &[f64], baseline: &[f64]) -> Vec<f64> {
    assert_eq!(candidate.len(), baseline.len(), "cost arrays must align");
    candidate
        .iter()
        .zip(baseline)
        .map(|(&c, &b)| {
            if b == 0.0 {
                assert!(c.abs() < 1e-12, "candidate {c} on a zero-cost baseline");
                1.0
            } else {
                c / b
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_quantiles() {
        let p = Profile::new("h", &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.ratio_at(0.0), 1.0);
        assert_eq!(p.ratio_at(100.0), 4.0);
        assert!((p.ratio_at(50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn coverage_is_inverse_of_quantile() {
        let p = Profile::new("h", &[1.0, 1.0, 2.0, 8.0]);
        assert_eq!(p.coverage_at(1.0), 50.0);
        assert_eq!(p.coverage_at(2.0), 75.0);
        assert_eq!(p.coverage_at(10.0), 100.0);
        assert_eq!(p.coverage_at(0.5), 0.0);
    }

    #[test]
    fn curve_is_monotone() {
        let p = Profile::new("h", &[3.0, 1.0, 2.0, 1.5, 7.0]);
        let c = p.curve(11);
        assert_eq!(c.len(), 11);
        assert!(c.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
        assert_eq!(c[0].0, 0.0);
        assert_eq!(c[10].0, 100.0);
    }

    #[test]
    fn auc_ranks_better_profiles_lower() {
        let good = Profile::new("good", &[1.0; 10]);
        let bad = Profile::new("bad", &[2.0; 10]);
        assert!(good.auc(21) < bad.auc(21));
        assert!((good.auc(21) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_computation() {
        let r = ratios(&[2.0, 3.0, 0.0], &[1.0, 2.0, 0.0]);
        assert_eq!(r, vec![2.0, 1.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "zero-cost baseline")]
    fn infinite_ratio_panics() {
        ratios(&[1.0], &[0.0]);
    }
}
