//! CSV and Markdown table output.
//!
//! The experiment harness writes every figure's underlying data as CSV
//! (for external plotting) and as Markdown (for EXPERIMENTS.md). The
//! writers are deliberately dependency-free; CSV fields containing commas,
//! quotes or newlines are quoted per RFC 4180.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular table of strings with a header row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width does not match the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes as RFC-4180 CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        write_csv_row(&mut out, &self.headers);
        for row in &self.rows {
            write_csv_row(&mut out, row);
        }
        out
    }

    /// Serializes as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Writes the CSV form to a file, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_csv())
    }
}

fn write_csv_row(out: &mut String, fields: &[String]) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if f.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&f.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

/// Formats a float with enough precision for CSV round-trips.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.12}")
}

/// Formats a float compactly for human-facing Markdown.
pub fn fmt_short(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(["col1", "col2"]);
        t.push_row(["1", "2"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| col1 | col2 |\n|---|---|\n"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(["a"]);
        t.push_row(["1", "2"]);
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join(format!("paotr_stats_{}", std::process::id()));
        let path = dir.join("nested/table.csv");
        let mut t = Table::new(["x"]);
        t.push_row(["1"]);
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_short(1.23456789), "1.2346");
        assert_eq!(fmt_short(123.456), "123.5");
        assert!(fmt_f64(1.0).starts_with("1.0000"));
    }
}
