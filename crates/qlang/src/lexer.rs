//! Lexer for the query language.

use crate::error::{ParseError, Result};
use crate::token::{Token, TokenKind};

/// Tokenizes a query string.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '@' => {
                tokens.push(Token {
                    kind: TokenKind::At,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token {
                        kind: TokenKind::And,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new("expected `&&`", start));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token {
                        kind: TokenKind::Or,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new("expected `||`", start));
                }
            }
            '0'..='9' | '.' => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit()
                        || bytes[j] == b'.'
                        || bytes[j] == b'e'
                        || bytes[j] == b'E'
                        || ((bytes[j] == b'+' || bytes[j] == b'-')
                            && j > i
                            && (bytes[j - 1] == b'e' || bytes[j - 1] == b'E')))
                {
                    j += 1;
                }
                let text = &source[i..j];
                let value: f64 = text
                    .parse()
                    .map_err(|_| ParseError::new(format!("invalid number `{text}`"), start))?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &source[i..j];
                let kind = match word.to_ascii_uppercase().as_str() {
                    "AND" => TokenKind::And,
                    "OR" => TokenKind::Or,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    start,
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: source.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_figure_1_query() {
        let ks = kinds("AVG(A, 5) < 70 AND MAX(B,4) > 100");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("AVG".into()),
                TokenKind::LParen,
                TokenKind::Ident("A".into()),
                TokenKind::Comma,
                TokenKind::Number(5.0),
                TokenKind::RParen,
                TokenKind::Lt,
                TokenKind::Number(70.0),
                TokenKind::And,
                TokenKind::Ident("MAX".into()),
                TokenKind::LParen,
                TokenKind::Ident("B".into()),
                TokenKind::Comma,
                TokenKind::Number(4.0),
                TokenKind::RParen,
                TokenKind::Gt,
                TokenKind::Number(100.0),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_and_symbols() {
        assert_eq!(
            kinds("a <= 1 || b >= 2 && c @ 0.5"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Number(1.0),
                TokenKind::Or,
                TokenKind::Ident("b".into()),
                TokenKind::Ge,
                TokenKind::Number(2.0),
                TokenKind::And,
                TokenKind::Ident("c".into()),
                TokenKind::At,
                TokenKind::Number(0.5),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn scientific_notation_and_decimals() {
        assert_eq!(kinds("1.5e2")[0], TokenKind::Number(150.0));
        assert_eq!(kinds(".5")[0], TokenKind::Number(0.5));
        assert_eq!(kinds("2e-1")[0], TokenKind::Number(0.2));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("and or AND OR And"),
            vec![
                TokenKind::And,
                TokenKind::Or,
                TokenKind::And,
                TokenKind::Or,
                TokenKind::And,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn reports_bad_characters_with_offset() {
        let err = lex("A < 3 ; B").unwrap_err();
        assert_eq!(err.offset, 6);
        let err = lex("A & B").unwrap_err();
        assert!(err.message.contains("&&"));
    }

    #[test]
    fn rejects_malformed_numbers() {
        assert!(lex("1.2.3").is_err());
    }
}
