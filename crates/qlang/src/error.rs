//! Parse and compile errors with source positions.

use std::fmt;

/// An error at a byte offset of the query source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Creates an error.
    pub fn new(message: impl Into<String>, offset: usize) -> ParseError {
        ParseError {
            message: message.into(),
            offset,
        }
    }

    /// Renders a one-line caret diagnostic against the source text.
    pub fn render(&self, source: &str) -> String {
        let offset = self.offset.min(source.len());
        format!(
            "error: {}\n  | {}\n  | {}^",
            self.message,
            source,
            " ".repeat(source[..offset].chars().count())
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for the parser.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_offset() {
        let e = ParseError::new("unexpected `)`", 4);
        let r = e.render("A < )");
        assert!(r.contains("unexpected"));
        let caret_line = r.lines().last().unwrap();
        assert!(caret_line.ends_with('^'));
        // caret column: "  | " prefix (4 chars) + 4 offset chars
        assert_eq!(caret_line.chars().count(), 4 + 4 + 1);
    }

    #[test]
    fn display_includes_offset() {
        let e = ParseError::new("boom", 7);
        assert!(e.to_string().contains("byte 7"));
    }
}
