//! Abstract syntax tree of the query language.

use std::fmt;

/// Comparison operator in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Source form.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Window aggregate in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// `AVG(stream, n)`
    Avg,
    /// `MAX(stream, n)`
    Max,
    /// `MIN(stream, n)`
    Min,
    /// `SUM(stream, n)`
    Sum,
    /// `LAST(stream, n)` (or the bare `stream CMP x` form with n = 1)
    Last,
}

impl Agg {
    /// Parses an aggregate name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Agg> {
        match name.to_ascii_uppercase().as_str() {
            "AVG" => Some(Agg::Avg),
            "MAX" => Some(Agg::Max),
            "MIN" => Some(Agg::Min),
            "SUM" => Some(Agg::Sum),
            "LAST" => Some(Agg::Last),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Agg::Avg => "AVG",
            Agg::Max => "MAX",
            Agg::Min => "MIN",
            Agg::Sum => "SUM",
            Agg::Last => "LAST",
        }
    }
}

/// A leaf predicate of the surface syntax, e.g. `AVG(A, 5) < 70 @ 0.6`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateAst {
    /// Aggregate operator.
    pub agg: Agg,
    /// Stream name.
    pub stream: String,
    /// Window length in items.
    pub window: u32,
    /// Comparison operator.
    pub cmp: CmpOp,
    /// Threshold literal.
    pub threshold: f64,
    /// Optional `@ p` success-probability annotation.
    pub prob: Option<f64>,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A leaf predicate.
    Pred(PredicateAst),
    /// Conjunction of two or more expressions.
    And(Vec<Expr>),
    /// Disjunction of two or more expressions.
    Or(Vec<Expr>),
}

impl Expr {
    /// Number of predicates in the expression.
    pub fn num_predicates(&self) -> usize {
        match self {
            Expr::Pred(_) => 1,
            Expr::And(cs) | Expr::Or(cs) => cs.iter().map(Expr::num_predicates).sum(),
        }
    }
}

impl fmt::Display for PredicateAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.agg == Agg::Last && self.window == 1 {
            write!(
                f,
                "{} {} {}",
                self.stream,
                self.cmp.symbol(),
                self.threshold
            )?;
        } else {
            write!(
                f,
                "{}({}, {}) {} {}",
                self.agg.name(),
                self.stream,
                self.window,
                self.cmp.symbol(),
                self.threshold
            )?;
        }
        if let Some(p) = self.prob {
            write!(f, " @ {p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    /// Re-emits parseable source (fully parenthesized operator nodes).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Pred(p) => write!(f, "{p}"),
            Expr::And(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| format!("{c}")).collect();
                write!(f, "({})", parts.join(" AND "))
            }
            Expr::Or(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| format!("{c}")).collect();
                write!(f, "({})", parts.join(" OR "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_names_roundtrip() {
        for a in [Agg::Avg, Agg::Max, Agg::Min, Agg::Sum, Agg::Last] {
            assert_eq!(Agg::from_name(a.name()), Some(a));
        }
        assert_eq!(Agg::from_name("avg"), Some(Agg::Avg));
        assert_eq!(Agg::from_name("median"), None);
    }

    #[test]
    fn display_forms() {
        let p = PredicateAst {
            agg: Agg::Avg,
            stream: "A".into(),
            window: 5,
            cmp: CmpOp::Lt,
            threshold: 70.0,
            prob: Some(0.25),
        };
        assert_eq!(p.to_string(), "AVG(A, 5) < 70 @ 0.25");
        let bare = PredicateAst {
            agg: Agg::Last,
            stream: "C".into(),
            window: 1,
            cmp: CmpOp::Lt,
            threshold: 3.0,
            prob: None,
        };
        assert_eq!(bare.to_string(), "C < 3");
    }

    #[test]
    fn predicate_counting() {
        let p = PredicateAst {
            agg: Agg::Last,
            stream: "A".into(),
            window: 1,
            cmp: CmpOp::Lt,
            threshold: 1.0,
            prob: None,
        };
        let e = Expr::Or(vec![
            Expr::And(vec![Expr::Pred(p.clone()), Expr::Pred(p.clone())]),
            Expr::Pred(p),
        ]);
        assert_eq!(e.num_predicates(), 3);
    }
}
