//! Recursive-descent parser.
//!
//! Grammar (OR binds loosest, AND tighter, both left-associative and
//! n-ary-flattened):
//!
//! ```text
//! expr      := and_expr (OR and_expr)*
//! and_expr  := atom (AND atom)*
//! atom      := predicate | '(' expr ')'
//! predicate := AGG '(' IDENT ',' NUMBER ')' cmp NUMBER annot?
//!            | IDENT cmp NUMBER annot?
//! annot     := '@' NUMBER          -- success-probability hint
//! cmp       := '<' | '<=' | '>' | '>='
//! ```

use crate::ast::{Agg, CmpOp, Expr, PredicateAst};
use crate::error::{ParseError, Result};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a complete query expression.
pub fn parse(source: &str) -> Result<Expr> {
    parse_spanned(source).map(|(expr, _)| expr)
}

/// Like [`parse`], but also returns the byte offset of every predicate
/// in depth-first (source) order — index `i` of the returned vector is
/// the offset of the `i`-th [`PredicateAst`](crate::ast::PredicateAst)
/// an in-order walk of the expression visits. Lint tooling uses these
/// to point caret diagnostics at the exact predicate, the same way
/// [`ParseError::render`] does for syntax errors.
pub fn parse_spanned(source: &str) -> Result<(Expr, Vec<usize>)> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        offsets: Vec::new(),
    };
    let expr = p.expr()?;
    p.expect_eof()?;
    Ok((expr, p.offsets))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Byte offset of each predicate's first token, in parse order.
    offsets: Vec<usize>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                format!("expected {what}, found {}", self.peek().kind),
                self.peek().offset,
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("unexpected trailing {}", self.peek().kind),
                self.peek().offset,
            ))
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let first = self.and_expr()?;
        let mut parts = vec![first];
        while self.peek().kind == TokenKind::Or {
            self.bump();
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Expr::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let first = self.atom()?;
        let mut parts = vec![first];
        while self.peek().kind == TokenKind::And {
            self.bump();
            parts.push(self.atom()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Expr::And(parts)
        })
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.peek().kind.clone() {
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                let ident = self.bump();
                self.offsets.push(ident.offset);
                if self.peek().kind == TokenKind::LParen {
                    self.aggregate_predicate(&name, ident.offset)
                } else {
                    self.bare_predicate(name)
                }
            }
            other => Err(ParseError::new(
                format!("expected a predicate or `(`, found {other}"),
                self.peek().offset,
            )),
        }
    }

    /// `AGG(stream, n) cmp threshold [@ p]` — the identifier (already
    /// consumed) must name an aggregate.
    fn aggregate_predicate(&mut self, name: &str, name_offset: usize) -> Result<Expr> {
        let agg = Agg::from_name(name).ok_or_else(|| {
            ParseError::new(
                format!("unknown aggregate `{name}` (expected AVG, MAX, MIN, SUM or LAST)"),
                name_offset,
            )
        })?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let stream = match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                s
            }
            other => {
                return Err(ParseError::new(
                    format!("expected a stream name, found {other}"),
                    self.peek().offset,
                ))
            }
        };
        self.expect(&TokenKind::Comma, "`,`")?;
        let window = self.window()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        let cmp = self.cmp()?;
        let threshold = self.number("a threshold")?;
        let prob = self.annotation()?;
        Ok(Expr::Pred(PredicateAst {
            agg,
            stream,
            window,
            cmp,
            threshold,
            prob,
        }))
    }

    /// `stream cmp threshold [@ p]` — sugar for `LAST(stream, 1)`.
    fn bare_predicate(&mut self, stream: String) -> Result<Expr> {
        let cmp = self.cmp()?;
        let threshold = self.number("a threshold")?;
        let prob = self.annotation()?;
        Ok(Expr::Pred(PredicateAst {
            agg: Agg::Last,
            stream,
            window: 1,
            cmp,
            threshold,
            prob,
        }))
    }

    fn window(&mut self) -> Result<u32> {
        let offset = self.peek().offset;
        let n = self.number("a window length")?;
        if n.fract() != 0.0 || n < 1.0 || n > u32::MAX as f64 {
            return Err(ParseError::new(
                format!("window length must be a positive integer, got {n}"),
                offset,
            ));
        }
        Ok(n as u32)
    }

    fn cmp(&mut self) -> Result<CmpOp> {
        let t = self.bump();
        match t.kind {
            TokenKind::Lt => Ok(CmpOp::Lt),
            TokenKind::Le => Ok(CmpOp::Le),
            TokenKind::Gt => Ok(CmpOp::Gt),
            TokenKind::Ge => Ok(CmpOp::Ge),
            other => Err(ParseError::new(
                format!("expected a comparison operator, found {other}"),
                t.offset,
            )),
        }
    }

    fn number(&mut self, what: &str) -> Result<f64> {
        let negative = if self.peek().kind == TokenKind::Minus {
            self.bump();
            true
        } else {
            false
        };
        let t = self.bump();
        match t.kind {
            TokenKind::Number(n) => Ok(if negative { -n } else { n }),
            other => Err(ParseError::new(
                format!("expected {what}, found {other}"),
                t.offset,
            )),
        }
    }

    /// Optional `@ p` with `p` in [0, 1].
    fn annotation(&mut self) -> Result<Option<f64>> {
        if self.peek().kind != TokenKind::At {
            return Ok(None);
        }
        self.bump();
        let offset = self.peek().offset;
        let p = self.number("a probability")?;
        if !(0.0..=1.0).contains(&p) {
            return Err(ParseError::new(
                format!("probability annotation must be in [0, 1], got {p}"),
                offset,
            ));
        }
        Ok(Some(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_1a() {
        // (AVG(A,5) < 70 AND MAX(B,4) > 100) OR C < 3
        let e = parse("(AVG(A,5) < 70 AND MAX(B, 4) > 100) OR C < 3").unwrap();
        match &e {
            Expr::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Expr::And(_)));
                match &parts[1] {
                    Expr::Pred(p) => {
                        assert_eq!(p.stream, "C");
                        assert_eq!(p.agg, Agg::Last);
                        assert_eq!(p.window, 1);
                    }
                    other => panic!("expected bare predicate, got {other:?}"),
                }
            }
            other => panic!("expected OR, got {other:?}"),
        }
        assert_eq!(e.num_predicates(), 3);
    }

    #[test]
    fn parses_figure_1b() {
        let e = parse("(MAX(B,4) > 100 AND C < 3) OR (AVG(A,5) < 70 AND MAX(A, 10) > 80)").unwrap();
        assert_eq!(e.num_predicates(), 4);
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let e = parse("a < 1 OR b < 2 AND c < 3").unwrap();
        match e {
            Expr::Or(parts) => {
                assert!(matches!(parts[0], Expr::Pred(_)));
                assert!(matches!(parts[1], Expr::And(_)));
            }
            other => panic!("expected OR at root, got {other:?}"),
        }
    }

    #[test]
    fn nary_chains_flatten() {
        let e = parse("a < 1 AND b < 2 AND c < 3").unwrap();
        match e {
            Expr::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn probability_annotations() {
        let e = parse("AVG(hr, 5) > 100 @ 0.15").unwrap();
        match e {
            Expr::Pred(p) => assert_eq!(p.prob, Some(0.15)),
            other => panic!("{other:?}"),
        }
        assert!(parse("a < 1 @ 1.5").is_err());
    }

    #[test]
    fn error_positions_are_meaningful() {
        let err = parse("AVG(A,5) <").unwrap_err();
        assert!(err.message.contains("threshold"));
        let err = parse("MEDIAN(A,5) < 3").unwrap_err();
        assert!(err.message.contains("unknown aggregate"));
        let err = parse("(a < 1").unwrap_err();
        assert!(err.message.contains("`)`"));
        let err = parse("a < 1 b < 2").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn negative_thresholds() {
        let e = parse("A < -3.5").unwrap();
        match e {
            Expr::Pred(p) => assert_eq!(p.threshold, -3.5),
            other => panic!("{other:?}"),
        }
        assert!(parse("AVG(A, -2) < 1").is_err()); // negative window rejected
    }

    #[test]
    fn window_validation() {
        assert!(parse("AVG(A, 0) < 1").is_err());
        assert!(parse("AVG(A, 2.5) < 1").is_err());
        assert!(parse("AVG(A, 3) < 1").is_ok());
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let src = "(AVG(A, 5) < 70 AND MAX(B, 4) > 100) OR C < 3";
        let e = parse(src).unwrap();
        let e2 = parse(&e.to_string()).unwrap();
        assert_eq!(e, e2);
    }
}
