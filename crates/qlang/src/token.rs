//! Tokens of the query language.

use std::fmt;

/// A lexical token with its byte offset in the source (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier: a stream or aggregate name (`A`, `heart_rate`, `AVG`).
    Ident(String),
    /// Numeric literal (integers and decimals lex identically).
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `AND` / `and` / `&&`
    And,
    /// `OR` / `or` / `||`
    Or,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `@` — probability annotation marker.
    At,
    /// `-` — unary minus in thresholds.
    Minus,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::And => write!(f, "`AND`"),
            TokenKind::Or => write!(f, "`OR`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::At => write!(f, "`@`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
