//! Compilation of parsed queries to scheduling trees and simulator
//! queries.
//!
//! The compiler:
//!
//! * discovers streams in order of first appearance and assigns
//!   [`StreamId`]s (per-item costs can be supplied per stream name;
//!   default 1.0);
//! * turns each predicate into a [`paotr_core::leaf::Leaf`] whose `d` is
//!   the predicate's window and whose `p` is the `@` annotation (default
//!   0.5 — replace with trace-calibrated values later);
//! * produces a general [`QueryTree`] for any expression, and a
//!   [`stream_sim::SimQuery`] when the expression is in DNF shape.

use crate::ast::{Agg, CmpOp, Expr, PredicateAst};
use crate::error::{ParseError, Result};
use paotr_core::prelude::*;
use std::collections::HashMap;

/// Compilation output.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The scheduling tree (general AND-OR shape).
    pub tree: QueryTree,
    /// Streams discovered, with costs.
    pub catalog: StreamCatalog,
}

/// Compiles an expression with per-stream costs (by name; absent names
/// cost 1.0).
pub fn compile(expr: &Expr, costs: &HashMap<String, f64>) -> Result<Compiled> {
    let mut ctx = Ctx {
        catalog: StreamCatalog::new(),
        costs,
    };
    let root = ctx.node(expr)?;
    let tree = QueryTree::new(root)
        .map_err(|e| ParseError::new(format!("invalid query shape: {e}"), 0))?;
    Ok(Compiled {
        tree,
        catalog: ctx.catalog,
    })
}

/// Parses and compiles in one step with default costs.
pub fn compile_str(source: &str) -> Result<Compiled> {
    let expr = crate::parser::parse(source)?;
    compile(&expr, &HashMap::new())
}

struct Ctx<'a> {
    catalog: StreamCatalog,
    costs: &'a HashMap<String, f64>,
}

impl Ctx<'_> {
    fn stream_id(&mut self, name: &str) -> Result<StreamId> {
        if let Some(id) = self.catalog.find(name) {
            return Ok(id);
        }
        let cost = self.costs.get(name).copied().unwrap_or(1.0);
        self.catalog
            .add_named(name, cost)
            .map_err(|e| ParseError::new(format!("bad cost for stream `{name}`: {e}"), 0))
    }

    fn leaf(&mut self, p: &PredicateAst) -> Result<Leaf> {
        let stream = self.stream_id(&p.stream)?;
        let prob =
            Prob::new(p.prob.unwrap_or(0.5)).map_err(|e| ParseError::new(e.to_string(), 0))?;
        Leaf::new(stream, p.window, prob).map_err(|e| ParseError::new(e.to_string(), 0))
    }

    fn node(&mut self, e: &Expr) -> Result<Node> {
        Ok(match e {
            Expr::Pred(p) => Node::Leaf(self.leaf(p)?),
            Expr::And(cs) => Node::And(
                cs.iter()
                    .map(|c| self.node(c))
                    .collect::<Result<Vec<_>>>()?,
            ),
            Expr::Or(cs) => Node::Or(
                cs.iter()
                    .map(|c| self.node(c))
                    .collect::<Result<Vec<_>>>()?,
            ),
        })
    }
}

/// Converts a compiled DNF-shaped expression into a simulator query.
/// Returns `None` when the expression is not in DNF shape (after
/// normalization).
pub fn to_sim_query(expr: &Expr, compiled: &Compiled) -> Option<stream_sim::SimQuery> {
    // Reuse the tree's DNF view to validate shape, then rebuild with
    // concrete predicates by walking the expression in the same order.
    compiled.tree.as_dnf()?;
    let terms = match expr {
        Expr::Or(parts) => parts.iter().map(dnf_term).collect::<Option<Vec<_>>>()?,
        other => vec![dnf_term(other)?],
    };
    let sim_terms: Vec<Vec<stream_sim::SimLeaf>> = terms
        .into_iter()
        .map(|preds| {
            preds
                .into_iter()
                .map(|p| {
                    Some(stream_sim::SimLeaf {
                        stream: compiled.catalog.find(&p.stream)?,
                        predicate: to_predicate(p),
                    })
                })
                .collect::<Option<Vec<_>>>()
        })
        .collect::<Option<Vec<_>>>()?;
    stream_sim::SimQuery::new(sim_terms).ok()
}

fn dnf_term(e: &Expr) -> Option<Vec<&PredicateAst>> {
    match e {
        Expr::Pred(p) => Some(vec![p]),
        Expr::And(cs) => cs
            .iter()
            .map(|c| match c {
                Expr::Pred(p) => Some(p),
                _ => None,
            })
            .collect(),
        Expr::Or(_) => None,
    }
}

fn to_predicate(p: &PredicateAst) -> stream_sim::Predicate {
    use stream_sim::{Comparator, WindowOp};
    let op = match p.agg {
        Agg::Avg => WindowOp::Avg,
        Agg::Max => WindowOp::Max,
        Agg::Min => WindowOp::Min,
        Agg::Sum => WindowOp::Sum,
        Agg::Last => WindowOp::Last,
    };
    let cmp = match p.cmp {
        CmpOp::Lt => Comparator::Lt,
        CmpOp::Le => Comparator::Le,
        CmpOp::Gt => Comparator::Gt,
        CmpOp::Ge => Comparator::Ge,
    };
    stream_sim::Predicate::new(op, p.window, cmp, p.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compiles_figure_1a_to_tree_and_catalog() {
        let c = compile_str("(AVG(A,5) < 70 AND MAX(B,4) > 100) OR C < 3").unwrap();
        assert_eq!(c.catalog.len(), 3);
        assert_eq!(c.tree.num_leaves(), 3);
        assert!(c.tree.is_read_once());
        let dnf = c.tree.as_dnf().unwrap();
        assert_eq!(dnf.num_terms(), 2);
        // windows become item counts
        assert_eq!(dnf.term(0).leaves()[0].items, 5);
        assert_eq!(dnf.term(1).leaves()[0].items, 1);
    }

    #[test]
    fn compiles_figure_1b_shared_query() {
        let c = compile_str("(MAX(B,4) > 100 AND C < 3) OR (AVG(A,5) < 70 AND MAX(A,10) > 80)")
            .unwrap();
        assert!(!c.tree.is_read_once());
        assert_eq!(c.catalog.len(), 3);
        let a = c.catalog.find("A").unwrap();
        let dnf = c.tree.as_dnf().unwrap();
        let a_leaves: Vec<u32> = dnf
            .leaves()
            .filter(|(_, l)| l.stream == a)
            .map(|(_, l)| l.items)
            .collect();
        assert_eq!(a_leaves, vec![5, 10]);
    }

    #[test]
    fn probability_annotations_flow_into_leaves() {
        let c = compile_str("A < 1 @ 0.75 AND B < 2").unwrap();
        let dnf = c.tree.as_dnf().unwrap();
        assert_eq!(dnf.term(0).leaves()[0].prob.value(), 0.75);
        assert_eq!(dnf.term(0).leaves()[1].prob.value(), 0.5);
    }

    #[test]
    fn custom_costs_apply_by_name() {
        let expr = parse("hr > 100 AND spo2 < 0.9").unwrap();
        let mut costs = HashMap::new();
        costs.insert("spo2".to_string(), 8.0);
        let c = compile(&expr, &costs).unwrap();
        assert_eq!(c.catalog.cost(c.catalog.find("hr").unwrap()), 1.0);
        assert_eq!(c.catalog.cost(c.catalog.find("spo2").unwrap()), 8.0);
    }

    #[test]
    fn sim_query_conversion_for_dnf_shapes() {
        let src = "(AVG(A,5) < 70 AND MAX(B,4) > 100) OR C < 3";
        let expr = parse(src).unwrap();
        let c = compile(&expr, &HashMap::new()).unwrap();
        let q = to_sim_query(&expr, &c).unwrap();
        assert_eq!(q.num_leaves(), 3);
        assert_eq!(q.terms()[0][0].predicate.window, 5);
    }

    #[test]
    fn sim_query_conversion_rejects_deep_nesting() {
        let src = "(a < 1 OR b < 2) AND c < 3";
        let expr = parse(src).unwrap();
        let c = compile(&expr, &HashMap::new()).unwrap();
        assert!(to_sim_query(&expr, &c).is_none());
    }

    #[test]
    fn repeated_stream_names_reuse_ids() {
        let c = compile_str("A < 1 AND AVG(A, 3) > 2").unwrap();
        assert_eq!(c.catalog.len(), 1);
    }
}
