//! # paotr-qlang — a textual query language for PAOTR trees
//!
//! Queries are written the way the paper's Figure 1 draws them:
//!
//! ```text
//! (AVG(A, 5) < 70 AND MAX(B, 4) > 100) OR C < 3
//! ```
//!
//! * aggregates `AVG`, `MAX`, `MIN`, `SUM`, `LAST` over the last `n`
//!   items of a stream; `stream < x` is sugar for `LAST(stream, 1) < x`;
//! * `AND` / `&&` binds tighter than `OR` / `||`; parentheses group;
//! * an optional `@ p` annotation attaches a success probability to a
//!   predicate (default 0.5; in a deployment these come from trace
//!   calibration — see `stream_sim::trace`).
//!
//! The [`compile`] module lowers parsed queries to `paotr_core` trees
//! (with stream catalogs) and to `stream_sim` executable queries.
//!
//! ```
//! let compiled = paotr_qlang::compile_str(
//!     "(AVG(A,5) < 70 AND MAX(B,4) > 100) OR C < 3",
//! ).unwrap();
//! assert_eq!(compiled.tree.num_leaves(), 3);
//! assert_eq!(compiled.catalog.len(), 3);
//! ```
#![forbid(unsafe_code)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{Agg, CmpOp, Expr, PredicateAst};
pub use compile::{compile, compile_str, to_sim_query, Compiled};
pub use error::ParseError;
pub use parser::{parse, parse_spanned};
