//! # paotr-faults — deterministic fault injection for serving runs
//!
//! The paper's queries run on energy-constrained devices over physical
//! sensor streams — an environment where streams drop out and reads
//! fail. This crate is the seeded chaos layer that lets every execution
//! path (`serve`, the daemon, the soaks) replay under an *identical*
//! fault schedule:
//!
//! * [`FaultSpec`] — the few knobs of a fault regime (transient-failure
//!   rate, share of outage-prone streams, outage shape, retry budget,
//!   stale-serve switch) plus a seed;
//! * [`FaultPlan`] — the pure-function schedule derived from a spec:
//!   `is_out(stream, now)` and `read_fails(stream, now, attempt)` are
//!   deterministic hashes, so the plan needs no state, no horizon and
//!   no stream count — a restored daemon replays the exact same faults
//!   tick-for-tick;
//! * [`FaultySource`] — a decorator implementing
//!   [`StreamSource`](stream_sim::StreamSource) that gates sensor
//!   contacts (`try_recent`) through a plan while leaving device-local
//!   reads (`recent`) untouched.
//!
//! The scheduler's three-valued evaluation and retry pricing live in
//! `stream_sim::runtime`; this crate only decides *when* things fail.
#![forbid(unsafe_code)]

use paotr_gen::seeds::{instance_seed, mix, Experiment};
use stream_sim::{ReadAttempt, StreamSource};

pub use paotr_core::stream::StreamId;

const SALT_SELECT: u64 = 0xfa17_5e1e_c700_0001;
const SALT_SHAPE: u64 = 0xfa17_5a9e_0000_0002;
const SALT_TRANSIENT: u64 = 0xfa17_7a27_0000_0003;

/// Converts a hash to a uniform f64 in `[0, 1)` (same construction as
/// the workspace's rand shim: top 53 bits).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The knobs of one fault regime. `Copy` and tiny on purpose: specs
/// ride inside serve/daemon configs and snapshots, and a spec plus the
/// streams' clocks fully determines every fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed for all fault decisions (domain-separated from data seeds).
    pub seed: u64,
    /// Probability that one sensor contact fails transiently.
    pub transient_rate: f64,
    /// Share of streams that are outage-prone (selected by hash).
    pub outage_streams: f64,
    /// Mean length of an outage, in ticks.
    pub outage_len: u64,
    /// Mean up-time between outages of one stream, in ticks.
    pub outage_gap: u64,
    /// Sensor contacts allowed per leaf read (1 = no retries).
    pub max_attempts: u32,
    /// Serve unreadable leaves from stale arrangement rings (degraded
    /// verdicts) instead of reporting them unknown.
    pub stale_serve: bool,
}

impl FaultSpec {
    /// The no-fault spec: every rate zero, one attempt, no stale
    /// serving. Running under this spec is bit-for-bit the fault-free
    /// path.
    pub fn none() -> FaultSpec {
        FaultSpec {
            seed: 0,
            transient_rate: 0.0,
            outage_streams: 0.0,
            outage_len: 0,
            outage_gap: 0,
            max_attempts: 1,
            stale_serve: false,
        }
    }

    /// True iff this spec can never produce a fault.
    pub fn is_none(&self) -> bool {
        self.transient_rate <= 0.0 && (self.outage_streams <= 0.0 || self.outage_len == 0)
    }
}

impl Default for FaultSpec {
    /// The canonical chaos regime used by the soaks: 5% transient
    /// failures, 10% of streams cycling through ~12-tick outages every
    /// ~30 ticks, 3 attempts per read, stale serving on.
    fn default() -> FaultSpec {
        FaultSpec {
            seed: 0,
            transient_rate: 0.05,
            outage_streams: 0.10,
            outage_len: 12,
            outage_gap: 30,
            max_attempts: 3,
            stale_serve: true,
        }
    }
}

/// The canonical addressable fault spec for `(config, instance)`:
/// [`FaultSpec::default`] rates under a seed derived through
/// [`Experiment::Faults`], so sweeps regenerate identical chaos.
pub fn fault_spec(config: usize, instance: usize) -> FaultSpec {
    FaultSpec {
        seed: instance_seed(Experiment::Faults, config, instance),
        ..FaultSpec::default()
    }
}

/// A seeded fault schedule: a pure function from `(stream, now)` to
/// outage state and from `(stream, now, attempt)` to transient-failure
/// decisions. Streams picked as outage-prone cycle through
/// up-for-`gap`/down-for-`len` phases whose exact lengths and offsets
/// are per-stream hashes, so outages are staggered rather than global.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
    forced_out: Vec<usize>,
}

impl FaultPlan {
    /// The schedule of `spec`.
    pub fn new(spec: FaultSpec) -> FaultPlan {
        FaultPlan {
            spec,
            forced_out: Vec::new(),
        }
    }

    /// The empty schedule: nothing ever fails.
    pub fn none() -> FaultPlan {
        FaultPlan::new(FaultSpec::none())
    }

    /// A schedule that additionally holds `streams` in permanent
    /// outage — the deterministic "kill exactly these" knob tests use.
    pub fn with_forced_outages(spec: FaultSpec, streams: Vec<usize>) -> FaultPlan {
        FaultPlan {
            spec,
            forced_out: streams,
        }
    }

    /// The spec this plan was derived from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The (up, down, phase) cycle of stream `k`, or `None` if the
    /// stream is not outage-prone under this plan.
    fn cycle(&self, k: usize) -> Option<(u64, u64, u64)> {
        let s = &self.spec;
        if s.outage_streams <= 0.0 || s.outage_len == 0 || s.outage_gap == 0 {
            return None;
        }
        let select = mix(s.seed ^ mix(SALT_SELECT ^ k as u64));
        if unit(select) >= s.outage_streams {
            return None;
        }
        // Jitter the cycle per stream: up in [gap/2, 3*gap/2], down in
        // [len/2, 3*len/2], plus a random phase so outages stagger.
        let h1 = mix(s.seed ^ mix(SALT_SHAPE ^ k as u64));
        let h2 = mix(h1);
        let h3 = mix(h2);
        let up = (s.outage_gap / 2 + h1 % (s.outage_gap + 1)).max(1);
        let down = (s.outage_len / 2 + h2 % (s.outage_len + 1)).max(1);
        let phase = h3 % (up + down);
        Some((up, down, phase))
    }

    /// Whether stream `k` is in hard outage at stream time `now`.
    pub fn is_out(&self, k: StreamId, now: u64) -> bool {
        if self.forced_out.contains(&k.0) {
            return true;
        }
        match self.cycle(k.0) {
            Some((up, down, phase)) => (now.wrapping_add(phase)) % (up + down) < down,
            None => false,
        }
    }

    /// Whether the `attempt`-th sensor contact with stream `k` at
    /// stream time `now` fails transiently.
    pub fn read_fails(&self, k: StreamId, now: u64, attempt: u32) -> bool {
        if self.spec.transient_rate <= 0.0 {
            return false;
        }
        let h = mix(mix(self.spec.seed ^ SALT_TRANSIENT)
            ^ mix((k.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ mix(now.wrapping_mul(0x2545_f491_4f6c_dd1d))
            ^ mix(u64::from(attempt).wrapping_mul(0x517c_c1b7_2722_0a95)));
        unit(h) < self.spec.transient_rate
    }

    /// The outage signature over `n` streams at stream time `now`
    /// (`true` = out). The serving loop diffs consecutive signatures to
    /// trigger outage re-planning.
    pub fn outage_signature(&self, n: usize, now: u64) -> Vec<bool> {
        (0..n).map(|k| self.is_out(StreamId(k), now)).collect()
    }
}

/// [`StreamSource`] decorator that replays a [`FaultPlan`] over an
/// inner source. Device-local reads (`now`, `recent`) pass through
/// untouched — faults only gate *sensor contacts* (`try_recent`) and
/// the outage flag, exactly the surface the scheduler's retry and
/// Kleene paths consume.
#[derive(Debug)]
pub struct FaultySource<'a, S> {
    inner: &'a S,
    plan: &'a FaultPlan,
    stream: StreamId,
}

impl<'a, S: StreamSource> FaultySource<'a, S> {
    /// Wraps one stream.
    pub fn new(inner: &'a S, plan: &'a FaultPlan, stream: StreamId) -> FaultySource<'a, S> {
        FaultySource {
            inner,
            plan,
            stream,
        }
    }

    /// Wraps a whole catalog's streams (index = stream id) under one
    /// plan. Callers wrap unconditionally — under [`FaultPlan::none`]
    /// the decorator is a pass-through — so faulty and fault-free runs
    /// share one code path.
    pub fn wrap(streams: &'a [S], plan: &'a FaultPlan) -> Vec<FaultySource<'a, S>> {
        streams
            .iter()
            .enumerate()
            .map(|(k, s)| FaultySource::new(s, plan, StreamId(k)))
            .collect()
    }
}

impl<S: StreamSource> StreamSource for FaultySource<'_, S> {
    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn recent(&self, n: usize) -> Option<Vec<f64>> {
        self.inner.recent(n)
    }

    fn is_out(&self) -> bool {
        self.plan.is_out(self.stream, self.inner.now())
    }

    fn try_recent(&self, n: usize, attempt: u32) -> ReadAttempt {
        let now = self.inner.now();
        if self.plan.is_out(self.stream, now) {
            return ReadAttempt::Outage;
        }
        if self.plan.read_fails(self.stream, now, attempt) {
            return ReadAttempt::Transient;
        }
        match self.inner.recent(n) {
            Some(data) => ReadAttempt::Data(data),
            None => ReadAttempt::Cold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use stream_sim::gaussian_streams;

    #[test]
    fn none_plan_never_fails() {
        let plan = FaultPlan::none();
        for k in 0..32 {
            for now in 0..200 {
                assert!(!plan.is_out(StreamId(k), now));
                assert!(!plan.read_fails(StreamId(k), now, 0));
            }
        }
        assert!(FaultSpec::none().is_none());
        assert!(!FaultSpec::default().is_none());
    }

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(FaultSpec {
            seed: 7,
            ..FaultSpec::default()
        });
        let b = FaultPlan::new(FaultSpec {
            seed: 7,
            ..FaultSpec::default()
        });
        let c = FaultPlan::new(FaultSpec {
            seed: 8,
            ..FaultSpec::default()
        });
        let sig_a: Vec<Vec<bool>> = (0..100).map(|t| a.outage_signature(64, t)).collect();
        let sig_b: Vec<Vec<bool>> = (0..100).map(|t| b.outage_signature(64, t)).collect();
        let sig_c: Vec<Vec<bool>> = (0..100).map(|t| c.outage_signature(64, t)).collect();
        assert_eq!(sig_a, sig_b, "same seed, same schedule");
        assert_ne!(sig_a, sig_c, "different seed, different schedule");
    }

    #[test]
    fn outage_share_roughly_matches_spec() {
        let plan = FaultPlan::new(FaultSpec {
            seed: 3,
            outage_streams: 0.10,
            ..FaultSpec::default()
        });
        let prone = (0..1000)
            .filter(|&k| (0..60).any(|t| plan.is_out(StreamId(k), t)))
            .count();
        assert!(
            (60..160).contains(&prone),
            "~10% of 1000 streams should be outage-prone, got {prone}"
        );
    }

    #[test]
    fn outages_cycle_up_and_down() {
        let plan = FaultPlan::new(FaultSpec {
            seed: 1,
            outage_streams: 1.0,
            ..FaultSpec::default()
        });
        let k = StreamId(0);
        let out: Vec<bool> = (0..200).map(|t| plan.is_out(k, t)).collect();
        assert!(out.iter().any(|&b| b), "a prone stream goes down");
        assert!(out.iter().any(|&b| !b), "and comes back up");
    }

    #[test]
    fn transient_rate_is_roughly_honoured() {
        let plan = FaultPlan::new(FaultSpec {
            seed: 5,
            transient_rate: 0.05,
            ..FaultSpec::default()
        });
        let fails = (0..10_000)
            .filter(|&i| plan.read_fails(StreamId(i % 16), i as u64 / 16, 0))
            .count();
        assert!(
            (300..800).contains(&fails),
            "~5% of 10k contacts should fail, got {fails}"
        );
    }

    #[test]
    fn forced_outages_are_permanent() {
        let plan = FaultPlan::with_forced_outages(FaultSpec::none(), vec![2]);
        for now in 0..100 {
            assert!(plan.is_out(StreamId(2), now));
            assert!(!plan.is_out(StreamId(1), now));
        }
    }

    #[test]
    fn faulty_source_gates_contacts_not_local_reads() {
        let mut rng = StdRng::seed_from_u64(11);
        let streams = gaussian_streams(&[8], &mut rng);
        let plan = FaultPlan::with_forced_outages(FaultSpec::none(), vec![0]);
        let wrapped = FaultySource::wrap(&streams, &plan);
        assert_eq!(StreamSource::now(&wrapped[0]), streams[0].now());
        assert_eq!(wrapped[0].recent(8), streams[0].recent(8));
        assert!(wrapped[0].is_out());
        assert_eq!(wrapped[0].try_recent(8, 0), ReadAttempt::Outage);

        let live = FaultPlan::none();
        let wrapped = FaultySource::wrap(&streams, &live);
        assert!(!wrapped[0].is_out());
        assert_eq!(
            wrapped[0].try_recent(8, 0),
            ReadAttempt::Data(streams[0].recent(8).unwrap())
        );
    }

    #[test]
    fn addressable_specs_differ_by_instance() {
        assert_eq!(fault_spec(0, 1), fault_spec(0, 1));
        assert_ne!(fault_spec(0, 1).seed, fault_spec(0, 2).seed);
        assert_ne!(fault_spec(1, 0).seed, fault_spec(0, 0).seed);
    }
}
