//! Property tests for three-valued (Kleene) evaluation under injected
//! stream outages.
//!
//! The oracle is the textbook characterisation of Kleene logic on a
//! monotone DNF: a query with unknown leaves is determined iff the
//! all-false and all-true completions of those leaves agree — in which
//! case the verdict must equal the fault-free truth value bit-for-bit.

use paotr_core::schedule::DnfSchedule;
use paotr_core::stream::{StreamCatalog, StreamId};
use paotr_faults::{FaultPlan, FaultSpec, FaultySource};
use proptest::prelude::*;
use rand::prelude::*;
use stream_sim::{
    gaussian_streams, Comparator, EnergyMeter, EnergyModel, MemoryPolicy, Predicate, Scheduler,
    SimLeaf, SimQuery, Verdict, WindowOp,
};

const N_STREAMS: usize = 5;
const MAX_WINDOW: u32 = 6;

fn build_query(terms: &[Vec<(usize, u32, f64)>]) -> SimQuery {
    let leaves = terms
        .iter()
        .map(|t| {
            t.iter()
                .map(|&(s, w, thr)| SimLeaf {
                    stream: StreamId(s),
                    predicate: Predicate::new(WindowOp::Avg, w, Comparator::Lt, thr),
                })
                .collect()
        })
        .collect();
    SimQuery::new(leaves).expect("generated terms are non-empty")
}

fn meter() -> EnergyMeter {
    let cat = StreamCatalog::from_costs(vec![1.0; N_STREAMS]).unwrap();
    EnergyMeter::new(EnergyModel::from_catalog(&cat))
}

/// DNF truth with dead-stream leaves substituted by `sub` and live
/// leaves evaluated on the real stream data.
fn completion(query: &SimQuery, streams: &[stream_sim::SimStream], dead: u32, sub: bool) -> bool {
    query.terms().iter().any(|leaves| {
        leaves.iter().all(|leaf| {
            if dead & (1 << leaf.stream.0) != 0 {
                sub
            } else {
                let data = streams[leaf.stream.0]
                    .recent(leaf.predicate.window as usize)
                    .expect("streams are warm");
                leaf.predicate.eval(&data)
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With zero unknown leaves (the empty fault plan), three-valued
    /// evaluation is bitwise-identical to the standard evaluator:
    /// same outcome struct, always determined, never degraded.
    #[test]
    fn no_faults_is_bitwise_the_standard_evaluator(
        seed in 0u64..10_000,
        terms in prop::collection::vec(
            prop::collection::vec((0usize..N_STREAMS, 1u32..=MAX_WINDOW, -2.0f64..2.0), 1..4),
            1..4,
        ),
    ) {
        let query = build_query(&terms);
        let schedule = DnfSchedule::from_order_unchecked(query.leaf_refs());
        let mut rng = StdRng::seed_from_u64(seed);
        let streams = gaussian_streams(&[MAX_WINDOW; N_STREAMS], &mut rng);

        let mut plain = Scheduler::new(N_STREAMS, MemoryPolicy::ClearEachQuery);
        let mut pm = meter();
        let base = plain.run_query(&query, &schedule, &streams, &mut pm, None);

        let none = FaultPlan::none();
        let wrapped = FaultySource::wrap(&streams, &none);
        let mut kleene = Scheduler::new(N_STREAMS, MemoryPolicy::ClearEachQuery);
        kleene.set_fault_policy(3, true);
        let mut km = meter();
        let out = kleene.run_query(&query, &schedule, &wrapped, &mut km, None);

        prop_assert_eq!(&out, &base, "fault-free decorated run must be identical");
        prop_assert!(out.verdict.is_determined());
        prop_assert!(!out.degraded && out.retries == 0 && out.failed_reads == 0);
        prop_assert_eq!(km.total_cost(), pm.total_cost());
    }

    /// Against the completion oracle: the scheduler reports `unknown`
    /// exactly when the dead streams can affect the verdict, and every
    /// determined verdict equals the fault-free truth value.
    #[test]
    fn kleene_matches_the_completion_oracle(
        seed in 0u64..10_000,
        dead in 0u32..(1 << N_STREAMS),
        terms in prop::collection::vec(
            prop::collection::vec((0usize..N_STREAMS, 1u32..=MAX_WINDOW, -2.0f64..2.0), 1..4),
            1..4,
        ),
    ) {
        let query = build_query(&terms);
        let schedule = DnfSchedule::from_order_unchecked(query.leaf_refs());
        let mut rng = StdRng::seed_from_u64(seed);
        let streams = gaussian_streams(&[MAX_WINDOW; N_STREAMS], &mut rng);

        let dead_streams: Vec<usize> = (0..N_STREAMS).filter(|k| dead & (1 << k) != 0).collect();
        let plan = FaultPlan::with_forced_outages(FaultSpec::none(), dead_streams);
        let wrapped = FaultySource::wrap(&streams, &plan);
        let mut sched = Scheduler::new(N_STREAMS, MemoryPolicy::ClearEachQuery);
        let mut m = meter();
        let out = sched.run_query(&query, &schedule, &wrapped, &mut m, None);

        let all_false = completion(&query, &streams, dead, false);
        let all_true = completion(&query, &streams, dead, true);
        if all_false == all_true {
            // Dead streams cannot affect the verdict: `unknown` must
            // not appear, and the value is the fault-free one.
            let expect = if all_true { Verdict::True } else { Verdict::False };
            prop_assert_eq!(out.verdict, expect);
            prop_assert!(!out.degraded, "no stale source was available");
            prop_assert_eq!(out.value, all_true);
        } else {
            prop_assert_eq!(out.verdict, Verdict::Unknown);
            prop_assert!(!out.value);
        }
    }
}
