//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Stream-ordered leaf order** — the paper replaces [4]'s
//!    decreasing-d order with increasing-d (Proposition 1) and claims it
//!    wins or ties "in the vast majority of the cases"; we measure the
//!    win/tie/loss split, plus the increasing-R vs decreasing-R reading
//!    of the stream metric.
//! 2. **Static vs dynamic AND-ordered metrics** — the paper observes
//!    dynamic is "marginally better".
//! 3. **Branch-and-bound reductions** — search nodes explored with and
//!    without Proposition-1 ordering and incumbent pruning.

use crate::common::Options;
use paotr_core::algo::exhaustive::{dnf_search, SearchOptions};
use paotr_core::algo::heuristics::{
    and_ordered, stream_ordered, AndKey, CostMode, Heuristic, StreamConfig,
};
use paotr_core::algo::heuristics::{LeafOrder, StreamOrder};
use paotr_core::cost::dnf_eval;
use paotr_gen::{fig5_grid, fig5_instance};
use paotr_stats::Table;

/// Win/tie/loss counts of one variant against another.
#[derive(Debug, Clone, Copy, Default)]
pub struct Duel {
    /// Variant A strictly cheaper.
    pub wins: usize,
    /// Equal cost (within 1e-12 relative).
    pub ties: usize,
    /// Variant A strictly more expensive.
    pub losses: usize,
}

impl Duel {
    fn record(&mut self, a: f64, b: f64) {
        let tol = 1e-9 * (1.0 + a.abs().max(b.abs()));
        if a + tol < b {
            self.wins += 1;
        } else if b + tol < a {
            self.losses += 1;
        } else {
            self.ties += 1;
        }
    }

    fn row(&self, label: &str) -> [String; 4] {
        [
            label.to_string(),
            self.wins.to_string(),
            self.ties.to_string(),
            self.losses.to_string(),
        ]
    }
}

/// Runs all ablations over a sample of the small-instance grid.
pub fn run(opts: &Options, per_config: usize) -> Table {
    let grid_len = fig5_grid().len();
    let mut inc_vs_dec_d = Duel::default();
    let mut inc_vs_dec_r = Duel::default();
    let mut dyn_vs_stat = Duel::default();
    let mut nodes_prop1 = 0u64;
    let mut nodes_plain = 0u64;
    let mut nodes_nopruning = 0u64;
    let mut searched = 0usize;

    let results = paotr_par::par_tasks(grid_len * per_config, opts.threads, |i| {
        let config = i / per_config;
        let inst = fig5_instance(config, 5_000 + i % per_config);
        let tree = &inst.tree;
        let cat = &inst.catalog;

        let cost =
            |s: &paotr_core::schedule::DnfSchedule| dnf_eval::expected_cost_fast(tree, cat, s);

        // 1a: stream-ordered, increasing vs decreasing d.
        let inc_d = cost(&stream_ordered::schedule(
            tree,
            cat,
            StreamConfig::default(),
        ));
        let dec_d = cost(&stream_ordered::schedule(
            tree,
            cat,
            StreamConfig {
                leaf_order: LeafOrder::DecreasingD,
                ..Default::default()
            },
        ));
        // 1b: increasing vs decreasing R.
        let dec_r = cost(&stream_ordered::schedule(
            tree,
            cat,
            StreamConfig {
                stream_order: StreamOrder::DecreasingR,
                ..Default::default()
            },
        ));

        // 2: dynamic vs static C/p.
        let stat = cost(&and_ordered::schedule(
            tree,
            cat,
            AndKey::IncreasingCOverP,
            CostMode::Static,
        ));
        let dynamic = cost(&and_ordered::schedule(
            tree,
            cat,
            AndKey::IncreasingCOverP,
            CostMode::Dynamic,
        ));

        // 3: search-effort comparison on small instances only.
        let search_stats = if tree.num_leaves() <= 12 {
            let incumbent = Heuristic::AndIncCOverPDynamic
                .schedule_with_cost(tree, cat)
                .1;
            let base = SearchOptions {
                incumbent: incumbent * (1.0 + 1e-9),
                node_limit: 10_000_000,
                ..Default::default()
            };
            let with = dnf_search(tree, cat, base);
            let without_prop1 = dnf_search(
                tree,
                cat,
                SearchOptions {
                    prop1_ordering: false,
                    ..base
                },
            );
            let without_pruning = dnf_search(
                tree,
                cat,
                SearchOptions {
                    prune: false,
                    node_limit: 10_000_000,
                    ..base
                },
            );
            Some((
                with.stats.nodes,
                without_prop1.stats.nodes,
                without_pruning.stats.nodes,
            ))
        } else {
            None
        };

        (inc_d, dec_d, dec_r, stat, dynamic, search_stats)
    });

    for (inc_d, dec_d, dec_r, stat, dynamic, search) in results {
        inc_vs_dec_d.record(inc_d, dec_d);
        inc_vs_dec_r.record(inc_d, dec_r);
        dyn_vs_stat.record(dynamic, stat);
        if let Some((a, b, c)) = search {
            nodes_prop1 += a;
            nodes_plain += b;
            nodes_nopruning += c;
            searched += 1;
        }
    }

    let mut table = Table::new(["comparison (A vs B)", "A wins", "ties", "A loses"]);
    table.push_row(inc_vs_dec_d.row("stream-ord.: increasing d vs decreasing d ([4])"));
    table.push_row(inc_vs_dec_r.row("stream-ord.: increasing R vs decreasing R"));
    table.push_row(dyn_vs_stat.row("AND-ord. inc C/p: dynamic vs static"));
    table
        .write_csv(opts.path("ablation_duels.csv"))
        .expect("write ablation_duels.csv");

    let mut effort = Table::new(["search variant", "total nodes", "instances"]);
    effort.push_row([
        "B&B + Prop.1 + pruning".to_string(),
        nodes_prop1.to_string(),
        searched.to_string(),
    ]);
    effort.push_row([
        "B&B + pruning (no Prop.1)".to_string(),
        nodes_plain.to_string(),
        searched.to_string(),
    ]);
    effort.push_row([
        "B&B + Prop.1 (no pruning)".to_string(),
        nodes_nopruning.to_string(),
        searched.to_string(),
    ]);
    effort
        .write_csv(opts.path("ablation_search.csv"))
        .expect("write ablation_search.csv");

    let md = format!(
        "# Ablations\n\n## Heuristic variants (win/tie/loss on cost)\n\n{}\n\
         ## Exhaustive-search effort (leaf placements explored, {} instances <= 12 leaves)\n\n{}\n",
        table.to_markdown(),
        searched,
        effort.to_markdown()
    );
    std::fs::write(opts.path("ablation.md"), md).expect("write ablation.md");
    table
}
