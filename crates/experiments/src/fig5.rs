//! Figure 5 + its inline statistic (experiment FIG5/STAT5).
//!
//! 21,600 "small" DNF instances. Every heuristic's schedule cost is
//! compared to the exact optimum, computed by branch-and-bound over
//! depth-first schedules (sound by Theorem 2) seeded with the best
//! heuristic cost as incumbent. The figure plots, per heuristic, the
//! ratio-to-optimal achieved vs the fraction of instances; the paper's
//! headline is that "AND-ordered, increasing C/p, dynamic" is the best
//! heuristic on 83.8% of the small instances.

use crate::common::{progress_line, timed, Options};
use paotr_core::algo::exhaustive::{dnf_search, SearchOptions};
use paotr_core::algo::heuristics::{paper_set, Heuristic};
use paotr_core::plan::planners::HeuristicPlanner;
use paotr_core::plan::{Planner as _, QueryRef};
use paotr_gen::{fig5_grid, fig5_instance, DNF_INSTANCES_PER_CONFIG};
use paotr_stats::{best_counts, Chart, Profile, Series, Table};

/// Node budget per instance for the exact search. Instances that exceed
/// it are excluded from the profiles (and counted); with Proposition-1
/// pruning and heuristic incumbents this is rarely hit.
pub const NODE_LIMIT: u64 = 5_000_000;

/// Per-instance result: heuristic costs (paper legend order) + optimum.
#[derive(Debug, Clone)]
pub struct Row {
    /// Grid configuration index (kept in the CSV artifacts for
    /// per-configuration analysis).
    pub config: usize,
    /// One cost per heuristic, in `paper_set` order.
    pub heuristic_costs: Vec<f64>,
    /// Exact optimal cost, when the search completed.
    pub optimal: Option<f64>,
}

/// Runs the sweep.
pub fn run(opts: &Options) -> Vec<Row> {
    let grid = fig5_grid();
    let per_config = opts.scaled(DNF_INSTANCES_PER_CONFIG);
    let total = grid.len() * per_config;
    eprintln!(
        "FIG5: {} configs x {per_config} instances = {total} small DNF trees",
        grid.len()
    );
    let heuristics = paper_set(opts.seed);

    let (rows, secs) = timed(|| {
        paotr_par::par_tasks_with_progress(
            total,
            opts.threads,
            |i| {
                let config = i / per_config;
                let instance = i % per_config;
                let inst = fig5_instance(config, instance);
                let query = QueryRef::from(&inst);
                let costs: Vec<f64> = heuristics
                    .iter()
                    .map(|&h| {
                        HeuristicPlanner::new(h)
                            .plan(&query, &inst.catalog)
                            .expect("heuristics plan every DNF")
                            .cost_or_nan()
                    })
                    .collect();
                let incumbent = costs.iter().copied().fold(f64::INFINITY, f64::min);
                let result = dnf_search(
                    &inst.tree,
                    &inst.catalog,
                    SearchOptions {
                        // +epsilon so a schedule matching the incumbent is
                        // still recovered (we need the true optimum value).
                        incumbent: incumbent * (1.0 + 1e-9) + 1e-12,
                        node_limit: NODE_LIMIT,
                        ..Default::default()
                    },
                );
                Row {
                    config,
                    heuristic_costs: costs,
                    optimal: result.complete.then_some(result.cost.min(incumbent)),
                }
            },
            |done| progress_line(done, total, "fig5"),
        )
    });
    eprintln!("  fig5 swept {total} instances in {secs:.1}s");
    rows
}

/// Writes artifacts; returns `(profiles, win fraction of the best
/// heuristic, solved fraction)`.
pub fn report(rows: &[Row], opts: &Options) -> (Vec<Profile>, f64, f64) {
    let heuristics = paper_set(opts.seed);
    let solved: Vec<&Row> = rows.iter().filter(|r| r.optimal.is_some()).collect();
    let solved_frac = solved.len() as f64 / rows.len() as f64;

    // Ratio-to-optimal profiles, one per heuristic.
    let profiles: Vec<Profile> = heuristics
        .iter()
        .enumerate()
        .map(|(h, heur)| {
            let ratios: Vec<f64> = solved
                .iter()
                .map(|r| {
                    let o = r.optimal.expect("filtered to solved");
                    if o == 0.0 {
                        1.0
                    } else {
                        r.heuristic_costs[h] / o
                    }
                })
                .collect();
            Profile::new(heur.name(), &ratios)
        })
        .collect();

    write_profile_artifacts(
        &profiles,
        opts,
        "fig5",
        "Figure 5: ratio to optimal, small DNF instances",
        "Ratio to Optimal",
    );

    // Per-instance costs, for external analysis.
    let mut per_instance = Table::new(
        std::iter::once("config".to_string())
            .chain(heuristics.iter().map(|h| h.name().to_string()))
            .chain(std::iter::once("optimal".to_string()))
            .collect::<Vec<_>>(),
    );
    for r in rows {
        per_instance.push_row(
            std::iter::once(r.config.to_string())
                .chain(r.heuristic_costs.iter().map(|&c| paotr_stats::fmt_f64(c)))
                .chain(std::iter::once(
                    r.optimal
                        .map(paotr_stats::fmt_f64)
                        .unwrap_or_else(|| "timeout".into()),
                ))
                .collect::<Vec<_>>(),
        );
    }
    per_instance
        .write_csv(opts.path("fig5_instances.csv"))
        .expect("write fig5_instances.csv");

    // STAT5: how often is each heuristic (one of) the best *heuristic*.
    let cost_matrix: Vec<Vec<f64>> = rows.iter().map(|r| r.heuristic_costs.clone()).collect();
    let wins = best_counts(&cost_matrix);
    let mut table = Table::new(["heuristic", "best on (% of instances)", "AUC (mean ratio)"]);
    for ((h, &w), p) in heuristics.iter().zip(&wins).zip(&profiles) {
        table.push_row([
            h.name().to_string(),
            format!("{:.1}", w as f64 / rows.len() as f64 * 100.0),
            format!("{:.4}", p.auc(201)),
        ]);
    }
    table
        .write_csv(opts.path("fig5_wins.csv"))
        .expect("write fig5_wins.csv");

    let best_idx = heuristics
        .iter()
        .position(|h| matches!(h, Heuristic::AndIncCOverPDynamic))
        .expect("paper set contains the dynamic C/p heuristic");
    let best_frac = wins[best_idx] as f64 / rows.len() as f64;

    let md = format!(
        "# Figure 5 (small DNF instances vs optimal)\n\n\
         {} instances, exact optimum found on {:.2}% (node limit {}).\n\n\
         Best-heuristic counts:\n\n{}\n\
         Paper: \"AND-ordered, increasing C/p, dynamic\" best in 83.8% of cases; \
         measured: {:.1}%.\n",
        rows.len(),
        solved_frac * 100.0,
        NODE_LIMIT,
        table.to_markdown(),
        best_frac * 100.0,
    );
    std::fs::write(opts.path("fig5.md"), md).expect("write fig5.md");

    (profiles, best_frac, solved_frac)
}

/// Shared plotting/CSV code for Figures 5 and 6.
pub fn write_profile_artifacts(
    profiles: &[Profile],
    opts: &Options,
    stem: &str,
    title: &str,
    y_label: &str,
) {
    let points = 201;
    let mut chart = Chart::new(title, "Percentage of instances", y_label);
    chart.x_range = Some((0.0, 100.0));
    chart.y_range = Some((1.0, 10.0));
    let mut table_headers = vec!["percentage".to_string()];
    for p in profiles {
        table_headers.push(p.name.clone());
    }
    let mut table = Table::new(table_headers);
    let curves: Vec<Vec<(f64, f64)>> = profiles.iter().map(|p| p.curve(points)).collect();
    for i in 0..points {
        let mut row = vec![format!("{:.1}", curves[0][i].0)];
        for c in &curves {
            row.push(paotr_stats::fmt_f64(c[i].1));
        }
        table.push_row(row);
    }
    table
        .write_csv(opts.path(&format!("{stem}.csv")))
        .expect("write profile csv");
    for (i, p) in profiles.iter().enumerate() {
        chart.push(Series::line(p.name.clone(), curves[i].clone(), i));
    }
    chart
        .write_svg(opts.path(&format!("{stem}.svg")))
        .expect("write profile svg");
}
