//! Multi-query workload sweep: workload size × stream-overlap degree.
//!
//! Beyond the paper: for each `(queries, overlap)` cell, plan a batch of
//! generated workloads with every joint planner, validate predictions in
//! the shared-pull simulator, and record the sharing ratio and measured
//! speedup over the independent baseline. Writes `workload.csv`.

use crate::common::{progress_line, Options};
use paotr_core::plan::Engine;
use paotr_gen::workload::{workload_instance, WorkloadConfig, LARGE_WORKLOAD_QUERIES};
use paotr_multi::{compare, default_planners, SimConfig, Workload};
use std::io::Write;

/// One `(cell, planner)` aggregate.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of queries in the workload.
    pub queries: usize,
    /// Target overlap degree.
    pub overlap: f64,
    /// Measured mean pairwise stream overlap (across instances).
    pub measured_overlap: f64,
    /// Workload planner name.
    pub planner: String,
    /// Mean predicted sharing ratio.
    pub sharing_ratio: f64,
    /// Mean predicted speedup vs. independent.
    pub predicted_speedup: f64,
    /// Mean measured (simulated-energy) speedup vs. independent;
    /// `None` for prediction-only cells (no simulation ran).
    pub simulated_speedup: Option<f64>,
}

/// Workload sizes swept with full shared-pull simulation.
pub const QUERY_COUNTS: [usize; 3] = [4, 8, 16];
/// Overlap degrees swept.
pub const OVERLAPS: [f64; 3] = [0.2, 0.5, 0.8];
/// Overlap degrees for the 128-query `large_workload` preset cells
/// (prediction-only — simulating 128 queries per tick would dominate
/// the sweep; `simulated_speedup` is NaN on these rows).
pub const LARGE_OVERLAPS: [f64; 2] = [0.2, 0.6];

/// Runs the sweep; `--scale` controls instances per cell (10 at full
/// scale).
pub fn run(opts: &Options) -> Vec<Row> {
    let per_cell = opts.scaled(10);
    let engine = Engine::new();
    let planner_names: Vec<String> = default_planners()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let mut rows = Vec::new();
    let total = QUERY_COUNTS.len() * OVERLAPS.len();
    let mut done = 0;
    for &queries in &QUERY_COUNTS {
        for &overlap in &OVERLAPS {
            let mut acc: Vec<(f64, f64, f64)> = vec![(0.0, 0.0, 0.0); planner_names.len()];
            let mut measured_overlap = 0.0;
            for index in 0..per_cell {
                let (trees, catalog) =
                    workload_instance(WorkloadConfig::with_overlap(queries, overlap), index);
                let workload =
                    Workload::from_trees(trees, catalog).expect("generated workloads validate");
                measured_overlap += workload
                    .interference(&engine)
                    .expect("analysis succeeds")
                    .mean_pairwise_overlap();
                let outcomes = compare(
                    &workload,
                    &engine,
                    &default_planners(),
                    Some(SimConfig {
                        ticks: 120,
                        seed: opts.seed ^ index as u64,
                        ticks_between: 1,
                    }),
                )
                .expect("workloads plan");
                for (slot, o) in acc.iter_mut().zip(&outcomes) {
                    slot.0 += o.sharing_ratio;
                    slot.1 += o.speedup;
                    slot.2 += o.simulated_speedup.unwrap_or(1.0);
                }
            }
            let n = per_cell as f64;
            for (name, (sharing, speedup, sim)) in planner_names.iter().zip(&acc) {
                rows.push(Row {
                    queries,
                    overlap,
                    measured_overlap: measured_overlap / n,
                    planner: name.clone(),
                    sharing_ratio: sharing / n,
                    predicted_speedup: speedup / n,
                    simulated_speedup: Some(sim / n),
                });
            }
            done += 1;
            progress_line(done, total, "workload cells");
        }
    }

    // Planning-scale cells: the seed-stable 128-query `large_workload`
    // preset (also the top size of the `workload_plan` bench group),
    // prediction-only.
    let large_per_cell = opts.scaled(5);
    for &overlap in &LARGE_OVERLAPS {
        let mut acc: Vec<(f64, f64)> = vec![(0.0, 0.0); planner_names.len()];
        let mut measured_overlap = 0.0;
        for index in 0..large_per_cell {
            let (trees, catalog) =
                workload_instance(WorkloadConfig::large_workload(overlap), index);
            let workload =
                Workload::from_trees(trees, catalog).expect("generated workloads validate");
            measured_overlap += workload
                .interference(&engine)
                .expect("analysis succeeds")
                .mean_pairwise_overlap();
            let outcomes =
                compare(&workload, &engine, &default_planners(), None).expect("workloads plan");
            for (slot, o) in acc.iter_mut().zip(&outcomes) {
                slot.0 += o.sharing_ratio;
                slot.1 += o.speedup;
            }
        }
        let n = large_per_cell as f64;
        for (name, (sharing, speedup)) in planner_names.iter().zip(&acc) {
            rows.push(Row {
                queries: LARGE_WORKLOAD_QUERIES,
                overlap,
                measured_overlap: measured_overlap / n,
                planner: name.clone(),
                sharing_ratio: sharing / n,
                predicted_speedup: speedup / n,
                simulated_speedup: None,
            });
        }
        eprintln!("  large_workload cell done (overlap {overlap})");
    }

    write_csv(opts, &rows);
    rows
}

fn write_csv(opts: &Options, rows: &[Row]) {
    let path = opts.path("workload.csv");
    let mut f = std::fs::File::create(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    writeln!(
        f,
        "queries,overlap,measured_overlap,planner,sharing_ratio,predicted_speedup,simulated_speedup"
    )
    .expect("write csv header");
    for r in rows {
        // Prediction-only cells have no measured speedup: serialize
        // `n/a` instead of printing NaN into the CSV.
        let sim = r
            .simulated_speedup
            .map(|s| format!("{s:.4}"))
            .unwrap_or_else(|| "n/a".into());
        writeln!(
            f,
            "{},{},{:.4},{},{:.4},{:.4},{sim}",
            r.queries,
            r.overlap,
            r.measured_overlap,
            r.planner,
            r.sharing_ratio,
            r.predicted_speedup,
        )
        .expect("write csv row");
    }
}

/// Headline numbers: the best joint planner's mean measured speedup on
/// the largest / most-overlapping cell, and whether sharing grows with
/// overlap.
pub fn report(rows: &[Row]) -> (f64, bool) {
    let best_cell = rows
        .iter()
        .filter(|r| {
            r.queries == *QUERY_COUNTS.last().unwrap()
                && r.overlap == *OVERLAPS.last().unwrap()
                && r.planner == "shared-greedy"
        })
        .filter_map(|r| r.simulated_speedup)
        .next()
        .unwrap_or(1.0);
    // sharing ratio should be monotone-ish in overlap for shared-greedy
    let mut monotone = true;
    for &queries in &QUERY_COUNTS {
        let series: Vec<f64> = OVERLAPS
            .iter()
            .filter_map(|&o| {
                rows.iter()
                    .find(|r| {
                        r.queries == queries && r.overlap == o && r.planner == "shared-greedy"
                    })
                    .map(|r| r.sharing_ratio)
            })
            .collect();
        if series.windows(2).any(|w| w[1] < w[0] - 0.1) {
            monotone = false;
        }
    }
    (best_cell, monotone)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_rows_for_every_cell_and_planner() {
        let dir = std::env::temp_dir().join("paotr_workload_sweep_test");
        let opts = Options {
            scale: 0.1, // 1 instance per cell
            out_dir: dir.clone(),
            ..Default::default()
        };
        crate::common::ensure_dir(&dir);
        let rows = run(&opts);
        assert_eq!(
            rows.len(),
            (QUERY_COUNTS.len() * OVERLAPS.len() + LARGE_OVERLAPS.len()) * 3
        );
        assert!(rows.iter().all(|r| r.predicted_speedup >= 1.0 - 1e-9));
        // large-preset cells are prediction-only
        let large: Vec<_> = rows
            .iter()
            .filter(|r| r.queries == LARGE_WORKLOAD_QUERIES)
            .collect();
        assert_eq!(large.len(), LARGE_OVERLAPS.len() * 3);
        assert!(large.iter().all(|r| r.simulated_speedup.is_none()));
        let (best, _) = report(&rows);
        assert!(best > 1.0, "16-query/0.8-overlap speedup {best} <= 1");
        let csv = std::fs::read_to_string(dir.join("workload.csv")).unwrap();
        assert!(
            csv.contains(",n/a"),
            "prediction-only rows serialize n/a, not NaN"
        );
        assert!(!csv.contains("NaN"), "no NaN may reach the CSV");
    }
}
