//! Shared experiment plumbing: options, output locations, progress and
//! timing.

use paotr_par::ThreadCount;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Command-line options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Options {
    /// Fraction of the paper's instance count to run (1.0 = the full
    /// 157,000 / 21,600 / 32,400 instances).
    pub scale: f64,
    /// Worker threads.
    pub threads: ThreadCount,
    /// Output directory for CSV/SVG/Markdown artifacts.
    pub out_dir: PathBuf,
    /// Seed for the random heuristic baseline.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            scale: 0.1,
            threads: ThreadCount::Auto,
            out_dir: PathBuf::from("results"),
            seed: 42,
        }
    }
}

impl Options {
    /// Scales a paper instance count, keeping at least one instance.
    pub fn scaled(&self, paper_count: usize) -> usize {
        ((paper_count as f64 * self.scale).round() as usize).clamp(1, paper_count)
    }

    /// Path inside the output directory.
    pub fn path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }
}

/// Runs `f`, returning its result and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Prints a progress line that overwrites itself.
pub fn progress_line(done: usize, total: usize, label: &str) {
    if done.is_multiple_of((total / 100).max(1)) || done == total {
        eprint!(
            "\r  {label}: {done}/{total} ({:.0}%)",
            done as f64 / total as f64 * 100.0
        );
        if done == total {
            eprintln!();
        }
    }
}

/// Ensures a directory exists.
pub fn ensure_dir(path: &Path) {
    std::fs::create_dir_all(path).unwrap_or_else(|e| panic!("cannot create {path:?}: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_counts_clamp() {
        let mut o = Options {
            scale: 0.5,
            ..Default::default()
        };
        assert_eq!(o.scaled(100), 50);
        o.scale = 0.0001;
        assert_eq!(o.scaled(100), 1);
        o.scale = 2.0;
        assert_eq!(o.scaled(100), 100);
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 21);
        assert_eq!(v, 21);
        assert!(secs >= 0.0);
    }
}
