//! Figure 4 + its inline statistics (experiment FIG4/STAT4).
//!
//! 157,000 random shared AND-trees; for each, the cost of the schedule
//! produced by the read-once greedy of [7] (Smith) and by the optimal
//! Algorithm 1, both evaluated under the *shared* cost model. The paper
//! plots both costs for all instances sorted by increasing optimal cost,
//! and reports: max ratio 1.86, >10% worse on 19.54% of instances, >1% on
//! 60.20%, ties on 11.29%.

use crate::common::{progress_line, timed, Options};
use paotr_core::plan::planners::{ExhaustivePlanner, GreedyPlanner, SmithPlanner};
use paotr_core::plan::{Planner, QueryRef};
use paotr_gen::{
    fig4_grid, instance_seed, random_and_instance, Experiment, ParamDistributions,
    FIG4_INSTANCES_PER_CONFIG,
};
use paotr_stats::{ratios, Chart, RatioSummary, Series, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-instance result row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Grid configuration index.
    pub config: usize,
    /// Leaves in the tree.
    pub leaves: usize,
    /// Target sharing ratio.
    pub rho: f64,
    /// Cost of Algorithm 1's schedule (optimal).
    pub optimal: f64,
    /// Cost of the read-once greedy's schedule.
    pub read_once: f64,
}

/// Runs the experiment and returns all rows.
pub fn run(opts: &Options) -> Vec<Row> {
    let grid = fig4_grid();
    let per_config = opts.scaled(FIG4_INSTANCES_PER_CONFIG);
    let total = grid.len() * per_config;
    eprintln!(
        "FIG4: {} configs x {per_config} instances = {total} AND-trees",
        grid.len()
    );
    let dist = ParamDistributions::paper();

    let (rows, secs) = timed(|| {
        paotr_par::par_tasks_with_progress(
            total,
            opts.threads,
            |i| {
                let config = i / per_config;
                let instance = i % per_config;
                let seed = instance_seed(Experiment::Fig4, config, instance);
                let mut rng = StdRng::seed_from_u64(seed);
                let (tree, catalog) = random_and_instance(grid[config], &dist, &mut rng);
                let query = QueryRef::from(&tree);
                let opt_cost = GreedyPlanner
                    .plan(&query, &catalog)
                    .expect("AND-trees always plan")
                    .expected_cost
                    .expect("AND planners price their schedules");
                let ro_cost = SmithPlanner
                    .plan(&query, &catalog)
                    .expect("AND-trees always plan")
                    .expected_cost
                    .expect("AND planners price their schedules");
                Row {
                    config,
                    leaves: grid[config].leaves,
                    rho: grid[config].rho,
                    optimal: opt_cost,
                    read_once: ro_cost,
                }
            },
            |done| progress_line(done, total, "fig4"),
        )
    });
    eprintln!("  fig4 swept {total} instances in {secs:.1}s");
    rows
}

/// Writes CSV, SVG and Markdown artifacts; returns the ratio summary.
pub fn report(rows: &[Row], opts: &Options) -> RatioSummary {
    // Sort by increasing optimal cost, as in the paper's plot.
    let mut sorted: Vec<&Row> = rows.iter().collect();
    sorted.sort_by(|a, b| a.optimal.total_cmp(&b.optimal));

    // CSV with every instance.
    let mut table = Table::new([
        "config",
        "leaves",
        "rho",
        "optimal_cost",
        "read_once_cost",
        "ratio",
    ]);
    for r in &sorted {
        table.push_row([
            r.config.to_string(),
            r.leaves.to_string(),
            format!("{:.6}", r.rho),
            paotr_stats::fmt_f64(r.optimal),
            paotr_stats::fmt_f64(r.read_once),
            paotr_stats::fmt_f64(r.read_once / r.optimal.max(1e-300)),
        ]);
    }
    table
        .write_csv(opts.path("fig4.csv"))
        .expect("write fig4.csv");

    // Figure: both cost series against instance rank (downsampled to keep
    // the SVG tractable).
    let stride = (sorted.len() / 4000).max(1);
    let opt_pts: Vec<(f64, f64)> = sorted
        .iter()
        .enumerate()
        .step_by(stride)
        .map(|(i, r)| (i as f64, r.optimal))
        .collect();
    let ro_pts: Vec<(f64, f64)> = sorted
        .iter()
        .enumerate()
        .step_by(stride)
        .map(|(i, r)| (i as f64, r.read_once))
        .collect();
    let mut chart = Chart::new(
        "Figure 4: read-once greedy [7] vs optimal Algorithm 1 (shared AND-trees)",
        "Shared instances sorted by increasing optimal cost",
        "Cost",
    );
    chart.push(Series::dots("Algorithm in [7]", ro_pts, 1));
    chart.push(Series::line("Optimal algorithm", opt_pts, 0));
    chart
        .write_svg(opts.path("fig4.svg"))
        .expect("write fig4.svg");

    // Inline statistics.
    let opt: Vec<f64> = sorted.iter().map(|r| r.optimal).collect();
    let ro: Vec<f64> = sorted.iter().map(|r| r.read_once).collect();
    let summary = RatioSummary::from_ratios(&ratios(&ro, &opt));

    let md = format!(
        "# Figure 4 (shared AND-trees)\n\n{} instances.\n\n{}\n\n\
         | statistic | paper | measured |\n|---|---|---|\n\
         | max ratio | 1.86 | {:.2} |\n\
         | >10% worse | 19.54% | {:.2}% |\n\
         | >1% worse | 60.20% | {:.2}% |\n\
         | ties | 11.29% | {:.2}% |\n",
        rows.len(),
        summary.paper_sentence("The algorithm in [7]", "the optimal"),
        summary.max,
        summary.frac_over_10pct * 100.0,
        summary.frac_over_1pct * 100.0,
        summary.frac_ties * 100.0,
    );
    std::fs::write(opts.path("fig4.md"), md).expect("write fig4.md");
    summary
}

/// Spot-verifies Algorithm 1 against exhaustive search on a sample of the
/// generated instances (m <= 9 to keep m! tractable); returns the number
/// of instances checked.
pub fn verify_optimality(opts: &Options, samples: usize) -> usize {
    let grid = fig4_grid();
    let small: Vec<usize> = (0..grid.len()).filter(|&c| grid[c].leaves <= 9).collect();
    let dist = ParamDistributions::paper();
    let checked = paotr_par::par_tasks(samples, opts.threads, |i| {
        let config = small[i % small.len()];
        let seed = instance_seed(Experiment::Fig4, config, 10_000 + i);
        let mut rng = StdRng::seed_from_u64(seed);
        let (tree, catalog) = random_and_instance(grid[config], &dist, &mut rng);
        let query = QueryRef::from(&tree);
        let greedy_cost = GreedyPlanner
            .plan(&query, &catalog)
            .expect("plans")
            .cost_or_nan();
        let best = ExhaustivePlanner
            .plan(&query, &catalog)
            .expect("<= 9 leaves")
            .cost_or_nan();
        assert!(
            greedy_cost <= best + 1e-9,
            "Algorithm 1 not optimal: {greedy_cost} > {best} on config {config}"
        );
        1usize
    });
    checked.into_iter().sum()
}
