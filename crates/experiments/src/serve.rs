//! Serving sweep: arrival rate × energy budget.
//!
//! Beyond the paper: serve a generated 16-query workload through the
//! `paotr_exec` serving loop under Poisson arrivals, sweeping the
//! per-tick energy budget from severely constrained to unconstrained,
//! for the independent baseline and the shared-greedy joint plan.
//! Because the budget policy reasons in worst-case energy and shared
//! execution coalesces pulls, the joint plan fits more queries into the
//! same envelope — this sweep measures how much. Writes `serve.csv`.

use crate::common::{progress_line, Options};
use paotr_core::plan::Engine;
use paotr_exec::{AcceptAll, ArrivalSpec, EnergyBudget, ServeConfig, ServeLoop};
use paotr_gen::workload::{workload_instance, WorkloadConfig};
use paotr_multi::{planner_by_name, Workload};
use std::io::Write;

/// One `(rate, budget, planner)` aggregate.
#[derive(Debug, Clone)]
pub struct Row {
    /// Poisson arrival rate (arrivals per query per tick).
    pub rate: f64,
    /// Budget as a fraction of the unconstrained max tick energy
    /// (`f64::INFINITY` = no admission control).
    pub budget_factor: f64,
    /// Joint planner serving the workload.
    pub planner: String,
    /// Served evaluations per tick.
    pub throughput: f64,
    /// Fraction of arrivals shed.
    pub shed_rate: f64,
    /// Mean energy per tick.
    pub energy_per_tick: f64,
    /// Largest single-tick energy observed.
    pub max_tick_energy: f64,
}

/// Arrival rates swept.
pub const RATES: [f64; 3] = [0.25, 0.5, 1.0];
/// Budget factors swept (fractions of the unconstrained shared-greedy
/// max tick energy; infinity = accept-all).
pub const BUDGET_FACTORS: [f64; 4] = [0.25, 0.5, 1.0, f64::INFINITY];
/// Queries in the served workload.
pub const QUERIES: usize = 16;

/// Runs the sweep; `--scale` controls instances per cell (4 at full
/// scale).
pub fn run(opts: &Options) -> Vec<Row> {
    let per_cell = opts.scaled(4);
    let ticks = 200usize;
    let engine = Engine::new();
    let planners = ["independent", "shared-greedy"];
    let mut rows = Vec::new();
    let total = RATES.len();
    for (done, &rate) in RATES.iter().enumerate() {
        // acc[(budget, planner)] -> (throughput, shed, e/tick, max)
        let mut acc = vec![(0.0f64, 0.0f64, 0.0f64, 0.0f64); BUDGET_FACTORS.len() * 2];
        for index in 0..per_cell {
            let (trees, catalog) =
                workload_instance(WorkloadConfig::with_overlap(QUERIES, 0.6), index);
            let workload = Workload::from_trees(trees, catalog).expect("generated workloads");
            let config = ServeConfig {
                ticks,
                seed: opts.seed ^ index as u64,
                arrivals: ArrivalSpec::Poisson { rate },
                ..Default::default()
            };
            let loops: Vec<ServeLoop> = planners
                .iter()
                .map(|p| {
                    let joint = planner_by_name(p)
                        .expect("built-in")
                        .plan(&workload, &engine)
                        .expect("workloads plan");
                    ServeLoop::new(&workload, &joint, config)
                })
                .collect();
            // The accept-all runs double as the infinite-budget cells
            // (an infinite `EnergyBudget` admits bitwise-identically,
            // pinned by the exec acceptance tests), so each planner is
            // served unconstrained exactly once per instance.
            let unconstrained: Vec<_> = loops
                .iter()
                .map(|s| s.run(&mut AcceptAll, &engine).expect("serve runs"))
                .collect();
            // Budgets are fractions of the *unconstrained shared* peak:
            // one absolute envelope both planners must live inside.
            let reference = unconstrained[1].max_tick_energy;
            for (b, &factor) in BUDGET_FACTORS.iter().enumerate() {
                for (p, serve) in loops.iter().enumerate() {
                    let report = if factor.is_infinite() {
                        unconstrained[p].clone()
                    } else {
                        serve
                            .run(&mut EnergyBudget::shedding(reference * factor), &engine)
                            .expect("serve runs")
                    };
                    let slot = &mut acc[b * 2 + p];
                    slot.0 += report.throughput();
                    slot.1 += report.shed as f64 / report.arrivals.max(1) as f64;
                    slot.2 += report.mean_tick_energy();
                    slot.3 += report.max_tick_energy;
                }
            }
        }
        let n = per_cell as f64;
        for (b, &factor) in BUDGET_FACTORS.iter().enumerate() {
            for (p, name) in planners.iter().enumerate() {
                let (tp, shed, e, max) = acc[b * 2 + p];
                rows.push(Row {
                    rate,
                    budget_factor: factor,
                    planner: name.to_string(),
                    throughput: tp / n,
                    shed_rate: shed / n,
                    energy_per_tick: e / n,
                    max_tick_energy: max / n,
                });
            }
        }
        progress_line(done + 1, total, "serve rate cells");
    }
    write_csv(opts, &rows);
    rows
}

fn write_csv(opts: &Options, rows: &[Row]) {
    let path = opts.path("serve.csv");
    let mut f = std::fs::File::create(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    writeln!(
        f,
        "rate,budget_factor,planner,throughput,shed_rate,energy_per_tick,max_tick_energy"
    )
    .expect("write csv header");
    for r in rows {
        let factor = if r.budget_factor.is_finite() {
            format!("{}", r.budget_factor)
        } else {
            "inf".into()
        };
        writeln!(
            f,
            "{},{factor},{},{:.4},{:.4},{:.4},{:.4}",
            r.rate, r.planner, r.throughput, r.shed_rate, r.energy_per_tick, r.max_tick_energy
        )
        .expect("write csv row");
    }
}

/// Headline: shared-greedy vs independent throughput at the tightest
/// budget and the highest rate, plus whether every budgeted cell
/// respected its envelope (max tick energy <= budget is asserted by the
/// serve tests; here we report the measured advantage).
pub fn report(rows: &[Row]) -> (f64, f64) {
    let pick = |planner: &str| {
        rows.iter()
            .find(|r| {
                r.rate == RATES[RATES.len() - 1]
                    && r.budget_factor == BUDGET_FACTORS[0]
                    && r.planner == planner
            })
            .map(|r| r.throughput)
            .unwrap_or(0.0)
    };
    let indep = pick("independent");
    let shared = pick("shared-greedy");
    let advantage = if indep > 0.0 { shared / indep } else { 1.0 };
    (shared, advantage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_serve_sweep_produces_rows_and_respects_envelopes() {
        let dir = std::env::temp_dir().join("paotr_serve_sweep_test");
        let opts = Options {
            scale: 0.25, // 1 instance per cell
            out_dir: dir.clone(),
            ..Default::default()
        };
        crate::common::ensure_dir(&dir);
        let rows = run(&opts);
        assert_eq!(rows.len(), RATES.len() * BUDGET_FACTORS.len() * 2);
        // budgeted shared-greedy never serves less than independent
        for &rate in &RATES {
            for &factor in &BUDGET_FACTORS {
                let get = |p: &str| {
                    rows.iter()
                        .find(|r| r.rate == rate && r.budget_factor == factor && r.planner == p)
                        .unwrap()
                        .throughput
                };
                assert!(
                    get("shared-greedy") >= get("independent") - 1e-12,
                    "rate {rate} factor {factor}"
                );
            }
        }
        let (shared, advantage) = report(&rows);
        assert!(shared > 0.0);
        assert!(advantage >= 1.0);
        let csv = std::fs::read_to_string(dir.join("serve.csv")).unwrap();
        assert!(csv.contains("inf"));
        assert!(!csv.contains("NaN"));
    }
}
