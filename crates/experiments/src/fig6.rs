//! Figure 6 + its inline statistics (experiment FIG6/STAT6).
//!
//! 32,400 "large" DNF instances (up to 10 ANDs x 20 leaves), far beyond
//! exhaustive search: every heuristic is compared to the best small-
//! instance heuristic, "AND-ordered, increasing C/p, dynamic". The paper
//! reports that this reference heuristic is the best one on 94.5% of the
//! large instances, and that it schedules a 10x20 tree in under 5 seconds
//! on a 1.86 GHz core — we also time that workload.

use crate::common::{progress_line, timed, Options};
use crate::fig5::write_profile_artifacts;
use paotr_core::algo::heuristics::{paper_set, Heuristic};
use paotr_core::plan::planners::HeuristicPlanner;
use paotr_core::plan::{Planner as _, QueryRef};
use paotr_gen::{fig6_grid, fig6_instance, DNF_INSTANCES_PER_CONFIG};
use paotr_stats::{best_counts, best_counts_with_tolerance, Profile, Table};
use std::time::Instant;

/// Per-instance heuristic costs (paper legend order).
#[derive(Debug, Clone)]
pub struct Row {
    /// Grid configuration index.
    pub config: usize,
    /// One cost per heuristic.
    pub heuristic_costs: Vec<f64>,
}

/// Runs the sweep.
pub fn run(opts: &Options) -> Vec<Row> {
    let grid = fig6_grid();
    let per_config = opts.scaled(DNF_INSTANCES_PER_CONFIG);
    let total = grid.len() * per_config;
    eprintln!(
        "FIG6: {} configs x {per_config} instances = {total} large DNF trees",
        grid.len()
    );
    let heuristics = paper_set(opts.seed);

    let (rows, secs) = timed(|| {
        paotr_par::par_tasks_with_progress(
            total,
            opts.threads,
            |i| {
                let config = i / per_config;
                let instance = i % per_config;
                let inst = fig6_instance(config, instance);
                let query = QueryRef::from(&inst);
                let costs: Vec<f64> = heuristics
                    .iter()
                    .map(|&h| {
                        HeuristicPlanner::new(h)
                            .plan(&query, &inst.catalog)
                            .expect("heuristics plan every DNF")
                            .cost_or_nan()
                    })
                    .collect();
                Row {
                    config,
                    heuristic_costs: costs,
                }
            },
            |done| progress_line(done, total, "fig6"),
        )
    });
    eprintln!("  fig6 swept {total} instances in {secs:.1}s");
    rows
}

/// Writes artifacts; returns `(profiles, win fraction of the reference
/// heuristic)`.
pub fn report(rows: &[Row], opts: &Options) -> (Vec<Profile>, f64) {
    let heuristics = paper_set(opts.seed);
    let reference = heuristics
        .iter()
        .position(|h| matches!(h, Heuristic::AndIncCOverPDynamic))
        .expect("paper set contains the dynamic C/p heuristic");

    // Profiles: ratio of each heuristic to the reference heuristic.
    // (The reference's own curve is identically 1 and is omitted from the
    // plot, as in the paper's Figure 6 which shows 9 curves.)
    let profiles: Vec<Profile> = heuristics
        .iter()
        .enumerate()
        .filter(|&(h, _)| h != reference)
        .map(|(h, heur)| {
            let ratios: Vec<f64> = rows
                .iter()
                .map(|r| {
                    let base = r.heuristic_costs[reference];
                    if base == 0.0 {
                        1.0
                    } else {
                        r.heuristic_costs[h] / base
                    }
                })
                .collect();
            Profile::new(heur.name(), &ratios)
        })
        .collect();

    write_profile_artifacts(
        &profiles,
        opts,
        "fig6",
        "Figure 6: ratio to AND-ord., inc. C/p, dyn — large DNF instances",
        "Ratio to AND-ord., inc. C/p, dyn",
    );

    // Per-instance costs, for external analysis.
    let mut per_instance = Table::new(
        std::iter::once("config".to_string())
            .chain(heuristics.iter().map(|h| h.name().to_string()))
            .collect::<Vec<_>>(),
    );
    for r in rows {
        per_instance.push_row(
            std::iter::once(r.config.to_string())
                .chain(r.heuristic_costs.iter().map(|&c| paotr_stats::fmt_f64(c)))
                .collect::<Vec<_>>(),
        );
    }
    per_instance
        .write_csv(opts.path("fig6_instances.csv"))
        .expect("write fig6_instances.csv");

    let cost_matrix: Vec<Vec<f64>> = rows.iter().map(|r| r.heuristic_costs.clone()).collect();
    let wins = best_counts(&cost_matrix);
    // The AND-ordered variants often trade sub-0.1% differences on large
    // instances; the tolerant count shows how tie-sensitive the paper's
    // "best in 94.5% of cases" statistic is.
    let wins_tol = best_counts_with_tolerance(&cost_matrix, 0.001);
    let mut table = Table::new(["heuristic", "best (strict, %)", "best (0.1% tol, %)"]);
    for ((h, &w), &wt) in heuristics.iter().zip(&wins).zip(&wins_tol) {
        table.push_row([
            h.name().to_string(),
            format!("{:.1}", w as f64 / rows.len() as f64 * 100.0),
            format!("{:.1}", wt as f64 / rows.len() as f64 * 100.0),
        ]);
    }
    table
        .write_csv(opts.path("fig6_wins.csv"))
        .expect("write fig6_wins.csv");
    let best_frac = wins[reference] as f64 / rows.len() as f64;
    let best_frac_tol = wins_tol[reference] as f64 / rows.len() as f64;

    let md = format!(
        "# Figure 6 (large DNF instances vs best heuristic)\n\n\
         {} instances.\n\nBest-heuristic counts:\n\n{}\n\
         Paper: the reference heuristic is best in 94.5% of cases; \
         measured: {:.1}% (strict) / {:.1}% (within 0.1%).\n",
        rows.len(),
        table.to_markdown(),
        best_frac * 100.0,
        best_frac_tol * 100.0,
    );
    std::fs::write(opts.path("fig6.md"), md).expect("write fig6.md");

    (profiles, best_frac)
}

/// STAT6's runtime claim: time the reference heuristic on a 10-AND x
/// 20-leaf instance (the paper: "less than 5 seconds on a 1.86 GHz
/// core"). Returns seconds per scheduling call.
pub fn runtime_10x20(opts: &Options) -> f64 {
    let grid = fig6_grid();
    // pick the largest configuration: N = 10, m = 20
    let config = grid
        .iter()
        .position(|c| c.terms == 10 && c.total_leaves() == 200)
        .expect("grid contains the 10x20 configuration");
    let inst = fig6_instance(config, 0);
    let h = Heuristic::AndIncCOverPDynamic;
    // warm-up + measure
    let _ = h.schedule_with_cost(&inst.tree, &inst.catalog);
    let reps = 10;
    let start = Instant::now();
    for _ in 0..reps {
        let _ = h.schedule_with_cost(&inst.tree, &inst.catalog);
    }
    let secs = start.elapsed().as_secs_f64() / reps as f64;
    std::fs::write(
        opts.path("runtime_10x20.md"),
        format!(
            "# Scheduling runtime, 10 ANDs x 20 leaves\n\n\
             Paper: < 5 s on a 1.86 GHz core (2014).\n\
             Measured: {secs:.4} s per call for AND-ord., inc. C/p, dyn.\n"
        ),
    )
    .expect("write runtime_10x20.md");
    secs
}
