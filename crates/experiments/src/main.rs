//! Experiment driver: regenerates every figure and inline statistic of
//! the paper's evaluation section.
//!
//! ```text
//! paotr-experiments [fig4] [fig5] [fig6] [theorems] [ablation] [workload] [serve] [arrange] [all]
//!                   [--scale F] [--full] [--threads N] [--out DIR]
//!                   [--seed S]
//! ```
//!
//! `--scale 1.0` (or `--full`) runs the paper's exact instance counts
//! (157,000 / 21,600 / 32,400); the default `--scale 0.1` keeps a laptop
//! run under a few minutes while preserving every qualitative conclusion.
//! Artifacts (CSV, SVG, Markdown) land in `--out` (default `results/`).

#![forbid(unsafe_code)]
mod ablation;
mod arrange;
mod common;
mod fig4;
mod fig5;
mod fig6;
mod serve;
mod theorems;
mod workload;

use common::{ensure_dir, Options};
use paotr_par::ThreadCount;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::default();
    let mut which: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = parse_or_die(args.get(i), "--scale expects a number");
            }
            "--full" => opts.scale = 1.0,
            "--threads" => {
                i += 1;
                let n: usize = parse_or_die(args.get(i), "--threads expects an integer");
                opts.threads = ThreadCount::Fixed(n);
            }
            "--out" => {
                i += 1;
                opts.out_dir = args
                    .get(i)
                    .unwrap_or_else(|| die("--out expects a directory"))
                    .into();
            }
            "--seed" => {
                i += 1;
                opts.seed = parse_or_die(args.get(i), "--seed expects an integer");
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            name @ ("fig4" | "fig5" | "fig6" | "theorems" | "ablation" | "workload" | "serve"
            | "arrange" | "all") => {
                which.push(name.to_string());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                print_help();
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = vec![
            "fig4", "fig5", "fig6", "theorems", "ablation", "workload", "serve", "arrange",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    ensure_dir(&opts.out_dir);

    for w in &which {
        match w.as_str() {
            "fig4" => {
                let rows = fig4::run(&opts);
                let summary = fig4::report(&rows, &opts);
                println!(
                    "FIG4: max ratio {:.3} (paper 1.86); >10%: {:.2}% (19.54%); \
                     >1%: {:.2}% (60.20%); ties: {:.2}% (11.29%)",
                    summary.max,
                    summary.frac_over_10pct * 100.0,
                    summary.frac_over_1pct * 100.0,
                    summary.frac_ties * 100.0
                );
                let checked = fig4::verify_optimality(&opts, 200);
                println!(
                    "FIG4: Algorithm 1 matched exhaustive search on {checked} sampled instances"
                );
            }
            "fig5" => {
                let rows = fig5::run(&opts);
                let (profiles, best_frac, solved) = fig5::report(&rows, &opts);
                println!(
                    "FIG5: optimal found on {:.1}% of instances; best heuristic = \
                     AND-ord. inc C/p dyn on {:.1}% (paper 83.8%)",
                    solved * 100.0,
                    best_frac * 100.0
                );
                for p in &profiles {
                    println!(
                        "  {:<28} ratio@50%={:.3} ratio@90%={:.3} auc={:.3}",
                        p.name,
                        p.ratio_at(50.0),
                        p.ratio_at(90.0),
                        p.auc(201)
                    );
                }
            }
            "fig6" => {
                let rows = fig6::run(&opts);
                let (profiles, best_frac) = fig6::report(&rows, &opts);
                println!(
                    "FIG6: reference heuristic best on {:.1}% of instances (paper 94.5%)",
                    best_frac * 100.0
                );
                for p in &profiles {
                    println!(
                        "  {:<28} ratio@50%={:.3} ratio@90%={:.3} auc={:.3}",
                        p.name,
                        p.ratio_at(50.0),
                        p.ratio_at(90.0),
                        p.auc(201)
                    );
                }
                let secs = fig6::runtime_10x20(&opts);
                println!("STAT6: 10x20 scheduling takes {secs:.4}s (paper: < 5s on 1.86 GHz)");
            }
            "workload" => {
                let rows = workload::run(&opts);
                let (best, monotone) = workload::report(&rows);
                println!(
                    "WORKLOAD: shared-greedy measured speedup {best:.2}x on 16 queries @ 0.8 \
                     overlap; sharing {} with overlap ({} rows -> workload.csv)",
                    if monotone { "grows" } else { "is non-monotone" },
                    rows.len()
                );
            }
            "serve" => {
                let rows = serve::run(&opts);
                let (shared, advantage) = serve::report(&rows);
                println!(
                    "SERVE: shared-greedy serves {shared:.2} evals/tick at the tightest budget \
                     and highest rate ({advantage:.2}x the independent baseline; {} rows -> \
                     serve.csv)",
                    rows.len()
                );
            }
            "arrange" => {
                let rows = arrange::run(&opts);
                let (queries, saving) = arrange::report(&rows);
                println!(
                    "ARRANGE: maintained arrangements fetch {:.1}% fewer stream items than \
                     re-pull at {queries} queries / {:.0}% overlap ({} rows -> arrange.csv)",
                    saving * 100.0,
                    arrange::OVERLAP * 100.0,
                    rows.len()
                );
            }
            "theorems" => {
                let samples = (200.0 * opts.scale.max(0.05)).round() as usize;
                let report = theorems::run(&opts, samples.max(20));
                println!(
                    "THEOREMS: THM1 ok on {}, THM2 ok on {}, linearity witnesses {} (max gap {:.3}%)",
                    report.thm1_checked,
                    report.thm2_checked,
                    report.linearity_witnesses,
                    report.max_linearity_gap * 100.0
                );
            }
            "ablation" => {
                let per_config = ((paotr_gen::DNF_INSTANCES_PER_CONFIG as f64 * opts.scale / 10.0)
                    .round() as usize)
                    .max(1);
                let table = ablation::run(&opts, per_config);
                println!("ABLATION:\n{}", table.to_markdown());
            }
            _ => unreachable!("validated above"),
        }
    }
    println!("artifacts written to {}", opts.out_dir.display());
    ExitCode::SUCCESS
}

fn print_help() {
    println!(
        "usage: paotr-experiments [fig4] [fig5] [fig6] [theorems] [ablation] [workload] [serve] [arrange] [all]\n\
         \x20                        [--scale F | --full] [--threads N] [--out DIR] [--seed S]\n\n\
         Regenerates the figures and statistics of \"Cost-Optimal Execution of\n\
         Boolean Query Trees with Shared Streams\" (IPDPS 2014)."
    );
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn parse_or_die<T: std::str::FromStr>(arg: Option<&String>, msg: &str) -> T {
    arg.and_then(|a| a.parse().ok()).unwrap_or_else(|| die(msg))
}
