//! Arrangement sweep: maintained arrangements vs. per-tick re-pull.
//!
//! Beyond the paper: serve recurring high-overlap workloads (every
//! query due every tick) through the `paotr_exec` serving loop with
//! and without persistent arrangements, sweeping the query count. For
//! each cell the sweep records the physical item bill (pulled +
//! maintained), the energy, and the arrangement hit volume — the
//! measured shape of the maintain-vs-repull crossover the cost model
//! decides analytically. Writes `arrange.csv`.

use crate::common::{progress_line, Options};
use paotr_core::plan::Engine;
use paotr_exec::{AcceptAll, ArrangeConfig, ArrivalSpec, ServeConfig, ServeLoop};
use paotr_gen::workload::{workload_instance, WorkloadConfig};
use paotr_multi::{planner_by_name, Workload};
use std::io::Write;

/// One `(queries, mode)` aggregate.
#[derive(Debug, Clone)]
pub struct Row {
    /// Queries in the served workload.
    pub queries: usize,
    /// `"maintained"` or `"repull"`.
    pub mode: String,
    /// Stream items fetched from sensors per tick (pulls + maintenance).
    pub fetched_per_tick: f64,
    /// Energy per tick.
    pub energy_per_tick: f64,
    /// Window items served from maintained rings per tick.
    pub hit_items_per_tick: f64,
    /// Live arrangements at the end of the run.
    pub arrangements: f64,
}

/// Query counts swept.
pub const QUERY_COUNTS: [usize; 3] = [16, 64, 256];
/// Pairwise stream overlap of the generated workloads.
pub const OVERLAP: f64 = 0.6;

/// Runs the sweep; `--scale` controls instances per cell (4 at full
/// scale).
pub fn run(opts: &Options) -> Vec<Row> {
    let per_cell = opts.scaled(4);
    let ticks = 200usize;
    let engine = Engine::new();
    let mut rows = Vec::new();
    for (done, &queries) in QUERY_COUNTS.iter().enumerate() {
        // acc[mode] -> (fetched, energy, hits, arrangements)
        let mut acc = [(0.0f64, 0.0f64, 0.0f64, 0.0f64); 2];
        for index in 0..per_cell {
            let (trees, catalog) =
                workload_instance(WorkloadConfig::with_overlap(queries, OVERLAP), index);
            let workload = Workload::from_trees(trees, catalog).expect("generated workloads");
            let joint = planner_by_name("shared-greedy")
                .expect("built-in")
                .plan(&workload, &engine)
                .expect("workloads plan");
            for (m, arrange) in [None, Some(ArrangeConfig::default())]
                .into_iter()
                .enumerate()
            {
                let config = ServeConfig {
                    ticks,
                    seed: opts.seed ^ index as u64,
                    arrivals: ArrivalSpec::Periodic { every: 1 },
                    arrange,
                    ..Default::default()
                };
                let report = ServeLoop::new(&workload, &joint, config)
                    .run(&mut AcceptAll, &engine)
                    .expect("serve runs");
                let slot = &mut acc[m];
                slot.0 += report.fetched_items() as f64 / ticks as f64;
                slot.1 += report.total_energy / ticks as f64;
                slot.2 += report.arrangement_hit_items as f64 / ticks as f64;
                slot.3 += report.arrangements as f64;
            }
        }
        let n = per_cell as f64;
        for (m, mode) in ["repull", "maintained"].iter().enumerate() {
            let (fetched, energy, hits, arrs) = acc[m];
            rows.push(Row {
                queries,
                mode: mode.to_string(),
                fetched_per_tick: fetched / n,
                energy_per_tick: energy / n,
                hit_items_per_tick: hits / n,
                arrangements: arrs / n,
            });
        }
        progress_line(done + 1, QUERY_COUNTS.len(), "arrange query cells");
    }
    write_csv(opts, &rows);
    rows
}

fn write_csv(opts: &Options, rows: &[Row]) {
    let path = opts.path("arrange.csv");
    let mut f = std::fs::File::create(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    writeln!(
        f,
        "queries,mode,fetched_per_tick,energy_per_tick,hit_items_per_tick,arrangements"
    )
    .expect("write csv header");
    for r in rows {
        writeln!(
            f,
            "{},{},{:.4},{:.4},{:.4},{:.2}",
            r.queries,
            r.mode,
            r.fetched_per_tick,
            r.energy_per_tick,
            r.hit_items_per_tick,
            r.arrangements
        )
        .expect("write csv row");
    }
}

/// Headline: the fetched-item saving at the largest swept workload.
pub fn report(rows: &[Row]) -> (usize, f64) {
    let queries = QUERY_COUNTS[QUERY_COUNTS.len() - 1];
    let pick = |mode: &str| {
        rows.iter()
            .find(|r| r.queries == queries && r.mode == mode)
            .map(|r| r.fetched_per_tick)
            .unwrap_or(f64::NAN)
    };
    let repull = pick("repull");
    let saving = if repull > 0.0 {
        1.0 - pick("maintained") / repull
    } else {
        f64::NAN
    };
    (queries, saving)
}
