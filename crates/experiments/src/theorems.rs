//! Empirical verification of the paper's theoretical results
//! (experiments THM1, PROP1, THM2, and the Section V linearity claim).
//!
//! These are exactly the checks the property tests run, but at a larger
//! sample size and with a human-readable report.

use crate::common::Options;
use paotr_core::algo::{exhaustive, nonlinear};
use paotr_core::cost::and_eval;
use paotr_core::plan::planners::{ExhaustivePlanner, GreedyPlanner};
use paotr_core::plan::Planner as _;
use paotr_core::prelude::*;
use rand::prelude::*;

/// Outcome of the verification battery.
#[derive(Debug, Clone)]
pub struct TheoremReport {
    /// Instances on which Algorithm 1 matched the exhaustive optimum.
    pub thm1_checked: usize,
    /// Instances on which the best depth-first schedule matched the best
    /// overall schedule.
    pub thm2_checked: usize,
    /// Shared instances found where the optimal non-linear strategy
    /// strictly beats every schedule.
    pub linearity_witnesses: usize,
    /// The largest relative linearity gap observed.
    pub max_linearity_gap: f64,
}

fn random_and(rng: &mut StdRng) -> (AndTree, StreamCatalog) {
    let n_streams = rng.gen_range(1..=4);
    let m = rng.gen_range(2..=7);
    let cat = StreamCatalog::from_costs((0..n_streams).map(|_| rng.gen_range(1.0..10.0))).unwrap();
    let leaves = (0..m)
        .map(|_| {
            Leaf::raw(
                StreamId(rng.gen_range(0..n_streams)),
                rng.gen_range(1..=5),
                Prob::new(rng.gen_range(0.0..1.0)).unwrap(),
            )
        })
        .collect();
    (AndTree::new(leaves).unwrap(), cat)
}

fn random_dnf(rng: &mut StdRng, max_leaves: usize) -> DnfInstance {
    let n_streams = rng.gen_range(1..=3);
    let cat = StreamCatalog::from_costs((0..n_streams).map(|_| rng.gen_range(1.0..10.0))).unwrap();
    let n_terms = rng.gen_range(2..=3);
    let mut total = 0;
    let mut terms = Vec::new();
    for _ in 0..n_terms {
        let m = rng
            .gen_range(1usize..=3)
            .min(max_leaves.saturating_sub(total).max(1));
        total += m;
        terms.push(
            (0..m)
                .map(|_| {
                    Leaf::raw(
                        StreamId(rng.gen_range(0..n_streams)),
                        rng.gen_range(1..=4),
                        Prob::new(rng.gen_range(0.02..0.98)).unwrap(),
                    )
                })
                .collect(),
        );
    }
    DnfInstance::new(DnfTree::from_leaves(terms).unwrap(), cat).unwrap()
}

/// Runs the battery and writes `theorems.md`.
pub fn run(opts: &Options, samples: usize) -> TheoremReport {
    // THM1: Algorithm 1 vs exhaustive search over all permutations.
    let thm1 = paotr_par::par_tasks(samples, opts.threads, |i| {
        let mut rng = StdRng::seed_from_u64(0x7410 + i as u64);
        let (tree, cat) = random_and(&mut rng);
        let query = QueryRef::from(&tree);
        let g = GreedyPlanner
            .plan(&query, &cat)
            .expect("plans")
            .cost_or_nan();
        let best = ExhaustivePlanner
            .plan(&query, &cat)
            .expect("<= 7 leaves")
            .cost_or_nan();
        assert!(
            g <= best + 1e-9,
            "THM1 violated: Algorithm 1 cost {g} vs optimal {best} (sample {i})"
        );
        1usize
    })
    .len();

    // THM2: depth-first dominance.
    let thm2 = paotr_par::par_tasks(samples, opts.threads, |i| {
        let mut rng = StdRng::seed_from_u64(0x7420 + i as u64);
        let inst = random_dnf(&mut rng, 7);
        let df = ExhaustivePlanner
            .plan(&QueryRef::from(&inst), &inst.catalog)
            .expect("small DNF")
            .cost_or_nan();
        let (_, all) = exhaustive::dnf_all_schedules(&inst.tree, &inst.catalog);
        assert!(
            (df - all).abs() < 1e-9,
            "THM2 violated: depth-first {df} vs all {all} (sample {i})"
        );
        1usize
    })
    .len();

    // Section V: non-linear strategies can strictly win on shared trees.
    let gaps = paotr_par::par_tasks(samples.min(300), opts.threads, |i| {
        let mut rng = StdRng::seed_from_u64(0x7430 + i as u64);
        let inst = random_dnf(&mut rng, 6);
        if inst.tree.is_read_once() {
            return (false, 0.0);
        }
        let (linear, non_linear) = nonlinear::linearity_gap(&inst.tree, &inst.catalog);
        assert!(
            non_linear <= linear + 1e-9,
            "strategies include all schedules"
        );
        let gap = (linear - non_linear) / linear.max(1e-300);
        (gap > 1e-9, gap)
    });
    let linearity_witnesses = gaps.iter().filter(|(w, _)| *w).count();
    let max_gap = gaps.iter().map(|&(_, g)| g).fold(0.0, f64::max);

    // PROP1 spot check: swapping same-stream leaves into decreasing-d
    // order never helps (verified inside Algorithm 1's tests; here we
    // verify on explicit exchanges).
    for i in 0..samples {
        let mut rng = StdRng::seed_from_u64(0x7440 + i as u64);
        let (tree, cat) = random_and(&mut rng);
        let plan = GreedyPlanner
            .plan(&QueryRef::from(&tree), &cat)
            .expect("plans");
        let base = plan.cost_or_nan();
        let order = plan.body.as_and().expect("AND plan").order().to_vec();
        for a in 0..order.len() {
            for b in (a + 1)..order.len() {
                let (la, lb) = (tree.leaf(order[a]), tree.leaf(order[b]));
                if la.stream == lb.stream && la.items < lb.items {
                    let mut swapped = order.clone();
                    swapped.swap(a, b);
                    let s = AndSchedule::new(swapped, &tree).unwrap();
                    let c = and_eval::expected_cost(&tree, &cat, &s);
                    assert!(
                        c + 1e-9 >= base,
                        "PROP1 violated: swapping helped ({c} < {base})"
                    );
                }
            }
        }
    }

    let report = TheoremReport {
        thm1_checked: thm1,
        thm2_checked: thm2,
        linearity_witnesses,
        max_linearity_gap: max_gap,
    };
    let md = format!(
        "# Theorem verification\n\n\
         | claim | check | result |\n|---|---|---|\n\
         | Theorem 1 (Algorithm 1 optimal, shared AND-trees) | vs exhaustive m! search, {} random instances | all matched |\n\
         | Theorem 2 (depth-first schedules dominant) | best DF vs best overall schedule, {} random instances | all matched |\n\
         | Proposition 1 (increasing-d within stream) | exchange argument on optimal schedules | no improving swap |\n\
         | Section V (linear not dominant, shared) | optimal strategy vs optimal schedule | {} witnesses, max gap {:.3}% |\n",
        report.thm1_checked,
        report.thm2_checked,
        report.linearity_witnesses,
        report.max_linearity_gap * 100.0,
    );
    std::fs::write(opts.path("theorems.md"), md).expect("write theorems.md");
    report
}
