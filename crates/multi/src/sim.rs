//! Validation against the `stream-sim` substrate.
//!
//! The coverage cost model in [`crate::cost`] is an expected-state
//! approximation; this module checks it against *measured* energy. Each
//! abstract workload is lowered to concrete [`SimQuery`]s over Gaussian
//! sensor streams: a leaf with success probability `p` and window `d`
//! becomes `AVG(stream, d) < Φ⁻¹(p) / √d` — the mean of `d` i.i.d.
//! standard normals is `N(0, 1/d)`, so the predicate is true with
//! probability `p` marginally. (Leaves sharing a stream see overlapping
//! windows and are therefore correlated, unlike the paper's independence
//! assumption; both execution modes run on identical data, so the
//! shared-vs-isolated comparison stays apples-to-apples.)
//!
//! One simulated tick evaluates **every** query of the workload; in
//! shared mode they run back-to-back against one [`DeviceMemory`], so
//! items pulled by query A are free for query B — the mechanism the
//! joint planners bet on.
//!
//! [`DeviceMemory`]: stream_sim::DeviceMemory

use crate::planner::JointPlan;
use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stream_sim::{
    gaussian_streams, Comparator, EnergyMeter, EnergyModel, MemoryPolicy, Predicate, Scheduler,
    SensorModel, SensorSource, SimLeaf, SimQuery, WindowOp,
};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Evaluation ticks to run.
    pub ticks: usize,
    /// RNG seed for the sensor data.
    pub seed: u64,
    /// Sensor ticks between consecutive evaluations.
    pub ticks_between: usize,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            ticks: 400,
            seed: 0,
            ticks_between: 1,
        }
    }
}

/// Measured energies for one simulated workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSimReport {
    /// Mean energy per tick spent on each query (workload order).
    pub per_query_energy: Vec<f64>,
    /// Mean total energy per tick (weighted sum of `per_query_energy`
    /// is intentionally *not* applied here — weights model arrival
    /// rates, the simulation runs every query every tick).
    pub total_energy: f64,
    /// Total items pulled per stream over the whole run.
    pub items_pulled: Vec<u64>,
    /// Fraction of ticks each query evaluated TRUE.
    pub truth_rates: Vec<f64>,
}

/// Lowers the abstract workload to concrete simulator queries: one
/// standard-normal Gaussian source per stream, and per leaf an `AVG`
/// predicate whose threshold hits the leaf's success probability.
pub fn synthesize(workload: &Workload) -> (Vec<SimQuery>, Vec<SensorSource>) {
    let queries = workload
        .queries()
        .iter()
        .map(|q| {
            let terms = q
                .tree
                .terms()
                .iter()
                .map(|t| {
                    t.leaves()
                        .iter()
                        .map(|l| {
                            let p = l.prob.value().clamp(1e-4, 1.0 - 1e-4);
                            let threshold = normal_quantile(p) / f64::from(l.items).sqrt();
                            SimLeaf {
                                stream: l.stream,
                                predicate: Predicate::new(
                                    WindowOp::Avg,
                                    l.items,
                                    Comparator::Lt,
                                    threshold,
                                ),
                            }
                        })
                        .collect()
                })
                .collect();
            SimQuery::new(terms).expect("workload trees are non-empty")
        })
        .collect();
    let sources = (0..workload.catalog().len())
        .map(|_| {
            SensorSource::new(SensorModel::Gaussian {
                mean: 0.0,
                std_dev: 1.0,
            })
        })
        .collect();
    (queries, sources)
}

/// Runs `joint` against simulated sensors and reports measured energy —
/// a thin adapter over the unified runtime: one [`Scheduler`] tick per
/// evaluation round, metered by one [`EnergyMeter`]. Shared-memory
/// execution follows `joint.shared_execution`: joint plans share one
/// device memory per tick, the independent baseline wipes memory
/// between queries.
pub fn simulate(workload: &Workload, joint: &JointPlan, config: SimConfig) -> WorkloadSimReport {
    let catalog = workload.catalog();
    let (queries, _sources) = synthesize(workload);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Per-stream history horizon: the widest window any query uses.
    let mut horizons = vec![1u32; catalog.len()];
    for q in &queries {
        for (k, &w) in q.max_windows(catalog.len()).iter().enumerate() {
            horizons[k] = horizons[k].max(w);
        }
    }
    let mut streams = gaussian_streams(&horizons, &mut rng);

    let mut scheduler = Scheduler::new(catalog.len(), MemoryPolicy::ClearEachQuery);
    let mut meter = EnergyMeter::new(EnergyModel::from_catalog(catalog));

    // Evaluation order: the joint plan's, with each query's schedule.
    let ordered: Vec<(&SimQuery, &paotr_core::schedule::DnfSchedule)> = joint
        .order
        .iter()
        .map(|&q| (&queries[q], &*joint.schedules[q]))
        .collect();

    let n = workload.len();
    let mut energy = vec![0.0f64; n];
    let mut truths = vec![0usize; n];
    let mut items = vec![0u64; catalog.len()];
    for _ in 0..config.ticks {
        let outcomes =
            scheduler.run_tick(&ordered, &streams, joint.shared_execution, &mut meter, None);
        for (pos, out) in outcomes.iter().enumerate() {
            let q = joint.order[pos];
            energy[q] += out.cost;
            truths[q] += usize::from(out.value);
            for (acc, &pulled) in items.iter_mut().zip(&out.items_pulled) {
                *acc += u64::from(pulled);
            }
        }
        for s in &mut streams {
            s.advance_by(config.ticks_between.max(1), &mut rng);
        }
    }

    let ticks = config.ticks.max(1) as f64;
    let per_query_energy: Vec<f64> = energy.iter().map(|e| e / ticks).collect();
    WorkloadSimReport {
        total_energy: per_query_energy.iter().sum(),
        per_query_energy,
        items_pulled: items,
        truth_rates: truths.iter().map(|&t| t as f64 / ticks).collect(),
    }
}

/// Acklam's rational approximation of the standard normal quantile
/// function Φ⁻¹ (absolute error < 1.2e-9 on (0, 1)).
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{IndependentPlanner, SharedGreedyPlanner, WorkloadPlanner};
    use paotr_core::leaf::Leaf;
    use paotr_core::plan::Engine;
    use paotr_core::prob::Prob;
    use paotr_core::stream::{StreamCatalog, StreamId};
    use paotr_core::tree::DnfTree;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    #[test]
    fn quantile_hits_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.001) + 3.090232).abs() < 1e-4);
    }

    #[test]
    fn synthesized_leaf_probabilities_match_the_tree() {
        // One leaf, p = 0.3, window 4: measure its empirical truth rate.
        let tree = DnfTree::from_leaves(vec![vec![leaf(0, 4, 0.3)]]).unwrap();
        let w = Workload::from_trees(vec![tree], StreamCatalog::unit(1)).unwrap();
        let jp = IndependentPlanner.plan(&w, &Engine::new()).unwrap();
        let report = simulate(
            &w,
            &jp,
            SimConfig {
                ticks: 4000,
                seed: 11,
                // decorrelate consecutive windows
                ticks_between: 4,
            },
        );
        assert!(
            (report.truth_rates[0] - 0.3).abs() < 0.05,
            "measured {}",
            report.truth_rates[0]
        );
        // a single unconditional 4-item leaf costs 4 per tick
        assert!((report.total_energy - 4.0).abs() < 1e-9);
    }

    #[test]
    fn shared_execution_measures_below_isolated_on_overlapping_workloads() {
        let trees = vec![
            DnfTree::from_leaves(vec![vec![leaf(0, 5, 0.8), leaf(1, 2, 0.5)]]).unwrap(),
            DnfTree::from_leaves(vec![vec![leaf(0, 4, 0.7)], vec![leaf(1, 3, 0.4)]]).unwrap(),
            DnfTree::from_leaves(vec![vec![leaf(0, 3, 0.9), leaf(1, 4, 0.6)]]).unwrap(),
        ];
        let w =
            Workload::from_trees(trees, StreamCatalog::from_costs([2.0, 1.0]).unwrap()).unwrap();
        let engine = Engine::new();
        let cfg = SimConfig {
            ticks: 300,
            seed: 3,
            ticks_between: 1,
        };
        let indep = simulate(&w, &IndependentPlanner.plan(&w, &engine).unwrap(), cfg);
        let shared = simulate(
            &w,
            &SharedGreedyPlanner::default().plan(&w, &engine).unwrap(),
            cfg,
        );
        assert!(
            shared.total_energy < indep.total_energy,
            "shared {} vs isolated {}",
            shared.total_energy,
            indep.total_energy
        );
    }
}
