//! The shared-tick cost model.
//!
//! Within one evaluation tick every leaf's window ends at the same
//! timestamp, so the device memory a later query sees on stream `k` is
//! always a *prefix* of the most recent items — fully described by one
//! number per stream. The model tracks the **expected** prefix length
//! (`coverage`) as queries execute in order, and prices each query with
//! [`dnf_eval::expected_items_with_coverage`]: items already covered by
//! an earlier query's pull are free. This is the expected-state
//! approximation of the true (stochastic) shared execution; the
//! `streamsim` path in [`crate::sim`] validates it against measured
//! energy.

use crate::workload::Workload;
use paotr_core::cost::dnf_eval;
use paotr_core::schedule::DnfSchedule;
use paotr_core::stream::StreamId;

/// Predicted costs of executing a workload jointly in `order` (one
/// shared memory per tick), per query.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedPrediction {
    /// Predicted expected cost per query (workload order, unweighted).
    pub per_query: Vec<f64>,
    /// Expected per-stream memory coverage after the whole tick.
    pub final_coverage: Vec<f64>,
}

/// Prices each query of `order` under the shared coverage model, using
/// `schedules[q]` for query `q` (workload indexing). Schedules may be
/// owned or shared (`Arc`) — anything that borrows as a [`DnfSchedule`].
pub fn predict_shared<S: std::borrow::Borrow<DnfSchedule>>(
    workload: &Workload,
    order: &[usize],
    schedules: &[S],
) -> SharedPrediction {
    let catalog = workload.catalog();
    let mut coverage = vec![0.0f64; catalog.len()];
    let mut per_query = vec![0.0f64; workload.len()];
    for &q in order {
        let items = dnf_eval::expected_items_with_coverage(
            &workload.query(q).tree,
            catalog,
            schedules[q].borrow(),
            &coverage,
        );
        per_query[q] = dot_costs(workload, &items);
        for (c, i) in coverage.iter_mut().zip(&items) {
            *c += i;
        }
    }
    SharedPrediction {
        per_query,
        final_coverage: coverage,
    }
}

/// Expected cost of every query in isolation (empty memory), under the
/// given schedules.
pub fn isolated_costs<S: std::borrow::Borrow<DnfSchedule>>(
    workload: &Workload,
    schedules: &[S],
) -> Vec<f64> {
    workload
        .queries()
        .iter()
        .zip(schedules)
        .map(|(q, s)| dnf_eval::expected_cost(&q.tree, workload.catalog(), s.borrow()))
        .collect()
}

/// Dot product of a per-stream item vector with the catalog costs.
pub(crate) fn dot_costs(workload: &Workload, items: &[f64]) -> f64 {
    items
        .iter()
        .enumerate()
        .map(|(k, i)| i * workload.catalog().cost(StreamId(k)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use paotr_core::leaf::Leaf;
    use paotr_core::plan::Engine;
    use paotr_core::prob::Prob;
    use paotr_core::stream::StreamCatalog;
    use paotr_core::tree::DnfTree;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    fn workload() -> Workload {
        let t0 = DnfTree::from_leaves(vec![vec![leaf(0, 4, 0.9)]]).unwrap();
        let t1 = DnfTree::from_leaves(vec![vec![leaf(0, 4, 0.8), leaf(1, 1, 0.5)]]).unwrap();
        Workload::from_trees(vec![t0, t1], StreamCatalog::from_costs([2.0, 1.0]).unwrap()).unwrap()
    }

    #[test]
    fn shared_prediction_discounts_overlapping_pulls() {
        let w = workload();
        let schedules = w.default_schedules(&Engine::new()).unwrap();
        let iso = isolated_costs(&w, &schedules);
        // q0 pulls 4 items of stream 0 unconditionally: cost 8.
        assert!((iso[0] - 8.0).abs() < 1e-12);

        let pred = predict_shared(&w, &[0, 1], &schedules);
        assert!(
            (pred.per_query[0] - 8.0).abs() < 1e-12,
            "first query pays full"
        );
        // q1's 4 items of stream 0 are fully covered; it only risks
        // paying for stream 1.
        assert!(pred.per_query[1] < iso[1] - 1.0);
        assert!(pred.final_coverage[0] >= 4.0 - 1e-12);

        // order flipped: q1 pays full first; q0 rides on whatever
        // fraction of the window q1 was expected to pull.
        let flipped = predict_shared(&w, &[1, 0], &schedules);
        assert!((flipped.per_query[1] - iso[1]).abs() < 1e-12);
        assert!(flipped.per_query[0] < iso[0] - 1.0);
        // joint totals are far below the isolated sum either way
        let sum_iso: f64 = iso.iter().sum();
        assert!(pred.per_query.iter().sum::<f64>() < sum_iso);
        assert!(flipped.per_query.iter().sum::<f64>() < sum_iso);
    }

    #[test]
    fn empty_coverage_model_matches_isolated_costs() {
        let w = workload();
        let schedules = w.default_schedules(&Engine::new()).unwrap();
        let iso = isolated_costs(&w, &schedules);
        for (q, iso_q) in iso.iter().enumerate() {
            let solo = predict_shared(&w, &[q], &schedules);
            assert!((solo.per_query[q] - iso_q).abs() < 1e-12);
        }
    }
}
