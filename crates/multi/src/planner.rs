//! Joint workload planners.
//!
//! A workload planner decides (1) the order queries execute in within a
//! tick and (2) each query's leaf schedule, knowing that all queries
//! share one device memory. Three strategies are built in:
//!
//! * [`IndependentPlanner`] (`independent`) — the baseline: today's
//!   per-query [`Engine::plan`], no cross-query awareness, memory wiped
//!   between queries;
//! * [`SharedGreedyPlanner`] (`shared-greedy`) — greedy multi-query
//!   optimization in the spirit of Roy et al.'s MQO heuristics
//!   (arXiv:cs/9910021): queries are sequenced one at a time, each step
//!   picking the query whose marginal cost minus the coverage benefit
//!   it creates for the rest is smallest, and each query may be
//!   *re-planned* against an effective catalog in which already-covered
//!   streams are discounted — coalescing cross-query pulls;
//! * [`BatchAwarePlanner`] (`batch-aware`) — groups queries by their
//!   dominant stream and runs each group back-to-back (heaviest puller
//!   first), so items pulled this tick are reused while still hot.
//!
//! ## Planning-time engineering
//!
//! `shared-greedy` is quadratic in the number of queries (every round
//! re-scores every remaining candidate). Three levers keep that loop
//! fast enough for 128-query workloads:
//!
//! * every candidate is priced through a compiled, allocation-free
//!   [`CostModel`] kernel (per-call work scales with the query's own
//!   streams, not the catalog);
//! * per-round candidate evaluation fans out over the **persistent**
//!   `paotr_par` worker pool ([`SharedGreedyPlanner::threads`]) with one
//!   evaluation scratch per worker per round — no thread spawning and no
//!   per-candidate allocation in the round loop;
//! * the expensive coalescing *re-plan* of a candidate is cached and
//!   only recomputed when the coverage on that query's streams moved by
//!   more than [`SharedGreedyPlanner::replan_bound`] since the cached
//!   re-plan — with the default bound of `0.0` the cached plan is
//!   reused exactly when it is provably identical, so results match the
//!   always-replan loop while skipping its redundant work.

use crate::cost::{isolated_costs, predict_shared};
use crate::workload::{extract_schedule, Workload};
use paotr_core::cost::arrange::{ArrangeTerm, DEFAULT_HORIZON};
use paotr_core::cost::model::{CostModel, EvalScratch};
use paotr_core::error::Result;
use paotr_core::plan::{Engine, Plan};
use paotr_core::schedule::DnfSchedule;
use paotr_core::stream::{StreamCatalog, StreamId};
use paotr_par::ThreadCount;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The output of joint planning: per-query plans plus the cross-query
/// execution order, with predicted costs under the shared-tick model.
/// Plans and schedules are shared (`Arc`) with the planner's internal
/// baseline — cloning a `JointPlan` or keeping the baseline plan for a
/// query costs a reference count, not a deep copy.
#[derive(Debug, Clone)]
pub struct JointPlan {
    /// Registry name of the workload planner.
    pub planner: String,
    /// Query evaluation order within a tick (workload indices).
    pub order: Vec<usize>,
    /// Per-query plan, in workload order.
    pub plans: Vec<Arc<Plan>>,
    /// Per-query schedule extracted from `plans`, in workload order.
    pub schedules: Vec<Arc<DnfSchedule>>,
    /// Expected cost of each query's *default* plan in isolation — the
    /// independent baseline every planner is measured against.
    pub independent_costs: Vec<f64>,
    /// Predicted expected cost of each query under this joint plan
    /// (equals `independent_costs` for the `independent` planner).
    pub predicted_costs: Vec<f64>,
    /// Whether the plan assumes one shared memory per tick (joint
    /// planners) or isolated per-query memory (the baseline).
    pub shared_execution: bool,
    /// Streams the plan recommends maintaining as persistent
    /// arrangements during recurring serving (empty for the
    /// `independent` baseline, and for one-shot execution). Computed
    /// post-hoc from the committed plan's expected per-stream traffic,
    /// so order, schedules and predicted costs are identical whether or
    /// not a runtime acts on it.
    pub materialized: Vec<Materialization>,
    /// Wall-clock time spent planning the workload.
    pub planning_time: Duration,
}

/// One stream a joint plan recommends maintaining as a persistent
/// arrangement (see the `paotr-arrange` crate), with the crossover term
/// that justified it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Materialization {
    /// The stream to maintain.
    pub stream: StreamId,
    /// Ring size: the widest window any query needs on the stream.
    pub window: u32,
    /// The maintain-vs-repull term the decision was priced with.
    pub term: ArrangeTerm,
}

/// The materialization pass shared by the joint planners: price every
/// stream's maintain-vs-repull crossover against the plan's expected
/// per-tick pull traffic (`final_coverage`, catalog-indexed) and keep
/// the streams where maintenance wins. Recurring serving advances every
/// stream by one item per tick, so `delta = 1`; the fill amortizes over
/// the default serving horizon.
fn materialization_pass(workload: &Workload, final_coverage: &[f64]) -> Vec<Materialization> {
    let n_streams = workload.catalog().len();
    let mut windows = vec![0u32; n_streams];
    let mut readers = vec![0u32; n_streams];
    for q in workload.queries() {
        let mut touched = vec![false; n_streams];
        for (_, l) in q.tree.leaves() {
            windows[l.stream.0] = windows[l.stream.0].max(l.items);
            touched[l.stream.0] = true;
        }
        for (k, &t) in touched.iter().enumerate() {
            readers[k] += u32::from(t);
        }
    }
    (0..n_streams)
        .filter_map(|k| {
            if windows[k] == 0 {
                return None;
            }
            let term = ArrangeTerm {
                window: windows[k],
                readers: readers[k],
                delta: 1.0,
                repull_items: final_coverage[k],
                horizon: DEFAULT_HORIZON,
            };
            term.should_materialize().then_some(Materialization {
                stream: StreamId(k),
                window: windows[k],
                term,
            })
        })
        .collect()
}

impl JointPlan {
    /// Weighted aggregate of the independent baseline costs.
    pub fn aggregate_independent(&self, weights: &[f64]) -> f64 {
        dot(&self.independent_costs, weights)
    }

    /// Weighted aggregate of the predicted joint costs.
    pub fn aggregate_predicted(&self, weights: &[f64]) -> f64 {
        dot(&self.predicted_costs, weights)
    }

    /// Fraction of the independent baseline cost the joint plan is
    /// predicted to amortize away (0 = no sharing benefit).
    pub fn sharing_ratio(&self, weights: &[f64]) -> f64 {
        let indep = self.aggregate_independent(weights);
        if indep <= 0.0 {
            return 0.0;
        }
        1.0 - self.aggregate_predicted(weights) / indep
    }

    /// Predicted speedup over the independent baseline (`>= 1` for the
    /// built-in joint planners).
    pub fn speedup(&self, weights: &[f64]) -> f64 {
        let pred = self.aggregate_predicted(weights);
        if pred <= 0.0 {
            return f64::INFINITY;
        }
        self.aggregate_independent(weights) / pred
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// A joint planning strategy for multi-query workloads.
pub trait WorkloadPlanner: Send + Sync {
    /// Stable kebab-case identifier (`independent`, `shared-greedy`,
    /// `batch-aware`).
    fn name(&self) -> &str;

    /// One-line human description for help texts.
    fn description(&self) -> &str {
        ""
    }

    /// Plans the workload, using `engine` for all per-query planning
    /// (and its cache across re-plans).
    fn plan(&self, workload: &Workload, engine: &Engine) -> Result<JointPlan>;
}

/// Every built-in workload planner, in comparison order (baseline
/// first).
pub fn default_planners() -> Vec<Box<dyn WorkloadPlanner>> {
    vec![
        Box::new(IndependentPlanner),
        Box::new(SharedGreedyPlanner::default()),
        Box::new(BatchAwarePlanner),
    ]
}

/// Looks a built-in workload planner up by its stable name.
pub fn planner_by_name(name: &str) -> Option<Box<dyn WorkloadPlanner>> {
    default_planners().into_iter().find(|p| p.name() == name)
}

/// The stable names of the built-in workload planners.
pub fn planner_names() -> Vec<&'static str> {
    vec!["independent", "shared-greedy", "batch-aware"]
}

/// Shared first phase of every planner: the per-query default plans,
/// their schedules and their isolated costs. Plans and schedules are
/// `Arc`'d here once and shared into every [`JointPlan`] that keeps
/// them, so "keep the default plan for query q" is free.
struct Baseline {
    plans: Vec<Arc<Plan>>,
    schedules: Vec<Arc<DnfSchedule>>,
    costs: Vec<f64>,
}

fn baseline(
    workload: &Workload,
    engine: &Engine,
    threads: Option<ThreadCount>,
) -> Result<Baseline> {
    // One batched call through the core facade: the catalog is
    // fingerprinted once and the weights validated there.
    let queries: Vec<paotr_core::plan::QueryRef<'_>> = workload
        .queries()
        .iter()
        .map(|q| paotr_core::plan::QueryRef::from(&q.tree))
        .collect();
    let weights = workload.weights();
    let plans = match threads {
        Some(t) => engine.plan_workload_parallel(&queries, &weights, workload.catalog(), t)?,
        None => engine.plan_workload(&queries, &weights, workload.catalog())?,
    }
    .plans;
    let schedules: Vec<Arc<DnfSchedule>> = plans
        .iter()
        .zip(workload.queries())
        .map(|(p, q)| extract_schedule(p, &q.tree, &q.name).map(Arc::new))
        .collect::<Result<_>>()?;
    let costs = isolated_costs(workload, &schedules);
    Ok(Baseline {
        plans: plans.into_iter().map(Arc::new).collect(),
        schedules,
        costs,
    })
}

/// The baseline: every query planned in isolation, executed with its
/// own memory. No cross-query sharing is assumed or exploited.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndependentPlanner;

impl WorkloadPlanner for IndependentPlanner {
    fn name(&self) -> &str {
        "independent"
    }

    fn description(&self) -> &str {
        "per-query default plans, isolated memory (the status-quo baseline)"
    }

    fn plan(&self, workload: &Workload, engine: &Engine) -> Result<JointPlan> {
        let started = Instant::now();
        let base = baseline(workload, engine, None)?;
        Ok(JointPlan {
            planner: self.name().to_string(),
            order: (0..workload.len()).collect(),
            predicted_costs: base.costs.clone(),
            independent_costs: base.costs,
            plans: base.plans,
            schedules: base.schedules,
            shared_execution: false,
            materialized: Vec::new(),
            planning_time: started.elapsed(),
        })
    }
}

/// Greedy MQO: sequences queries one at a time, re-planning each
/// candidate against a coverage-discounted catalog so that cross-query
/// stream pulls coalesce, and scoring candidates by marginal cost minus
/// the coverage benefit they create for the queries still waiting.
///
/// See the module docs for the planning-time levers (`threads`,
/// `replan_bound`, the [`CostModel`] kernel).
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedGreedyPlanner {
    /// Worker threads for per-round candidate evaluation
    /// (`ThreadCount::Auto` by default; results are identical at any
    /// thread count).
    pub threads: ThreadCount,
    /// A cached coalescing re-plan is reused while the coverage on the
    /// candidate's streams has moved by at most this many expected items
    /// since the re-plan ran. `0.0` (default) reuses only provably
    /// identical re-plans; larger bounds trade plan quality for planning
    /// time (predicted costs stay exact — only the searched schedule may
    /// be staler).
    pub replan_bound: f64,
}

impl SharedGreedyPlanner {
    /// Single-threaded, exact-reuse configuration (the reference
    /// behaviour; useful for deterministic timing comparisons).
    pub fn sequential() -> SharedGreedyPlanner {
        SharedGreedyPlanner {
            threads: ThreadCount::Fixed(1),
            replan_bound: 0.0,
        }
    }

    /// Catalog in which stream `k`'s per-item cost is scaled by the
    /// fraction of the query's widest window on `k` that is *not*
    /// already covered — a covered stream looks cheap, so the per-query
    /// planner schedules its leaves early and the pulls coalesce.
    fn effective_catalog(
        max_window: &[u32],
        catalog: &StreamCatalog,
        coverage: &[f64],
    ) -> StreamCatalog {
        let mut out = StreamCatalog::new();
        for (k, info) in catalog.iter() {
            let discount = if max_window[k.0] == 0 || coverage[k.0] <= 0.0 {
                1.0
            } else {
                (1.0 - coverage[k.0] / f64::from(max_window[k.0])).max(0.0)
            };
            out.add(info.cost * discount)
                .expect("scaled costs stay finite and >= 0");
        }
        out
    }
}

/// One candidate's exact evaluation for the current round.
struct CandidateEval {
    /// Exact predicted cost under the current coverage.
    cost: f64,
    /// Expected items pulled, aligned with the query model's touched
    /// streams.
    items: Vec<f64>,
    plan: Arc<Plan>,
    sched: Arc<DnfSchedule>,
    /// A freshly computed coalescing re-plan to cache for later rounds.
    fresh_replan: Option<ReplanCache>,
}

/// A cached coalescing re-plan and the coverage it was computed under
/// (restricted to the query's own streams).
#[derive(Clone)]
struct ReplanCache {
    plan: Arc<Plan>,
    sched: Arc<DnfSchedule>,
    cov_snapshot: Vec<f64>,
}

impl SharedGreedyPlanner {
    /// Exact evaluation of candidate `q` under `coverage`: price the
    /// default schedule, re-plan (or reuse a cached re-plan) against the
    /// coverage-discounted catalog, keep the cheaper.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_candidate(
        q: usize,
        workload: &Workload,
        engine: &Engine,
        base: &Baseline,
        model: &CostModel,
        max_window: &[u32],
        coverage: &[f64],
        cached: Option<&ReplanCache>,
        replan_bound: f64,
        catalog_fp: u64,
        scratch: &mut EvalScratch,
    ) -> Result<CandidateEval> {
        let catalog = workload.catalog();
        let tree = &workload.query(q).tree;
        let cost_a =
            model.expected_cost_with_coverage(base.schedules[q].order(), coverage, scratch);
        let items_a: Vec<f64> = model.items_per_stream(scratch).map(|(_, i)| i).collect();

        // Re-planning can only help once some of this query's streams
        // are covered (an undiscounted catalog reproduces the default
        // plan).
        let any_covered = model.touched_streams().any(|s| coverage[s.0] > 0.0);
        if !any_covered {
            return Ok(CandidateEval {
                cost: cost_a,
                items: items_a,
                plan: base.plans[q].clone(),
                sched: base.schedules[q].clone(),
                fresh_replan: None,
            });
        }

        // Candidate B: the coalescing re-plan. Reuse the cached one
        // while the coverage on this query's streams has not moved by
        // more than the bound since it was computed; its cost below is
        // exact either way.
        let cache_valid = cached.is_some_and(|c| {
            model
                .touched_streams()
                .zip(&c.cov_snapshot)
                .all(|(s, &snap)| (coverage[s.0] - snap).abs() <= replan_bound)
        });
        let (plan_b, sched_b, fresh_replan) = if cache_valid {
            let c = cached.expect("checked above");
            (c.plan.clone(), c.sched.clone(), None)
        } else {
            let eff = Self::effective_catalog(max_window, catalog, coverage);
            let mut plan_b = engine.plan(tree, &eff)?;
            let sched_b = Arc::new(extract_schedule(&plan_b, tree, &workload.query(q).name)?);
            // Re-price the stored plan against the *real* catalog: the
            // effective catalog exists only to steer the per-query
            // planner, and a plan whose expected_cost reflects
            // discounted stream costs would misreport itself.
            plan_b.expected_cost = Some(model.expected_cost(&sched_b, scratch));
            plan_b.catalog_fingerprint = catalog_fp;
            let plan_b = Arc::new(plan_b);
            let cov_snapshot: Vec<f64> = model.touched_streams().map(|s| coverage[s.0]).collect();
            let cache = ReplanCache {
                plan: plan_b.clone(),
                sched: sched_b.clone(),
                cov_snapshot,
            };
            (plan_b, sched_b, Some(cache))
        };
        let cost_b = model.expected_cost_with_coverage(sched_b.order(), coverage, scratch);
        if cost_b < cost_a - 1e-12 {
            let items_b: Vec<f64> = model.items_per_stream(scratch).map(|(_, i)| i).collect();
            Ok(CandidateEval {
                cost: cost_b,
                items: items_b,
                plan: plan_b,
                sched: sched_b,
                fresh_replan,
            })
        } else {
            Ok(CandidateEval {
                cost: cost_a,
                items: items_a,
                plan: base.plans[q].clone(),
                sched: base.schedules[q].clone(),
                fresh_replan,
            })
        }
    }
}

impl WorkloadPlanner for SharedGreedyPlanner {
    fn name(&self) -> &str {
        "shared-greedy"
    }

    fn description(&self) -> &str {
        "greedy MQO: coverage-aware query sequencing + coalescing re-plans (cs/9910021-style)"
    }

    fn plan(&self, workload: &Workload, engine: &Engine) -> Result<JointPlan> {
        let started = Instant::now();
        let workers = self.threads.resolve();
        let base = baseline(workload, engine, (workers > 1).then_some(self.threads))?;
        let catalog = workload.catalog();
        let weights = workload.weights();
        let catalog_fp = paotr_core::plan::catalog_fingerprint(catalog);
        let n = workload.len();

        // Compile the cost kernel once per query; every candidate
        // evaluation below is then allocation-free array arithmetic.
        let models: Vec<CostModel> = workload
            .queries()
            .iter()
            .map(|q| CostModel::new(&q.tree, catalog))
            .collect();
        let max_windows: Vec<Vec<u32>> = models
            .iter()
            .map(|m| {
                (0..catalog.len())
                    .map(|k| m.max_window(StreamId(k)))
                    .collect()
            })
            .collect();

        // Independent per-stream demand of every query, for the benefit
        // estimate (catalog-indexed; only touched entries are non-zero).
        let mut scratch = EvalScratch::new();
        let demand: Vec<Vec<f64>> = (0..n)
            .map(|q| {
                models[q].expected_cost(&base.schedules[q], &mut scratch);
                models[q].items_vec(&scratch)
            })
            .collect();

        let mut coverage = vec![0.0f64; catalog.len()];
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        let mut plans = base.plans.clone();
        let mut schedules = base.schedules.clone();
        let mut predicted = vec![0.0f64; n];
        let mut replans: Vec<Option<ReplanCache>> = vec![None; n];

        while !remaining.is_empty() {
            // Phase 1: exact candidate evaluations — independent per
            // candidate, fanned out over the pool for wide rounds.
            let evaluate = |&q: &usize, scratch: &mut EvalScratch| {
                Self::evaluate_candidate(
                    q,
                    workload,
                    engine,
                    &base,
                    &models[q],
                    &max_windows[q],
                    &coverage,
                    replans[q].as_ref(),
                    self.replan_bound,
                    catalog_fp,
                    scratch,
                )
            };
            let evals: Vec<CandidateEval> = if workers > 1 && remaining.len() >= 16 {
                // Persistent pool + one scratch per participating worker
                // for the whole round (not one per candidate).
                paotr_par::par_map_init(&remaining, self.threads, EvalScratch::new, |q, scratch| {
                    evaluate(q, scratch)
                })
                .into_iter()
                .collect::<Result<_>>()?
            } else {
                remaining
                    .iter()
                    .map(|q| evaluate(q, &mut scratch))
                    .collect::<Result<_>>()?
            };

            // Phase 2: deterministic scoring and pick. Benefit: coverage
            // this candidate adds, valued against the independent demand
            // of the queries still waiting (only the candidate's own
            // streams can contribute).
            let mut best: Option<(f64, usize)> = None;
            for (idx, (&q, eval)) in remaining.iter().zip(&evals).enumerate() {
                let mut benefit = 0.0;
                for &r in &remaining {
                    if r == q {
                        continue;
                    }
                    for (s, &iq) in models[q].touched_streams().zip(&eval.items) {
                        if iq <= 0.0 {
                            continue;
                        }
                        let k = s.0;
                        let before = demand[r][k].min(coverage[k]);
                        let after = demand[r][k].min(coverage[k] + iq);
                        benefit += weights[r] * (after - before) * catalog.cost(s);
                    }
                }
                let score = weights[q] * eval.cost - benefit;
                // `remaining` ascends, so on ties the earlier query
                // already holds `best` — strict improvement only.
                let better = match &best {
                    None => true,
                    Some((b, _)) => score < *b - 1e-12,
                };
                if better {
                    best = Some((score, idx));
                }
            }
            let (_, idx) = best.expect("remaining is non-empty");
            let q = remaining[idx];

            // Commit: cache fresh re-plans for later rounds, install the
            // winner, advance coverage.
            for (&r, eval) in remaining.iter().zip(&evals) {
                if let Some(cache) = &eval.fresh_replan {
                    replans[r] = Some(cache.clone());
                }
            }
            let eval = &evals[idx];
            for (s, &i) in models[q].touched_streams().zip(&eval.items) {
                coverage[s.0] += i;
            }
            plans[q] = eval.plan.clone();
            schedules[q] = eval.sched.clone();
            predicted[q] = eval.cost;
            order.push(q);
            remaining.remove(idx);
        }

        Ok(JointPlan {
            planner: self.name().to_string(),
            order,
            plans,
            schedules,
            independent_costs: base.costs,
            predicted_costs: predicted,
            shared_execution: true,
            materialized: materialization_pass(workload, &coverage),
            planning_time: started.elapsed(),
        })
    }
}

/// Groups queries by their dominant stream (the stream carrying the
/// largest share of their expected pull cost) and executes each group
/// back-to-back, heaviest puller first, so the group's shared items are
/// reused while still in memory this tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchAwarePlanner;

impl WorkloadPlanner for BatchAwarePlanner {
    fn name(&self) -> &str {
        "batch-aware"
    }

    fn description(&self) -> &str {
        "group queries by dominant stream; heaviest puller first within each group"
    }

    fn plan(&self, workload: &Workload, engine: &Engine) -> Result<JointPlan> {
        let started = Instant::now();
        let base = baseline(workload, engine, None)?;
        let catalog = workload.catalog();
        let weights = workload.weights();
        let mut scratch = EvalScratch::new();
        let demand: Vec<Vec<f64>> = workload
            .queries()
            .iter()
            .zip(&base.schedules)
            .map(|(q, s)| {
                let model = CostModel::new(&q.tree, catalog);
                model.expected_cost(s, &mut scratch);
                model.items_vec(&scratch)
            })
            .collect();

        // Dominant stream per query: the stream with the largest
        // expected pull cost.
        let dominant: Vec<usize> = demand
            .iter()
            .map(|items| {
                (0..catalog.len())
                    .max_by(|&a, &b| {
                        let ca = items[a] * catalog.cost(StreamId(a));
                        let cb = items[b] * catalog.cost(StreamId(b));
                        ca.total_cmp(&cb)
                    })
                    .unwrap_or(0)
            })
            .collect();

        // Group queries by dominant stream; order groups by their
        // weighted traffic on that stream (descending), then stream id.
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (q, &k) in dominant.iter().enumerate() {
            groups.entry(k).or_default().push(q);
        }
        let mut ordered_groups: Vec<(f64, usize, Vec<usize>)> = groups
            .into_iter()
            .map(|(k, qs)| {
                let traffic: f64 = qs
                    .iter()
                    .map(|&q| weights[q] * demand[q][k] * catalog.cost(StreamId(k)))
                    .sum();
                (traffic, k, qs)
            })
            .collect();
        ordered_groups.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut order = Vec::with_capacity(workload.len());
        for (_, k, mut qs) in ordered_groups {
            // Heaviest puller of the group's stream first: its pull
            // covers the widest window for everyone behind it.
            qs.sort_by(|&a, &b| demand[b][k].total_cmp(&demand[a][k]).then(a.cmp(&b)));
            order.extend(qs);
        }

        let prediction = predict_shared(workload, &order, &base.schedules);
        Ok(JointPlan {
            planner: self.name().to_string(),
            order,
            plans: base.plans,
            schedules: base.schedules,
            independent_costs: base.costs,
            predicted_costs: prediction.per_query,
            shared_execution: true,
            materialized: materialization_pass(workload, &prediction.final_coverage),
            planning_time: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paotr_core::cost::dnf_eval;
    use paotr_core::leaf::Leaf;
    use paotr_core::prob::Prob;
    use paotr_core::tree::DnfTree;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    fn overlapping_workload() -> Workload {
        // Four queries, all leaning on streams 0/1, plus private tails.
        let trees = vec![
            DnfTree::from_leaves(vec![
                vec![leaf(0, 4, 0.7), leaf(2, 1, 0.5)],
                vec![leaf(1, 2, 0.6)],
            ])
            .unwrap(),
            DnfTree::from_leaves(vec![vec![leaf(0, 3, 0.8), leaf(1, 3, 0.4)]]).unwrap(),
            DnfTree::from_leaves(vec![
                vec![leaf(1, 4, 0.5)],
                vec![leaf(0, 2, 0.3), leaf(3, 1, 0.9)],
            ])
            .unwrap(),
            DnfTree::from_leaves(vec![vec![leaf(0, 5, 0.6), leaf(2, 2, 0.7)]]).unwrap(),
        ];
        Workload::from_trees(
            trees,
            StreamCatalog::from_costs([2.0, 3.0, 1.0, 0.5]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn planner_names_round_trip() {
        for name in planner_names() {
            let p = planner_by_name(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(planner_by_name("nope").is_none());
        assert_eq!(default_planners().len(), 3);
    }

    #[test]
    fn independent_planner_is_the_identity_baseline() {
        let w = overlapping_workload();
        let engine = Engine::new();
        let jp = IndependentPlanner.plan(&w, &engine).unwrap();
        assert_eq!(jp.order, vec![0, 1, 2, 3]);
        assert_eq!(jp.predicted_costs, jp.independent_costs);
        assert!(!jp.shared_execution);
        assert!((jp.sharing_ratio(&w.weights()) - 0.0).abs() < 1e-12);
        assert!((jp.speedup(&w.weights()) - 1.0).abs() < 1e-12);
        for (p, q) in jp.plans.iter().zip(w.queries()) {
            assert_eq!(**p, engine.plan(&q.tree, w.catalog()).unwrap());
        }
    }

    #[test]
    fn joint_planners_beat_or_match_the_baseline_prediction() {
        let w = overlapping_workload();
        let engine = Engine::new();
        let weights = w.weights();
        let indep = IndependentPlanner
            .plan(&w, &engine)
            .unwrap()
            .aggregate_predicted(&weights);
        let shared_greedy = SharedGreedyPlanner::default();
        for planner in [&shared_greedy as &dyn WorkloadPlanner, &BatchAwarePlanner] {
            let jp = planner.plan(&w, &engine).unwrap();
            assert!(jp.shared_execution);
            // order is a permutation of the queries
            let mut o = jp.order.clone();
            o.sort_unstable();
            assert_eq!(o, vec![0, 1, 2, 3], "{}", planner.name());
            let agg = jp.aggregate_predicted(&weights);
            assert!(
                agg <= indep + 1e-9,
                "{}: {agg} vs independent {indep}",
                planner.name()
            );
            assert!(jp.sharing_ratio(&weights) >= -1e-12);
            assert!(jp.speedup(&weights) >= 1.0 - 1e-12);
            // every schedule is valid for its tree, and every stored
            // plan is priced against the *real* catalog (re-plans must
            // not leak effective-catalog costs)
            for ((s, p), q) in jp.schedules.iter().zip(&jp.plans).zip(w.queries()) {
                DnfSchedule::new(s.order().to_vec(), &q.tree).unwrap();
                let real = dnf_eval::expected_cost(&q.tree, w.catalog(), s);
                let stored = p.expected_cost.expect("DNF plans carry costs");
                assert!(
                    (stored - real).abs() < 1e-9,
                    "{}: stored {stored} vs real-catalog {real}",
                    planner.name()
                );
            }
        }
        // with this much overlap, shared-greedy must strictly win
        let sg = SharedGreedyPlanner::default().plan(&w, &engine).unwrap();
        assert!(sg.aggregate_predicted(&weights) < indep * 0.95);
    }

    #[test]
    fn parallel_and_sequential_shared_greedy_agree() {
        // 20 queries: wide enough that the first rounds take the
        // par_map fan-out path (the pool engages at >= 16 remaining
        // candidates), then drain through the sequential tail.
        let (trees, catalog) = paotr_gen::workload::workload_instance(
            paotr_gen::workload::WorkloadConfig::with_overlap(20, 0.6),
            0,
        );
        let w = Workload::from_trees(trees, catalog).unwrap();
        let engine = Engine::new();
        let seq = SharedGreedyPlanner::sequential().plan(&w, &engine).unwrap();
        let par = SharedGreedyPlanner {
            threads: ThreadCount::Fixed(4),
            replan_bound: 0.0,
        }
        .plan(&w, &engine)
        .unwrap();
        assert_eq!(seq.order, par.order);
        assert_eq!(seq.predicted_costs, par.predicted_costs);
        assert_eq!(seq.plans, par.plans);
        assert_eq!(seq.schedules, par.schedules);
        assert_eq!(seq.materialized, par.materialized);
    }

    #[test]
    fn joint_planners_materialize_hot_streams_only() {
        let w = overlapping_workload();
        let engine = Engine::new();
        for planner in [
            &SharedGreedyPlanner::default() as &dyn WorkloadPlanner,
            &BatchAwarePlanner,
        ] {
            let jp = planner.plan(&w, &engine).unwrap();
            let streams: Vec<usize> = jp.materialized.iter().map(|m| m.stream.0).collect();
            // Stream 0 carries all four queries' windows (up to 5
            // items): its expected shared traffic dwarfs the one-item
            // maintenance delta.
            assert!(streams.contains(&0), "{}: {streams:?}", planner.name());
            // Stream 3 is one 1-item leaf behind an OR: re-pulling at
            // most one item sometimes can never beat maintaining one
            // item every tick.
            assert!(!streams.contains(&3), "{}: {streams:?}", planner.name());
            for m in &jp.materialized {
                assert!(m.term.should_materialize());
                assert_eq!(m.window, m.term.window);
                assert!(m.term.readers > 0);
            }
        }
    }

    #[test]
    fn independent_baseline_never_materializes() {
        let w = overlapping_workload();
        let jp = IndependentPlanner.plan(&w, &Engine::new()).unwrap();
        assert!(jp.materialized.is_empty());
    }

    #[test]
    fn replan_bound_trades_work_not_correctness() {
        let w = overlapping_workload();
        let engine = Engine::new();
        let weights = w.weights();
        let exact = SharedGreedyPlanner::sequential().plan(&w, &engine).unwrap();
        let bounded = SharedGreedyPlanner {
            threads: ThreadCount::Fixed(1),
            replan_bound: 100.0, // effectively never re-plan twice
        }
        .plan(&w, &engine)
        .unwrap();
        // Bounded re-planning may keep staler coalescing schedules, but
        // predicted costs stay exact and never beat-worse-than the
        // independent baseline (candidate A is always available).
        assert!(
            bounded.aggregate_predicted(&weights) <= bounded.aggregate_independent(&weights) + 1e-9
        );
        // per-query predictions are real costs of the chosen schedules
        for (q, (s, &c)) in bounded
            .schedules
            .iter()
            .zip(&bounded.predicted_costs)
            .enumerate()
        {
            DnfSchedule::new(s.order().to_vec(), &w.query(q).tree).unwrap();
            assert!(c.is_finite());
        }
        let _ = exact;
    }

    #[test]
    fn single_query_workload_reduces_to_the_per_query_plan() {
        let tree = DnfTree::from_leaves(vec![
            vec![leaf(0, 3, 0.4), leaf(1, 1, 0.7)],
            vec![leaf(0, 5, 0.6)],
        ])
        .unwrap();
        let cat = StreamCatalog::from_costs([2.0, 3.0]).unwrap();
        let w = Workload::from_trees(vec![tree.clone()], cat.clone()).unwrap();
        let engine = Engine::new();
        let per_query = engine.plan(&tree, &cat).unwrap();
        for planner in default_planners() {
            let jp = planner.plan(&w, &engine).unwrap();
            assert_eq!(jp.order, vec![0], "{}", planner.name());
            assert_eq!(*jp.plans[0], per_query, "{}", planner.name());
            assert!(
                (jp.predicted_costs[0] - per_query.expected_cost.unwrap()).abs() < 1e-12,
                "{}",
                planner.name()
            );
        }
    }

    #[test]
    fn weights_skew_the_aggregates() {
        let w = overlapping_workload();
        let engine = Engine::new();
        let jp = SharedGreedyPlanner::default().plan(&w, &engine).unwrap();
        let uniform = jp.aggregate_independent(&[1.0, 1.0, 1.0, 1.0]);
        let skewed = jp.aggregate_independent(&[10.0, 1.0, 1.0, 1.0]);
        assert!(skewed > uniform);
    }
}
