//! Workload-level reports: predicted and measured costs per planner.

use crate::planner::{JointPlan, WorkloadPlanner};
use crate::sim::{simulate, SimConfig, WorkloadSimReport};
use crate::workload::Workload;
use paotr_core::error::Result;
use paotr_core::plan::Engine;

/// One query's entry in a [`WorkloadOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// Query name.
    pub name: String,
    /// Query weight.
    pub weight: f64,
    /// Expected cost of the per-query default plan in isolation.
    pub independent_cost: f64,
    /// Predicted expected cost under the joint plan.
    pub predicted_cost: f64,
    /// Measured mean energy per tick, when simulation ran.
    pub simulated_energy: Option<f64>,
}

/// Per-planner summary of planning a workload — the report the CLI,
/// benches and experiments print.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOutcome {
    /// Workload planner name.
    pub planner: String,
    /// Per-query breakdown, in workload order.
    pub per_query: Vec<QueryReport>,
    /// Weighted aggregate of the independent baseline.
    pub aggregate_independent: f64,
    /// Weighted aggregate of the predicted joint costs.
    pub aggregate_predicted: f64,
    /// Predicted fraction of the baseline cost amortized away.
    pub sharing_ratio: f64,
    /// Predicted speedup over the independent baseline.
    pub speedup: f64,
    /// Measured mean energy per tick (all queries), when simulated.
    pub simulated_energy: Option<f64>,
    /// Measured speedup over the independent baseline's simulation,
    /// when both were simulated.
    pub simulated_speedup: Option<f64>,
}

impl WorkloadOutcome {
    /// Summarizes a joint plan (prediction only; attach measurements
    /// with [`WorkloadOutcome::attach_simulation`]).
    pub fn from_plan(workload: &Workload, joint: &JointPlan) -> WorkloadOutcome {
        let weights = workload.weights();
        let per_query = workload
            .queries()
            .iter()
            .enumerate()
            .map(|(i, q)| QueryReport {
                name: q.name.clone(),
                weight: q.weight,
                independent_cost: joint.independent_costs[i],
                predicted_cost: joint.predicted_costs[i],
                simulated_energy: None,
            })
            .collect();
        WorkloadOutcome {
            planner: joint.planner.clone(),
            per_query,
            aggregate_independent: joint.aggregate_independent(&weights),
            aggregate_predicted: joint.aggregate_predicted(&weights),
            sharing_ratio: joint.sharing_ratio(&weights),
            speedup: joint.speedup(&weights),
            simulated_energy: None,
            simulated_speedup: None,
        }
    }

    /// Records measured energies from a simulation run.
    pub fn attach_simulation(&mut self, sim: &WorkloadSimReport) {
        for (report, &e) in self.per_query.iter_mut().zip(&sim.per_query_energy) {
            report.simulated_energy = Some(e);
        }
        self.simulated_energy = Some(sim.total_energy);
    }
}

/// Plans `workload` with every planner, optionally simulating each
/// plan, and fills in measured speedups relative to the `independent`
/// baseline. The baseline simulation is always run when `sim` is set —
/// the caller's planner list does not need to contain `independent`,
/// nor put it first — and is reused for the `independent` row itself
/// rather than re-simulated. This is the engine behind
/// `paotr workload --compare`.
pub fn compare(
    workload: &Workload,
    engine: &Engine,
    planners: &[Box<dyn WorkloadPlanner>],
    sim: Option<SimConfig>,
) -> Result<Vec<WorkloadOutcome>> {
    let baseline_joint = match sim {
        Some(_) => Some(crate::planner::IndependentPlanner.plan(workload, engine)?),
        None => None,
    };
    let baseline = match (sim, &baseline_joint) {
        (Some(cfg), Some(jp)) => Some(simulate(workload, jp, cfg)),
        _ => None,
    };
    let mut outcomes = Vec::with_capacity(planners.len());
    for planner in planners {
        // reuse the already-planned baseline for the `independent` row
        let joint = match &baseline_joint {
            Some(jp) if planner.name() == "independent" => jp.clone(),
            _ => planner.plan(workload, engine)?,
        };
        let mut outcome = WorkloadOutcome::from_plan(workload, &joint);
        if let (Some(cfg), Some(base)) = (sim, baseline.as_ref()) {
            let report = if planner.name() == "independent" {
                base.clone()
            } else {
                simulate(workload, &joint, cfg)
            };
            outcome.attach_simulation(&report);
            if report.total_energy > 0.0 {
                outcome.simulated_speedup = Some(base.total_energy / report.total_energy);
            }
        }
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::default_planners;
    use paotr_core::leaf::Leaf;
    use paotr_core::prob::Prob;
    use paotr_core::stream::{StreamCatalog, StreamId};
    use paotr_core::tree::DnfTree;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    fn workload() -> Workload {
        let trees = vec![
            DnfTree::from_leaves(vec![vec![leaf(0, 4, 0.8), leaf(1, 1, 0.5)]]).unwrap(),
            DnfTree::from_leaves(vec![vec![leaf(0, 3, 0.7)], vec![leaf(1, 2, 0.4)]]).unwrap(),
        ];
        Workload::from_trees(trees, StreamCatalog::from_costs([2.0, 1.0]).unwrap()).unwrap()
    }

    #[test]
    fn compare_fills_predictions_and_measurements() {
        let w = workload();
        let outcomes = compare(
            &w,
            &Engine::new(),
            &default_planners(),
            Some(SimConfig {
                ticks: 120,
                seed: 5,
                ticks_between: 1,
            }),
        )
        .unwrap();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].planner, "independent");
        assert!((outcomes[0].speedup - 1.0).abs() < 1e-12);
        assert_eq!(outcomes[0].simulated_speedup, Some(1.0));
        for o in &outcomes {
            assert_eq!(o.per_query.len(), 2);
            assert!(o.aggregate_independent > 0.0);
            assert!(o.simulated_energy.unwrap() > 0.0);
            assert!(o.per_query.iter().all(|q| q.simulated_energy.is_some()));
            // joint planners never predict worse than the baseline
            assert!(o.aggregate_predicted <= o.aggregate_independent + 1e-9);
        }
        // the shared planners actually measure cheaper here
        let base = outcomes[0].simulated_energy.unwrap();
        assert!(outcomes[1].simulated_energy.unwrap() <= base + 1e-9);
    }

    #[test]
    fn compare_defines_sim_speedup_without_an_independent_row() {
        use crate::planner::SharedGreedyPlanner;
        let w = workload();
        let planners: Vec<Box<dyn WorkloadPlanner>> =
            vec![Box::new(SharedGreedyPlanner::default())];
        let outcomes = compare(
            &w,
            &Engine::new(),
            &planners,
            Some(SimConfig {
                ticks: 60,
                seed: 9,
                ticks_between: 1,
            }),
        )
        .unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].planner, "shared-greedy");
        assert!(
            outcomes[0].simulated_speedup.is_some(),
            "baseline is simulated implicitly"
        );
    }

    #[test]
    fn compare_without_simulation_leaves_measurements_empty() {
        let w = workload();
        let outcomes = compare(&w, &Engine::new(), &default_planners(), None).unwrap();
        for o in &outcomes {
            assert_eq!(o.simulated_energy, None);
            assert_eq!(o.simulated_speedup, None);
        }
    }
}
