//! # paotr-multi — the multi-query workload subsystem
//!
//! The paper optimizes *one* query at a time; its central premise —
//! leaves share data streams, so evaluation order decides how much
//! acquisition cost is amortized — applies equally **across** queries.
//! A fleet device rarely serves one query: it serves a workload, and
//! items pulled for one query sit in device memory where every other
//! query evaluated this tick can read them for free. This crate plans
//! and executes such workloads jointly (in the spirit of shared query
//! execution, arXiv:1809.00159, and greedy multi-query optimization,
//! arXiv:cs/9910021):
//!
//! * [`Workload`] — queries + weights over one shared
//!   [`StreamCatalog`](paotr_core::stream::StreamCatalog), with a
//!   shared-stream [interference analysis](Workload::interference)
//!   (which streams are read by which queries, expected pull overlap);
//! * [`planner`] — the [`WorkloadPlanner`] trait and three strategies:
//!   `independent` (the per-query baseline), `shared-greedy` (greedy
//!   MQO: coverage-aware sequencing + coalescing re-plans) and
//!   `batch-aware` (dominant-stream grouping);
//! * [`cost`] — the shared-tick coverage cost model pricing a joint
//!   plan without simulation;
//! * [`sim`] — the `stream-sim` validation path: one tick evaluates
//!   *all* queries against shared device memory and meters real energy;
//! * [`outcome`] — [`WorkloadOutcome`] reports (per-query and aggregate
//!   cost, sharing ratio, speedup vs. independent) and the
//!   [`compare`](outcome::compare) harness behind
//!   `paotr workload --compare`.
//!
//! ## Quick start
//!
//! ```
//! use paotr_core::plan::Engine;
//! use paotr_core::prelude::*;
//! use paotr_multi::{planner_by_name, Workload};
//!
//! // Two queries leaning on the same expensive stream.
//! let leaf = |s, d, p| Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap();
//! let q0 = DnfTree::from_leaves(vec![vec![leaf(0, 5, 0.8), leaf(1, 1, 0.5)]]).unwrap();
//! let q1 = DnfTree::from_leaves(vec![vec![leaf(0, 4, 0.7)]]).unwrap();
//! let catalog = StreamCatalog::from_costs([4.0, 1.0]).unwrap();
//! let workload = Workload::from_trees(vec![q0, q1], catalog).unwrap();
//!
//! let engine = Engine::new();
//! let joint = planner_by_name("shared-greedy")
//!     .unwrap()
//!     .plan(&workload, &engine)
//!     .unwrap();
//! let weights = workload.weights();
//! // q1's four items of stream 0 ride on q0's five-item pull:
//! assert!(joint.speedup(&weights) > 1.2);
//! assert!(joint.aggregate_predicted(&weights) <= joint.aggregate_independent(&weights));
//! ```
#![forbid(unsafe_code)]

pub mod cost;
pub mod outcome;
pub mod planner;
pub mod sim;
pub mod workload;

pub use outcome::{compare, QueryReport, WorkloadOutcome};
pub use planner::{
    default_planners, planner_by_name, planner_names, BatchAwarePlanner, IndependentPlanner,
    JointPlan, SharedGreedyPlanner, WorkloadPlanner,
};
pub use sim::{simulate, synthesize, SimConfig, WorkloadSimReport};
pub use workload::{
    outage_catalog, InterferenceReport, StreamInterference, Workload, WorkloadQuery,
};
