//! Workloads: sets of concurrent queries over one shared catalog, and
//! the shared-stream interference analysis between them.

use paotr_core::cost::dnf_eval;
use paotr_core::error::{Error, Result};
use paotr_core::plan::Engine;
use paotr_core::schedule::DnfSchedule;
use paotr_core::stream::{StreamCatalog, StreamId};
use paotr_core::tree::DnfTree;
use std::collections::BTreeSet;

/// One query of a workload: a DNF tree plus serving metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadQuery {
    /// Display name (unique within the workload).
    pub name: String,
    /// The query tree.
    pub tree: DnfTree,
    /// Relative weight — arrival rate or importance; scales this
    /// query's contribution to every aggregate cost.
    pub weight: f64,
}

/// A set of concurrent Boolean queries evaluated against **one shared
/// [`StreamCatalog`]** — the unit the joint planners
/// (see [`crate::planner`]) optimize. Items pulled for one query are
/// available to every other query in the same evaluation tick, so the
/// whole workload's cost is not the sum of its parts.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    queries: Vec<WorkloadQuery>,
    catalog: StreamCatalog,
}

impl Workload {
    /// Builds a workload after validating every query against the
    /// catalog, the weights (finite, `> 0`) and name uniqueness.
    pub fn new(queries: Vec<WorkloadQuery>, catalog: StreamCatalog) -> Result<Workload> {
        if queries.is_empty() {
            return Err(Error::InvalidWorkload(
                "a workload needs at least one query".into(),
            ));
        }
        let mut names = BTreeSet::new();
        for q in &queries {
            q.tree.validate(&catalog)?;
            if !q.weight.is_finite() || q.weight <= 0.0 {
                return Err(Error::InvalidWorkload(format!(
                    "query `{}` has weight {}, expected a finite value > 0",
                    q.name, q.weight
                )));
            }
            if !names.insert(q.name.as_str()) {
                return Err(Error::InvalidWorkload(format!(
                    "duplicate query name `{}`",
                    q.name
                )));
            }
        }
        Ok(Workload { queries, catalog })
    }

    /// Wraps bare trees as a uniformly-weighted workload with generated
    /// names `q0`, `q1`, ...
    pub fn from_trees(trees: Vec<DnfTree>, catalog: StreamCatalog) -> Result<Workload> {
        let queries = trees
            .into_iter()
            .enumerate()
            .map(|(i, tree)| WorkloadQuery {
                name: format!("q{i}"),
                tree,
                weight: 1.0,
            })
            .collect();
        Workload::new(queries, catalog)
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Always false: `new` rejects empty workloads.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries, in workload order.
    pub fn queries(&self) -> &[WorkloadQuery] {
        &self.queries
    }

    /// Query `i`.
    pub fn query(&self, i: usize) -> &WorkloadQuery {
        &self.queries[i]
    }

    /// The shared stream catalog.
    pub fn catalog(&self) -> &StreamCatalog {
        &self.catalog
    }

    /// The per-query weights, in workload order.
    pub fn weights(&self) -> Vec<f64> {
        self.queries.iter().map(|q| q.weight).collect()
    }

    /// Total number of leaves across the workload.
    pub fn num_leaves(&self) -> usize {
        self.queries.iter().map(|q| q.tree.num_leaves()).sum()
    }

    /// Shared-stream interference analysis: which streams are read by
    /// which queries, and how much pull traffic can be amortized.
    /// Expected item counts are computed under each query's default
    /// plan (the `engine`'s per-class optimal/best planner).
    pub fn interference(&self, engine: &Engine) -> Result<InterferenceReport> {
        let schedules = self.default_schedules(engine)?;
        let per_query_items: Vec<Vec<f64>> = self
            .queries
            .iter()
            .zip(&schedules)
            .map(|(q, s)| dnf_eval::expected_items_per_stream(&q.tree, &self.catalog, s))
            .collect();

        let stream_sets: Vec<BTreeSet<StreamId>> = self
            .queries
            .iter()
            .map(|q| q.tree.streams().into_iter().collect())
            .collect();

        let per_stream = (0..self.catalog.len())
            .map(StreamId)
            .filter_map(|k| {
                let readers: Vec<usize> = (0..self.len())
                    .filter(|&q| stream_sets[q].contains(&k))
                    .collect();
                if readers.is_empty() {
                    return None;
                }
                let expected_items: Vec<f64> =
                    readers.iter().map(|&q| per_query_items[q][k.0]).collect();
                let sum: f64 = expected_items.iter().sum();
                let max = expected_items.iter().cloned().fold(0.0, f64::max);
                Some(StreamInterference {
                    stream: k,
                    readers,
                    expected_items,
                    expected_overlap: sum - max,
                })
            })
            .collect();

        let trees: Vec<DnfTree> = self.queries.iter().map(|q| q.tree.clone()).collect();
        let pairwise = paotr_core::tree::pairwise_stream_overlap(&trees);
        Ok(InterferenceReport {
            per_stream,
            pairwise,
        })
    }

    /// Every query's default plan, converted to a [`DnfSchedule`] over
    /// its own tree.
    pub(crate) fn default_schedules(&self, engine: &Engine) -> Result<Vec<DnfSchedule>> {
        self.queries
            .iter()
            .map(|q| {
                let plan = engine.plan(&q.tree, &self.catalog)?;
                extract_schedule(&plan, &q.tree, &q.name)
            })
            .collect()
    }
}

/// Converts a per-query [`Plan`](paotr_core::plan::Plan) body into a
/// schedule over `tree`'s leaf addresses — the one place the
/// "non-schedule plan" failure is worded and raised.
pub(crate) fn extract_schedule(
    plan: &paotr_core::plan::Plan,
    tree: &DnfTree,
    query_name: &str,
) -> Result<DnfSchedule> {
    plan.body.to_dnf_schedule(tree).ok_or_else(|| {
        Error::InvalidWorkload(format!(
            "planner `{}` produced a non-schedule plan for `{query_name}`",
            plan.planner
        ))
    })
}

/// The catalog to re-plan against while some streams are in outage:
/// identical to `catalog` except that every stream flagged in `out`
/// costs `factor` times as much. Cost-optimal planners then sink dead
/// streams' leaves to the end of every schedule — the serving layers'
/// outage re-plan stops pulling dead streams first, without any new
/// planner machinery.
///
/// # Panics
/// Panics if `factor` is not a finite positive value (the penalized
/// catalog must stay valid).
pub fn outage_catalog(catalog: &StreamCatalog, out: &[bool], factor: f64) -> StreamCatalog {
    assert!(
        factor.is_finite() && factor > 0.0,
        "outage penalty factor must be finite and positive"
    );
    let mut penalized = StreamCatalog::new();
    for k in 0..catalog.len() {
        let id = StreamId(k);
        let dead = out.get(k).copied().unwrap_or(false);
        let cost = catalog.cost(id) * if dead { factor } else { 1.0 };
        penalized
            .add_named(catalog.name(id), cost)
            .expect("penalizing a valid catalog keeps it valid");
    }
    penalized
}

/// One shared stream's cross-query usage.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInterference {
    /// The stream.
    pub stream: StreamId,
    /// Indices of the queries reading it.
    pub readers: Vec<usize>,
    /// Expected items each reader pulls per evaluation in isolation
    /// (aligned with `readers`).
    pub expected_items: Vec<f64>,
    /// Expected pull overlap: items per tick that perfect sharing could
    /// amortize away (`sum - max` of `expected_items`). 0 for
    /// single-reader streams.
    pub expected_overlap: f64,
}

/// The workload-level interference analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceReport {
    /// Per-stream usage, for every stream with at least one reader.
    pub per_stream: Vec<StreamInterference>,
    /// Pairwise Jaccard overlap of the queries' stream sets
    /// (symmetric, 1 on the diagonal).
    pub pairwise: Vec<Vec<f64>>,
}

impl InterferenceReport {
    /// Mean off-diagonal pairwise stream overlap; 0 for single-query
    /// workloads. Delegates to the canonical definition in
    /// [`paotr_core::tree::mean_pairwise_overlap_from_matrix`].
    pub fn mean_pairwise_overlap(&self) -> f64 {
        paotr_core::tree::mean_pairwise_overlap_from_matrix(&self.pairwise)
    }

    /// Number of streams read by two or more queries.
    pub fn shared_streams(&self) -> usize {
        self.per_stream
            .iter()
            .filter(|s| s.readers.len() > 1)
            .count()
    }

    /// Total expected items per tick that cross-query sharing could
    /// amortize (summed over streams, unweighted).
    pub fn total_expected_overlap(&self) -> f64 {
        self.per_stream.iter().map(|s| s.expected_overlap).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paotr_core::leaf::Leaf;
    use paotr_core::prob::Prob;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    fn two_query_workload() -> Workload {
        let t0 = DnfTree::from_leaves(vec![
            vec![leaf(0, 3, 0.4), leaf(1, 1, 0.7)],
            vec![leaf(0, 5, 0.6)],
        ])
        .unwrap();
        let t1 = DnfTree::from_leaves(vec![vec![leaf(0, 2, 0.5), leaf(2, 1, 0.3)]]).unwrap();
        Workload::from_trees(
            vec![t0, t1],
            StreamCatalog::from_costs([2.0, 3.0, 1.0]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn outage_catalog_penalizes_only_dead_streams() {
        let cat = StreamCatalog::from_costs([1.0, 2.0, 3.0]).unwrap();
        let pen = outage_catalog(&cat, &[false, true], 1000.0);
        assert_eq!(pen.len(), 3);
        assert_eq!(pen.cost(StreamId(0)), 1.0);
        assert_eq!(pen.cost(StreamId(1)), 2000.0);
        assert_eq!(pen.cost(StreamId(2)), 3.0, "missing flags mean alive");
        assert_eq!(pen.name(StreamId(1)), cat.name(StreamId(1)));
    }

    #[test]
    fn construction_validates() {
        let cat = StreamCatalog::unit(1);
        let t = DnfTree::from_leaves(vec![vec![leaf(0, 1, 0.5)]]).unwrap();
        assert!(Workload::from_trees(vec![], cat.clone()).is_err());
        // tree referencing a missing stream
        let bad = DnfTree::from_leaves(vec![vec![leaf(3, 1, 0.5)]]).unwrap();
        assert!(Workload::from_trees(vec![bad], cat.clone()).is_err());
        // bad weight and duplicate names
        let mk = |w: f64, n: &str| WorkloadQuery {
            name: n.into(),
            tree: t.clone(),
            weight: w,
        };
        assert!(Workload::new(vec![mk(0.0, "a")], cat.clone()).is_err());
        assert!(Workload::new(vec![mk(1.0, "a"), mk(1.0, "a")], cat.clone()).is_err());
        let ok = Workload::new(vec![mk(1.0, "a"), mk(2.0, "b")], cat).unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.weights(), vec![1.0, 2.0]);
        assert_eq!(ok.num_leaves(), 2);
    }

    #[test]
    fn interference_reports_shared_streams_and_overlap() {
        let w = two_query_workload();
        let report = w.interference(&Engine::new()).unwrap();
        // stream 0 is read by both queries, streams 1 and 2 by one each
        assert_eq!(report.per_stream.len(), 3);
        assert_eq!(report.shared_streams(), 1);
        let s0 = &report.per_stream[0];
        assert_eq!(s0.stream, StreamId(0));
        assert_eq!(s0.readers, vec![0, 1]);
        assert!(s0.expected_overlap > 0.0);
        for s in &report.per_stream[1..] {
            assert_eq!(s.readers.len(), 1);
            assert_eq!(s.expected_overlap, 0.0);
        }
        // q0 streams {0,1}, q1 streams {0,2}: Jaccard 1/3
        assert!((report.pairwise[0][1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.mean_pairwise_overlap() - 1.0 / 3.0).abs() < 1e-12);
        assert!(report.total_expected_overlap() > 0.0);
    }
}
