//! End-to-end acceptance: on a generated 16-query workload with >= 50%
//! pairwise stream overlap, joint planning measurably beats the
//! independent baseline in *simulated* energy, and the planner's
//! predictions point the same way.

use paotr_core::plan::Engine;
use paotr_gen::workload::{mean_pairwise_overlap, workload_instance, WorkloadConfig};
use paotr_multi::{
    compare, default_planners, simulate, IndependentPlanner, SharedGreedyPlanner, SimConfig,
    Workload, WorkloadPlanner,
};

fn sixteen_query_workload() -> Workload {
    let cfg = WorkloadConfig::with_overlap(16, 0.6);
    // pick a seed whose measured overlap clears the 50% bar; a bounded
    // search so a generator regression fails loudly instead of hanging
    let mut best = 0.0f64;
    for index in 0..200 {
        let (trees, catalog) = workload_instance(cfg, index);
        let overlap = mean_pairwise_overlap(&trees);
        if overlap >= 0.5 {
            return Workload::from_trees(trees, catalog).unwrap();
        }
        best = best.max(overlap);
    }
    panic!("no instance in 200 reached 50% pairwise overlap (best: {best:.3})")
}

#[test]
fn shared_greedy_simulated_energy_beats_independent_on_16_query_workload() {
    let workload = sixteen_query_workload();
    let engine = Engine::new();
    let report = workload.interference(&engine).unwrap();
    assert!(
        report.mean_pairwise_overlap() >= 0.5,
        "workload must have >= 50% pairwise stream overlap, got {}",
        report.mean_pairwise_overlap()
    );
    assert!(report.shared_streams() >= 2);

    let cfg = SimConfig {
        ticks: 250,
        seed: 42,
        ticks_between: 1,
    };
    let indep = simulate(
        &workload,
        &IndependentPlanner.plan(&workload, &engine).unwrap(),
        cfg,
    );
    let shared = simulate(
        &workload,
        &SharedGreedyPlanner::default()
            .plan(&workload, &engine)
            .unwrap(),
        cfg,
    );
    assert!(
        shared.total_energy < indep.total_energy * 0.9,
        "shared-greedy must be measurably (>10%) cheaper: shared {} vs independent {}",
        shared.total_energy,
        indep.total_energy
    );
}

#[test]
fn compare_table_reports_sharing_ratio_and_speedup_for_every_planner() {
    let workload = sixteen_query_workload();
    let engine = Engine::new();
    let outcomes = compare(
        &workload,
        &engine,
        &default_planners(),
        Some(SimConfig {
            ticks: 120,
            seed: 7,
            ticks_between: 1,
        }),
    )
    .unwrap();
    assert_eq!(outcomes.len(), 3);
    let indep = &outcomes[0];
    assert_eq!(indep.planner, "independent");
    assert!((indep.sharing_ratio).abs() < 1e-12);
    for o in &outcomes[1..] {
        assert!(
            o.sharing_ratio > 0.0,
            "{} predicts no sharing on a 50%-overlap workload",
            o.planner
        );
        assert!(o.speedup > 1.0);
        let sim_speedup = o.simulated_speedup.expect("simulation ran");
        assert!(
            sim_speedup > 1.0,
            "{} measured speedup {sim_speedup} <= 1",
            o.planner
        );
    }
}
