// Golden constants are pinned at full captured precision on purpose.
#![allow(clippy::excessive_precision)]

//! Golden-trace equivalence: the unified runtime must reproduce the
//! pre-refactor execution paths' energy traces.
//!
//! The constants below were captured from the repository state *before*
//! `streamsim::Engine::evaluate_workload` and `multi::sim::simulate`
//! were ported onto the unified `stream_sim::runtime` (`Scheduler` +
//! `EnergyMeter`): the seed scenario from `multi/sim.rs` plus the three
//! bench workload shapes (4 / 16 / 64 queries at 0.6 overlap, instance
//! 0). Any divergence beyond 1e-9 relative means the refactor changed
//! the semantics, not just the plumbing.

use paotr_core::leaf::Leaf;
use paotr_core::plan::Engine;
use paotr_core::prob::Prob;
use paotr_core::stream::{StreamCatalog, StreamId};
use paotr_core::tree::DnfTree;
use paotr_gen::workload::{workload_instance, WorkloadConfig};
use paotr_multi::{planner_by_name, simulate, SimConfig, Workload, WorkloadSimReport};

fn leaf(s: usize, d: u32, p: f64) -> Leaf {
    Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn run(workload: &Workload, planner: &str, cfg: SimConfig) -> WorkloadSimReport {
    let engine = Engine::new();
    let joint = planner_by_name(planner)
        .unwrap()
        .plan(workload, &engine)
        .unwrap();
    simulate(workload, &joint, cfg)
}

fn check(tag: &str, report: &WorkloadSimReport, total: f64, per_query: Option<&[f64]>) {
    assert!(
        close(report.total_energy, total),
        "{tag}: total {:.17e} vs golden {total:.17e}",
        report.total_energy
    );
    if let Some(golden) = per_query {
        assert_eq!(report.per_query_energy.len(), golden.len(), "{tag}");
        for (q, (&got, &want)) in report.per_query_energy.iter().zip(golden).enumerate() {
            assert!(
                close(got, want),
                "{tag} q{q}: {got:.17e} vs golden {want:.17e}"
            );
        }
    }
}

/// The overlapping 3-query seed scenario of `multi/sim.rs`, all three
/// planners, per-query energies pinned.
#[test]
fn seed_scenario_traces_match_pre_refactor() {
    let trees = vec![
        DnfTree::from_leaves(vec![vec![leaf(0, 5, 0.8), leaf(1, 2, 0.5)]]).unwrap(),
        DnfTree::from_leaves(vec![vec![leaf(0, 4, 0.7)], vec![leaf(1, 3, 0.4)]]).unwrap(),
        DnfTree::from_leaves(vec![vec![leaf(0, 3, 0.9), leaf(1, 4, 0.6)]]).unwrap(),
    ];
    let w = Workload::from_trees(trees, StreamCatalog::from_costs([2.0, 1.0]).unwrap()).unwrap();
    let cfg = SimConfig {
        ticks: 300,
        seed: 3,
        ticks_between: 1,
    };

    let r = run(&w, "independent", cfg);
    check(
        "seed3q/independent",
        &r,
        2.27400000000000020e1,
        Some(&[
            7.23333333333333339e0,
            7.82666666666666710e0,
            7.67999999999999972e0,
        ]),
    );
    assert_eq!(r.items_pulled, vec![2061, 2700]);

    let r = run(&w, "shared-greedy", cfg);
    check(
        "seed3q/shared-greedy",
        &r,
        1.29066666666666663e1,
        Some(&[
            1.80000000000000004e0,
            7.82666666666666710e0,
            3.27999999999999980e0,
        ]),
    );
    assert_eq!(r.items_pulled, vec![1336, 1200]);

    let r = run(&w, "batch-aware", cfg);
    check(
        "seed3q/batch-aware",
        &r,
        1.29066666666666663e1,
        Some(&[
            7.23333333333333339e0,
            4.41333333333333311e0,
            1.26000000000000001e0,
        ]),
    );
}

/// The three bench workload shapes (`workload_sim`'s configuration at
/// 4, 16 and 64 queries), totals pinned for the independent and
/// shared-greedy paths.
#[test]
fn bench_shape_traces_match_pre_refactor() {
    let golden: [(usize, f64, f64); 3] = [
        (4, 1.19903344483631940e2, 8.34097789353874361e1),
        (16, 8.33654903070334854e2, 1.93886131786296005e2),
        (64, 3.85179642689052798e3, 4.68246814888279914e2),
    ];
    for (queries, indep_total, shared_total) in golden {
        let (trees, catalog) = workload_instance(WorkloadConfig::with_overlap(queries, 0.6), 0);
        let w = Workload::from_trees(trees, catalog).unwrap();
        let cfg = SimConfig {
            ticks: 50,
            seed: 1,
            ticks_between: 1,
        };
        check(
            &format!("bench{queries}q/independent"),
            &run(&w, "independent", cfg),
            indep_total,
            None,
        );
        check(
            &format!("bench{queries}q/shared-greedy"),
            &run(&w, "shared-greedy", cfg),
            shared_total,
            None,
        );
    }
}

/// Per-query energies on the 4-query bench shape (finer-grained pin
/// than the totals above).
#[test]
fn bench4_per_query_traces_match_pre_refactor() {
    let (trees, catalog) = workload_instance(WorkloadConfig::with_overlap(4, 0.6), 0);
    let w = Workload::from_trees(trees, catalog).unwrap();
    let cfg = SimConfig {
        ticks: 50,
        seed: 1,
        ticks_between: 1,
    };
    check(
        "bench4q/independent",
        &run(&w, "independent", cfg),
        1.19903344483631940e2,
        Some(&[
            1.97740966209563602e1,
            4.26818385797674935e1,
            3.32734728895852570e1,
            2.41739363933228333e1,
        ]),
    );
    check(
        "bench4q/shared-greedy",
        &run(&w, "shared-greedy", cfg),
        8.34097789353874361e1,
        Some(&[
            1.56513093803403898e1,
            2.09999879516255277e1,
            3.32734728895852570e1,
            1.34850087138362724e1,
        ]),
    );
}
