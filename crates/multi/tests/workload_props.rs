//! Property tests for the joint workload planners.
//!
//! The two contract properties from the subsystem's spec:
//!
//! 1. `shared-greedy`'s predicted workload cost never exceeds the sum
//!    of the independent per-query expected costs, on random AND and
//!    DNF workloads;
//! 2. single-query workloads reduce *exactly* to the per-query
//!    planner's plan.

use paotr_core::leaf::Leaf;
use paotr_core::plan::Engine;
use paotr_core::prob::Prob;
use paotr_core::stream::{StreamCatalog, StreamId};
use paotr_core::tree::DnfTree;
use paotr_multi::{default_planners, SharedGreedyPlanner, Workload, WorkloadPlanner};
use proptest::prelude::*;

/// Strategy: one random AND-shaped query (a single-term DNF) over
/// `streams` streams.
fn and_query(streams: usize) -> impl Strategy<Value = DnfTree> {
    prop::collection::vec((0..streams, 1u32..=4, 0.05f64..0.95), 1..=4).prop_map(|leaves| {
        DnfTree::from_leaves(vec![leaves
            .into_iter()
            .map(|(s, d, p)| Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap())
            .collect()])
        .expect("non-empty term")
    })
}

/// Strategy: one random DNF query (1..=3 terms of 1..=3 leaves).
fn dnf_query(streams: usize) -> impl Strategy<Value = DnfTree> {
    prop::collection::vec(
        prop::collection::vec((0..streams, 1u32..=4, 0.05f64..0.95), 1..=3),
        1..=3,
    )
    .prop_map(|terms| {
        DnfTree::from_leaves(
            terms
                .into_iter()
                .map(|t| {
                    t.into_iter()
                        .map(|(s, d, p)| Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap())
                        .collect()
                })
                .collect(),
        )
        .expect("non-empty terms")
    })
}

fn catalog(streams: usize) -> impl Strategy<Value = StreamCatalog> {
    prop::collection::vec(0.5f64..8.0, streams..=streams)
        .prop_map(|costs| StreamCatalog::from_costs(costs).expect("valid costs"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1a, AND workloads: joint predicted cost <= sum of
    /// independent per-query expected costs.
    #[test]
    fn shared_greedy_never_beats_worse_than_independent_on_and_workloads(
        trees in prop::collection::vec(and_query(4), 2..=6),
        cat in catalog(4),
    ) {
        let workload = Workload::from_trees(trees, cat).unwrap();
        let engine = Engine::new();
        let joint = SharedGreedyPlanner::default().plan(&workload, &engine).unwrap();
        let weights = workload.weights();
        let independent: f64 = joint
            .independent_costs
            .iter()
            .zip(&weights)
            .map(|(c, w)| c * w)
            .sum();
        let predicted = joint.aggregate_predicted(&weights);
        prop_assert!(
            predicted <= independent + 1e-9,
            "predicted {predicted} > independent {independent}"
        );
        // per-query: nobody is predicted to pay more than going alone
        for (p, i) in joint.predicted_costs.iter().zip(&joint.independent_costs) {
            prop_assert!(p <= &(i + 1e-9), "query predicted {p} > independent {i}");
        }
    }

    /// Property 1b, DNF workloads: same bound.
    #[test]
    fn shared_greedy_never_beats_worse_than_independent_on_dnf_workloads(
        trees in prop::collection::vec(dnf_query(5), 2..=5),
        cat in catalog(5),
    ) {
        let workload = Workload::from_trees(trees, cat).unwrap();
        let engine = Engine::new();
        let joint = SharedGreedyPlanner::default().plan(&workload, &engine).unwrap();
        let weights = workload.weights();
        let predicted = joint.aggregate_predicted(&weights);
        let independent = joint.aggregate_independent(&weights);
        prop_assert!(
            predicted <= independent + 1e-9,
            "predicted {predicted} > independent {independent}"
        );
    }

    /// Property 2: a single-query workload reduces exactly to the
    /// per-query planner's plan, for every workload planner.
    #[test]
    fn single_query_workloads_reduce_to_the_per_query_plan(
        tree in dnf_query(4),
        cat in catalog(4),
    ) {
        let engine = Engine::new();
        let expected = engine.plan(&tree, &cat).unwrap();
        let workload = Workload::from_trees(vec![tree], cat).unwrap();
        for planner in default_planners() {
            let joint = planner.plan(&workload, &engine).unwrap();
            prop_assert_eq!(&joint.order, &vec![0usize], "{}", planner.name());
            prop_assert_eq!(&*joint.plans[0], &expected, "{}", planner.name());
            prop_assert_eq!(&joint.schedules[0].len(), &tree_len(&joint), "{}", planner.name());
            let cost = expected.expected_cost.unwrap();
            prop_assert!(
                (joint.predicted_costs[0] - cost).abs() < 1e-9,
                "{}: predicted {} vs per-query {}",
                planner.name(),
                joint.predicted_costs[0],
                cost
            );
        }
    }
}

fn tree_len(joint: &paotr_multi::JointPlan) -> usize {
    joint.plans[0].body.len()
}
