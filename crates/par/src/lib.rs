//! # paotr-par — a persistent-worker parallel-map substrate
//!
//! The paper's experiments sweep hundreds of thousands of independent
//! problem instances, and the multi-query planners fan candidate
//! evaluations out every greedy round; this crate provides the
//! embarrassingly-parallel plumbing without pulling in a full framework:
//!
//! * [`par_map`] / [`par_map_indexed`] — dynamic scheduling via chunked
//!   atomic-index claiming over a slice: the range is split into
//!   `2 × workers` chunks, each participant drains its own chunks and
//!   then *steals* from the others', so wide cheap-item sweeps don't
//!   contend on one cursor and a slow chunk doesn't serialize the rest;
//! * [`par_tasks`] — the same, generating work items from an index range
//!   (avoids materializing inputs);
//! * [`par_tasks_with_progress`] — adds a completion callback for progress
//!   meters;
//! * [`par_tasks_init`] / [`par_map_init`] — a per-worker state built
//!   once per job (how planners reuse evaluation scratch across a
//!   round's candidates instead of allocating per candidate).
//!
//! Everything runs on the lazily-started **persistent**
//! [`WorkerPool`](pool::WorkerPool) ([`pool::WorkerPool::global`]):
//! repeated fan-outs — a shared-greedy planning round, one sweep cell —
//! cost a condvar broadcast instead of a `std::thread::scope` spawn +
//! join per call. Scheduling is dynamic on purpose: per-instance cost
//! varies by orders of magnitude (a branch-and-bound on one instance can
//! dwarf a heuristic on another), so static chunking would leave threads
//! idle. Results travel back over a channel and are re-assembled in
//! input order, so output order is deterministic regardless of thread
//! interleaving. Worker panics propagate to the caller when the job
//! completes; nested fan-outs from a pool worker run inline (no
//! deadlock, see [`pool::on_pool_worker`]).

pub mod pool;

pub use pool::{num_threads, on_pool_worker, ThreadCount, WorkerPool};

/// Applies `f` to every element of `items` in parallel, preserving input
/// order in the output.
pub fn par_map<T, R, F>(items: &[T], threads: ThreadCount, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, threads, |_, t| f(t))
}

/// [`par_map`] with the element index passed to `f`.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: ThreadCount, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_tasks(items.len(), threads, |i| f(i, &items[i]))
}

/// [`par_map`] with a per-worker state: `init` runs once per
/// participating worker, and every call that worker claims gets the
/// state mutably (e.g. a reusable evaluation scratch).
pub fn par_map_init<T, R, S, I, F>(items: &[T], threads: ThreadCount, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&T, &mut S) -> R + Sync,
{
    par_tasks_init(items.len(), threads, init, |i, s| f(&items[i], s))
}

/// Runs `n` index-addressed tasks in parallel and collects their results
/// in index order.
pub fn par_tasks<R, F>(n: usize, threads: ThreadCount, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_tasks_with_progress(n, threads, f, |_| {})
}

/// [`par_tasks`] with a per-worker state (see [`par_map_init`]).
pub fn par_tasks_init<R, S, I, F>(n: usize, threads: ThreadCount, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> R + Sync,
{
    WorkerPool::global().par_tasks_init(n, threads, init, f, |_| {})
}

/// [`par_tasks`] with a callback invoked after each task completes
/// (with the number of completed tasks so far). The callback runs on the
/// submitting thread, so it may be slow without stalling workers.
pub fn par_tasks_with_progress<R, F, P>(n: usize, threads: ThreadCount, f: F, progress: P) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    P: FnMut(usize),
{
    WorkerPool::global().par_tasks_with_progress(n, threads, f, progress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, ThreadCount::Fixed(8), |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_map_sees_correct_indices() {
        let items = vec!["a", "b", "c"];
        let out = par_map_indexed(&items, ThreadCount::Fixed(2), |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn tasks_handle_empty_and_single() {
        let out: Vec<u32> = par_tasks(0, ThreadCount::Fixed(4), |_| unreachable!());
        assert!(out.is_empty());
        let out = par_tasks(1, ThreadCount::Fixed(4), |i| i + 10);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn single_thread_path_matches_parallel_path() {
        let seq = par_tasks(100, ThreadCount::Fixed(1), |i| i * i);
        let par = par_tasks(100, ThreadCount::Fixed(7), |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let n = 10_000;
        let out = par_tasks(n, ThreadCount::Fixed(16), |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), n as u64);
        assert_eq!(out.len(), n);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn progress_is_monotone_and_complete() {
        let mut seen = Vec::new();
        par_tasks_with_progress(50, ThreadCount::Fixed(4), |i| i, |done| seen.push(done));
        assert_eq!(seen.len(), 50);
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*seen.last().unwrap(), 50);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        par_tasks(8, ThreadCount::Fixed(4), |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn uneven_workloads_balance_dynamically() {
        // Tasks with wildly different costs still complete; dynamic
        // scheduling means total wall time ~ max single task, which we
        // can't assert portably — but correctness we can.
        let out = par_tasks(64, ThreadCount::Fixed(8), |i| {
            if i % 16 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i as u64
        });
        assert_eq!(out.iter().sum::<u64>(), (0..64).sum::<u64>());
    }
}
