//! Thread-count policy and the persistent worker pool.
//!
//! Experiments read the desired parallelism from (in priority order) an
//! explicit [`ThreadCount::Fixed`], the `PAOTR_THREADS` environment
//! variable, or the machine's available parallelism.
//!
//! [`WorkerPool`] is the substrate behind every `par_*` free function in
//! this crate: a set of **persistent** worker threads, spawned lazily on
//! first use and grown on demand up to the largest parallelism any job
//! requests, shut down when the pool is dropped. Planners that fan the
//! same shape of work out every round (the shared-greedy candidate
//! scorer, the experiment sweeps) previously paid a full
//! `std::thread::scope` spawn + join per round; against the pool a round
//! costs one condvar broadcast and one join wait.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// How many worker threads a parallel operation should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadCount {
    /// Resolve from `PAOTR_THREADS` or the machine's available
    /// parallelism.
    #[default]
    Auto,
    /// Exactly this many threads (clamped to at least 1).
    Fixed(usize),
}

impl ThreadCount {
    /// Resolves the policy to a concrete thread count (`>= 1`).
    pub fn resolve(self) -> usize {
        match self {
            ThreadCount::Fixed(n) => n.max(1),
            ThreadCount::Auto => num_threads(),
        }
    }
}

/// The `Auto` policy: `PAOTR_THREADS` if set and parseable, otherwise the
/// machine's available parallelism (1 if unknown).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("PAOTR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

thread_local! {
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Depth of `run_job` frames on this thread (a submitter collecting
    /// results). A progress callback that fans out again must run
    /// inline: re-locking the non-reentrant submit mutex would
    /// self-deadlock.
    static SUBMITTING: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// True on threads owned by a [`WorkerPool`]. Parallel entry points use
/// this to run nested fan-outs inline instead of submitting to the pool
/// a worker is already part of (which would deadlock the job queue).
pub fn on_pool_worker() -> bool {
    IS_POOL_WORKER.with(|w| w.get())
}

/// True while this thread is inside a pool submission (collecting a
/// job's results). Nested fan-outs — e.g. from a progress callback —
/// run inline instead of re-entering the submit lock.
fn submitting() -> bool {
    SUBMITTING.with(|s| s.get() > 0)
}

/// Type-erased pointer to a job's worker body. The referent outlives the
/// job (the submitter blocks until every participant finished), which is
/// what makes the `Send` below sound.
struct TaskPtr(*const (dyn Fn() + Sync));
// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and `run_job` keeps it alive until the last participant checked
// out, so shipping the pointer to worker threads is sound.
unsafe impl Send for TaskPtr {}

/// One in-flight job: the body every participating worker runs, slot
/// accounting, and the first panic payload (re-thrown by the submitter).
struct ActiveJob {
    task: TaskPtr,
    /// Maximum number of workers that may participate.
    slots: usize,
    /// Workers that acquired a slot (ran or are running the body).
    joined: usize,
    /// Participants that finished running the body.
    done: usize,
    /// Workers (participating or not) that observed this job. Completion
    /// additionally requires every worker alive at submit time to have
    /// checked in — afterwards `joined` can no longer grow.
    checked_in: usize,
    /// Worker count at submit time (the check-in target).
    workers: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl ActiveJob {
    fn complete(&self) -> bool {
        self.checked_in == self.workers && self.done == self.joined
    }
}

#[derive(Default)]
struct JobSlot {
    epoch: u64,
    job: Option<ActiveJob>,
    shutdown: bool,
}

#[derive(Default)]
struct Shared {
    slot: Mutex<JobSlot>,
    /// Workers park here between jobs.
    wake: Condvar,
    /// The submitter parks here until the job completes.
    done: Condvar,
}

/// A persistent worker pool with the same `par_map` / `par_tasks`
/// surface as the crate's free functions (which route through
/// [`WorkerPool::global`]). Threads are spawned lazily on first use,
/// grown on demand up to the largest parallelism a job requests, and
/// joined when the pool is dropped. One job runs at a time; submissions
/// from foreign threads serialize, and submissions from the pool's own
/// workers run inline (see [`on_pool_worker`]).
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes jobs (one broadcast at a time).
    submit: Mutex<()>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// An empty pool; workers are spawned on first use.
    pub fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(Shared::default()),
            submit: Mutex::new(()),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide pool every `par_*` free function runs on.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Number of worker threads currently alive.
    pub fn workers(&self) -> usize {
        lock(&self.workers).len()
    }

    /// [`par_tasks_with_progress`](crate::par_tasks_with_progress) on
    /// this pool.
    pub fn par_tasks_with_progress<R, F, P>(
        &self,
        n: usize,
        threads: ThreadCount,
        f: F,
        progress: P,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        P: FnMut(usize),
    {
        self.par_tasks_init(n, threads, || (), move |i, _| f(i), progress)
    }

    /// [`par_tasks`](crate::par_tasks) on this pool.
    pub fn par_tasks<R, F>(&self, n: usize, threads: ThreadCount, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.par_tasks_with_progress(n, threads, f, |_| {})
    }

    /// [`par_map`](crate::par_map) on this pool.
    pub fn par_map<T, R, F>(&self, items: &[T], threads: ThreadCount, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_tasks(items.len(), threads, |i| f(&items[i]))
    }

    /// The workhorse: `n` index-addressed tasks with a per-participant
    /// state (built once per participating worker by `init`, handed
    /// mutably to every task that worker claims). The state is how
    /// planners reuse evaluation scratch across a round's candidates
    /// instead of allocating per candidate.
    pub fn par_tasks_init<R, S, I, F, P>(
        &self,
        n: usize,
        threads: ThreadCount,
        init: I,
        f: F,
        mut progress: P,
    ) -> Vec<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> R + Sync,
        P: FnMut(usize),
    {
        if n == 0 {
            return Vec::new();
        }
        let slots = threads.resolve().min(n);
        if slots <= 1 || on_pool_worker() || submitting() {
            // Sequential path: also the nested-submission fallback, so
            // neither a pool worker nor a collecting submitter (e.g. a
            // progress callback) fanning out again can deadlock.
            let mut state = init();
            return (0..n)
                .map(|i| {
                    let r = f(i, &mut state);
                    progress(i + 1);
                    r
                })
                .collect();
        }

        // Chunked work-stealing claiming: the task range is split into
        // `2 × slots` chunks, each with its own atomic cursor. A
        // participant drains its own chunk pair first (no contention on
        // a single shared cache line for wide, cheap-item sweeps), then
        // sweeps the remaining chunks stealing whatever is left — so a
        // slow task in one chunk never serializes the rest of the
        // range behind it.
        struct Chunk {
            next: AtomicUsize,
            end: usize,
        }
        let chunk_count = (2 * slots).min(n);
        let chunks: Vec<Chunk> = (0..chunk_count)
            .map(|c| Chunk {
                next: AtomicUsize::new(c * n / chunk_count),
                end: (c + 1) * n / chunk_count,
            })
            .collect();
        let participant = AtomicUsize::new(0);
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
        let body = move || {
            let tx = tx.clone();
            let me = participant.fetch_add(1, Ordering::Relaxed);
            let mut state = init();
            'chunks: for offset in 0..chunk_count {
                let chunk = &chunks[(me * 2 + offset) % chunk_count];
                loop {
                    let i = chunk.next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunk.end {
                        break;
                    }
                    let r = f(i, &mut state);
                    if tx.send((i, r)).is_err() {
                        break 'chunks;
                    }
                }
            }
        };

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        self.run_job(slots, &body, |shared| {
            // Collect on the submitting thread. Every task sends exactly
            // one message unless a worker panicked, so either the count
            // completes or the panic flag breaks the wait.
            let mut got = 0usize;
            while got < n {
                match rx.recv_timeout(Duration::from_millis(20)) {
                    Ok((i, r)) => {
                        debug_assert!(out[i].is_none(), "task {i} delivered twice");
                        out[i] = Some(r);
                        got += 1;
                        progress(got);
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        let slot = lock(&shared.slot);
                        if slot.job.as_ref().is_some_and(|j| j.panic.is_some()) {
                            break;
                        }
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        out.into_iter()
            .map(|o| o.expect("job completed, every task delivered"))
            .collect()
    }

    /// Publishes `body` as the next job, lets `collect` drain results on
    /// the calling thread, then blocks until every participant checked
    /// out and re-throws the first panic (`collect`'s own before any
    /// worker's). `body` must not be touched again once this returns
    /// (the raw task pointer dies here).
    ///
    /// The completion wait runs even when `collect` unwinds (a panicking
    /// progress callback, say): returning early would free the closure
    /// frame while workers still execute it through the raw pointer.
    fn run_job(&self, slots: usize, body: &(dyn Fn() + Sync), collect: impl FnOnce(&Shared)) {
        let _serial = lock(&self.submit);
        let workers = self.ensure_workers(slots);
        // SAFETY: `run_job` does not return before every participant
        // finished with the pointee (the unconditional completion wait
        // below), so erasing the lifetime for the trait-object pointer
        // is sound.
        let task = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body)
        });
        {
            let mut slot = lock(&self.shared.slot);
            slot.epoch += 1;
            slot.job = Some(ActiveJob {
                task,
                slots,
                joined: 0,
                done: 0,
                checked_in: 0,
                workers,
                panic: None,
            });
        }
        self.shared.wake.notify_all();

        SUBMITTING.with(|s| s.set(s.get() + 1));
        let collected = catch_unwind(AssertUnwindSafe(|| collect(&self.shared)));
        SUBMITTING.with(|s| s.set(s.get() - 1));

        let mut slot = lock(&self.shared.slot);
        while !slot.job.as_ref().expect("job in flight").complete() {
            slot = self
                .shared
                .done
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let job = slot.job.take().expect("job in flight");
        drop(slot);
        if let Err(payload) = collected {
            resume_unwind(payload);
        }
        if let Some(payload) = job.panic {
            resume_unwind(payload);
        }
    }

    /// Ensures at least `want` workers are alive; returns the worker
    /// count. Called with the submit lock held, so no job is in flight
    /// while the pool grows.
    fn ensure_workers(&self, want: usize) -> usize {
        let mut workers = lock(&self.workers);
        while workers.len() < want {
            let shared = Arc::clone(&self.shared);
            let name = format!("paotr-pool-{}", workers.len());
            workers.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker"),
            );
        }
        workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut slot = lock(&self.shared.slot);
            slot.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in lock(&self.workers).drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IS_POOL_WORKER.with(|w| w.set(true));
    let mut last_epoch = 0u64;
    let mut slot = lock(&shared.slot);
    loop {
        if slot.shutdown {
            return;
        }
        let fresh = slot.epoch != last_epoch && slot.job.is_some();
        if !fresh {
            slot = shared
                .wake
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            continue;
        }
        last_epoch = slot.epoch;
        let job = slot.job.as_mut().expect("checked above");
        job.checked_in += 1;
        let participate = job.joined < job.slots;
        if participate {
            job.joined += 1;
            let task = job.task.0;
            drop(slot);
            // SAFETY: the submitter keeps the pointee alive until this
            // participant reports done (the completion wait in
            // `run_job`), which happens strictly after this call.
            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*task)() }));
            slot = lock(&shared.slot);
            let job = slot.job.as_mut().expect("job outlives its participants");
            job.done += 1;
            if let Err(payload) = outcome {
                job.panic.get_or_insert(payload);
            }
        }
        shared.done.notify_all();
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_claiming_covers_every_task_for_awkward_shapes() {
        // n not divisible by the chunk count, n smaller than 2×slots,
        // n equal to the chunk count: every index must be produced
        // exactly once, in order.
        let pool = WorkerPool::new();
        for (n, threads) in [(97usize, 8usize), (5, 4), (16, 8), (3, 2), (1000, 3)] {
            let out = pool.par_tasks(n, ThreadCount::Fixed(threads), |i| i);
            assert_eq!(out, (0..n).collect::<Vec<_>>(), "n={n} threads={threads}");
        }
    }

    #[test]
    fn one_slow_chunk_does_not_serialize_the_sweep() {
        // A pathological workload where the first chunk's tasks are
        // slow: the other participants must steal the rest rather than
        // idle. We can only assert correctness portably, but with
        // per-chunk cursors every task still runs exactly once.
        let pool = WorkerPool::new();
        let ran = AtomicUsize::new(0);
        let out = pool.par_tasks(128, ThreadCount::Fixed(4), |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            ran.fetch_add(1, Ordering::Relaxed);
            i * 3
        });
        assert_eq!(ran.load(Ordering::Relaxed), 128);
        assert_eq!(out, (0..128).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn fixed_clamps_to_one() {
        assert_eq!(ThreadCount::Fixed(0).resolve(), 1);
        assert_eq!(ThreadCount::Fixed(5).resolve(), 5);
    }

    #[test]
    fn auto_is_positive() {
        assert!(ThreadCount::Auto.resolve() >= 1);
    }

    #[test]
    fn pool_spawns_lazily_and_grows_on_demand() {
        let pool = WorkerPool::new();
        assert_eq!(pool.workers(), 0, "no job yet, no threads");
        let out = pool.par_tasks(8, ThreadCount::Fixed(2), |i| i * 2);
        assert_eq!(out, (0..8).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(pool.workers(), 2);
        let out = pool.par_tasks(16, ThreadCount::Fixed(4), |i| i + 1);
        assert_eq!(out.len(), 16);
        assert_eq!(pool.workers(), 4, "grown to the widest request");
        // narrower follow-up jobs reuse the pool without shrinking it
        let out = pool.par_tasks(4, ThreadCount::Fixed(2), |i| i);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(pool.workers(), 4);
    }

    #[test]
    fn pool_reuses_threads_across_many_rounds() {
        let pool = WorkerPool::new();
        for round in 0..200 {
            let out = pool.par_tasks(5, ThreadCount::Fixed(3), |i| i + round);
            assert_eq!(out, (0..5).map(|i| i + round).collect::<Vec<_>>());
        }
        assert_eq!(pool.workers(), 3, "200 rounds, 3 threads total");
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = WorkerPool::new();
        pool.par_tasks(4, ThreadCount::Fixed(2), |i| i);
        drop(pool); // must not hang
    }

    #[test]
    fn pool_panics_propagate_to_the_submitter() {
        let pool = WorkerPool::new();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_tasks(8, ThreadCount::Fixed(2), |i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err());
        // the pool survives the panic and serves the next job
        let out = pool.par_tasks(4, ThreadCount::Fixed(2), |i| i);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_job() {
        let pool = WorkerPool::new();
        // Each participant counts its tasks in its own state; the sum of
        // all per-state counts must equal n (every task ran once, under
        // exactly one state).
        let total = AtomicUsize::new(0);
        struct Counter<'a> {
            local: usize,
            total: &'a AtomicUsize,
        }
        impl Drop for Counter<'_> {
            fn drop(&mut self) {
                self.total.fetch_add(self.local, Ordering::Relaxed);
            }
        }
        let out = pool.par_tasks_init(
            100,
            ThreadCount::Fixed(4),
            || Counter {
                local: 0,
                total: &total,
            },
            |i, c| {
                c.local += 1;
                i
            },
            |_| {},
        );
        assert_eq!(out.len(), 100);
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn progress_panics_wait_for_workers_and_propagate() {
        // A panicking progress callback must not return early from the
        // job (workers still hold the raw task pointer); it must wait,
        // then re-throw, leaving the pool serviceable.
        let pool = WorkerPool::new();
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_tasks_with_progress(
                64,
                ThreadCount::Fixed(4),
                |i| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    i
                },
                |done| {
                    if done == 3 {
                        panic!("progress abort");
                    }
                },
            )
        }));
        assert!(result.is_err());
        assert_eq!(
            ran.load(Ordering::Relaxed),
            64,
            "workers drained the job before the panic resumed"
        );
        let out = pool.par_tasks(4, ThreadCount::Fixed(2), |i| i);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fanning_out_from_a_progress_callback_runs_inline() {
        let pool = WorkerPool::new();
        let nested_sum = AtomicUsize::new(0);
        let out = pool.par_tasks_with_progress(
            6,
            ThreadCount::Fixed(2),
            |i| i,
            |done| {
                // re-entering the same pool from the collecting thread
                // must not self-deadlock on the submit lock
                let inner: usize = pool
                    .par_tasks(3, ThreadCount::Fixed(2), |j| j + done)
                    .into_iter()
                    .sum();
                nested_sum.fetch_add(inner, Ordering::Relaxed);
            },
        );
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert!(nested_sum.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn nested_submissions_run_inline() {
        let pool = WorkerPool::global();
        let out = pool.par_tasks(4, ThreadCount::Fixed(2), |i| {
            assert!(on_pool_worker());
            // a nested fan-out must not deadlock the pool
            let inner: Vec<usize> =
                WorkerPool::global().par_tasks(3, ThreadCount::Fixed(2), |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 4);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (0..3).map(|j| i * 10 + j).sum::<usize>());
        }
    }
}
