//! Thread-count policy.
//!
//! Experiments read the desired parallelism from (in priority order) an
//! explicit [`ThreadCount::Fixed`], the `PAOTR_THREADS` environment
//! variable, or the machine's available parallelism.

use std::num::NonZeroUsize;

/// How many worker threads a parallel operation should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadCount {
    /// Resolve from `PAOTR_THREADS` or the machine's available
    /// parallelism.
    #[default]
    Auto,
    /// Exactly this many threads (clamped to at least 1).
    Fixed(usize),
}

impl ThreadCount {
    /// Resolves the policy to a concrete thread count (`>= 1`).
    pub fn resolve(self) -> usize {
        match self {
            ThreadCount::Fixed(n) => n.max(1),
            ThreadCount::Auto => num_threads(),
        }
    }
}

/// The `Auto` policy: `PAOTR_THREADS` if set and parseable, otherwise the
/// machine's available parallelism (1 if unknown).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("PAOTR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_clamps_to_one() {
        assert_eq!(ThreadCount::Fixed(0).resolve(), 1);
        assert_eq!(ThreadCount::Fixed(5).resolve(), 5);
    }

    #[test]
    fn auto_is_positive() {
        assert!(ThreadCount::Auto.resolve() >= 1);
    }
}
