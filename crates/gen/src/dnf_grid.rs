//! Random shared DNF trees: the Figure 5 ("small") and Figure 6 ("large")
//! experiment grids.
//!
//! The paper specifies:
//!
//! * **small** — "DNF trees with N = 2, ..., 9 AND nodes and up to at most
//!   20 leaves and 8 leaves per AND, generating 100 random instances for
//!   each configuration, for a total of 21,600 instances";
//! * **large** — "N = 2, ..., 10 AND nodes and m = 5, 10, 15, 20 leaves
//!   per AND node, with 100 random instances per configuration, for a
//!   total of 32,400 instances".
//!
//! 21,600 = 216 configs x 100 and 32,400 = 324 configs x 100. The large
//! grid factorizes exactly as `9 N-values x 4 m-values x 9 sharing ratios
//! = 324`; we reconstruct the small grid the same way as `8 N-values x
//! 3 total-leaf targets {10, 15, 20} x 9 sharing ratios = 216`, with
//! leaves distributed randomly over AND nodes (1..=8 each) — this matches
//! every constraint stated in the paper and its instance counts.
//! DESIGN.md documents this reconstruction.

use crate::and_grid::SHARING_RATIOS;
use crate::distributions::ParamDistributions;
use paotr_core::prelude::*;
use rand::Rng;

/// How leaves are apportioned to AND nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// "Up to" a total-leaf budget: the actual total is drawn uniformly
    /// from `terms..=min(total, cap * terms)` and split randomly across
    /// terms, each term getting between 1 and `cap` leaves (the "small"
    /// grid; cap = 8). The uniform draw matches the paper's "up to at
    /// most 20 leaves" phrasing and keeps the exhaustive baseline
    /// tractable (a hard cap would make every 2-AND instance the
    /// worst-case 8+8 shape).
    TotalWithCap {
        /// Maximum total leaves in the tree.
        total: usize,
        /// Maximum leaves per AND node.
        cap: usize,
    },
    /// Every AND node has exactly this many leaves (the "large" grid).
    PerTerm(usize),
}

/// One cell of a DNF experiment grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DnfConfig {
    /// Number of AND nodes, `N`.
    pub terms: usize,
    /// Leaf apportioning.
    pub shape: Shape,
    /// Target sharing ratio `rho` (expected leaves per stream).
    pub rho: f64,
}

impl DnfConfig {
    /// Maximum total number of leaves this configuration can produce.
    pub fn total_leaves(&self) -> usize {
        match self.shape {
            Shape::TotalWithCap { total, cap } => total.min(self.terms * cap),
            Shape::PerTerm(m) => self.terms * m,
        }
    }

    /// Number of streams realising the target sharing ratio for an
    /// instance with `leaves` leaves.
    pub fn num_streams_for(&self, leaves: usize) -> usize {
        ((leaves as f64 / self.rho).round() as usize).max(1)
    }

    /// Number of streams for the configuration's maximum size (used by
    /// `PerTerm` shapes, whose size is deterministic).
    pub fn num_streams(&self) -> usize {
        self.num_streams_for(self.total_leaves())
    }
}

/// Instances per configuration in both DNF experiments.
pub const DNF_INSTANCES_PER_CONFIG: usize = 100;

/// The 216-configuration "small" grid (Figure 5).
pub fn fig5_grid() -> Vec<DnfConfig> {
    let mut grid = Vec::new();
    for n in 2..=9 {
        for total in [10usize, 15, 20] {
            for &rho in SHARING_RATIOS.iter() {
                grid.push(DnfConfig {
                    terms: n,
                    shape: Shape::TotalWithCap { total, cap: 8 },
                    rho,
                });
            }
        }
    }
    grid
}

/// The 324-configuration "large" grid (Figure 6).
pub fn fig6_grid() -> Vec<DnfConfig> {
    let mut grid = Vec::new();
    for n in 2..=10 {
        for m in [5usize, 10, 15, 20] {
            for &rho in SHARING_RATIOS.iter() {
                grid.push(DnfConfig {
                    terms: n,
                    shape: Shape::PerTerm(m),
                    rho,
                });
            }
        }
    }
    grid
}

/// Randomly splits `total` leaves over `terms` AND nodes, each receiving
/// between 1 and `cap` leaves. Uses repeated balanced perturbation so all
/// feasible compositions are reachable.
fn random_composition<R: Rng + ?Sized>(
    total: usize,
    terms: usize,
    cap: usize,
    rng: &mut R,
) -> Vec<usize> {
    let total = total.clamp(terms, terms * cap);
    let mut sizes = vec![1usize; terms];
    let mut left = total - terms;
    while left > 0 {
        let i = rng.gen_range(0..terms);
        if sizes[i] < cap {
            sizes[i] += 1;
            left -= 1;
        }
    }
    sizes
}

/// Generates one random DNF instance for a grid cell.
pub fn random_dnf_instance<R: Rng + ?Sized>(
    config: DnfConfig,
    dist: &ParamDistributions,
    rng: &mut R,
) -> DnfInstance {
    let sizes: Vec<usize> = match config.shape {
        Shape::TotalWithCap { total, cap } => {
            // "up to at most `total` leaves": draw the actual size first
            let hi = total.min(config.terms * cap);
            let actual = rng.gen_range(config.terms..=hi.max(config.terms));
            random_composition(actual, config.terms, cap, rng)
        }
        Shape::PerTerm(m) => vec![m; config.terms],
    };
    let s = config.num_streams_for(sizes.iter().sum());
    let catalog = dist.sample_catalog(rng, s);
    let terms: Vec<Vec<Leaf>> = sizes
        .iter()
        .map(|&m| {
            (0..m)
                .map(|_| {
                    let stream = StreamId(rng.gen_range(0..s));
                    dist.sample_leaf(rng, stream)
                })
                .collect()
        })
        .collect();
    let tree = DnfTree::from_leaves(terms).expect("terms are non-empty");
    DnfInstance::new(tree, catalog).expect("generated instances validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn small_grid_has_216_configs_matching_21600_instances() {
        assert_eq!(fig5_grid().len(), 216);
        assert_eq!(fig5_grid().len() * DNF_INSTANCES_PER_CONFIG, 21_600);
    }

    #[test]
    fn large_grid_has_324_configs_matching_32400_instances() {
        assert_eq!(fig6_grid().len(), 324);
        assert_eq!(fig6_grid().len() * DNF_INSTANCES_PER_CONFIG, 32_400);
    }

    #[test]
    fn compositions_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let sizes = random_composition(20, 9, 8, &mut rng);
            assert_eq!(sizes.len(), 9);
            assert_eq!(sizes.iter().sum::<usize>(), 20);
            assert!(sizes.iter().all(|&s| (1..=8).contains(&s)));
        }
        // infeasible total is clamped: 2 terms, cap 8 -> at most 16
        let sizes = random_composition(20, 2, 8, &mut rng);
        assert_eq!(sizes.iter().sum::<usize>(), 16);
        // sampled totals across the whole range are reachable
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let cfg = DnfConfig {
                terms: 2,
                shape: Shape::TotalWithCap { total: 20, cap: 8 },
                rho: 2.0,
            };
            let dist = crate::distributions::ParamDistributions::paper();
            let inst = random_dnf_instance(cfg, &dist, &mut rng);
            seen.insert(inst.num_leaves());
        }
        assert!(seen.len() > 8, "sampled sizes cover a range: {seen:?}");
        assert!(*seen.iter().max().unwrap() <= 16);
        assert!(*seen.iter().min().unwrap() >= 2);
    }

    #[test]
    fn small_instances_respect_paper_constraints() {
        let mut rng = StdRng::seed_from_u64(10);
        let dist = ParamDistributions::paper();
        for cfg in fig5_grid().into_iter().step_by(17) {
            let inst = random_dnf_instance(cfg, &dist, &mut rng);
            assert_eq!(inst.num_terms(), cfg.terms);
            assert!(inst.num_leaves() <= 20);
            assert!(inst.tree.terms().iter().all(|t| t.len() <= 8));
            inst.tree.validate(&inst.catalog).unwrap();
        }
    }

    #[test]
    fn large_instances_have_exact_term_sizes() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = ParamDistributions::paper();
        let cfg = DnfConfig {
            terms: 10,
            shape: Shape::PerTerm(20),
            rho: 5.0,
        };
        let inst = random_dnf_instance(cfg, &dist, &mut rng);
        assert_eq!(inst.num_terms(), 10);
        assert!(inst.tree.terms().iter().all(|t| t.len() == 20));
        assert_eq!(inst.num_leaves(), 200);
        assert_eq!(cfg.num_streams(), 40);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let dist = ParamDistributions::paper();
        let cfg = DnfConfig {
            terms: 4,
            shape: Shape::TotalWithCap { total: 10, cap: 8 },
            rho: 2.0,
        };
        let a = random_dnf_instance(cfg, &dist, &mut StdRng::seed_from_u64(77));
        let b = random_dnf_instance(cfg, &dist, &mut StdRng::seed_from_u64(77));
        assert_eq!(a, b);
    }
}
