//! Random multi-query workloads over one shared stream catalog.
//!
//! The paper plans one query at a time; the multi-query subsystem
//! (`paotr_multi`) plans sets of concurrent queries whose benefit comes
//! from *cross-query* stream sharing. This module generates such
//! workloads with a controllable degree of overlap: the catalog holds a
//! pool of **hot** streams every query may read plus a disjoint pool of
//! **cold** streams private to each query, and each leaf draws its
//! stream from the union of its query's hot + private pools. With `h`
//! hot and `c` private streams per query (and enough leaves to touch
//! most of them), the expected pairwise Jaccard overlap of two queries'
//! stream sets is roughly `h / (h + 2c)` — [`WorkloadConfig::with_overlap`]
//! inverts that formula to hit a target.

use crate::distributions::ParamDistributions;
use crate::seeds::{instance_seed, Experiment};
use paotr_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of one generated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of concurrent queries.
    pub queries: usize,
    /// AND terms per query.
    pub terms_per_query: usize,
    /// Leaves per AND term.
    pub leaves_per_term: usize,
    /// Streams every query may read (the shared pool).
    pub hot_streams: usize,
    /// Additional streams private to each query.
    pub cold_streams_per_query: usize,
}

impl WorkloadConfig {
    /// A workload of `queries` DNF queries tuned so the mean pairwise
    /// stream overlap (Jaccard index of the queries' stream sets) lands
    /// near `overlap` (clamped to `[0.05, 1.0]`). Each query has 3 AND
    /// terms of 3 leaves — large enough to exercise short-circuiting,
    /// small enough that every planner stays polynomial-fast.
    pub fn with_overlap(queries: usize, overlap: f64) -> WorkloadConfig {
        let overlap = overlap.clamp(0.05, 1.0);
        let hot = 4usize;
        // Jaccard ~ hot / (hot + 2*cold)  =>  cold = hot*(1-j)/(2j).
        let cold = (hot as f64 * (1.0 - overlap) / (2.0 * overlap)).round() as usize;
        WorkloadConfig {
            queries,
            terms_per_query: 3,
            leaves_per_term: 3,
            hot_streams: hot,
            cold_streams_per_query: cold,
        }
    }

    /// The large-workload serving preset: [`LARGE_WORKLOAD_QUERIES`]
    /// concurrent queries with controllable overlap — the scale at which
    /// joint-planning wall time matters. Used by the `workload_plan`
    /// bench group and the experiments sweep; generation stays
    /// seed-stable through [`workload_instance`].
    pub fn large_workload(overlap: f64) -> WorkloadConfig {
        WorkloadConfig::with_overlap(LARGE_WORKLOAD_QUERIES, overlap)
    }

    /// Total number of streams in the generated catalog.
    pub fn num_streams(&self) -> usize {
        self.hot_streams + self.queries * self.cold_streams_per_query
    }

    /// Total number of leaves across the workload.
    pub fn total_leaves(&self) -> usize {
        self.queries * self.terms_per_query * self.leaves_per_term
    }
}

/// Generates one random workload: `queries` DNF trees over a single
/// shared catalog. Streams `0..hot_streams` are the shared pool; query
/// `q` additionally owns streams
/// `hot + q*cold .. hot + (q+1)*cold`. Each leaf picks uniformly from
/// its query's reachable pool, so overlap is governed by the hot/cold
/// ratio.
pub fn random_workload<R: Rng + ?Sized>(
    config: WorkloadConfig,
    dist: &ParamDistributions,
    rng: &mut R,
) -> (Vec<DnfTree>, StreamCatalog) {
    assert!(config.queries > 0, "a workload needs at least one query");
    assert!(config.hot_streams > 0, "the shared pool cannot be empty");
    let catalog = dist.sample_catalog(rng, config.num_streams());
    let trees = (0..config.queries)
        .map(|q| {
            let pool = config.hot_streams + config.cold_streams_per_query;
            let terms: Vec<Vec<Leaf>> = (0..config.terms_per_query)
                .map(|_| {
                    (0..config.leaves_per_term)
                        .map(|_| {
                            let slot = rng.gen_range(0..pool);
                            let stream = if slot < config.hot_streams {
                                StreamId(slot)
                            } else {
                                StreamId(
                                    config.hot_streams
                                        + q * config.cold_streams_per_query
                                        + (slot - config.hot_streams),
                                )
                            };
                            dist.sample_leaf(rng, stream)
                        })
                        .collect()
                })
                .collect();
            DnfTree::from_leaves(terms).expect("terms are non-empty")
        })
        .collect();
    (trees, catalog)
}

/// Queries in the [`WorkloadConfig::large_workload`] preset.
pub const LARGE_WORKLOAD_QUERIES: usize = 128;

/// Addressable workload generation: instance `index` of `config`, with
/// seed-stable output (see [`crate::seeds`]).
pub fn workload_instance(config: WorkloadConfig, index: usize) -> (Vec<DnfTree>, StreamCatalog) {
    let seed = instance_seed(Experiment::Workload, config.queries, index);
    let mut rng = StdRng::seed_from_u64(seed);
    random_workload(config, &ParamDistributions::paper(), &mut rng)
}

/// Instance `index` of the [`WorkloadConfig::large_workload`] preset.
pub fn large_workload_instance(overlap: f64, index: usize) -> (Vec<DnfTree>, StreamCatalog) {
    workload_instance(WorkloadConfig::large_workload(overlap), index)
}

/// Mean pairwise Jaccard overlap of the queries' stream sets — the
/// workload-level counterpart of a single tree's
/// [`DnfTree::sharing_ratio`]. 0 for single-query workloads. Thin alias
/// of [`paotr_core::tree::mean_pairwise_stream_overlap`], the canonical
/// definition shared with the interference analysis in `paotr_multi`.
pub fn mean_pairwise_overlap(trees: &[DnfTree]) -> f64 {
    paotr_core::tree::mean_pairwise_stream_overlap(trees)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic_and_validates() {
        let cfg = WorkloadConfig::with_overlap(6, 0.5);
        let (a, cat_a) = workload_instance(cfg, 3);
        let (b, cat_b) = workload_instance(cfg, 3);
        assert_eq!(a, b);
        assert_eq!(cat_a, cat_b);
        assert_ne!(a, workload_instance(cfg, 4).0);
        assert_eq!(a.len(), 6);
        for t in &a {
            t.validate(&cat_a).unwrap();
            assert_eq!(t.num_leaves(), 9);
        }
    }

    #[test]
    fn overlap_targets_are_roughly_realised() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = ParamDistributions::paper();
        for (target, lo, hi) in [(0.2, 0.05, 0.45), (0.5, 0.3, 0.75), (0.9, 0.6, 1.0)] {
            let cfg = WorkloadConfig::with_overlap(8, target);
            let mut acc = 0.0;
            let reps = 20;
            for _ in 0..reps {
                let (trees, _) = random_workload(cfg, &dist, &mut rng);
                acc += mean_pairwise_overlap(&trees);
            }
            let mean = acc / reps as f64;
            assert!(
                (lo..=hi).contains(&mean),
                "target {target}: measured {mean}"
            );
        }
    }

    #[test]
    fn private_streams_stay_private() {
        let cfg = WorkloadConfig {
            queries: 4,
            terms_per_query: 2,
            leaves_per_term: 4,
            hot_streams: 2,
            cold_streams_per_query: 3,
        };
        let (trees, cat) = workload_instance(cfg, 0);
        assert_eq!(cat.len(), 2 + 4 * 3);
        for (q, t) in trees.iter().enumerate() {
            for s in t.streams() {
                let k = s.index();
                assert!(
                    k < 2 || (2 + q * 3..2 + (q + 1) * 3).contains(&k),
                    "query {q} read foreign stream {k}"
                );
            }
        }
    }

    #[test]
    fn single_query_workload_has_zero_pairwise_overlap() {
        let (trees, _) = workload_instance(WorkloadConfig::with_overlap(1, 0.5), 0);
        assert_eq!(mean_pairwise_overlap(&trees), 0.0);
    }

    #[test]
    fn large_workload_preset_is_seed_stable() {
        let (a, cat_a) = large_workload_instance(0.6, 1);
        let (b, cat_b) = large_workload_instance(0.6, 1);
        assert_eq!(a, b);
        assert_eq!(cat_a, cat_b);
        assert_eq!(a.len(), LARGE_WORKLOAD_QUERIES);
        assert_eq!(
            WorkloadConfig::large_workload(0.6),
            WorkloadConfig::with_overlap(LARGE_WORKLOAD_QUERIES, 0.6)
        );
        // distinct indices and overlaps generate distinct workloads
        assert_ne!(a, large_workload_instance(0.6, 2).0);
        assert_ne!(cat_a.len(), large_workload_instance(0.2, 1).1.len());
    }
}
