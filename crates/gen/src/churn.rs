//! Scripted churn: deterministic register/unregister/tick event streams
//! for the serving daemon's soak and bench harnesses.
//!
//! A churn script is a sequence of [`ChurnEvent`]s addressed by
//! `(config, instance)` through [`Experiment::Daemon`] seeding, so soak
//! failures reproduce from their script coordinates alone. Queries are
//! emitted as **qlang source strings** (this crate does not depend on
//! the qlang parser): random DNF shapes over a bounded stream pool,
//! with windows capped so every script is admissible under a daemon's
//! `max_window`.

use crate::seeds::{instance_seed, Experiment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scripted daemon event.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// Register a new query.
    Register {
        /// qlang source text.
        source: String,
        /// Admission weight.
        weight: f64,
    },
    /// Unregister the `nth_live` oldest live session (0-based; always
    /// valid for a consumer replaying the script in order).
    Unregister {
        /// Index into the live set, in registration order.
        nth_live: usize,
    },
    /// Advance the daemon by `n` ticks.
    Tick {
        /// Tick count (`>= 1`).
        n: u64,
    },
}

/// Churn script shape knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Events to generate.
    pub events: usize,
    /// Ceiling on concurrently live sessions (registers beyond it
    /// become ticks).
    pub max_live: usize,
    /// Size of the stream-name pool (`s0`, `s1`, ...).
    pub streams: usize,
    /// Maximum DNF terms per query.
    pub max_terms: usize,
    /// Maximum predicates per term.
    pub max_leaves_per_term: usize,
    /// Maximum aggregate window (keep at or below the daemon's
    /// `max_window`).
    pub max_window: u32,
    /// Maximum ticks per [`ChurnEvent::Tick`] burst.
    pub max_tick_burst: u64,
}

impl Default for ChurnConfig {
    fn default() -> ChurnConfig {
        ChurnConfig {
            events: 1000,
            max_live: 24,
            streams: 12,
            max_terms: 3,
            max_leaves_per_term: 3,
            max_window: 16,
            max_tick_burst: 4,
        }
    }
}

const AGGS: [&str; 5] = ["AVG", "MAX", "MIN", "SUM", "LAST"];
const CMPS: [&str; 4] = ["<", "<=", ">", ">="];

/// One random qlang predicate, e.g. `AVG(s3, 7) < 0.215 @ 0.4`.
fn random_predicate<R: Rng + ?Sized>(cfg: &ChurnConfig, rng: &mut R) -> String {
    let agg = AGGS[rng.gen_range(0..AGGS.len())];
    let stream = rng.gen_range(0..cfg.streams.max(1));
    let window = rng.gen_range(1..=cfg.max_window.max(1));
    let cmp = CMPS[rng.gen_range(0..CMPS.len())];
    let threshold = rng.gen_range(-1.0..1.0);
    let mut p = format!("{agg}(s{stream}, {window}) {cmp} {threshold:.3}");
    if rng.gen_range(0.0..1.0) < 0.3 {
        let prob = rng.gen_range(0.05..0.95);
        p.push_str(&format!(" @ {prob:.2}"));
    }
    p
}

/// One random DNF-shaped qlang query under `cfg`'s shape bounds.
pub fn random_query_source<R: Rng + ?Sized>(cfg: &ChurnConfig, rng: &mut R) -> String {
    let n_terms = rng.gen_range(1..=cfg.max_terms.max(1));
    let terms: Vec<String> = (0..n_terms)
        .map(|_| {
            let n_leaves = rng.gen_range(1..=cfg.max_leaves_per_term.max(1));
            let leaves: Vec<String> = (0..n_leaves).map(|_| random_predicate(cfg, rng)).collect();
            if n_terms > 1 && n_leaves > 1 {
                format!("({})", leaves.join(" AND "))
            } else {
                leaves.join(" AND ")
            }
        })
        .collect();
    terms.join(" OR ")
}

/// The deterministic churn script at `(config, instance)`.
pub fn churn_script(cfg: &ChurnConfig, config_idx: usize, instance: usize) -> Vec<ChurnEvent> {
    let seed = instance_seed(Experiment::Daemon, config_idx, instance);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::with_capacity(cfg.events);
    let mut live = 0usize;
    for _ in 0..cfg.events {
        let roll = rng.gen_range(0.0..1.0);
        if roll < 0.35 && live < cfg.max_live {
            events.push(ChurnEvent::Register {
                source: random_query_source(cfg, &mut rng),
                weight: rng.gen_range(0.5..4.0),
            });
            live += 1;
        } else if roll < 0.55 && live > 0 {
            events.push(ChurnEvent::Unregister {
                nth_live: rng.gen_range(0..live),
            });
            live -= 1;
        } else {
            events.push(ChurnEvent::Tick {
                n: rng.gen_range(1..=cfg.max_tick_burst.max(1)),
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_and_distinct() {
        let cfg = ChurnConfig::default();
        assert_eq!(churn_script(&cfg, 0, 0), churn_script(&cfg, 0, 0));
        assert_ne!(churn_script(&cfg, 0, 0), churn_script(&cfg, 0, 1));
        assert_eq!(churn_script(&cfg, 0, 0).len(), cfg.events);
    }

    #[test]
    fn unregister_indices_are_always_valid() {
        let cfg = ChurnConfig {
            events: 5000,
            ..ChurnConfig::default()
        };
        let mut live = 0usize;
        let mut saw_unregister = false;
        for ev in churn_script(&cfg, 1, 2) {
            match ev {
                ChurnEvent::Register { source, weight } => {
                    assert!(!source.is_empty());
                    assert!(weight > 0.0);
                    live += 1;
                    assert!(live <= cfg.max_live);
                }
                ChurnEvent::Unregister { nth_live } => {
                    assert!(nth_live < live, "{nth_live} out of {live}");
                    live -= 1;
                    saw_unregister = true;
                }
                ChurnEvent::Tick { n } => {
                    assert!((1..=cfg.max_tick_burst).contains(&n));
                }
            }
        }
        assert!(saw_unregister, "a 5000-event script must exercise churn");
    }

    #[test]
    fn sources_respect_shape_bounds() {
        let cfg = ChurnConfig {
            max_window: 8,
            streams: 3,
            ..ChurnConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let src = random_query_source(&cfg, &mut rng);
            assert!(src.split(" OR ").count() <= cfg.max_terms);
            for tok in src.split(['(', ',', ')']) {
                if let Ok(w) = tok.trim().parse::<u32>() {
                    assert!(w <= cfg.max_window, "window {w} in `{src}`");
                }
            }
        }
    }
}
