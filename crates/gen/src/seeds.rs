//! Deterministic seed derivation.
//!
//! Every generated instance is addressed by `(experiment, config index,
//! instance index)` and gets a seed derived by a SplitMix64-style mixer.
//! Re-running any experiment therefore regenerates byte-identical
//! instances, and instances can be regenerated individually (e.g. to
//! reproduce one outlier from a CSV row) without replaying the whole
//! sweep.

/// Experiment identifiers (domain separation for seed derivation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Figure 4: AND-tree comparison.
    Fig4,
    /// Figure 5: small DNF instances vs optimal.
    Fig5,
    /// Figure 6: large DNF instances vs best heuristic.
    Fig6,
    /// Multi-query workloads over one shared catalog.
    Workload,
    /// Serving-loop arrival processes (one stream of arrival times per
    /// query of a served workload).
    Serve,
    /// Daemon churn scripts (register/unregister/tick event streams for
    /// the serving daemon's soak and bench harnesses).
    Daemon,
    /// Seeded fault plans (stream-outage and transient-read-failure
    /// schedules for the chaos layer).
    Faults,
    /// Free-form experiments (tests, examples).
    Custom(u64),
}

impl Experiment {
    fn tag(self) -> u64 {
        match self {
            Experiment::Fig4 => 0x0f19_64b5_17c4_0001,
            Experiment::Fig5 => 0x0f19_64b5_17c4_0005,
            Experiment::Fig6 => 0x0f19_64b5_17c4_0006,
            Experiment::Workload => 0x0f19_64b5_17c4_0010,
            Experiment::Serve => 0x0f19_64b5_17c4_0020,
            Experiment::Daemon => 0x0f19_64b5_17c4_0040,
            Experiment::Faults => 0x0f19_64b5_17c4_0080,
            Experiment::Custom(t) => t ^ 0xc0ff_ee00_dead_beef,
        }
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixer.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed for instance `instance` of configuration `config` of `experiment`.
pub fn instance_seed(experiment: Experiment, config: usize, instance: usize) -> u64 {
    let a = mix(experiment.tag());
    let b = mix(a ^ (config as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
    mix(b ^ (instance as u64).wrapping_mul(0x2545_f491_4f6c_dd1d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(
            instance_seed(Experiment::Fig4, 3, 17),
            instance_seed(Experiment::Fig4, 3, 17)
        );
    }

    #[test]
    fn seeds_differ_across_axes() {
        let base = instance_seed(Experiment::Fig4, 0, 0);
        assert_ne!(base, instance_seed(Experiment::Fig4, 0, 1));
        assert_ne!(base, instance_seed(Experiment::Fig4, 1, 0));
        assert_ne!(base, instance_seed(Experiment::Fig5, 0, 0));
        assert_ne!(base, instance_seed(Experiment::Custom(0), 0, 0));
    }

    #[test]
    fn mixer_spreads_small_inputs() {
        // consecutive inputs should differ in many bits
        let a = mix(1);
        let b = mix(2);
        assert!((a ^ b).count_ones() > 16);
    }
}
