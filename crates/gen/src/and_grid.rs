//! Random shared AND-trees: the Figure 4 experiment grid.
//!
//! Section III-B: "For a given number of leaves m = 2, ..., 20 and a given
//! sharing ratio rho = 1, 5/4, 4/3, 3/2, 2, 3, 4, 5, 10, we generate 1,000
//! random trees for a total of 157,000 random trees (note that rho cannot
//! be larger than the number of leaves)."
//!
//! The sharing ratio is realised by drawing each leaf's stream uniformly
//! from `round(m / rho)` streams, so the *expected* number of leaves per
//! stream is `rho` (individual trees vary, as in any uniform assignment).

use crate::distributions::ParamDistributions;
use paotr_core::prelude::*;
use rand::Rng;

/// The paper's nine sharing-ratio values.
pub const SHARING_RATIOS: [f64; 9] = [1.0, 1.25, 4.0 / 3.0, 1.5, 2.0, 3.0, 4.0, 5.0, 10.0];

/// The paper's leaf-count range `m = 2..=20`.
pub const LEAF_COUNTS: std::ops::RangeInclusive<usize> = 2..=20;

/// One cell of the Figure 4 grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AndConfig {
    /// Number of leaves, `m`.
    pub leaves: usize,
    /// Target sharing ratio, `rho` (expected leaves per stream).
    pub rho: f64,
}

impl AndConfig {
    /// Number of streams realising the target ratio: `round(m / rho)`,
    /// at least 1.
    pub fn num_streams(&self) -> usize {
        ((self.leaves as f64 / self.rho).round() as usize).max(1)
    }
}

/// The full 157-configuration grid of Figure 4 (all `(m, rho)` pairs with
/// `rho <= m`).
pub fn fig4_grid() -> Vec<AndConfig> {
    let mut grid = Vec::new();
    for m in LEAF_COUNTS {
        for &rho in SHARING_RATIOS.iter() {
            if rho <= m as f64 {
                grid.push(AndConfig { leaves: m, rho });
            }
        }
    }
    grid
}

/// Number of instances per grid cell in the paper.
pub const FIG4_INSTANCES_PER_CONFIG: usize = 1000;

/// Generates one random AND-tree instance for a grid cell.
pub fn random_and_instance<R: Rng + ?Sized>(
    config: AndConfig,
    dist: &ParamDistributions,
    rng: &mut R,
) -> (AndTree, StreamCatalog) {
    let s = config.num_streams();
    let catalog = dist.sample_catalog(rng, s);
    let leaves: Vec<Leaf> = (0..config.leaves)
        .map(|_| {
            let stream = StreamId(rng.gen_range(0..s));
            dist.sample_leaf(rng, stream)
        })
        .collect();
    (AndTree::new(leaves).expect("m >= 2"), catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn grid_has_exactly_157_configurations() {
        // 5+6+7+8+8+8+8+8 (m = 2..9) + 9 * 11 (m = 10..20) = 157,
        // the count that makes the paper's 157,000 trees.
        assert_eq!(fig4_grid().len(), 157);
    }

    #[test]
    fn rho_never_exceeds_leaf_count() {
        for cfg in fig4_grid() {
            assert!(cfg.rho <= cfg.leaves as f64);
            assert!(cfg.num_streams() >= 1);
        }
    }

    #[test]
    fn stream_count_matches_ratio() {
        let cfg = AndConfig {
            leaves: 20,
            rho: 10.0,
        };
        assert_eq!(cfg.num_streams(), 2);
        let cfg = AndConfig {
            leaves: 20,
            rho: 1.0,
        };
        assert_eq!(cfg.num_streams(), 20);
        let cfg = AndConfig {
            leaves: 10,
            rho: 4.0 / 3.0,
        };
        assert_eq!(cfg.num_streams(), 8); // round(7.5)
    }

    #[test]
    fn generated_instances_validate() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = ParamDistributions::paper();
        for cfg in fig4_grid().into_iter().step_by(13) {
            let (tree, cat) = random_and_instance(cfg, &dist, &mut rng);
            assert_eq!(tree.len(), cfg.leaves);
            tree.validate(&cat).unwrap();
        }
    }

    #[test]
    fn realized_sharing_ratio_is_close_on_average() {
        let mut rng = StdRng::seed_from_u64(8);
        let dist = ParamDistributions::paper();
        let cfg = AndConfig {
            leaves: 20,
            rho: 2.0,
        };
        let mut total = 0.0;
        let n = 200;
        for _ in 0..n {
            let (tree, _) = random_and_instance(cfg, &dist, &mut rng);
            total += tree.len() as f64 / cfg.num_streams() as f64;
            let _ = tree.sharing_ratio();
        }
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean target ratio {mean}");
    }
}
