//! # paotr-gen — random problem instances for the PAOTR experiments
//!
//! Reproduces the paper's three experiment grids with deterministic
//! seeding:
//!
//! * [`and_grid::fig4_grid`] — 157 AND-tree configurations × 1000
//!   instances (Figure 4);
//! * [`dnf_grid::fig5_grid`] — 216 small-DNF configurations × 100
//!   instances (Figure 5);
//! * [`dnf_grid::fig6_grid`] — 324 large-DNF configurations × 100
//!   instances (Figure 6).
//!
//! Parameters follow Section III-B: `p ~ U[0,1]`, `d ~ U{1..5}`,
//! `c ~ U[1,10]`; the sharing ratio `rho` is realised by drawing each
//! leaf's stream uniformly from `round(leaves / rho)` streams.
#![forbid(unsafe_code)]

pub mod and_grid;
pub mod churn;
pub mod distributions;
pub mod dnf_grid;
pub mod seeds;
pub mod workload;

pub use and_grid::{
    fig4_grid, random_and_instance, AndConfig, FIG4_INSTANCES_PER_CONFIG, LEAF_COUNTS,
    SHARING_RATIOS,
};
pub use churn::{churn_script, random_query_source, ChurnConfig, ChurnEvent};
pub use distributions::ParamDistributions;
pub use dnf_grid::{
    fig5_grid, fig6_grid, random_dnf_instance, DnfConfig, Shape, DNF_INSTANCES_PER_CONFIG,
};
pub use seeds::{instance_seed, Experiment};
pub use workload::{mean_pairwise_overlap, random_workload, workload_instance, WorkloadConfig};

use paotr_core::prelude::DnfInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates instance `index` of Figure-4 configuration `config`
/// (addressable regeneration; see [`seeds`]).
pub fn fig4_instance(
    config_idx: usize,
    index: usize,
) -> (paotr_core::tree::AndTree, paotr_core::stream::StreamCatalog) {
    let grid = fig4_grid();
    let seed = instance_seed(Experiment::Fig4, config_idx, index);
    let mut rng = StdRng::seed_from_u64(seed);
    random_and_instance(grid[config_idx], &ParamDistributions::paper(), &mut rng)
}

/// Generates instance `index` of Figure-5 configuration `config`.
pub fn fig5_instance(config_idx: usize, index: usize) -> DnfInstance {
    let grid = fig5_grid();
    let seed = instance_seed(Experiment::Fig5, config_idx, index);
    let mut rng = StdRng::seed_from_u64(seed);
    random_dnf_instance(grid[config_idx], &ParamDistributions::paper(), &mut rng)
}

/// Generates instance `index` of Figure-6 configuration `config`.
pub fn fig6_instance(config_idx: usize, index: usize) -> DnfInstance {
    let grid = fig6_grid();
    let seed = instance_seed(Experiment::Fig6, config_idx, index);
    let mut rng = StdRng::seed_from_u64(seed);
    random_dnf_instance(grid[config_idx], &ParamDistributions::paper(), &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressable_instances_are_reproducible() {
        assert_eq!(fig5_instance(12, 34), fig5_instance(12, 34));
        assert_ne!(fig5_instance(12, 34), fig5_instance(12, 35));
        let (t1, c1) = fig4_instance(100, 999);
        let (t2, c2) = fig4_instance(100, 999);
        assert_eq!(t1, t2);
        assert_eq!(c1, c2);
        assert_eq!(fig6_instance(0, 0), fig6_instance(0, 0));
    }

    #[test]
    fn fig4_instance_matches_grid_config() {
        let grid = fig4_grid();
        let (tree, cat) = fig4_instance(0, 0);
        assert_eq!(tree.len(), grid[0].leaves);
        assert_eq!(cat.len(), grid[0].num_streams());
    }
}
