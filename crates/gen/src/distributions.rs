//! Parameter distributions for random instances.
//!
//! Section III-B of the paper fixes the sampling scheme used by all its
//! experiments: "Leaf success probabilities, numbers of data items needed
//! at each leaf, and per data item costs are sampled from uniform
//! distributions over the intervals [0, 1], [1, 5], and [1, 10],
//! respectively." [`ParamDistributions::paper`] encodes exactly that;
//! custom ranges support sensitivity studies.

use paotr_core::prelude::*;
use rand::Rng;

/// Uniform sampling ranges for leaf probabilities, item counts and stream
/// costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamDistributions {
    /// Success probability range (closed-open), default `[0, 1)`.
    pub prob: (f64, f64),
    /// Item count range (inclusive), default `1..=5`.
    pub items: (u32, u32),
    /// Per-item cost range (closed-open), default `[1, 10)`.
    pub cost: (f64, f64),
}

impl ParamDistributions {
    /// The paper's Section III-B distributions.
    pub fn paper() -> ParamDistributions {
        ParamDistributions {
            prob: (0.0, 1.0),
            items: (1, 5),
            cost: (1.0, 10.0),
        }
    }

    /// All leaves require exactly one item (the paper's Figure 3 shape).
    pub fn unit_items() -> ParamDistributions {
        ParamDistributions {
            items: (1, 1),
            ..ParamDistributions::paper()
        }
    }

    /// Samples a success probability.
    pub fn sample_prob<R: Rng + ?Sized>(&self, rng: &mut R) -> Prob {
        let (lo, hi) = self.prob;
        let p = if lo >= hi { lo } else { rng.gen_range(lo..hi) };
        Prob::new(p).expect("distribution bounds inside [0,1]")
    }

    /// Samples an item count.
    pub fn sample_items<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let (lo, hi) = self.items;
        rng.gen_range(lo..=hi)
    }

    /// Samples a per-item stream cost.
    pub fn sample_cost<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let (lo, hi) = self.cost;
        if lo >= hi {
            lo
        } else {
            rng.gen_range(lo..hi)
        }
    }

    /// Samples a full leaf on the given stream.
    pub fn sample_leaf<R: Rng + ?Sized>(&self, rng: &mut R, stream: StreamId) -> Leaf {
        Leaf::raw(stream, self.sample_items(rng), self.sample_prob(rng))
    }

    /// Builds a catalog of `n` streams with sampled costs.
    pub fn sample_catalog<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> StreamCatalog {
        StreamCatalog::from_costs((0..n).map(|_| self.sample_cost(rng)))
            .expect("sampled costs are finite and non-negative")
    }
}

impl Default for ParamDistributions {
    fn default() -> ParamDistributions {
        ParamDistributions::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn paper_ranges() {
        let d = ParamDistributions::paper();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let p = d.sample_prob(&mut rng).value();
            assert!((0.0..1.0).contains(&p));
            let i = d.sample_items(&mut rng);
            assert!((1..=5).contains(&i));
            let c = d.sample_cost(&mut rng);
            assert!((1.0..10.0).contains(&c));
        }
    }

    #[test]
    fn degenerate_ranges_are_constant() {
        let d = ParamDistributions {
            prob: (0.5, 0.5),
            items: (3, 3),
            cost: (2.0, 2.0),
        };
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(d.sample_prob(&mut rng).value(), 0.5);
        assert_eq!(d.sample_items(&mut rng), 3);
        assert_eq!(d.sample_cost(&mut rng), 2.0);
    }

    #[test]
    fn catalog_has_requested_size() {
        let d = ParamDistributions::paper();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(d.sample_catalog(&mut rng, 7).len(), 7);
    }
}
