//! Snapshot format compatibility: the committed v1 fixture must keep
//! restoring (and re-rendering byte-identically) on every future build.
//!
//! Regenerate after an intentional format bump with:
//! `cargo test -p paotr-serverd --test snapshot_compat -- --ignored`

use paotr_serverd::{Config, Daemon, Snapshot, SnapshotError};

const FIXTURE: &str = include_str!("fixtures/snapshot_v1.snap");

fn fixture_daemon() -> Daemon {
    let mut d = Daemon::new(Config {
        seed: 7,
        budget: Some(18.0),
        replan_after: 3,
        max_sessions: 16,
        max_window: 24,
        ..Config::default()
    })
    .unwrap();
    d.register("AVG(hr, 8) > 0.2 AND MAX(hr, 4) > 0.5", 1.0)
        .unwrap();
    d.register("(spo2 < 0.1 AND hr > 0.0) OR LAST(accel, 2) > 0.8", 2.0)
        .unwrap();
    d.register("MIN(accel, 5) < -0.5 @ 0.3", 0.75).unwrap();
    d.run_ticks(20).unwrap();
    d.unregister(1).unwrap();
    d.run_ticks(10).unwrap();
    d
}

#[test]
fn committed_fixture_parses_and_restores() {
    let snap = Snapshot::parse(FIXTURE).expect("committed fixture must stay parseable");
    assert_eq!(snap.version, 1);
    let daemon = Daemon::from_snapshot(&snap).expect("committed fixture must stay restorable");
    assert_eq!(daemon.tick(), 30);
    assert_eq!(daemon.registry().len(), 2);
    assert_eq!(daemon.telemetry().ticks, 30);
    assert_eq!(daemon.telemetry().registers, 3);
    assert_eq!(daemon.telemetry().unregisters, 1);
    assert!(daemon.telemetry().total_energy > 0.0);
}

#[test]
fn committed_fixture_re_renders_byte_identically() {
    let snap = Snapshot::parse(FIXTURE).unwrap();
    assert_eq!(
        snap.render(),
        FIXTURE,
        "snapshot rendering changed — bump SNAPSHOT_VERSION and add a new fixture"
    );
}

#[test]
fn restored_fixture_keeps_serving_under_its_budget() {
    let snap = Snapshot::parse(FIXTURE).unwrap();
    let mut daemon = Daemon::from_snapshot(&snap).unwrap();
    let budget = daemon.config().budget.unwrap();
    let batch = daemon.run_ticks(20).unwrap();
    assert!(batch.max_energy() <= budget + 1e-9);
    assert_eq!(daemon.telemetry().ticks, 50);
}

#[test]
fn future_versions_are_rejected_with_a_typed_error() {
    let bumped = FIXTURE.replacen("\"version\":1", "\"version\":2", 1);
    assert!(matches!(
        Snapshot::parse(&bumped),
        Err(SnapshotError::UnsupportedVersion(2))
    ));
}

/// Not a test: rewrites the committed fixture from the current code.
#[test]
#[ignore = "regenerates tests/fixtures/snapshot_v1.snap in the source tree"]
fn regenerate_fixture() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/snapshot_v1.snap"
    );
    std::fs::write(path, fixture_daemon().snapshot().render()).unwrap();
}
