//! Snapshot format compatibility: the committed v1 and v2 fixtures must
//! keep restoring (and re-rendering byte-identically) on every future
//! build. The v1 fixture doubles as the arrangements-off golden — a
//! daemon that never arranges must keep producing the exact version-1
//! bytes.
//!
//! Regenerate after an intentional format bump with:
//! `cargo test -p paotr-serverd --test snapshot_compat -- --ignored`

use paotr_serverd::{Config, Daemon, Snapshot, SnapshotError};
use stream_sim::ArrangeConfig;

const FIXTURE: &str = include_str!("fixtures/snapshot_v1.snap");
const FIXTURE_V2: &str = include_str!("fixtures/snapshot_v2.snap");

fn fixture_daemon_under(config: Config) -> Daemon {
    let mut d = Daemon::new(config).unwrap();
    d.register("AVG(hr, 8) > 0.2 AND MAX(hr, 4) > 0.5", 1.0)
        .unwrap();
    d.register("(spo2 < 0.1 AND hr > 0.0) OR LAST(accel, 2) > 0.8", 2.0)
        .unwrap();
    d.register("MIN(accel, 5) < -0.5 @ 0.3", 0.75).unwrap();
    d.run_ticks(20).unwrap();
    d.unregister(1).unwrap();
    d.run_ticks(10).unwrap();
    d
}

fn fixture_config() -> Config {
    Config {
        seed: 7,
        budget: Some(18.0),
        replan_after: 3,
        max_sessions: 16,
        max_window: 24,
        ..Config::default()
    }
}

fn fixture_daemon() -> Daemon {
    fixture_daemon_under(fixture_config())
}

fn fixture_daemon_v2() -> Daemon {
    fixture_daemon_under(Config {
        arrange: Some(ArrangeConfig::default()),
        ..fixture_config()
    })
}

#[test]
fn committed_fixture_parses_and_restores() {
    let snap = Snapshot::parse(FIXTURE).expect("committed fixture must stay parseable");
    assert_eq!(snap.version, 1);
    let daemon = Daemon::from_snapshot(&snap).expect("committed fixture must stay restorable");
    assert_eq!(daemon.tick(), 30);
    assert_eq!(daemon.registry().len(), 2);
    assert_eq!(daemon.telemetry().ticks, 30);
    assert_eq!(daemon.telemetry().registers, 3);
    assert_eq!(daemon.telemetry().unregisters, 1);
    assert!(daemon.telemetry().total_energy > 0.0);
}

#[test]
fn committed_fixture_re_renders_byte_identically() {
    let snap = Snapshot::parse(FIXTURE).unwrap();
    assert_eq!(
        snap.render(),
        FIXTURE,
        "snapshot rendering changed — bump SNAPSHOT_VERSION and add a new fixture"
    );
}

#[test]
fn restored_fixture_keeps_serving_under_its_budget() {
    let snap = Snapshot::parse(FIXTURE).unwrap();
    let mut daemon = Daemon::from_snapshot(&snap).unwrap();
    let budget = daemon.config().budget.unwrap();
    let batch = daemon.run_ticks(20).unwrap();
    assert!(batch.max_energy() <= budget + 1e-9);
    assert_eq!(daemon.telemetry().ticks, 50);
}

#[test]
fn arrangements_off_daemon_still_writes_version_1_bytes() {
    // The arrangements-off golden: a current-build daemon without
    // arrangements must reproduce the committed v1 fixture exactly.
    assert_eq!(
        fixture_daemon().snapshot().render(),
        FIXTURE,
        "an arrangement-free daemon drifted from the version-1 format"
    );
}

#[test]
fn committed_v2_fixture_parses_restores_and_re_renders() {
    let snap = Snapshot::parse(FIXTURE_V2).expect("committed v2 fixture must stay parseable");
    assert_eq!(snap.version, 2);
    let arr = snap.arrangements.as_ref().expect("v2 fixture arranges");
    assert!(!arr.entries.is_empty());
    assert!(arr.maintained_items > 0);
    assert_eq!(
        snap.render(),
        FIXTURE_V2,
        "snapshot rendering changed — bump SNAPSHOT_VERSION and add a new fixture"
    );
    let daemon = Daemon::from_snapshot(&snap).expect("committed v2 fixture must stay restorable");
    assert_eq!(daemon.tick(), 30);
    assert!(daemon.arrangements().is_some());
}

#[test]
fn restored_v2_fixture_replays_like_the_live_daemon() {
    let mut live = fixture_daemon_v2();
    assert_eq!(live.snapshot().render(), FIXTURE_V2);
    let mut restored = Daemon::from_snapshot(&Snapshot::parse(FIXTURE_V2).unwrap()).unwrap();
    let a = live.run_ticks(15).unwrap();
    let b = restored.run_ticks(15).unwrap();
    assert_eq!(a, b, "restored arrangements must replay tick-for-tick");
}

#[test]
fn future_versions_are_rejected_with_a_typed_error() {
    let bumped = FIXTURE.replacen("\"version\":1", "\"version\":3", 1);
    assert!(matches!(
        Snapshot::parse(&bumped),
        Err(SnapshotError::UnsupportedVersion(3))
    ));
}

/// Not a test: rewrites the committed fixtures from the current code.
#[test]
#[ignore = "regenerates tests/fixtures/snapshot_v*.snap in the source tree"]
fn regenerate_fixture() {
    let v1 = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/snapshot_v1.snap"
    );
    std::fs::write(v1, fixture_daemon().snapshot().render()).unwrap();
    let v2 = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/snapshot_v2.snap"
    );
    std::fs::write(v2, fixture_daemon_v2().snapshot().render()).unwrap();
}
