//! Daemon hardening under fault injection: snapshot generations with
//! corrupt-primary fallback, kill/restore/replay under an identical
//! chaos schedule, TCP read timeouts with idle eviction, and error
//! replies (not disconnects) on malformed bytes.

use paotr_serverd::daemon::{Config, Daemon, TcpOptions};
use paotr_serverd::{FaultSpec, Snapshot};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use stream_sim::Verdict;

const FIXTURE_V2: &str = include_str!("fixtures/snapshot_v2.snap");

fn temp_path(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("paotr_chaos_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("daemon.snap").to_str().unwrap().to_string()
}

fn chaos_config() -> Config {
    Config {
        seed: 7,
        faults: Some(FaultSpec {
            seed: 42,
            transient_rate: 0.05,
            outage_streams: 0.4,
            outage_len: 8,
            outage_gap: 12,
            max_attempts: 3,
            stale_serve: false,
        }),
        ..Config::default()
    }
}

fn populate(d: &mut Daemon) {
    d.register("AVG(hr, 8) > 0.2 AND MAX(hr, 4) > 0.5", 1.0)
        .unwrap();
    d.register("(spo2 < 0.1 AND hr > 0.0) OR LAST(accel, 2) > 0.8", 2.0)
        .unwrap();
    d.register("MIN(accel, 5) < -0.5 @ 0.3", 0.75).unwrap();
}

/// Saving twice rotates the first generation to `<path>.1`; a corrupt
/// primary falls back to it, and a healthy primary is preferred.
#[test]
fn snapshot_save_rotates_and_restore_falls_back_on_corruption() {
    let path = temp_path("rotate");
    let mut d = Daemon::new(chaos_config()).unwrap();
    populate(&mut d);
    d.run_ticks(30).unwrap();
    d.save_snapshot(&path).unwrap();
    d.run_ticks(10).unwrap();
    d.save_snapshot(&path).unwrap();

    // The rotated generation is the tick-30 document, the primary is
    // the tick-40 one; with both healthy the primary wins.
    let rotated = Snapshot::load(&format!("{path}.1")).unwrap();
    assert_eq!(rotated.tick, 30);
    assert_eq!(Daemon::load_snapshot(&path).unwrap().tick(), 40);

    // Corrupt the primary: restore falls back to tick 30 and the
    // restored daemon replays exactly what the uninterrupted run did.
    std::fs::write(&path, "{\"version\":2,\"config\":{tr").unwrap();
    let mut restored = Daemon::load_snapshot(&path).unwrap();
    assert_eq!(restored.tick(), 30);
    let replay = restored.run_ticks(10).unwrap();
    let mut uninterrupted = Daemon::new(chaos_config()).unwrap();
    populate(&mut uninterrupted);
    uninterrupted.run_ticks(30).unwrap();
    let original = uninterrupted.run_ticks(10).unwrap();
    assert_eq!(
        replay, original,
        "fallback restore must replay the chaos schedule tick-for-tick"
    );

    // Both generations unreadable: the primary's error is surfaced.
    std::fs::write(format!("{path}.1"), "also broken").unwrap();
    assert!(Daemon::load_snapshot(&path).is_err());
}

/// The committed v2 fixture restores through the fallback path when a
/// truncated primary sits in front of it.
#[test]
fn truncated_primary_falls_back_to_the_committed_v2_generation() {
    let path = temp_path("fixture_fallback");
    std::fs::write(&path, &FIXTURE_V2[..FIXTURE_V2.len() / 2]).unwrap();
    std::fs::write(format!("{path}.1"), FIXTURE_V2).unwrap();
    let (snap, fell_back) = Snapshot::load_with_fallback(&path).unwrap();
    assert!(fell_back, "the truncated primary must be rejected");
    assert_eq!(snap.tick, 30);
    let d = Daemon::load_snapshot(&path).unwrap();
    assert_eq!(d.tick(), 30);
    assert!(d.arrangements().is_some());
}

/// A daemon killed mid-run under a fault schedule and restored from its
/// snapshot replays the remaining ticks exactly: the fault plan is a
/// pure function of `(spec, tick)`, so the chaos schedule survives the
/// restart with zero persisted fault state.
#[test]
fn faulted_daemon_restores_and_replays_tick_for_tick() {
    let mut d = Daemon::new(chaos_config()).unwrap();
    populate(&mut d);
    d.run_ticks(25).unwrap();
    let snap = d.snapshot();

    // The chaos schedule really bit before the snapshot...
    assert!(d.telemetry().retries > 0, "transient failures should fire");
    // ...and the counters (including the fault ones) survive restore.
    let mut restored = Daemon::from_snapshot(&snap).unwrap();
    assert_eq!(restored.telemetry(), d.telemetry());

    let a = d.run_ticks(20).unwrap();
    let b = restored.run_ticks(20).unwrap();
    assert_eq!(
        a, b,
        "restored chaos replay must be tick-for-tick identical"
    );
    assert_eq!(d.telemetry(), restored.telemetry());

    // The config (fault spec included) round-trips the JSON document.
    let reparsed = Snapshot::parse(&snap.render()).unwrap();
    assert_eq!(reparsed.config, *d.config());
}

/// Every verdict a faulted daemon *determines* (non-degraded) equals
/// the fault-free daemon's verdict for the same session on the same
/// tick — unknowns are the only divergence chaos is allowed to cause.
#[test]
fn determined_daemon_verdicts_match_the_fault_free_daemon() {
    // Heavier outages than `chaos_config`: with only three streams a
    // 40% selection can hash to none, and this test needs unknowns.
    let config = Config {
        faults: Some(FaultSpec {
            outage_streams: 1.0,
            ..chaos_config().faults.unwrap()
        }),
        ..chaos_config()
    };
    let mut faulted = Daemon::new(config.clone()).unwrap();
    let mut clean = Daemon::new(Config {
        faults: None,
        ..config
    })
    .unwrap();
    populate(&mut faulted);
    populate(&mut clean);

    let (mut determined, mut unknown) = (0u64, 0u64);
    for t in 0..60 {
        faulted.run_ticks(1).unwrap();
        clean.run_ticks(1).unwrap();
        let base: std::collections::BTreeMap<u64, Verdict> = clean
            .last_verdicts()
            .iter()
            .map(|&(id, v, _)| (id, v))
            .collect();
        for &(id, verdict, degraded) in faulted.last_verdicts() {
            if verdict == Verdict::Unknown {
                unknown += 1;
                continue;
            }
            assert!(!degraded, "stale serving is off");
            assert_eq!(
                verdict, base[&id],
                "tick {t} session {id}: determined verdict diverged"
            );
            determined += 1;
        }
    }
    assert!(determined > 0, "chaos must leave some verdicts determined");
    assert!(unknown > 0, "this schedule is meant to cause outages");
    assert_eq!(faulted.telemetry().unknown_verdicts, unknown);
}

/// TCP hardening: a connection that sends malformed bytes gets an error
/// reply and stays usable; a deliberately silent connection is evicted
/// after the idle timeout; and shutdown still tears everything down.
#[test]
fn tcp_timeouts_evict_silent_clients_and_malformed_bytes_get_replies() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let daemon = Arc::new(Mutex::new(Daemon::new(Config::default()).unwrap()));
    let opts = TcpOptions {
        read_timeout: Duration::from_millis(10),
        idle_timeout: Some(Duration::from_millis(150)),
    };
    let server = {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || Daemon::serve_tcp_shared_with(daemon, &listener, opts).unwrap())
    };

    // The silent client: connects, never sends a byte.
    let silent = TcpStream::connect(addr).unwrap();

    // The working client: malformed bytes first (invalid UTF-8, then
    // non-JSON), then real work on the SAME connection.
    let active = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(active.try_clone().unwrap());
    let mut writer = active;
    let mut ask_raw = |bytes: &[u8]| {
        writer.write_all(bytes).unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };
    assert!(
        ask_raw(&[0xff, 0xfe, 0x01, b'\n']).contains(r#""ok":false"#),
        "invalid UTF-8 must get an error reply, not a disconnect"
    );
    assert!(ask_raw(b"definitely not json\n").contains(r#""ok":false"#));
    assert!(
        ask_raw(b"{\"cmd\":\"register\",\"query\":\"AVG(x,3) > 0.0\"}\n").contains(r#""id":0"#)
    );
    assert!(ask_raw(b"{\"cmd\":\"tick\",\"n\":3}\n").contains(r#""tick":3"#));

    // Wait out the idle timeout, keeping the active connection warm:
    // the silent one is evicted (its socket reads EOF) while the
    // daemon keeps serving the client that still talks.
    for _ in 0..8 {
        std::thread::sleep(Duration::from_millis(50));
        assert!(ask_raw(b"{\"cmd\":\"stats\"}\n").contains(r#""ok":true"#));
    }
    silent
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let mut probe = silent;
    let n = probe.read(&mut [0u8; 8]).expect("eviction closes cleanly");
    assert_eq!(n, 0, "the idle connection must be evicted with EOF");

    assert!(ask_raw(b"{\"cmd\":\"shutdown\"}\n").contains(r#""ok":true"#));
    server.join().unwrap();
    assert_eq!(daemon.lock().unwrap().telemetry().ticks, 3);
}
