//! End-to-end daemon acceptance: scripted protocol run, budget
//! compliance on every tick, snapshot/restart continuity, and
//! incremental-vs-cold re-plan equality.

use paotr_core::plan::Engine;
use paotr_serverd::json::{parse, Json};
use paotr_serverd::{Config, Daemon};
use std::io::BufReader;

const BUDGET: f64 = 25.0;

const QUERIES: [&str; 8] = [
    "AVG(hr, 8) > 0.2 AND MAX(hr, 4) > 0.5",
    "(AVG(spo2, 6) < 0.1 AND hr > 0.0) OR LAST(accel, 2) > 0.8",
    "MIN(accel, 5) < -0.5 @ 0.3",
    "SUM(temp, 10) > 1.0 AND AVG(hr, 8) > 0.0",
    "(temp < 0.4 AND spo2 < 0.2) OR (MAX(accel, 7) > 0.6 AND hr < 0.9)",
    "AVG(gyro, 12) < 0.0",
    "LAST(spo2, 1) < 0.5 AND MAX(gyro, 6) > -0.2",
    "(AVG(temp, 3) > 0.1 @ 0.7) OR MIN(hr, 2) < -1.0",
];

fn config() -> Config {
    Config {
        seed: 42,
        budget: Some(BUDGET),
        replan_after: 4,
        max_window: 32,
        ..Config::default()
    }
}

fn drive(daemon: &mut Daemon, script: &str) -> Vec<Json> {
    let mut out = Vec::new();
    daemon
        .serve(BufReader::new(script.as_bytes()), &mut out)
        .unwrap();
    std::str::from_utf8(&out)
        .unwrap()
        .lines()
        .map(|l| parse(l).unwrap())
        .collect()
}

fn assert_ok(resp: &Json) {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "{resp:?}"
    );
}

#[test]
fn scripted_lifecycle_meets_all_acceptance_criteria() {
    let snap_path = std::env::temp_dir().join("paotr_serverd_e2e.snap");
    let snap_path = snap_path.to_str().unwrap();

    // Script: register 8 queries, 40 ticks, unregister 3 mid-flight,
    // 60 more ticks, force a re-plan, inspect, snapshot, shut down.
    let mut script = String::new();
    for (i, q) in QUERIES.iter().enumerate() {
        let weight = 0.5 + i as f64 * 0.5;
        script.push_str(&format!(
            "{{\"cmd\":\"register\",\"query\":\"{q}\",\"weight\":{weight}}}\n"
        ));
    }
    for _ in 0..40 {
        script.push_str("{\"cmd\":\"tick\"}\n");
    }
    for id in [1, 4, 6] {
        script.push_str(&format!("{{\"cmd\":\"unregister\",\"id\":{id}}}\n"));
    }
    for _ in 0..60 {
        script.push_str("{\"cmd\":\"tick\"}\n");
    }
    script.push_str("{\"cmd\":\"replan\"}\n{\"cmd\":\"plan\"}\n{\"cmd\":\"stats\"}\n");
    script.push_str(&format!(
        "{{\"cmd\":\"snapshot\",\"path\":\"{snap_path}\"}}\n"
    ));
    script.push_str("{\"cmd\":\"shutdown\"}\n");

    let mut daemon = Daemon::new(config()).unwrap();
    let responses = drive(&mut daemon, &script);
    assert_eq!(responses.len(), 8 + 40 + 3 + 60 + 3 + 1 + 1);
    for r in &responses {
        assert_ok(r);
    }

    // (a) every tick of the first run respects the budget — tick
    // commands run one tick each, so `energy` is that tick's spend.
    let mut ticked = 0;
    for r in &responses {
        if let Some(e) = r.get("energy").and_then(Json::as_f64) {
            assert!(e <= BUDGET + 1e-9, "tick response over budget: {e}");
            ticked += 1;
        }
    }
    assert_eq!(ticked, 100);
    // The budget must actually bind for the test to mean anything.
    let stats = responses[8 + 40 + 3 + 60 + 2].get("stats").unwrap();
    let deferred = stats.get("deferred").and_then(Json::as_u64).unwrap();
    let shed = stats.get("shed").and_then(Json::as_u64).unwrap();
    assert!(deferred + shed > 0, "budget never bound — raise the load");

    // Restart from the snapshot.
    let mut restored = Daemon::load_snapshot(snap_path).unwrap();
    std::fs::remove_file(snap_path).ok();

    // (b) counters continue exactly from the snapshot values.
    assert_eq!(restored.tick(), 100);
    let t = restored.telemetry();
    assert_eq!(t.ticks, 100);
    assert_eq!(t.registers, 8);
    assert_eq!(t.unregisters, 3);
    assert_eq!(
        t.evals,
        stats.get("evals").and_then(Json::as_u64).unwrap(),
        "restored evals must equal the pre-restart stats response"
    );
    assert_eq!(t.deferred, deferred);
    assert_eq!(t.shed, shed);
    let energy_before = t.total_energy;

    // The restored plan is the one the protocol reported pre-restart.
    let plan_resp = &responses[8 + 40 + 3 + 60 + 1];
    assert_eq!(
        plan_resp.get("plan").unwrap().to_string_compact(),
        restored.registry().plan_digest(),
        "plan state must survive the snapshot round trip"
    );

    // (a) every tick of the restored run respects the budget too.
    for _ in 0..100 {
        let batch = restored.run_ticks(1).unwrap();
        assert!(batch.max_energy() <= BUDGET + 1e-9);
    }
    let t = restored.telemetry();
    assert_eq!(t.ticks, 200, "counters continue, not restart");
    assert!(t.total_energy > energy_before);

    // (c) after more churn, the incremental re-plan through the live
    // engine's cached path is byte-identical to a cold full re-plan of
    // the surviving set.
    restored.unregister(0).unwrap();
    restored
        .register("AVG(hr, 8) > 0.2 AND gyro < 0.0", 1.5)
        .unwrap();
    restored.replan().unwrap();
    let warm = restored.registry().plan_digest();
    let cold = restored
        .registry()
        .cold_plan_digest(&Engine::new())
        .unwrap();
    assert_eq!(
        warm, cold,
        "incremental re-plan diverged from a cold re-plan"
    );
    assert!(
        restored.engine().cache_stats().hits > 0,
        "the incremental path must actually hit the plan cache"
    );
}

#[test]
fn restored_run_matches_the_uninterrupted_run_tick_for_tick() {
    let mut a = Daemon::new(config()).unwrap();
    for (i, q) in QUERIES.iter().enumerate() {
        a.register(q, 1.0 + i as f64).unwrap();
    }
    a.run_ticks(50).unwrap();
    let snap = a.snapshot();
    let uninterrupted = a.run_ticks(50).unwrap();

    let mut b = Daemon::from_snapshot(&snap).unwrap();
    let resumed = b.run_ticks(50).unwrap();
    assert_eq!(
        uninterrupted, resumed,
        "a restored daemon must serve the same data the uninterrupted run saw"
    );
    assert_eq!(a.telemetry(), b.telemetry());
}
