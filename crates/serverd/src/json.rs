//! A deliberately tiny JSON value type, parser and writer.
//!
//! The workspace builds hermetically (no crates.io), so the daemon's
//! wire protocol and snapshot format are served by this hand-rolled
//! subset instead of serde. Two properties matter more than generality:
//!
//! * **Determinism** — objects preserve insertion order and the writer
//!   has exactly one rendering per value, so writing a parsed document
//!   reproduces it byte-for-byte as long as it was produced by this
//!   writer (the snapshot round-trip test pins this).
//! * **Exact numbers** — `f64`s are written with Rust's shortest
//!   round-trip `Display` and re-parsed with `str::parse::<f64>`, so
//!   energy totals and calibration probabilities survive a
//!   snapshot/restore cycle bit-for-bit.

use std::fmt;

/// A JSON value. Objects keep insertion order (serialization must be
/// deterministic); numbers are `f64` (counters stay well under 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes without whitespace (one canonical rendering).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Wraps a `u64` counter (exact for values `< 2^53`).
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Wraps an array of `u64`s.
    pub fn u64_arr<I: IntoIterator<Item = u64>>(vs: I) -> Json {
        Json::Arr(vs.into_iter().map(Json::from_u64).collect())
    }

    /// Wraps an array of `f64`s.
    pub fn f64_arr<I: IntoIterator<Item = f64>>(vs: I) -> Json {
        Json::Arr(vs.into_iter().map(Json::Num).collect())
    }
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/inf; the daemon never produces them, but a
        // defined rendering beats a panic if one ever leaks in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's f64 Display is the shortest representation that parses
        // back to the same bits — exactly what the round-trip needs.
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            message: format!("bad number `{text}`"),
            offset: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_documents() {
        for src in [
            "null",
            "true",
            "[1,2.5,-3]",
            r#"{"a":1,"b":[{"c":"x y"},null,false]}"#,
            r#""with \"quotes\" and \\ and \n""#,
            "0.1",
            "1e300",
        ] {
            let v = parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            let out = v.to_string_compact();
            let v2 = parse(&out).unwrap();
            assert_eq!(v, v2, "{src} -> {out}");
        }
    }

    #[test]
    fn writer_output_is_a_fixed_point() {
        let v = Json::obj([
            ("n", Json::Num(0.30000000000000004)),
            ("i", Json::from_u64(12345678901234)),
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("a", Json::u64_arr([1, 2, 3])),
        ]);
        let once = v.to_string_compact();
        let twice = parse(&once).unwrap().to_string_compact();
        assert_eq!(once, twice, "parse(write(v)) must re-write identically");
    }

    #[test]
    fn f64_shortest_display_round_trips_exactly() {
        for x in [0.1, 1.0 / 3.0, 2.0_f64.powi(-60), 83.409_778_935_387_44] {
            let s = Json::Num(x).to_string_compact();
            assert_eq!(parse(&s).unwrap().as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn errors_carry_offsets_not_panics() {
        for src in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "tru",
            "[1 2]",
            "1.2.3",
        ] {
            let err = parse(src).expect_err(src);
            assert!(err.offset <= src.len(), "{src}: offset {}", err.offset);
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"id":7,"ok":true,"xs":[1],"name":"q"}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("name").and_then(Json::as_str), Some("q"));
        assert_eq!(v.get("missing"), None);
    }
}
