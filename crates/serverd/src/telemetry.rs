//! Live daemon counters.
//!
//! One flat struct of monotone counters plus last-tick gauges. The
//! counters are part of the snapshot format — after a restore they
//! continue exactly from their persisted values, so long-lived
//! dashboards see one uninterrupted series across daemon restarts.

use crate::json::Json;

/// The daemon's lifetime counters and last-tick gauges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Ticks served since the daemon (or its snapshot lineage) started.
    pub ticks: u64,
    /// Query evaluations served.
    pub evals: u64,
    /// Served evaluations that came out TRUE.
    pub truths: u64,
    /// Successful `register` commands.
    pub registers: u64,
    /// Successful `unregister` commands.
    pub unregisters: u64,
    /// Requests dropped by admission.
    pub shed: u64,
    /// Defer events (one request can be deferred on several ticks).
    pub deferred: u64,
    /// Drift-triggered per-query re-plans.
    pub drift_replans: u64,
    /// Churn-triggered full joint re-plans.
    pub churn_replans: u64,
    /// Total energy spent.
    pub total_energy: f64,
    /// Largest energy spent in any single tick.
    pub max_tick_energy: f64,
    /// Energy spent in the most recent tick.
    pub last_tick_energy: f64,
    /// Energy spent maintaining arrangements (included in
    /// `total_energy`; this splits the bill).
    pub maintain_energy: f64,
    /// Live arrangements after the most recent tick (gauge).
    pub arrangements: u64,
    /// Window items served from maintained arrangements instead of
    /// priced sensor pulls.
    pub arrange_hit_items: u64,
    /// Transient read failures retried (each priced as a pull).
    pub retries: u64,
    /// Energy burnt by failed stream contacts (included in
    /// `total_energy`; this splits the bill).
    pub retry_energy: f64,
    /// Leaves given up on (stream outage, or retries exhausted).
    pub failed_reads: u64,
    /// Evaluations that ended `unknown` under outages.
    pub unknown_verdicts: u64,
    /// Evaluations resolved only through stale arrangement data.
    pub degraded_verdicts: u64,
    /// Leaves answered from stale arrangement rings.
    pub stale_serves: u64,
}

impl Telemetry {
    /// Evaluations served per tick.
    pub fn evals_per_tick(&self) -> f64 {
        self.evals as f64 / self.ticks.max(1) as f64
    }

    /// Energy still available under `budget` relative to the most
    /// recent tick's spend (`None` without a budget).
    pub fn headroom(&self, budget: Option<f64>) -> Option<f64> {
        budget.map(|b| b - self.last_tick_energy)
    }

    /// Serializes to the snapshot/stats JSON object. The arrangement
    /// counters are emitted only when non-zero, so daemons that never
    /// arranged render exactly the version-1 telemetry object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("ticks", Json::from_u64(self.ticks)),
            ("evals", Json::from_u64(self.evals)),
            ("truths", Json::from_u64(self.truths)),
            ("registers", Json::from_u64(self.registers)),
            ("unregisters", Json::from_u64(self.unregisters)),
            ("shed", Json::from_u64(self.shed)),
            ("deferred", Json::from_u64(self.deferred)),
            ("drift_replans", Json::from_u64(self.drift_replans)),
            ("churn_replans", Json::from_u64(self.churn_replans)),
            ("total_energy", Json::Num(self.total_energy)),
            ("max_tick_energy", Json::Num(self.max_tick_energy)),
            ("last_tick_energy", Json::Num(self.last_tick_energy)),
        ];
        if self.maintain_energy != 0.0 {
            fields.push(("maintain_energy", Json::Num(self.maintain_energy)));
        }
        if self.arrangements != 0 {
            fields.push(("arrangements", Json::from_u64(self.arrangements)));
        }
        if self.arrange_hit_items != 0 {
            fields.push(("arrange_hit_items", Json::from_u64(self.arrange_hit_items)));
        }
        // Fault counters follow the same discipline: a fault-free
        // daemon's telemetry renders exactly the pre-fault object.
        if self.retries != 0 {
            fields.push(("retries", Json::from_u64(self.retries)));
        }
        if self.retry_energy != 0.0 {
            fields.push(("retry_energy", Json::Num(self.retry_energy)));
        }
        if self.failed_reads != 0 {
            fields.push(("failed_reads", Json::from_u64(self.failed_reads)));
        }
        if self.unknown_verdicts != 0 {
            fields.push(("unknown_verdicts", Json::from_u64(self.unknown_verdicts)));
        }
        if self.degraded_verdicts != 0 {
            fields.push(("degraded_verdicts", Json::from_u64(self.degraded_verdicts)));
        }
        if self.stale_serves != 0 {
            fields.push(("stale_serves", Json::from_u64(self.stale_serves)));
        }
        Json::obj(fields)
    }

    /// Deserializes from the snapshot/stats JSON object.
    pub fn from_json(v: &Json) -> Result<Telemetry, String> {
        let u = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("telemetry: missing or invalid `{k}`"))
        };
        let f = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("telemetry: missing or invalid `{k}`"))
        };
        // Arrangement counters arrived with snapshot version 2; absent
        // keys (every version-1 document) mean zero.
        let opt_u = |k: &str| match v.get(k) {
            None => Ok(0),
            Some(x) => x
                .as_u64()
                .ok_or_else(|| format!("telemetry: invalid `{k}`")),
        };
        let opt_f = |k: &str| match v.get(k) {
            None => Ok(0.0),
            Some(x) => x
                .as_f64()
                .ok_or_else(|| format!("telemetry: invalid `{k}`")),
        };
        Ok(Telemetry {
            ticks: u("ticks")?,
            evals: u("evals")?,
            truths: u("truths")?,
            registers: u("registers")?,
            unregisters: u("unregisters")?,
            shed: u("shed")?,
            deferred: u("deferred")?,
            drift_replans: u("drift_replans")?,
            churn_replans: u("churn_replans")?,
            total_energy: f("total_energy")?,
            max_tick_energy: f("max_tick_energy")?,
            last_tick_energy: f("last_tick_energy")?,
            maintain_energy: opt_f("maintain_energy")?,
            arrangements: opt_u("arrangements")?,
            arrange_hit_items: opt_u("arrange_hit_items")?,
            retries: opt_u("retries")?,
            retry_energy: opt_f("retry_energy")?,
            failed_reads: opt_u("failed_reads")?,
            unknown_verdicts: opt_u("unknown_verdicts")?,
            degraded_verdicts: opt_u("degraded_verdicts")?,
            stale_serves: opt_u("stale_serves")?,
        })
    }

    /// A `paotr_stats` rendering of the live state — what the `stats`
    /// protocol command returns under `"table"`.
    pub fn table(&self, live_sessions: usize, budget: Option<f64>) -> paotr_stats::Table {
        let mut t = paotr_stats::Table::new(["metric", "value"]);
        let rows: Vec<(&str, String)> = vec![
            ("ticks", self.ticks.to_string()),
            ("live sessions", live_sessions.to_string()),
            ("evals", self.evals.to_string()),
            ("evals/tick", format!("{:.2}", self.evals_per_tick())),
            (
                "truth rate",
                if self.evals > 0 {
                    format!("{:.3}", self.truths as f64 / self.evals as f64)
                } else {
                    "n/a".into()
                },
            ),
            ("registers", self.registers.to_string()),
            ("unregisters", self.unregisters.to_string()),
            ("shed", self.shed.to_string()),
            ("deferred", self.deferred.to_string()),
            ("drift re-plans", self.drift_replans.to_string()),
            ("churn re-plans", self.churn_replans.to_string()),
            ("total energy", format!("{:.2}", self.total_energy)),
            ("max tick energy", format!("{:.2}", self.max_tick_energy)),
            ("last tick energy", format!("{:.2}", self.last_tick_energy)),
            ("maintenance energy", format!("{:.2}", self.maintain_energy)),
            ("arrangements", self.arrangements.to_string()),
            ("arranged items served", self.arrange_hit_items.to_string()),
            ("retries", self.retries.to_string()),
            ("retry energy", format!("{:.2}", self.retry_energy)),
            ("failed reads", self.failed_reads.to_string()),
            ("unknown verdicts", self.unknown_verdicts.to_string()),
            ("degraded verdicts", self.degraded_verdicts.to_string()),
            ("stale serves", self.stale_serves.to_string()),
            (
                "energy headroom",
                self.headroom(budget)
                    .map(|h| format!("{h:.2}"))
                    .unwrap_or_else(|| "unbounded".into()),
            ),
        ];
        for (k, v) in rows {
            t.push_row([k.to_string(), v]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Telemetry {
        Telemetry {
            ticks: 100,
            evals: 480,
            truths: 200,
            registers: 9,
            unregisters: 3,
            shed: 4,
            deferred: 16,
            drift_replans: 2,
            churn_replans: 1,
            total_energy: 1234.5,
            max_tick_energy: 19.25,
            last_tick_energy: 11.5,
            maintain_energy: 40.25,
            arrangements: 5,
            arrange_hit_items: 320,
            retries: 17,
            retry_energy: 6.75,
            failed_reads: 9,
            unknown_verdicts: 4,
            degraded_verdicts: 2,
            stale_serves: 11,
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let t = sample();
        let back = Telemetry::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let mut j = sample().to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "shed");
        }
        let err = Telemetry::from_json(&j).unwrap_err();
        assert!(err.contains("shed"), "{err}");
    }

    #[test]
    fn zero_arrangement_counters_render_the_version_1_object() {
        let t = Telemetry {
            maintain_energy: 0.0,
            arrangements: 0,
            arrange_hit_items: 0,
            retries: 0,
            retry_energy: 0.0,
            failed_reads: 0,
            unknown_verdicts: 0,
            degraded_verdicts: 0,
            stale_serves: 0,
            ..sample()
        };
        let rendered = t.to_json().to_string_compact();
        for key in [
            "maintain_energy",
            "arrangements",
            "arrange_hit_items",
            "retries",
            "retry_energy",
            "failed_reads",
            "unknown_verdicts",
            "degraded_verdicts",
            "stale_serves",
        ] {
            assert!(!rendered.contains(key), "`{key}` leaked into:\n{rendered}");
        }
        let back = Telemetry::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back, "absent keys parse back as zero");
    }

    #[test]
    fn headroom_and_rates() {
        let t = sample();
        assert_eq!(t.headroom(Some(20.0)), Some(8.5));
        assert_eq!(t.headroom(None), None);
        assert!((t.evals_per_tick() - 4.8).abs() < 1e-12);
    }

    #[test]
    fn table_renders_every_counter() {
        let md = sample().table(6, Some(20.0)).to_markdown();
        for needle in [
            "live sessions",
            "6",
            "drift re-plans",
            "energy headroom",
            "8.50",
        ] {
            assert!(md.contains(needle), "missing `{needle}` in:\n{md}");
        }
    }
}
