//! # paotr-serverd — the long-running serving daemon
//!
//! The serving loop in `paotr_exec` answers "how would this *fixed*
//! workload behave under arrivals and a budget"; a deployment is never
//! fixed. This crate is the live surface on top of the same runtime:
//! a daemon that admits qlang queries over a newline-delimited JSON
//! protocol (stdin/stdout or TCP), keeps the live set jointly planned
//! as sessions come and go, and survives restarts through versioned
//! snapshots.
//!
//! * [`registry`] — the [`SessionRegistry`]: live sessions over one
//!   append-only union [`StreamCatalog`](paotr_core::stream::StreamCatalog);
//!   churn *patches* the shared execution order immediately and
//!   re-plans jointly through the [`Engine`](paotr_core::plan::Engine)'s
//!   cached path, so an incremental re-plan is byte-identical to a cold
//!   full re-plan of the surviving set;
//! * [`daemon`] — the [`Daemon`]: explicit-tick serving under
//!   [`EnergyBudget`](paotr_exec::EnergyBudget) admission with
//!   drift-triggered per-query re-planning, plus the line-protocol
//!   serve loops (stdin/stdout and TCP);
//! * [`snapshot`] — the versioned on-disk state: calibration, plan
//!   state, telemetry. Rendering a parsed snapshot reproduces it
//!   byte-for-byte, and restores continue counters exactly;
//! * [`telemetry`] — live counters rendered through `paotr_stats` and
//!   queryable over the protocol;
//! * [`proto`] — the wire commands (`register`, `unregister`, `tick`,
//!   `stats`, `plan`, `replan`, `snapshot`, `shutdown`);
//! * [`json`] — the crate's hand-rolled deterministic JSON (the
//!   workspace builds without serde).
//!
//! ## Quick start
//!
//! ```
//! use paotr_serverd::daemon::{Config, Daemon};
//!
//! let mut d = Daemon::new(Config {
//!     budget: Some(12.0),
//!     ..Config::default()
//! })
//! .unwrap();
//! let id = d.register("AVG(hr,8) > 0.5 AND spo2 < 0.0", 2.0).unwrap();
//! let batch = d.run_ticks(20).unwrap();
//! assert!(batch.max_energy() <= 12.0 + 1e-9);
//! d.unregister(id).unwrap();
//! assert_eq!(d.telemetry().ticks, 20);
//! ```

pub mod daemon;
pub mod json;
pub mod proto;
pub mod registry;
pub mod snapshot;
pub mod telemetry;

pub use daemon::{Config, Daemon, TcpOptions};
pub use paotr_faults::{FaultPlan, FaultSpec, FaultySource};
pub use registry::{Session, SessionRegistry};
pub use snapshot::{ArrangeEntrySnap, ArrangeSnap, Snapshot, SnapshotError};
pub use telemetry::Telemetry;

use std::fmt;

/// Everything that can go wrong serving.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The query text could not be parsed, compiled, or executed
    /// (non-DNF shape).
    Query(String),
    /// A structurally valid request the daemon refuses: full registry,
    /// bad weight, unknown session id, window over the ceiling.
    Rejected(String),
    /// Planning failed.
    Plan(String),
    /// Snapshot save/load failed.
    Snapshot(SnapshotError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Query(m) => write!(f, "query error: {m}"),
            Error::Rejected(m) => write!(f, "rejected: {m}"),
            Error::Plan(m) => write!(f, "planning error: {m}"),
            Error::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Error {
        Error::Snapshot(e)
    }
}

/// Crate-wide result.
pub type Result<T> = std::result::Result<T, Error>;
