//! The daemon's wire protocol: one JSON object per line, in and out.
//!
//! Requests carry a `"cmd"` discriminator:
//!
//! ```text
//! {"cmd":"register","query":"AVG(hr,8) > 0.5 AND spo2 < 0.0","weight":2}
//! {"cmd":"unregister","id":0}
//! {"cmd":"tick","n":10}
//! {"cmd":"stats"}
//! {"cmd":"plan"}
//! {"cmd":"replan"}
//! {"cmd":"snapshot","path":"/tmp/paotr.snap"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Every response is `{"ok":true,...}` or `{"ok":false,"error":"..."}`.
//! Malformed lines produce an error response, never a dead daemon.

use crate::json::{parse, Json};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Register a qlang query with an admission weight.
    Register {
        /// qlang source text.
        query: String,
        /// Admission weight (default 1.0).
        weight: f64,
    },
    /// Remove a live session.
    Unregister {
        /// The session id `register` returned.
        id: u64,
    },
    /// Advance the daemon by `n` serving ticks.
    Tick {
        /// Tick count (default 1).
        n: u64,
    },
    /// Telemetry counters (plus a rendered table).
    Stats,
    /// The current joint plan (execution order + per-session leaf
    /// schedules).
    Plan,
    /// Force a full joint re-plan of the live set.
    Replan,
    /// Persist a snapshot; with `path` absent the snapshot document is
    /// returned inline.
    Snapshot {
        /// Destination file; `None` returns the document in the
        /// response.
        path: Option<String>,
    },
    /// Acknowledge and stop serving.
    Shutdown,
}

/// Parses one request line.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let v = parse(line).map_err(|e| format!("bad request: {e}"))?;
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| "bad request: missing string field `cmd`".to_string())?;
    match cmd {
        "register" => {
            let query = v
                .get("query")
                .and_then(Json::as_str)
                .ok_or_else(|| "register: missing string field `query`".to_string())?
                .to_string();
            let weight = match v.get("weight") {
                None => 1.0,
                Some(w) => w
                    .as_f64()
                    .ok_or_else(|| "register: `weight` must be a number".to_string())?,
            };
            Ok(Command::Register { query, weight })
        }
        "unregister" => {
            let id = v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| "unregister: missing integer field `id`".to_string())?;
            Ok(Command::Unregister { id })
        }
        "tick" => {
            let n = match v.get("n") {
                None => 1,
                Some(n) => n
                    .as_u64()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "tick: `n` must be a positive integer".to_string())?,
            };
            Ok(Command::Tick { n })
        }
        "stats" => Ok(Command::Stats),
        "plan" => Ok(Command::Plan),
        "replan" => Ok(Command::Replan),
        "snapshot" => {
            let path = match v.get("path") {
                None | Some(Json::Null) => None,
                Some(p) => Some(
                    p.as_str()
                        .ok_or_else(|| "snapshot: `path` must be a string".to_string())?
                        .to_string(),
                ),
            };
            Ok(Command::Snapshot { path })
        }
        "shutdown" => Ok(Command::Shutdown),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// An `{"ok":true,...}` response with extra fields.
pub fn ok_response<I: IntoIterator<Item = (&'static str, Json)>>(fields: I) -> String {
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(pairs).to_string_compact()
}

/// An `{"ok":false,"error":...}` response.
pub fn error_response(message: &str) -> String {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
    .to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(
            parse_command(r#"{"cmd":"register","query":"a < 1","weight":2}"#).unwrap(),
            Command::Register {
                query: "a < 1".into(),
                weight: 2.0
            }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"register","query":"a < 1"}"#).unwrap(),
            Command::Register {
                query: "a < 1".into(),
                weight: 1.0
            }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"unregister","id":3}"#).unwrap(),
            Command::Unregister { id: 3 }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"tick","n":10}"#).unwrap(),
            Command::Tick { n: 10 }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"tick"}"#).unwrap(),
            Command::Tick { n: 1 }
        );
        assert_eq!(parse_command(r#"{"cmd":"stats"}"#).unwrap(), Command::Stats);
        assert_eq!(parse_command(r#"{"cmd":"plan"}"#).unwrap(), Command::Plan);
        assert_eq!(
            parse_command(r#"{"cmd":"replan"}"#).unwrap(),
            Command::Replan
        );
        assert_eq!(
            parse_command(r#"{"cmd":"snapshot","path":"/tmp/x"}"#).unwrap(),
            Command::Snapshot {
                path: Some("/tmp/x".into())
            }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"snapshot"}"#).unwrap(),
            Command::Snapshot { path: None }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"shutdown"}"#).unwrap(),
            Command::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_requests_with_messages() {
        for (line, needle) in [
            ("", "bad request"),
            ("not json", "bad request"),
            ("{}", "cmd"),
            (r#"{"cmd":"warp"}"#, "unknown command"),
            (r#"{"cmd":"register"}"#, "query"),
            (r#"{"cmd":"register","query":"a<1","weight":"x"}"#, "weight"),
            (r#"{"cmd":"unregister"}"#, "id"),
            (r#"{"cmd":"tick","n":0}"#, "positive"),
            (r#"{"cmd":"snapshot","path":7}"#, "path"),
        ] {
            let err = parse_command(line).expect_err(line);
            assert!(err.contains(needle), "`{line}` -> `{err}`");
        }
    }

    #[test]
    fn responses_are_single_json_lines() {
        let ok = ok_response([("id", Json::from_u64(4))]);
        assert_eq!(ok, r#"{"ok":true,"id":4}"#);
        let err = error_response("nope");
        assert_eq!(err, r#"{"ok":false,"error":"nope"}"#);
    }
}
