//! The session registry: live queries, the union catalog, and the
//! incrementally-maintained joint plan.
//!
//! Clients register qlang queries at any tick and unregister them
//! later; the registry keeps the surviving set planned as one
//! [`Workload`] the whole time. Churn is absorbed in two steps:
//!
//! * **patch** — a `register` plans only the new query (through the
//!   [`Engine`]'s cached per-query path) and appends it to the current
//!   execution order; an `unregister` splices the session out of the
//!   order. Serving never pauses for a full joint plan.
//! * **re-plan** — after enough churn (or on demand) the configured
//!   joint planner re-runs over the survivors. Unchanged queries hit
//!   the engine's fingerprint-keyed plan cache, so only new or drifted
//!   queries re-enter the planner — and the result is byte-identical
//!   to a cold full re-plan of the same surviving set, a property the
//!   daemon's end-to-end test pins via [`SessionRegistry::plan_digest`].

use crate::{Error, Result};
use paotr_core::leaf::LeafRef;
use paotr_core::plan::Engine;
use paotr_core::schedule::DnfSchedule;
use paotr_core::stream::StreamCatalog;
use paotr_core::tree::DnfTree;
use paotr_exec::DriftState;
use paotr_multi::{planner_by_name, Workload, WorkloadQuery};
use paotr_qlang as qlang;
use std::collections::BTreeMap;
use std::sync::Arc;
use stream_sim::{SimLeaf, SimQuery};

/// One live registered query.
#[derive(Debug, Clone)]
pub struct Session {
    /// Registry-assigned id (stable for the session's lifetime).
    pub id: u64,
    /// Workload name (`c{id}` — unique by construction).
    pub name: String,
    /// The qlang source the client registered.
    pub source: String,
    /// Admission weight.
    pub weight: f64,
    /// Tick at which the session was registered.
    pub registered_tick: u64,
    /// Concrete executable query (streams remapped onto the union
    /// catalog).
    pub sim: SimQuery,
    /// The scheduling tree under the session's current calibration.
    pub tree: DnfTree,
    /// The session's current leaf schedule.
    pub schedule: Arc<DnfSchedule>,
    /// Per-leaf calibration / drift estimators.
    pub drift: DriftState,
}

/// Live sessions, their union stream catalog, and the joint execution
/// order.
#[derive(Debug, Clone)]
pub struct SessionRegistry {
    sessions: BTreeMap<u64, Session>,
    catalog: StreamCatalog,
    order: Vec<u64>,
    next_id: u64,
    planner: String,
    shared: bool,
    max_sessions: usize,
    max_window: u32,
}

impl SessionRegistry {
    /// An empty registry planning through `planner` (a
    /// `paotr_multi::planner_names()` entry), holding at most
    /// `max_sessions` sessions with windows at most `max_window`.
    pub fn new(planner: &str, max_sessions: usize, max_window: u32) -> Result<SessionRegistry> {
        if planner_by_name(planner).is_none() {
            return Err(Error::Rejected(format!(
                "unknown planner `{planner}` (expected one of {:?})",
                paotr_multi::planner_names()
            )));
        }
        if max_sessions == 0 || max_window == 0 {
            return Err(Error::Rejected(
                "max_sessions and max_window must be positive".into(),
            ));
        }
        Ok(SessionRegistry {
            sessions: BTreeMap::new(),
            catalog: StreamCatalog::new(),
            order: Vec::new(),
            next_id: 0,
            shared: planner != "independent",
            planner: planner.to_string(),
            max_sessions,
            max_window,
        })
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The union catalog (append-only: streams survive their readers).
    pub fn catalog(&self) -> &StreamCatalog {
        &self.catalog
    }

    /// The joint execution order, as session ids.
    pub fn order(&self) -> &[u64] {
        &self.order
    }

    /// Whether admitted sessions share one device memory per tick.
    pub fn shared(&self) -> bool {
        self.shared
    }

    /// The joint planner's registry name.
    pub fn planner(&self) -> &str {
        &self.planner
    }

    /// The configured window ceiling.
    pub fn max_window(&self) -> u32 {
        self.max_window
    }

    /// The configured session ceiling.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// The session with id `id`.
    pub fn session(&self, id: u64) -> Option<&Session> {
        self.sessions.get(&id)
    }

    /// Live sessions in id order.
    pub fn sessions(&self) -> impl Iterator<Item = &Session> {
        self.sessions.values()
    }

    /// Compiles `source`, merges its streams into the union catalog,
    /// plans it through `engine`'s cached path, and appends it to the
    /// execution order. Returns the new session id.
    pub fn register(
        &mut self,
        source: &str,
        weight: f64,
        tick: u64,
        engine: &Engine,
    ) -> Result<u64> {
        if self.sessions.len() >= self.max_sessions {
            return Err(Error::Rejected(format!(
                "registry full ({} sessions)",
                self.max_sessions
            )));
        }
        if !weight.is_finite() || weight <= 0.0 {
            return Err(Error::Rejected(format!(
                "weight {weight} must be a finite value > 0"
            )));
        }
        let expr = qlang::parse(source)
            .map_err(|e| Error::Query(format!("{} (at offset {})", e.message, e.offset)))?;
        let compiled = qlang::compile(&expr, &std::collections::HashMap::new())
            .map_err(|e| Error::Query(e.message))?;
        let local_sim = qlang::to_sim_query(&expr, &compiled).ok_or_else(|| {
            Error::Query("query is not in DNF shape (OR of ANDs of predicates)".into())
        })?;
        let widest = local_sim
            .max_windows(compiled.catalog.len())
            .into_iter()
            .max()
            .unwrap_or(0);
        if widest > self.max_window {
            return Err(Error::Rejected(format!(
                "window {widest} exceeds the daemon's max window {}",
                self.max_window
            )));
        }

        // Merge the query's streams into the union catalog (by name;
        // first registration fixes a stream's cost) and remap.
        let mut map = Vec::with_capacity(compiled.catalog.len());
        for k in 0..compiled.catalog.len() {
            let local = paotr_core::stream::StreamId(k);
            let name = compiled.catalog.name(local);
            let global = match self.catalog.find(&name) {
                Some(id) => id,
                None => self
                    .catalog
                    .add_named(&name, compiled.catalog.cost(local))
                    .map_err(|e| Error::Rejected(format!("catalog: {e}")))?,
            };
            map.push(global);
        }
        let sim = SimQuery::new(
            local_sim
                .terms()
                .iter()
                .map(|term| {
                    term.iter()
                        .map(|l| SimLeaf {
                            stream: map[l.stream.0],
                            predicate: l.predicate,
                        })
                        .collect()
                })
                .collect(),
        )
        .map_err(|e| Error::Query(format!("invalid query: {e}")))?;

        // Calibrated probabilities come from the source's `@`
        // annotations (default 0.5), in flat term-major order.
        let dnf = compiled
            .tree
            .as_dnf()
            .ok_or_else(|| Error::Query("query is not DNF-shaped".into()))?;
        let probs: Vec<f64> = dnf.leaves().map(|(_, l)| l.prob.value()).collect();
        let tree = sim.skeleton(&probs);
        let schedule = plan_schedule(engine, &tree, &self.catalog)?;

        let id = self.next_id;
        self.next_id += 1;
        let drift = DriftState::new(&tree);
        self.sessions.insert(
            id,
            Session {
                id,
                name: format!("c{id}"),
                source: source.to_string(),
                weight,
                registered_tick: tick,
                sim,
                tree,
                schedule: Arc::new(schedule),
                drift,
            },
        );
        self.order.push(id);
        Ok(id)
    }

    /// Removes session `id` and splices it out of the execution order.
    pub fn unregister(&mut self, id: u64) -> Result<()> {
        if self.sessions.remove(&id).is_none() {
            return Err(Error::Rejected(format!("unknown session id {id}")));
        }
        self.order.retain(|&q| q != id);
        Ok(())
    }

    /// The survivors as a [`Workload`] (sessions in id order).
    pub fn workload(&self) -> Result<Workload> {
        let queries = self
            .sessions
            .values()
            .map(|s| WorkloadQuery {
                name: s.name.clone(),
                tree: s.tree.clone(),
                weight: s.weight,
            })
            .collect();
        Workload::new(queries, self.catalog.clone())
            .map_err(|e| Error::Plan(format!("invalid workload: {e}")))
    }

    /// Full joint re-plan of the surviving set through `engine`.
    /// Survivors whose trees are unchanged hit the engine's plan cache,
    /// so only new or re-calibrated queries re-enter the planner.
    pub fn replan(&mut self, engine: &Engine) -> Result<()> {
        if self.sessions.is_empty() {
            self.order.clear();
            return Ok(());
        }
        let workload = self.workload()?;
        let planner = planner_by_name(&self.planner).expect("validated in new");
        let joint = planner
            .plan(&workload, engine)
            .map_err(|e| Error::Plan(format!("joint planning failed: {e}")))?;
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        self.order = joint.order.iter().map(|&i| ids[i]).collect();
        self.shared = joint.shared_execution;
        for (i, id) in ids.iter().enumerate() {
            let session = self.sessions.get_mut(id).expect("live id");
            session.schedule = joint.schedules[i].clone();
        }
        Ok(())
    }

    /// Feeds one evaluation's per-leaf trace records into session
    /// `id`'s drift estimators.
    pub fn observe(&mut self, id: u64, records: &[(LeafRef, bool)]) -> Result<()> {
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or_else(|| Error::Rejected(format!("unknown session id {id}")))?;
        for &(leaf, value) in records {
            session.drift.observe(leaf, value);
        }
        Ok(())
    }

    /// Adopts a re-calibrated probability vector for session `id` and
    /// re-plans that query alone through `engine`.
    pub fn recalibrate(&mut self, id: u64, probs: Vec<f64>, engine: &Engine) -> Result<()> {
        let catalog = self.catalog.clone();
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or_else(|| Error::Rejected(format!("unknown session id {id}")))?;
        let tree = session.sim.skeleton(&probs);
        let schedule = plan_schedule(engine, &tree, &catalog)?;
        session.tree = tree;
        session.schedule = Arc::new(schedule);
        session.drift.reset_to(probs);
        Ok(())
    }

    /// A canonical one-line rendering of the current joint plan: the
    /// execution order (session ids) plus every session's leaf schedule
    /// in id order. Two plans are byte-identical exactly when their
    /// digests are equal.
    pub fn plan_digest(&self) -> String {
        use crate::json::Json;
        let schedules: Vec<Json> = self
            .sessions
            .values()
            .map(|s| {
                Json::Obj(vec![
                    ("id".into(), Json::from_u64(s.id)),
                    (
                        "order".into(),
                        Json::Arr(
                            s.schedule
                                .order()
                                .iter()
                                .map(|r| Json::u64_arr([r.term as u64, r.leaf as u64]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("order", Json::u64_arr(self.order.iter().copied())),
            ("schedules", Json::Arr(schedules)),
        ])
        .to_string_compact()
    }

    /// What a **cold** full re-plan of the surviving set would produce:
    /// the same workload planned through a caller-supplied engine
    /// (pass a fresh `Engine::new()` for a genuinely cold run), rendered
    /// as a [`SessionRegistry::plan_digest`]-comparable digest.
    pub fn cold_plan_digest(&self, engine: &Engine) -> Result<String> {
        let mut cold = self.clone();
        cold.replan(engine)?;
        Ok(cold.plan_digest())
    }

    /// Restores a registry from snapshot parts (crate-internal; the
    /// snapshot module validates the parts first).
    pub(crate) fn from_restored_parts(parts: RestoredParts) -> Result<SessionRegistry> {
        let RestoredParts {
            planner,
            max_sessions,
            max_window,
            shared,
            catalog,
            sessions,
            order,
            next_id,
        } = parts;
        let mut registry = SessionRegistry::new(&planner, max_sessions, max_window)?;
        registry.shared = shared;
        registry.catalog = catalog;
        for s in sessions {
            if s.id >= next_id {
                return Err(Error::Rejected(format!(
                    "session id {} not below next_id {next_id}",
                    s.id
                )));
            }
            if registry.sessions.insert(s.id, s).is_some() {
                return Err(Error::Rejected("duplicate session id".into()));
            }
        }
        let mut in_order: Vec<u64> = order.clone();
        in_order.sort_unstable();
        let live: Vec<u64> = registry.sessions.keys().copied().collect();
        if in_order != live {
            return Err(Error::Rejected(
                "execution order does not match the live session set".into(),
            ));
        }
        registry.order = order;
        registry.next_id = next_id;
        Ok(registry)
    }

    /// The value `next_id` will assign (persisted so ids never recycle
    /// across restarts).
    pub fn next_id(&self) -> u64 {
        self.next_id
    }
}

/// Everything [`SessionRegistry::from_restored_parts`] needs to rebuild
/// a registry from a validated snapshot.
pub(crate) struct RestoredParts {
    pub planner: String,
    pub max_sessions: usize,
    pub max_window: u32,
    pub shared: bool,
    pub catalog: StreamCatalog,
    pub sessions: Vec<Session>,
    pub order: Vec<u64>,
    pub next_id: u64,
}

/// Plans one tree through the engine and extracts its leaf schedule.
fn plan_schedule(engine: &Engine, tree: &DnfTree, catalog: &StreamCatalog) -> Result<DnfSchedule> {
    let plan = engine
        .plan(tree, catalog)
        .map_err(|e| Error::Plan(format!("planning failed: {e}")))?;
    plan.body.to_dnf_schedule(tree).ok_or_else(|| {
        Error::Plan(format!(
            "planner `{}` produced a non-schedule plan",
            plan.planner
        ))
    })
}

/// Validates that `order` (as `(term, leaf)` pairs) is a permutation of
/// `tree`'s leaves; used by snapshot restore.
pub(crate) fn schedule_from_pairs(pairs: &[(usize, usize)], tree: &DnfTree) -> Result<DnfSchedule> {
    let refs: Vec<LeafRef> = pairs
        .iter()
        .map(|&(term, leaf)| LeafRef { term, leaf })
        .collect();
    DnfSchedule::new(refs, tree).map_err(|e| Error::Rejected(format!("invalid schedule: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q_AB: &str = "AVG(A,5) < 0.5 AND MAX(B,3) > 0.1";
    const Q_BC: &str = "(B < 0.2 AND C < 0.3) OR AVG(C,4) > 0.0";
    const Q_A: &str = "LAST(A,2) < 0.0 @ 0.4";

    fn registry() -> SessionRegistry {
        SessionRegistry::new("shared-greedy", 16, 64).unwrap()
    }

    #[test]
    fn register_merges_streams_into_a_union_catalog() {
        let engine = Engine::new();
        let mut r = registry();
        let a = r.register(Q_AB, 1.0, 0, &engine).unwrap();
        let b = r.register(Q_BC, 2.0, 1, &engine).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(r.catalog().len(), 3, "A, B, C shared across sessions");
        let b_id = r.catalog().find("B").unwrap();
        let s1 = r.session(1).unwrap();
        assert!(
            s1.sim.terms()[0].iter().any(|l| l.stream == b_id),
            "session 1's B leaf must reference the shared stream id"
        );
        assert_eq!(r.order(), &[0, 1], "patched order appends registrations");
    }

    #[test]
    fn register_validates_input() {
        let engine = Engine::new();
        let mut r = registry();
        assert!(matches!(
            r.register("AVG(A,", 1.0, 0, &engine),
            Err(Error::Query(_))
        ));
        assert!(matches!(
            r.register(Q_AB, f64::NAN, 0, &engine),
            Err(Error::Rejected(_))
        ));
        assert!(matches!(
            r.register("AVG(A,500) < 1", 1.0, 0, &engine),
            Err(Error::Rejected(_)),
        ));
        // non-DNF shape: AND of ORs
        assert!(matches!(
            r.register("(a < 1 OR b < 2) AND c < 3", 1.0, 0, &engine),
            Err(Error::Query(_))
        ));
        assert!(r.is_empty(), "failed registrations leave no sessions");

        let mut tiny = SessionRegistry::new("shared-greedy", 1, 64).unwrap();
        tiny.register(Q_A, 1.0, 0, &engine).unwrap();
        assert!(matches!(
            tiny.register(Q_AB, 1.0, 0, &engine),
            Err(Error::Rejected(_))
        ));
    }

    #[test]
    fn probability_annotations_calibrate_the_tree() {
        let engine = Engine::new();
        let mut r = registry();
        let id = r.register(Q_A, 1.0, 0, &engine).unwrap();
        let s = r.session(id).unwrap();
        assert_eq!(s.drift.calibrated(), &[0.4]);
        assert_eq!(s.tree.leaf(LeafRef { term: 0, leaf: 0 }).prob.value(), 0.4);
    }

    #[test]
    fn unregister_splices_the_order_and_keeps_streams() {
        let engine = Engine::new();
        let mut r = registry();
        let a = r.register(Q_AB, 1.0, 0, &engine).unwrap();
        let b = r.register(Q_BC, 1.0, 0, &engine).unwrap();
        let c = r.register(Q_A, 1.0, 0, &engine).unwrap();
        r.unregister(b).unwrap();
        assert_eq!(r.order(), &[a, c]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.catalog().len(), 3, "union catalog is append-only");
        assert!(matches!(r.unregister(b), Err(Error::Rejected(_))));
    }

    #[test]
    fn incremental_replan_matches_a_cold_full_replan() {
        let engine = Engine::new();
        let mut r = registry();
        for (q, w) in [(Q_AB, 1.0), (Q_BC, 2.0), (Q_A, 0.5), (Q_AB, 3.0)] {
            // Q_AB twice is fine: session names differ.
            r.register(q, w, 0, &engine).unwrap();
        }
        r.unregister(1).unwrap();
        r.replan(&engine).unwrap();
        let warm = r.plan_digest();
        let cold = r.cold_plan_digest(&Engine::new()).unwrap();
        assert_eq!(
            warm, cold,
            "cached incremental re-plan must be byte-identical"
        );
        let stats = engine.cache_stats();
        assert!(stats.hits > 0, "survivors should hit the plan cache");
    }

    #[test]
    fn replan_on_empty_registry_clears_the_order() {
        let engine = Engine::new();
        let mut r = registry();
        let id = r.register(Q_A, 1.0, 0, &engine).unwrap();
        r.unregister(id).unwrap();
        r.replan(&engine).unwrap();
        assert!(r.order().is_empty());
    }

    #[test]
    fn recalibrate_replaces_tree_and_resets_estimators() {
        let engine = Engine::new();
        let mut r = registry();
        let id = r.register(Q_A, 1.0, 0, &engine).unwrap();
        r.recalibrate(id, vec![0.9], &engine).unwrap();
        let s = r.session(id).unwrap();
        assert_eq!(s.drift.calibrated(), &[0.9]);
        assert_eq!(s.tree.leaf(LeafRef { term: 0, leaf: 0 }).prob.value(), 0.9);
        assert_eq!(s.drift.totals(), &[0]);
    }

    #[test]
    fn rejects_unknown_planner() {
        assert!(matches!(
            SessionRegistry::new("optimal-magic", 8, 32),
            Err(Error::Rejected(_))
        ));
    }
}
