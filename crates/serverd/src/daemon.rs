//! The serving daemon: explicit-tick execution of the live session set
//! under admission control, drift re-planning, and the line-protocol
//! serve loops.
//!
//! Ticks advance only on explicit `tick` commands, so scripted runs
//! (tests, the soak harness, the bench group) are fully deterministic:
//! the same command script against the same seed produces the same
//! energies, the same admission decisions, and the same snapshots.
//! Between ticks the registry absorbs churn by patching; a full joint
//! re-plan runs after [`Config::replan_after`] churn events (or on an
//! explicit `replan` command) through the engine's plan cache.
//!
//! Stream `k`'s sensor data is a pure function of `(seed, k, tick)`:
//! every stream owns a dedicated RNG seeded from the daemon seed and
//! the stream index, is warmed by [`Config::max_window`] items at
//! creation, and advances by exactly one item per tick. A restored
//! daemon replays each stream to its snapshot tick, so serving after a
//! restart continues on the same data the uninterrupted run would have
//! seen.

use crate::json::{parse as json_parse, Json};
use crate::proto::{error_response, ok_response, parse_command, Command};
use crate::registry::SessionRegistry;
use crate::snapshot::{SessionSnap, Snapshot};
use crate::telemetry::Telemetry;
use crate::{Error, Result};
use paotr_core::cost::ArrangeTerm;
use paotr_core::plan::Engine;
use paotr_core::stream::StreamId;
use paotr_exec::{AcceptAll, AdmissionCtx, AdmissionPolicy, DriftConfig, EnergyBudget};
use paotr_faults::{FaultPlan, FaultSpec, FaultySource};
use paotr_gen::seeds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read as IoRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use stream_sim::{
    ArrangeConfig, ArrangementStore, EnergyMeter, EnergyModel, MemoryPolicy, Scheduler,
    SensorModel, SensorSource, SimQuery, SimStream, TraceLog, Verdict,
};

/// Domain separation for per-stream RNG seeds.
const STREAM_SALT: u64 = 0x5eed_57ea_4000_0000;

/// Daemon configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Seed for all sensor data.
    pub seed: u64,
    /// Joint planner (a `paotr_multi::planner_names()` entry).
    pub planner: String,
    /// Per-tick worst-case energy budget; `None` admits everything.
    pub budget: Option<f64>,
    /// Over-budget requests are deferred (true) or shed (false).
    pub defer: bool,
    /// Drift-triggered re-planning; `None` disables trace estimation.
    pub drift: Option<DriftConfig>,
    /// Churn events (register/unregister) that trigger a full joint
    /// re-plan at the next tick; 0 re-plans only on explicit `replan`.
    pub replan_after: u64,
    /// Hard ceiling on live sessions (keeps daemon memory bounded).
    pub max_sessions: usize,
    /// Hard ceiling on any predicate window (bounds stream buffers).
    pub max_window: u32,
    /// Persistent stream arrangements; `None` re-pulls every window.
    pub arrange: Option<ArrangeConfig>,
    /// Seeded fault injection; `None` serves fault free. The plan is
    /// derived, never stored, so a restored daemon replays the exact
    /// chaos schedule of the uninterrupted run.
    pub faults: Option<FaultSpec>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            seed: 0,
            planner: "shared-greedy".into(),
            budget: None,
            defer: true,
            drift: Some(DriftConfig::default()),
            replan_after: 8,
            max_sessions: 64,
            max_window: 64,
            arrange: None,
            faults: None,
        }
    }
}

impl Config {
    /// Serializes to the snapshot JSON object. The `arrange` key is
    /// emitted only when arrangements are on, so arrangement-free
    /// configs render exactly the version-1 object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seed", Json::from_u64(self.seed)),
            ("planner", Json::Str(self.planner.clone())),
            ("budget", self.budget.map(Json::Num).unwrap_or(Json::Null)),
            ("defer", Json::Bool(self.defer)),
            (
                "drift",
                self.drift
                    .map(|d| {
                        Json::obj([
                            ("tolerance", Json::Num(d.tolerance)),
                            ("min_samples", Json::from_u64(d.min_samples)),
                        ])
                    })
                    .unwrap_or(Json::Null),
            ),
            ("replan_after", Json::from_u64(self.replan_after)),
            ("max_sessions", Json::from_u64(self.max_sessions as u64)),
            ("max_window", Json::from_u64(u64::from(self.max_window))),
        ];
        if let Some(a) = self.arrange {
            fields.push(("arrange", Json::obj([("grace", Json::from_u64(a.grace))])));
        }
        if let Some(f) = self.faults {
            fields.push((
                "faults",
                Json::obj([
                    ("seed", Json::from_u64(f.seed)),
                    ("transient_rate", Json::Num(f.transient_rate)),
                    ("outage_streams", Json::Num(f.outage_streams)),
                    ("outage_len", Json::from_u64(f.outage_len)),
                    ("outage_gap", Json::from_u64(f.outage_gap)),
                    ("max_attempts", Json::from_u64(u64::from(f.max_attempts))),
                    ("stale_serve", Json::Bool(f.stale_serve)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Deserializes from the snapshot JSON object.
    pub fn from_json(v: &Json) -> std::result::Result<Config, String> {
        let missing = |k: &str| format!("config: missing or invalid `{k}`");
        let drift = match v.get("drift") {
            None | Some(Json::Null) => None,
            Some(d) => Some(DriftConfig {
                tolerance: d
                    .get("tolerance")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| missing("drift.tolerance"))?,
                min_samples: d
                    .get("min_samples")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("drift.min_samples"))?,
            }),
        };
        let budget = match v.get("budget") {
            None | Some(Json::Null) => None,
            Some(b) => Some(b.as_f64().ok_or_else(|| missing("budget"))?),
        };
        let arrange = match v.get("arrange") {
            None | Some(Json::Null) => None,
            Some(a) => Some(ArrangeConfig {
                grace: a
                    .get("grace")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("arrange.grace"))?,
            }),
        };
        let faults = match v.get("faults") {
            None | Some(Json::Null) => None,
            Some(f) => Some(FaultSpec {
                seed: f
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("faults.seed"))?,
                transient_rate: f
                    .get("transient_rate")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| missing("faults.transient_rate"))?,
                outage_streams: f
                    .get("outage_streams")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| missing("faults.outage_streams"))?,
                outage_len: f
                    .get("outage_len")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("faults.outage_len"))?,
                outage_gap: f
                    .get("outage_gap")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("faults.outage_gap"))?,
                max_attempts: f
                    .get("max_attempts")
                    .and_then(Json::as_u64)
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| missing("faults.max_attempts"))?,
                stale_serve: f
                    .get("stale_serve")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| missing("faults.stale_serve"))?,
            }),
        };
        Ok(Config {
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("seed"))?,
            planner: v
                .get("planner")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("planner"))?
                .to_string(),
            budget,
            defer: v
                .get("defer")
                .and_then(Json::as_bool)
                .ok_or_else(|| missing("defer"))?,
            drift,
            replan_after: v
                .get("replan_after")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("replan_after"))?,
            max_sessions: v
                .get("max_sessions")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("max_sessions"))? as usize,
            max_window: v
                .get("max_window")
                .and_then(Json::as_u64)
                .filter(|&w| w <= u64::from(u32::MAX))
                .ok_or_else(|| missing("max_window"))? as u32,
            arrange,
            faults,
        })
    }
}

/// Per-tick energies of one `run_ticks` batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Tick index of the batch's first tick.
    pub start_tick: u64,
    /// Energy spent on each tick of the batch, in order.
    pub energies: Vec<f64>,
}

impl BatchReport {
    /// Ticks in the batch.
    pub fn ticks(&self) -> u64 {
        self.energies.len() as u64
    }

    /// Total energy across the batch.
    pub fn total_energy(&self) -> f64 {
        self.energies.iter().sum()
    }

    /// Largest single-tick energy in the batch.
    pub fn max_energy(&self) -> f64 {
        self.energies.iter().cloned().fold(0.0, f64::max)
    }
}

/// The long-running daemon: registry + streams + telemetry + engine.
#[derive(Debug)]
pub struct Daemon {
    config: Config,
    engine: Engine,
    registry: SessionRegistry,
    telemetry: Telemetry,
    tick: u64,
    churn_since_replan: u64,
    /// Pending request per session: the tick it first arrived.
    pending: BTreeMap<u64, u64>,
    streams: Vec<SimStream>,
    stream_rngs: Vec<StdRng>,
    trace: TraceLog,
    /// The persistent arrangement store (present iff `config.arrange`).
    /// Lives here between ticks; `run_ticks` lends it to its scheduler.
    arrangements: Option<ArrangementStore>,
    /// `(stream, window)` pairs each live session holds a reader
    /// refcount on, released when the session unregisters.
    acquired: BTreeMap<u64, Vec<(StreamId, u32)>>,
    /// The derived fault schedule (the empty pass-through plan when
    /// `config.faults` is off). Never persisted: it is a pure function
    /// of the config.
    faults: FaultPlan,
    /// `(session id, verdict, degraded)` of every evaluation in the
    /// most recent tick — the diagnostic chaos tests compare against a
    /// fault-free daemon.
    last_verdicts: Vec<(u64, Verdict, bool)>,
}

/// The arrangements one session's reads should go through: each stream
/// the query touches at the session's widest window there, whenever
/// maintaining beats re-pulling even for this single reader (the store
/// coalesces further readers for free).
fn session_acquisitions(registry: &SessionRegistry, id: u64) -> Vec<(StreamId, u32)> {
    let n = registry.catalog().len();
    let Some(session) = registry.session(id) else {
        return Vec::new();
    };
    session
        .sim
        .max_windows(n)
        .iter()
        .enumerate()
        .filter(|&(_, &w)| {
            // A session reads its streams every tick, so without the
            // arrangement each tick re-pulls up to `w` items; with it,
            // one delta item plus the amortized fill.
            w > 0 && ArrangeTerm::new(w, 1, 1.0, f64::from(w)).should_materialize()
        })
        .map(|(k, &w)| (StreamId(k), w))
        .collect()
}

impl Daemon {
    /// An empty daemon under `config`.
    pub fn new(config: Config) -> Result<Daemon> {
        let registry =
            SessionRegistry::new(&config.planner, config.max_sessions, config.max_window)?;
        let arrangements = config.arrange.map(ArrangementStore::new);
        let faults = FaultPlan::new(config.faults.unwrap_or_else(FaultSpec::none));
        Ok(Daemon {
            config,
            engine: Engine::new(),
            registry,
            telemetry: Telemetry::default(),
            tick: 0,
            churn_since_replan: 0,
            pending: BTreeMap::new(),
            streams: Vec::new(),
            stream_rngs: Vec::new(),
            trace: TraceLog::default(),
            arrangements,
            acquired: BTreeMap::new(),
            faults,
            last_verdicts: Vec::new(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The live session registry.
    pub fn registry(&self) -> &SessionRegistry {
        &self.registry
    }

    /// The live counters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The current tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The planning engine (exposed for cache statistics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Churn events since the last full joint re-plan.
    pub fn churn_since_replan(&self) -> u64 {
        self.churn_since_replan
    }

    /// Requests currently pending admission (the defer queue). Bounded
    /// by the number of live sessions.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Records in the internal trace buffer (drained after every
    /// evaluation, so this is 0 between ticks).
    pub fn trace_len(&self) -> usize {
        self.trace.records().len()
    }

    /// The live arrangement store, when arrangements are on.
    pub fn arrangements(&self) -> Option<&ArrangementStore> {
        self.arrangements.as_ref()
    }

    /// `(session id, verdict, degraded)` of every evaluation in the
    /// most recent tick, in execution order.
    pub fn last_verdicts(&self) -> &[(u64, Verdict, bool)] {
        &self.last_verdicts
    }

    /// Registers a qlang query; returns its session id.
    pub fn register(&mut self, source: &str, weight: f64) -> Result<u64> {
        let id = self
            .registry
            .register(source, weight, self.tick, &self.engine)?;
        if let Some(store) = self.arrangements.as_mut() {
            let pairs = session_acquisitions(&self.registry, id);
            for &(k, w) in &pairs {
                store.acquire(k, w);
            }
            if !pairs.is_empty() {
                self.acquired.insert(id, pairs);
            }
        }
        self.churn_since_replan += 1;
        self.telemetry.registers += 1;
        Ok(id)
    }

    /// Removes a live session.
    pub fn unregister(&mut self, id: u64) -> Result<()> {
        self.registry.unregister(id)?;
        if let Some(pairs) = self.acquired.remove(&id) {
            let store = self
                .arrangements
                .as_mut()
                .expect("acquisitions exist only with a store");
            for (k, w) in pairs {
                store.release(k, w).expect("acquired pairs stay live");
            }
        }
        self.pending.remove(&id);
        self.churn_since_replan += 1;
        self.telemetry.unregisters += 1;
        Ok(())
    }

    /// Forces a full joint re-plan of the live set.
    pub fn replan(&mut self) -> Result<()> {
        self.registry.replan(&self.engine)?;
        self.telemetry.churn_replans += 1;
        self.churn_since_replan = 0;
        Ok(())
    }

    /// Serves `n` ticks and returns the batch's per-tick energies.
    pub fn run_ticks(&mut self, n: u64) -> Result<BatchReport> {
        let start_tick = self.tick;
        self.ensure_streams();
        let mut energies = Vec::with_capacity(n as usize);
        let mut scheduler = Scheduler::new(self.streams.len(), MemoryPolicy::ClearEachQuery);
        let spec = self.faults.spec();
        scheduler.set_fault_policy(spec.max_attempts.max(1), spec.stale_serve);
        // Lend the persistent store to this batch's scheduler; it must
        // come back even when a tick fails, so failures are deferred.
        if let Some(store) = self.arrangements.take() {
            scheduler.attach_arrangements(store);
        }
        let mut failure = None;
        for _ in 0..n {
            if self.config.replan_after > 0
                && self.churn_since_replan >= self.config.replan_after
                && !self.registry.is_empty()
            {
                if let Err(e) = self.replan() {
                    failure = Some(e);
                    break;
                }
            }
            match self.run_one_tick(&mut scheduler) {
                Ok(energy) => energies.push(energy),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        self.arrangements = scheduler.take_arrangements();
        match failure {
            Some(e) => Err(e),
            None => Ok(BatchReport {
                start_tick,
                energies,
            }),
        }
    }

    fn run_one_tick(&mut self, scheduler: &mut Scheduler) -> Result<f64> {
        let t = self.tick;
        let ids: Vec<u64> = self.registry.sessions().map(|s| s.id).collect();
        let n = ids.len();

        // Every live session is due every tick; deferred requests keep
        // their original arrival tick for the admission tie-break.
        for &id in &ids {
            self.pending.entry(id).or_insert(t);
        }

        let n_streams = self.registry.catalog().len();
        let weights: Vec<f64> = self.registry.sessions().map(|s| s.weight).collect();
        let windows: Vec<Vec<u32>> = self
            .registry
            .sessions()
            .map(|s| s.sim.max_windows(n_streams))
            .collect();
        let costs = AdmissionCtx::stream_costs(self.registry.catalog());
        let pending_since: Vec<u64> = ids.iter().map(|id| self.pending[id]).collect();
        let due: Vec<usize> = (0..n).collect();
        let ctx = AdmissionCtx {
            weights: &weights,
            windows: &windows,
            costs: &costs,
            pending_since: &pending_since,
            shared: self.registry.shared(),
            retry_factor: if self.config.faults.is_some() {
                f64::from(self.faults.spec().max_attempts.max(1))
            } else {
                1.0
            },
        };
        let admission = match self.config.budget {
            None => AcceptAll.admit(t, &due, &ctx),
            Some(b) => {
                let mut policy = if self.config.defer {
                    EnergyBudget::deferring(b)
                } else {
                    EnergyBudget::shedding(b)
                };
                policy.admit(t, &due, &ctx)
            }
        };

        let mut is_admitted = vec![false; n];
        for &q in &admission.admitted {
            is_admitted[q] = true;
        }
        let idx_of: BTreeMap<u64, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let run_order: Vec<u64> = self
            .registry
            .order()
            .iter()
            .copied()
            .filter(|id| idx_of.get(id).is_some_and(|&i| is_admitted[i]))
            .collect();

        let mut meter = EnergyMeter::new(EnergyModel::from_catalog(self.registry.catalog()));
        // Every read goes through the fault decorators; under the empty
        // plan they are pass-throughs, so faulted and fault-free
        // daemons share one execution path.
        let sources = FaultySource::wrap(&self.streams, &self.faults);
        scheduler.maintain_tick(&sources, &mut meter);
        let traced = self.config.drift.is_some();
        if self.registry.shared() {
            let admitted_sims: Vec<&SimQuery> = run_order
                .iter()
                .map(|id| &self.registry.session(*id).expect("live id").sim)
                .collect();
            scheduler.begin_tick(&admitted_sims, &sources);
        }
        self.last_verdicts.clear();
        for &id in &run_order {
            let (out, records) = {
                let session = self.registry.session(id).expect("live id");
                if !self.registry.shared() {
                    scheduler.begin_tick(std::slice::from_ref(&session.sim), &sources);
                }
                let out = scheduler.run_query(
                    &session.sim,
                    &session.schedule,
                    &sources,
                    &mut meter,
                    traced.then_some(&mut self.trace),
                );
                let records: Vec<(paotr_core::leaf::LeafRef, bool)> = self
                    .trace
                    .records()
                    .iter()
                    .map(|r| (r.leaf, r.value))
                    .collect();
                self.trace.clear();
                (out, records)
            };
            self.telemetry.evals += 1;
            self.telemetry.truths += u64::from(out.value);
            self.telemetry.retries += u64::from(out.retries);
            self.telemetry.failed_reads += u64::from(out.failed_reads);
            self.telemetry.stale_serves += u64::from(out.stale_leaves);
            match out.verdict {
                Verdict::Unknown => self.telemetry.unknown_verdicts += 1,
                _ if out.degraded => self.telemetry.degraded_verdicts += 1,
                _ => {}
            }
            self.last_verdicts.push((id, out.verdict, out.degraded));
            self.pending.remove(&id);

            if let Some(cfg) = self.config.drift {
                self.registry.observe(id, &records)?;
                let session = self.registry.session(id).expect("live id");
                if session.drift.drifted(&cfg) {
                    let probs = session.drift.recalibrated(&cfg);
                    self.registry.recalibrate(id, probs, &self.engine)?;
                    self.telemetry.drift_replans += 1;
                }
            }
        }
        for &q in &admission.shed {
            self.pending.remove(&ids[q]);
            self.telemetry.shed += 1;
        }
        self.telemetry.deferred += admission.deferred.len() as u64;

        let tick_energy = meter.total_cost();
        self.telemetry.ticks += 1;
        self.telemetry.last_tick_energy = tick_energy;
        self.telemetry.total_energy += tick_energy;
        self.telemetry.max_tick_energy = self.telemetry.max_tick_energy.max(tick_energy);
        self.telemetry.maintain_energy += meter.maintain_cost_total();
        self.telemetry.retry_energy += meter.retry_cost_total();
        if let Some(stats) = scheduler.arrangements().map(|s| s.stats()) {
            self.telemetry.arrangements = stats.arrangements as u64;
            self.telemetry.arrange_hit_items = stats.hit_items;
        }

        for (s, rng) in self.streams.iter_mut().zip(&mut self.stream_rngs) {
            s.advance_by(1, rng);
        }
        self.tick += 1;
        Ok(tick_energy)
    }

    /// Creates (and warms) streams for catalog entries that do not have
    /// one yet. Stream `k`'s data depends only on `(seed, k, tick)`.
    fn ensure_streams(&mut self) {
        while self.streams.len() < self.registry.catalog().len() {
            let k = self.streams.len() as u64;
            let mut rng =
                StdRng::seed_from_u64(seeds::mix(self.config.seed ^ seeds::mix(STREAM_SALT ^ k)));
            let mut stream = SimStream::new(
                SensorSource::new(SensorModel::Gaussian {
                    mean: 0.0,
                    std_dev: 1.0,
                }),
                self.config.max_window as usize,
            );
            stream.advance_by(
                self.config.max_window as usize + self.tick as usize,
                &mut rng,
            );
            self.streams.push(stream);
            self.stream_rngs.push(rng);
        }
    }

    /// The daemon's full persistent state as a [`Snapshot`]. Daemons
    /// without arrangements keep writing the version-1 document, so
    /// their snapshots stay readable by earlier builds.
    pub fn snapshot(&self) -> Snapshot {
        let arrangements = self.arrangements.as_ref().map(|store| {
            let stats = store.stats();
            crate::snapshot::ArrangeSnap {
                clock: store.clock(),
                hits: stats.hits,
                hit_items: stats.hit_items,
                maintained_items: stats.maintained_items,
                evictions: stats.evictions,
                entries: store
                    .iter()
                    .map(|a| crate::snapshot::ArrangeEntrySnap {
                        stream: a.stream().0,
                        window: a.window(),
                        readers: a.readers(),
                        maintained_to: a.maintained_to(),
                        zero_reader_since: a.zero_reader_since(),
                    })
                    .collect(),
            }
        });
        Snapshot {
            version: if arrangements.is_some() {
                crate::snapshot::SNAPSHOT_VERSION
            } else {
                1
            },
            config: self.config.clone(),
            tick: self.tick,
            next_id: self.registry.next_id(),
            churn_since_replan: self.churn_since_replan,
            shared: self.registry.shared(),
            catalog: (0..self.registry.catalog().len())
                .map(|k| {
                    let id = paotr_core::stream::StreamId(k);
                    (
                        self.registry.catalog().name(id),
                        self.registry.catalog().cost(id),
                    )
                })
                .collect(),
            sessions: self
                .registry
                .sessions()
                .map(|s| SessionSnap {
                    id: s.id,
                    source: s.source.clone(),
                    weight: s.weight,
                    registered_tick: s.registered_tick,
                    calibrated: s.drift.calibrated().to_vec(),
                    successes: s.drift.successes().to_vec(),
                    totals: s.drift.totals().to_vec(),
                    schedule: s
                        .schedule
                        .order()
                        .iter()
                        .map(|r| (r.term, r.leaf))
                        .collect(),
                    pending_since: self.pending.get(&s.id).copied(),
                })
                .collect(),
            order: self.registry.order().to_vec(),
            telemetry: self.telemetry.clone(),
            arrangements,
        }
    }

    /// Restores a daemon from a snapshot: sessions are recompiled from
    /// their sources against the persisted catalog, calibration and
    /// schedules are adopted verbatim, and every stream is replayed to
    /// the snapshot tick. Counters continue exactly from their
    /// persisted values.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Daemon> {
        let invalid = |m: String| Error::Snapshot(crate::snapshot::SnapshotError::Invalid(m));
        let (registry, pending) = snap.restore_registry()?;

        // Rebuild the arrangement store: persisted shells and counters,
        // reader refcounts cross-checked against the sessions that must
        // hold them (acquisitions are recomputed, not persisted).
        let mut arrangements = snap.config.arrange.map(ArrangementStore::new);
        if let Some(asnap) = &snap.arrangements {
            let store = arrangements.as_mut().ok_or_else(|| {
                invalid("snapshot persists arrangements but config.arrange is off".into())
            })?;
            for e in &asnap.entries {
                store
                    .restore_arrangement(
                        StreamId(e.stream),
                        e.window,
                        e.readers,
                        e.maintained_to,
                        e.zero_reader_since,
                    )
                    .map_err(|m| invalid(format!("arrangements: {m}")))?;
            }
            store.restore_counters(
                asnap.clock,
                asnap.hits,
                asnap.hit_items,
                asnap.maintained_items,
                asnap.evictions,
            );
        }
        let mut acquired = BTreeMap::new();
        if let Some(store) = &arrangements {
            let ids: Vec<u64> = registry.sessions().map(|s| s.id).collect();
            let mut expected: BTreeMap<(usize, u32), u32> = BTreeMap::new();
            for id in ids {
                let pairs = session_acquisitions(&registry, id);
                for &(k, w) in &pairs {
                    *expected.entry((k.0, w)).or_default() += 1;
                }
                if !pairs.is_empty() {
                    acquired.insert(id, pairs);
                }
            }
            for a in store.iter() {
                let want = expected.remove(&(a.stream().0, a.window())).unwrap_or(0);
                if a.readers() != want {
                    return Err(invalid(format!(
                        "arrangement for stream {} window {} persists {} readers, sessions hold {}",
                        a.stream(),
                        a.window(),
                        a.readers(),
                        want
                    )));
                }
            }
            if let Some((&(k, w), _)) = expected.iter().next() {
                return Err(invalid(format!(
                    "sessions read through an arrangement the snapshot does not persist \
                     (stream {k} window {w})"
                )));
            }
        }

        let faults = FaultPlan::new(snap.config.faults.unwrap_or_else(FaultSpec::none));
        let mut daemon = Daemon {
            config: snap.config.clone(),
            engine: Engine::new(),
            registry,
            telemetry: snap.telemetry.clone(),
            tick: snap.tick,
            churn_since_replan: snap.churn_since_replan,
            pending,
            streams: Vec::new(),
            stream_rngs: Vec::new(),
            trace: TraceLog::default(),
            arrangements,
            acquired,
            faults,
            last_verdicts: Vec::new(),
        };
        daemon.ensure_streams();
        daemon.refill_arrangements();
        Ok(daemon)
    }

    /// Refills restored arrangement rings from the replayed streams.
    /// Counter-free, and tolerant of history the stream buffers have
    /// already trimmed: a short ring self-heals on its first
    /// maintenance (the catch-up absorb restores it to a full window
    /// before any read can be served), so replay after a restore stays
    /// tick-for-tick identical to the uninterrupted run.
    fn refill_arrangements(&mut self) {
        let Some(store) = self.arrangements.as_mut() else {
            return;
        };
        let shells: Vec<(StreamId, u32, u64)> = store
            .iter()
            .filter(|a| a.maintained_to() > 0)
            .map(|a| (a.stream(), a.window(), a.maintained_to()))
            .collect();
        for (k, window, maintained_to) in shells {
            let stream = &self.streams[k.0];
            // Drop items produced after the persisted maintenance
            // point; what remains (newest first) ends at maintained_to.
            let newer = stream.now().saturating_sub(maintained_to) as usize;
            if newer >= stream.len() {
                continue;
            }
            let take = (stream.len() - newer).min(window as usize);
            let newest = stream.recent(stream.len()).expect("buffered items exist");
            store
                .refill(k, window, &newest[newer..newer + take])
                .expect("shell restored above");
        }
    }

    /// Saves a snapshot to `path`.
    pub fn save_snapshot(&self, path: &str) -> Result<()> {
        self.snapshot().save(path).map_err(Error::Snapshot)
    }

    /// Restores a daemon from a snapshot file. A corrupt or truncated
    /// primary falls back to the rotated last-good generation
    /// (`<path>.1`) written by the previous save.
    pub fn load_snapshot(path: &str) -> Result<Daemon> {
        let (snap, _) = Snapshot::load_with_fallback(path).map_err(Error::Snapshot)?;
        Daemon::from_snapshot(&snap)
    }

    /// Handles one protocol line; returns the response line and whether
    /// a shutdown was requested.
    pub fn handle_line(&mut self, line: &str) -> (String, bool) {
        let cmd = match parse_command(line) {
            Ok(c) => c,
            Err(e) => return (error_response(&e), false),
        };
        let resp = match cmd {
            Command::Register { query, weight } => self
                .register(&query, weight)
                .map(|id| ok_response([("id", Json::from_u64(id))])),
            Command::Unregister { id } => self.unregister(id).map(|()| ok_response([])),
            Command::Tick { n } => self.run_ticks(n).map(|batch| {
                ok_response([
                    ("ticks", Json::from_u64(batch.ticks())),
                    ("tick", Json::from_u64(self.tick)),
                    ("energy", Json::Num(batch.total_energy())),
                    ("max_tick_energy", Json::Num(batch.max_energy())),
                ])
            }),
            Command::Stats => {
                let cache = self.engine.cache_stats();
                let mut fields = vec![
                    ("tick", Json::from_u64(self.tick)),
                    ("sessions", Json::from_u64(self.registry.len() as u64)),
                    (
                        "headroom",
                        self.telemetry
                            .headroom(self.config.budget)
                            .map(Json::Num)
                            .unwrap_or(Json::Null),
                    ),
                    ("stats", self.telemetry.to_json()),
                    (
                        "cache",
                        Json::obj([
                            ("hits", Json::from_u64(cache.hits)),
                            ("misses", Json::from_u64(cache.misses)),
                            ("entries", Json::from_u64(cache.entries as u64)),
                            ("capacity", Json::from_u64(cache.capacity as u64)),
                        ]),
                    ),
                ];
                if let Some(stats) = self.arrangements.as_ref().map(|s| s.stats()) {
                    fields.push((
                        "arrange",
                        Json::obj([
                            ("arrangements", Json::from_u64(stats.arrangements as u64)),
                            ("hits", Json::from_u64(stats.hits)),
                            ("hit_items", Json::from_u64(stats.hit_items)),
                            ("maintained_items", Json::from_u64(stats.maintained_items)),
                            ("evictions", Json::from_u64(stats.evictions)),
                        ]),
                    ));
                }
                fields.push((
                    "table",
                    Json::Str(
                        self.telemetry
                            .table(self.registry.len(), self.config.budget)
                            .to_markdown(),
                    ),
                ));
                Ok(ok_response(fields))
            }
            Command::Plan => {
                let digest = self.registry.plan_digest();
                let plan = json_parse(&digest).expect("digest is valid JSON");
                Ok(ok_response([("plan", plan)]))
            }
            Command::Replan => self.replan().map(|()| ok_response([])),
            Command::Snapshot { path: Some(path) } => self
                .save_snapshot(&path)
                .map(|()| ok_response([("path", Json::Str(path))])),
            Command::Snapshot { path: None } => {
                let doc = self.snapshot().to_json();
                Ok(ok_response([("snapshot", doc)]))
            }
            Command::Shutdown => return (ok_response([]), true),
        };
        match resp {
            Ok(r) => (r, false),
            Err(e) => (error_response(&e.to_string()), false),
        }
    }

    /// Serves the line protocol until EOF or a `shutdown` command.
    /// Returns true when shutdown was requested (vs. plain EOF).
    pub fn serve<R: BufRead, W: Write>(
        &mut self,
        reader: R,
        writer: &mut W,
    ) -> std::io::Result<bool> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (resp, stop) = self.handle_line(&line);
            writeln!(writer, "{resp}")?;
            writer.flush()?;
            if stop {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Serves connections from `listener` one at a time until a client
    /// sends `shutdown`. Session state persists across connections.
    pub fn serve_tcp(&mut self, listener: &std::net::TcpListener) -> std::io::Result<()> {
        for conn in listener.incoming() {
            let stream = conn?;
            let reader = BufReader::new(stream.try_clone()?);
            let mut writer = stream;
            if self.serve(reader, &mut writer)? {
                break;
            }
        }
        Ok(())
    }

    /// Serves concurrent connections from `listener`, one thread per
    /// client over the shared daemon, until any client sends
    /// `shutdown`. Commands from all clients interleave line-by-line
    /// against one state: registrations, ticks and arrangements are
    /// shared. The daemon lock is held only while handling a line, so a
    /// slow or idle client never blocks the others. Uses
    /// [`TcpOptions::default`]; [`Daemon::serve_tcp_shared_with`]
    /// exposes the timeout knobs.
    pub fn serve_tcp_shared(
        daemon: Arc<Mutex<Daemon>>,
        listener: &std::net::TcpListener,
    ) -> std::io::Result<()> {
        Daemon::serve_tcp_shared_with(daemon, listener, TcpOptions::default())
    }

    /// [`Daemon::serve_tcp_shared`] with explicit connection options.
    ///
    /// Hardening over the plain accept loop:
    /// * every connection reads with [`TcpOptions::read_timeout`], so a
    ///   silent client never wedges its worker — on each timeout the
    ///   worker re-checks the shared stop flag and exits promptly after
    ///   a shutdown from any other client;
    /// * a connection idle longer than [`TcpOptions::idle_timeout`] is
    ///   evicted (the daemon state it touched stays live);
    /// * malformed bytes — invalid UTF-8, unparseable JSON — get an
    ///   error *reply* on the same connection instead of a disconnect.
    pub fn serve_tcp_shared_with(
        daemon: Arc<Mutex<Daemon>>,
        listener: &std::net::TcpListener,
        opts: TcpOptions,
    ) -> std::io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        let addr = listener.local_addr()?;
        let mut workers = Vec::new();
        for conn in listener.incoming() {
            let stream = conn?;
            // A shutdown handler wakes this accept loop by connecting
            // to our own address; that wake connection is not served.
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let daemon = Arc::clone(&daemon);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || -> std::io::Result<()> {
                serve_connection(&daemon, stream, &opts, &stop, addr)
            }));
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Per-connection knobs for [`Daemon::serve_tcp_shared_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpOptions {
    /// Socket read timeout: the longest any worker blocks before
    /// re-checking the shared stop flag (and the idle clock).
    pub read_timeout: Duration,
    /// Evict a connection after this much time without receiving any
    /// bytes; `None` keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for TcpOptions {
    fn default() -> TcpOptions {
        TcpOptions {
            read_timeout: Duration::from_millis(200),
            idle_timeout: None,
        }
    }
}

/// One worker's connection loop: timeout-aware reads, line framing
/// over a persistent buffer, error replies for malformed input, idle
/// eviction, and a partial final line processed at EOF.
fn serve_connection(
    daemon: &Arc<Mutex<Daemon>>,
    stream: std::net::TcpStream,
    opts: &TcpOptions,
    stop: &Arc<AtomicBool>,
    addr: std::net::SocketAddr,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(opts.read_timeout))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut idle = Duration::ZERO;
    loop {
        let n = match reader.read(&mut chunk) {
            Ok(0) => {
                // EOF: a trailing line without a newline still gets
                // served (the reply goes out before the socket closes).
                if !buf.is_empty() {
                    let line = String::from_utf8_lossy(&buf).into_owned();
                    handle_connection_line(daemon, &mut writer, &line, stop, addr)?;
                }
                return Ok(());
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                idle += opts.read_timeout;
                if opts.idle_timeout.is_some_and(|limit| idle >= limit) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        idle = Duration::ZERO;
        buf.extend_from_slice(&chunk[..n]);
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = buf.drain(..=nl).collect();
            // Invalid UTF-8 is replied to as a parse error, never a
            // disconnect: the lossy text cannot parse as a command.
            let line = String::from_utf8_lossy(&raw[..nl]).into_owned();
            if handle_connection_line(daemon, &mut writer, &line, stop, addr)? {
                return Ok(());
            }
        }
    }
}

/// Handles one framed line; returns whether shutdown was requested.
fn handle_connection_line(
    daemon: &Arc<Mutex<Daemon>>,
    writer: &mut std::net::TcpStream,
    line: &str,
    stop: &Arc<AtomicBool>,
    addr: std::net::SocketAddr,
) -> std::io::Result<bool> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    if line.trim().is_empty() {
        return Ok(false);
    }
    let (resp, shutdown) = daemon.lock().expect("daemon lock").handle_line(line);
    writeln!(writer, "{resp}")?;
    writer.flush()?;
    if shutdown {
        stop.store(true, Ordering::SeqCst);
        let _ = std::net::TcpStream::connect(addr);
    }
    Ok(shutdown)
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: &str = "AVG(A,8) < 0.5 AND MAX(B,4) > 0.0";
    const Q2: &str = "(B < 0.2 AND C < 0.3) OR AVG(C,6) > 0.1";
    const Q3: &str = "LAST(A,2) < 0.5";

    fn daemon(budget: Option<f64>) -> Daemon {
        Daemon::new(Config {
            budget,
            ..Config::default()
        })
        .unwrap()
    }

    #[test]
    fn ticks_are_deterministic_under_one_seed() {
        let run = || {
            let mut d = daemon(None);
            d.register(Q1, 1.0).unwrap();
            d.register(Q2, 2.0).unwrap();
            d.run_ticks(25).unwrap().energies
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn budget_bounds_every_tick() {
        let mut d = daemon(Some(10.0));
        d.register(Q1, 1.0).unwrap();
        d.register(Q2, 2.0).unwrap();
        d.register(Q3, 0.5).unwrap();
        let batch = d.run_ticks(40).unwrap();
        for (i, &e) in batch.energies.iter().enumerate() {
            assert!(e <= 10.0 + 1e-9, "tick {i} spent {e}");
        }
        assert!(d.telemetry().deferred > 0, "the budget must actually bind");
    }

    #[test]
    fn unconstrained_daemon_serves_everything_every_tick() {
        let mut d = daemon(None);
        d.register(Q1, 1.0).unwrap();
        d.register(Q3, 1.0).unwrap();
        d.run_ticks(10).unwrap();
        let t = d.telemetry();
        assert_eq!(t.evals, 20);
        assert_eq!(t.shed + t.deferred, 0);
    }

    #[test]
    fn churn_triggers_a_full_replan_at_the_next_tick() {
        let mut d = Daemon::new(Config {
            replan_after: 2,
            ..Config::default()
        })
        .unwrap();
        d.register(Q1, 1.0).unwrap();
        d.register(Q2, 1.0).unwrap();
        assert_eq!(d.churn_since_replan(), 2);
        d.run_ticks(1).unwrap();
        assert_eq!(d.churn_since_replan(), 0);
        assert_eq!(d.telemetry().churn_replans, 1);
    }

    fn arranged_daemon(budget: Option<f64>) -> Daemon {
        Daemon::new(Config {
            budget,
            arrange: Some(ArrangeConfig::default()),
            ..Config::default()
        })
        .unwrap()
    }

    #[test]
    fn arrangements_cut_daemon_energy_at_identical_decisions() {
        let run = |arrange: bool| {
            let mut d = if arrange {
                arranged_daemon(None)
            } else {
                daemon(None)
            };
            d.register(Q1, 1.0).unwrap();
            d.register(Q2, 2.0).unwrap();
            d.register(Q3, 0.5).unwrap();
            d.run_ticks(50).unwrap();
            d
        };
        let plain = run(false);
        let arranged = run(true);
        // Same queries, same sensor data, same admission: the served
        // work is identical, only the item bill differs.
        assert_eq!(arranged.telemetry().evals, plain.telemetry().evals);
        assert_eq!(arranged.telemetry().truths, plain.telemetry().truths);
        assert!(arranged.telemetry().arrange_hit_items > 0);
        assert!(arranged.telemetry().maintain_energy > 0.0);
        assert_eq!(plain.telemetry().maintain_energy, 0.0);
        assert!(
            arranged.telemetry().total_energy < plain.telemetry().total_energy,
            "arranged {} J vs plain {} J",
            arranged.telemetry().total_energy,
            plain.telemetry().total_energy
        );
    }

    #[test]
    fn unregister_releases_arrangements_into_grace_and_eviction() {
        let mut d = arranged_daemon(None);
        let a = d.register(Q1, 1.0).unwrap();
        d.register(Q3, 1.0).unwrap();
        d.run_ticks(2).unwrap();
        let live_before = d.arrangements().unwrap().stats().arrangements;
        assert!(live_before > 0);
        d.unregister(a).unwrap();
        // Q1's exclusive arrangements lose their reader, survive the
        // grace period, then fall to eviction.
        d.run_ticks(ArrangeConfig::default().grace + 2).unwrap();
        let stats = d.arrangements().unwrap().stats();
        assert!(stats.evictions > 0, "grace-expired arrangements evict");
        assert!(stats.arrangements < live_before);
    }

    #[test]
    fn stats_exposes_plan_cache_and_arrangement_counters() {
        let mut d = arranged_daemon(None);
        d.register(Q1, 1.0).unwrap();
        d.run_ticks(3).unwrap();
        let (r, _) = d.handle_line(r#"{"cmd":"stats"}"#);
        assert!(r.contains(r#""cache":{"hits":"#), "{r}");
        assert!(r.contains(r#""misses":"#), "{r}");
        assert!(r.contains(r#""capacity":"#), "{r}");
        assert!(r.contains(r#""arrange":{"arrangements":"#), "{r}");
        assert!(r.contains(r#""maintained_items":"#), "{r}");
        // Without arrangements the cache block stays, the arrange
        // block is absent.
        let mut plain = daemon(None);
        plain.register(Q1, 1.0).unwrap();
        let (r, _) = plain.handle_line(r#"{"cmd":"stats"}"#);
        assert!(r.contains(r#""cache":{"hits":"#), "{r}");
        assert!(!r.contains(r#""arrange":"#), "{r}");
    }

    #[test]
    fn protocol_round_trip() {
        let mut d = daemon(None);
        let (r, stop) = d.handle_line(r#"{"cmd":"register","query":"AVG(A,4) < 0.0","weight":2}"#);
        assert!(!stop);
        assert_eq!(r, r#"{"ok":true,"id":0}"#);
        let (r, _) = d.handle_line(r#"{"cmd":"tick","n":3}"#);
        assert!(r.starts_with(r#"{"ok":true,"ticks":3,"tick":3,"#), "{r}");
        let (r, _) = d.handle_line(r#"{"cmd":"stats"}"#);
        assert!(r.contains(r#""sessions":1"#), "{r}");
        assert!(r.contains(r#""ticks":3"#), "{r}");
        let (r, _) = d.handle_line(r#"{"cmd":"plan"}"#);
        assert!(r.contains(r#""order":[0]"#), "{r}");
        let (r, _) = d.handle_line(r#"{"cmd":"unregister","id":0}"#);
        assert_eq!(r, r#"{"ok":true}"#);
        let (r, _) = d.handle_line(r#"{"cmd":"unregister","id":0}"#);
        assert!(r.contains(r#""ok":false"#), "{r}");
        let (r, stop) = d.handle_line(r#"{"cmd":"shutdown"}"#);
        assert_eq!(r, r#"{"ok":true}"#);
        assert!(stop);
    }

    #[test]
    fn serve_loop_answers_line_per_line_and_survives_garbage() {
        let script = concat!(
            "{\"cmd\":\"register\",\"query\":\"a < 1\"}\n",
            "this is not json\n",
            "\n",
            "{\"cmd\":\"tick\"}\n",
            "{\"cmd\":\"shutdown\"}\n",
        );
        let mut out = Vec::new();
        let mut d = daemon(None);
        let shutdown = d
            .serve(BufReader::new(script.as_bytes()), &mut out)
            .unwrap();
        assert!(shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 4, "one response per non-empty line");
        assert!(lines[0].contains(r#""ok":true"#));
        assert!(lines[1].contains(r#""ok":false"#));
    }

    #[test]
    fn tcp_serving_works_end_to_end() {
        use std::io::{BufRead, Write};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut d = daemon(None);
            d.serve_tcp(&listener).unwrap();
            d.telemetry().ticks
        });
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut ask = |line: &str| {
            writeln!(writer, "{line}").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            resp
        };
        assert!(ask(r#"{"cmd":"register","query":"AVG(x,3) > 0.0"}"#).contains(r#""id":0"#));
        assert!(ask(r#"{"cmd":"tick","n":5}"#).contains(r#""ok":true"#));
        assert!(ask(r#"{"cmd":"shutdown"}"#).contains(r#""ok":true"#));
        assert_eq!(server.join().unwrap(), 5);
    }

    #[test]
    fn two_simultaneous_tcp_clients_share_one_daemon() {
        use std::io::{BufRead, Write};
        use std::net::TcpStream;

        struct Client {
            reader: BufReader<TcpStream>,
            writer: TcpStream,
        }
        impl Client {
            fn connect(addr: std::net::SocketAddr) -> Client {
                let stream = TcpStream::connect(addr).unwrap();
                Client {
                    reader: BufReader::new(stream.try_clone().unwrap()),
                    writer: stream,
                }
            }
            fn ask(&mut self, line: &str) -> String {
                writeln!(self.writer, "{line}").unwrap();
                let mut resp = String::new();
                self.reader.read_line(&mut resp).unwrap();
                resp
            }
        }

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = Arc::new(Mutex::new(arranged_daemon(None)));
        let server = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || Daemon::serve_tcp_shared(daemon, &listener).unwrap())
        };

        // Both connections are open at once; their commands interleave
        // against the one shared daemon state.
        let mut a = Client::connect(addr);
        let mut b = Client::connect(addr);
        assert!(a
            .ask(r#"{"cmd":"register","query":"AVG(x,6) > 0.0"}"#)
            .contains(r#""id":0"#));
        assert!(b
            .ask(r#"{"cmd":"register","query":"MAX(x,4) > 0.5"}"#)
            .contains(r#""id":1"#,));
        assert!(a.ask(r#"{"cmd":"tick","n":4}"#).contains(r#""tick":4"#));
        // B sees A's ticks and both sessions.
        let stats = b.ask(r#"{"cmd":"stats"}"#);
        assert!(stats.contains(r#""tick":4"#), "{stats}");
        assert!(stats.contains(r#""sessions":2"#), "{stats}");
        assert!(b.ask(r#"{"cmd":"tick","n":1}"#).contains(r#""tick":5"#));
        // A client disconnecting (without shutdown) leaves the daemon
        // serving the other.
        drop(a);
        assert!(b
            .ask(r#"{"cmd":"unregister","id":0}"#)
            .contains(r#""ok":true"#));
        assert!(b.ask(r#"{"cmd":"shutdown"}"#).contains(r#""ok":true"#));
        server.join().unwrap();

        let d = Arc::try_unwrap(daemon)
            .expect("all workers joined")
            .into_inner()
            .unwrap();
        assert_eq!(d.telemetry().ticks, 5);
        assert_eq!(d.telemetry().registers, 2);
        assert_eq!(d.telemetry().unregisters, 1);
        assert!(d.arrangements().is_some());
    }
}
