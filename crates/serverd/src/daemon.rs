//! The serving daemon: explicit-tick execution of the live session set
//! under admission control, drift re-planning, and the line-protocol
//! serve loops.
//!
//! Ticks advance only on explicit `tick` commands, so scripted runs
//! (tests, the soak harness, the bench group) are fully deterministic:
//! the same command script against the same seed produces the same
//! energies, the same admission decisions, and the same snapshots.
//! Between ticks the registry absorbs churn by patching; a full joint
//! re-plan runs after [`Config::replan_after`] churn events (or on an
//! explicit `replan` command) through the engine's plan cache.
//!
//! Stream `k`'s sensor data is a pure function of `(seed, k, tick)`:
//! every stream owns a dedicated RNG seeded from the daemon seed and
//! the stream index, is warmed by [`Config::max_window`] items at
//! creation, and advances by exactly one item per tick. A restored
//! daemon replays each stream to its snapshot tick, so serving after a
//! restart continues on the same data the uninterrupted run would have
//! seen.

use crate::json::{parse as json_parse, Json};
use crate::proto::{error_response, ok_response, parse_command, Command};
use crate::registry::SessionRegistry;
use crate::snapshot::{SessionSnap, Snapshot};
use crate::telemetry::Telemetry;
use crate::{Error, Result};
use paotr_core::plan::Engine;
use paotr_exec::{AcceptAll, AdmissionCtx, AdmissionPolicy, DriftConfig, EnergyBudget};
use paotr_gen::seeds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use stream_sim::{
    EnergyMeter, EnergyModel, MemoryPolicy, Scheduler, SensorModel, SensorSource, SimQuery,
    SimStream, TraceLog,
};

/// Domain separation for per-stream RNG seeds.
const STREAM_SALT: u64 = 0x5eed_57ea_4000_0000;

/// Daemon configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Seed for all sensor data.
    pub seed: u64,
    /// Joint planner (a `paotr_multi::planner_names()` entry).
    pub planner: String,
    /// Per-tick worst-case energy budget; `None` admits everything.
    pub budget: Option<f64>,
    /// Over-budget requests are deferred (true) or shed (false).
    pub defer: bool,
    /// Drift-triggered re-planning; `None` disables trace estimation.
    pub drift: Option<DriftConfig>,
    /// Churn events (register/unregister) that trigger a full joint
    /// re-plan at the next tick; 0 re-plans only on explicit `replan`.
    pub replan_after: u64,
    /// Hard ceiling on live sessions (keeps daemon memory bounded).
    pub max_sessions: usize,
    /// Hard ceiling on any predicate window (bounds stream buffers).
    pub max_window: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            seed: 0,
            planner: "shared-greedy".into(),
            budget: None,
            defer: true,
            drift: Some(DriftConfig::default()),
            replan_after: 8,
            max_sessions: 64,
            max_window: 64,
        }
    }
}

impl Config {
    /// Serializes to the snapshot JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::from_u64(self.seed)),
            ("planner", Json::Str(self.planner.clone())),
            ("budget", self.budget.map(Json::Num).unwrap_or(Json::Null)),
            ("defer", Json::Bool(self.defer)),
            (
                "drift",
                self.drift
                    .map(|d| {
                        Json::obj([
                            ("tolerance", Json::Num(d.tolerance)),
                            ("min_samples", Json::from_u64(d.min_samples)),
                        ])
                    })
                    .unwrap_or(Json::Null),
            ),
            ("replan_after", Json::from_u64(self.replan_after)),
            ("max_sessions", Json::from_u64(self.max_sessions as u64)),
            ("max_window", Json::from_u64(u64::from(self.max_window))),
        ])
    }

    /// Deserializes from the snapshot JSON object.
    pub fn from_json(v: &Json) -> std::result::Result<Config, String> {
        let missing = |k: &str| format!("config: missing or invalid `{k}`");
        let drift = match v.get("drift") {
            None | Some(Json::Null) => None,
            Some(d) => Some(DriftConfig {
                tolerance: d
                    .get("tolerance")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| missing("drift.tolerance"))?,
                min_samples: d
                    .get("min_samples")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("drift.min_samples"))?,
            }),
        };
        let budget = match v.get("budget") {
            None | Some(Json::Null) => None,
            Some(b) => Some(b.as_f64().ok_or_else(|| missing("budget"))?),
        };
        Ok(Config {
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("seed"))?,
            planner: v
                .get("planner")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("planner"))?
                .to_string(),
            budget,
            defer: v
                .get("defer")
                .and_then(Json::as_bool)
                .ok_or_else(|| missing("defer"))?,
            drift,
            replan_after: v
                .get("replan_after")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("replan_after"))?,
            max_sessions: v
                .get("max_sessions")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("max_sessions"))? as usize,
            max_window: v
                .get("max_window")
                .and_then(Json::as_u64)
                .filter(|&w| w <= u64::from(u32::MAX))
                .ok_or_else(|| missing("max_window"))? as u32,
        })
    }
}

/// Per-tick energies of one `run_ticks` batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Tick index of the batch's first tick.
    pub start_tick: u64,
    /// Energy spent on each tick of the batch, in order.
    pub energies: Vec<f64>,
}

impl BatchReport {
    /// Ticks in the batch.
    pub fn ticks(&self) -> u64 {
        self.energies.len() as u64
    }

    /// Total energy across the batch.
    pub fn total_energy(&self) -> f64 {
        self.energies.iter().sum()
    }

    /// Largest single-tick energy in the batch.
    pub fn max_energy(&self) -> f64 {
        self.energies.iter().cloned().fold(0.0, f64::max)
    }
}

/// The long-running daemon: registry + streams + telemetry + engine.
#[derive(Debug)]
pub struct Daemon {
    config: Config,
    engine: Engine,
    registry: SessionRegistry,
    telemetry: Telemetry,
    tick: u64,
    churn_since_replan: u64,
    /// Pending request per session: the tick it first arrived.
    pending: BTreeMap<u64, u64>,
    streams: Vec<SimStream>,
    stream_rngs: Vec<StdRng>,
    trace: TraceLog,
}

impl Daemon {
    /// An empty daemon under `config`.
    pub fn new(config: Config) -> Result<Daemon> {
        let registry =
            SessionRegistry::new(&config.planner, config.max_sessions, config.max_window)?;
        Ok(Daemon {
            config,
            engine: Engine::new(),
            registry,
            telemetry: Telemetry::default(),
            tick: 0,
            churn_since_replan: 0,
            pending: BTreeMap::new(),
            streams: Vec::new(),
            stream_rngs: Vec::new(),
            trace: TraceLog::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The live session registry.
    pub fn registry(&self) -> &SessionRegistry {
        &self.registry
    }

    /// The live counters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The current tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The planning engine (exposed for cache statistics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Churn events since the last full joint re-plan.
    pub fn churn_since_replan(&self) -> u64 {
        self.churn_since_replan
    }

    /// Requests currently pending admission (the defer queue). Bounded
    /// by the number of live sessions.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Records in the internal trace buffer (drained after every
    /// evaluation, so this is 0 between ticks).
    pub fn trace_len(&self) -> usize {
        self.trace.records().len()
    }

    /// Registers a qlang query; returns its session id.
    pub fn register(&mut self, source: &str, weight: f64) -> Result<u64> {
        let id = self
            .registry
            .register(source, weight, self.tick, &self.engine)?;
        self.churn_since_replan += 1;
        self.telemetry.registers += 1;
        Ok(id)
    }

    /// Removes a live session.
    pub fn unregister(&mut self, id: u64) -> Result<()> {
        self.registry.unregister(id)?;
        self.pending.remove(&id);
        self.churn_since_replan += 1;
        self.telemetry.unregisters += 1;
        Ok(())
    }

    /// Forces a full joint re-plan of the live set.
    pub fn replan(&mut self) -> Result<()> {
        self.registry.replan(&self.engine)?;
        self.telemetry.churn_replans += 1;
        self.churn_since_replan = 0;
        Ok(())
    }

    /// Serves `n` ticks and returns the batch's per-tick energies.
    pub fn run_ticks(&mut self, n: u64) -> Result<BatchReport> {
        let start_tick = self.tick;
        self.ensure_streams();
        let mut energies = Vec::with_capacity(n as usize);
        let mut scheduler = Scheduler::new(self.streams.len(), MemoryPolicy::ClearEachQuery);
        for _ in 0..n {
            if self.config.replan_after > 0
                && self.churn_since_replan >= self.config.replan_after
                && !self.registry.is_empty()
            {
                self.replan()?;
            }
            energies.push(self.run_one_tick(&mut scheduler)?);
        }
        Ok(BatchReport {
            start_tick,
            energies,
        })
    }

    fn run_one_tick(&mut self, scheduler: &mut Scheduler) -> Result<f64> {
        let t = self.tick;
        let ids: Vec<u64> = self.registry.sessions().map(|s| s.id).collect();
        let n = ids.len();

        // Every live session is due every tick; deferred requests keep
        // their original arrival tick for the admission tie-break.
        for &id in &ids {
            self.pending.entry(id).or_insert(t);
        }

        let n_streams = self.registry.catalog().len();
        let weights: Vec<f64> = self.registry.sessions().map(|s| s.weight).collect();
        let windows: Vec<Vec<u32>> = self
            .registry
            .sessions()
            .map(|s| s.sim.max_windows(n_streams))
            .collect();
        let costs = AdmissionCtx::stream_costs(self.registry.catalog());
        let pending_since: Vec<u64> = ids.iter().map(|id| self.pending[id]).collect();
        let due: Vec<usize> = (0..n).collect();
        let ctx = AdmissionCtx {
            weights: &weights,
            windows: &windows,
            costs: &costs,
            pending_since: &pending_since,
            shared: self.registry.shared(),
        };
        let admission = match self.config.budget {
            None => AcceptAll.admit(t, &due, &ctx),
            Some(b) => {
                let mut policy = if self.config.defer {
                    EnergyBudget::deferring(b)
                } else {
                    EnergyBudget::shedding(b)
                };
                policy.admit(t, &due, &ctx)
            }
        };

        let mut is_admitted = vec![false; n];
        for &q in &admission.admitted {
            is_admitted[q] = true;
        }
        let idx_of: BTreeMap<u64, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let run_order: Vec<u64> = self
            .registry
            .order()
            .iter()
            .copied()
            .filter(|id| idx_of.get(id).is_some_and(|&i| is_admitted[i]))
            .collect();

        let mut meter = EnergyMeter::new(EnergyModel::from_catalog(self.registry.catalog()));
        let traced = self.config.drift.is_some();
        if self.registry.shared() {
            let admitted_sims: Vec<&SimQuery> = run_order
                .iter()
                .map(|id| &self.registry.session(*id).expect("live id").sim)
                .collect();
            scheduler.begin_tick(&admitted_sims, &self.streams);
        }
        for &id in &run_order {
            let (value, records) = {
                let session = self.registry.session(id).expect("live id");
                if !self.registry.shared() {
                    scheduler.begin_tick(std::slice::from_ref(&session.sim), &self.streams);
                }
                let out = scheduler.run_query(
                    &session.sim,
                    &session.schedule,
                    &self.streams,
                    &mut meter,
                    traced.then_some(&mut self.trace),
                );
                let records: Vec<(paotr_core::leaf::LeafRef, bool)> = self
                    .trace
                    .records()
                    .iter()
                    .map(|r| (r.leaf, r.value))
                    .collect();
                self.trace.clear();
                (out.value, records)
            };
            self.telemetry.evals += 1;
            self.telemetry.truths += u64::from(value);
            self.pending.remove(&id);

            if let Some(cfg) = self.config.drift {
                self.registry.observe(id, &records)?;
                let session = self.registry.session(id).expect("live id");
                if session.drift.drifted(&cfg) {
                    let probs = session.drift.recalibrated(&cfg);
                    self.registry.recalibrate(id, probs, &self.engine)?;
                    self.telemetry.drift_replans += 1;
                }
            }
        }
        for &q in &admission.shed {
            self.pending.remove(&ids[q]);
            self.telemetry.shed += 1;
        }
        self.telemetry.deferred += admission.deferred.len() as u64;

        let tick_energy = meter.total_cost();
        self.telemetry.ticks += 1;
        self.telemetry.last_tick_energy = tick_energy;
        self.telemetry.total_energy += tick_energy;
        self.telemetry.max_tick_energy = self.telemetry.max_tick_energy.max(tick_energy);

        for (s, rng) in self.streams.iter_mut().zip(&mut self.stream_rngs) {
            s.advance_by(1, rng);
        }
        self.tick += 1;
        Ok(tick_energy)
    }

    /// Creates (and warms) streams for catalog entries that do not have
    /// one yet. Stream `k`'s data depends only on `(seed, k, tick)`.
    fn ensure_streams(&mut self) {
        while self.streams.len() < self.registry.catalog().len() {
            let k = self.streams.len() as u64;
            let mut rng =
                StdRng::seed_from_u64(seeds::mix(self.config.seed ^ seeds::mix(STREAM_SALT ^ k)));
            let mut stream = SimStream::new(
                SensorSource::new(SensorModel::Gaussian {
                    mean: 0.0,
                    std_dev: 1.0,
                }),
                self.config.max_window as usize,
            );
            stream.advance_by(
                self.config.max_window as usize + self.tick as usize,
                &mut rng,
            );
            self.streams.push(stream);
            self.stream_rngs.push(rng);
        }
    }

    /// The daemon's full persistent state as a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            version: crate::snapshot::SNAPSHOT_VERSION,
            config: self.config.clone(),
            tick: self.tick,
            next_id: self.registry.next_id(),
            churn_since_replan: self.churn_since_replan,
            shared: self.registry.shared(),
            catalog: (0..self.registry.catalog().len())
                .map(|k| {
                    let id = paotr_core::stream::StreamId(k);
                    (
                        self.registry.catalog().name(id),
                        self.registry.catalog().cost(id),
                    )
                })
                .collect(),
            sessions: self
                .registry
                .sessions()
                .map(|s| SessionSnap {
                    id: s.id,
                    source: s.source.clone(),
                    weight: s.weight,
                    registered_tick: s.registered_tick,
                    calibrated: s.drift.calibrated().to_vec(),
                    successes: s.drift.successes().to_vec(),
                    totals: s.drift.totals().to_vec(),
                    schedule: s
                        .schedule
                        .order()
                        .iter()
                        .map(|r| (r.term, r.leaf))
                        .collect(),
                    pending_since: self.pending.get(&s.id).copied(),
                })
                .collect(),
            order: self.registry.order().to_vec(),
            telemetry: self.telemetry.clone(),
        }
    }

    /// Restores a daemon from a snapshot: sessions are recompiled from
    /// their sources against the persisted catalog, calibration and
    /// schedules are adopted verbatim, and every stream is replayed to
    /// the snapshot tick. Counters continue exactly from their
    /// persisted values.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Daemon> {
        let (registry, pending) = snap.restore_registry()?;
        let mut daemon = Daemon {
            config: snap.config.clone(),
            engine: Engine::new(),
            registry,
            telemetry: snap.telemetry.clone(),
            tick: snap.tick,
            churn_since_replan: snap.churn_since_replan,
            pending,
            streams: Vec::new(),
            stream_rngs: Vec::new(),
            trace: TraceLog::default(),
        };
        daemon.ensure_streams();
        Ok(daemon)
    }

    /// Saves a snapshot to `path`.
    pub fn save_snapshot(&self, path: &str) -> Result<()> {
        self.snapshot().save(path).map_err(Error::Snapshot)
    }

    /// Restores a daemon from a snapshot file.
    pub fn load_snapshot(path: &str) -> Result<Daemon> {
        let snap = Snapshot::load(path).map_err(Error::Snapshot)?;
        Daemon::from_snapshot(&snap)
    }

    /// Handles one protocol line; returns the response line and whether
    /// a shutdown was requested.
    pub fn handle_line(&mut self, line: &str) -> (String, bool) {
        let cmd = match parse_command(line) {
            Ok(c) => c,
            Err(e) => return (error_response(&e), false),
        };
        let resp = match cmd {
            Command::Register { query, weight } => self
                .register(&query, weight)
                .map(|id| ok_response([("id", Json::from_u64(id))])),
            Command::Unregister { id } => self.unregister(id).map(|()| ok_response([])),
            Command::Tick { n } => self.run_ticks(n).map(|batch| {
                ok_response([
                    ("ticks", Json::from_u64(batch.ticks())),
                    ("tick", Json::from_u64(self.tick)),
                    ("energy", Json::Num(batch.total_energy())),
                    ("max_tick_energy", Json::Num(batch.max_energy())),
                ])
            }),
            Command::Stats => Ok(ok_response([
                ("tick", Json::from_u64(self.tick)),
                ("sessions", Json::from_u64(self.registry.len() as u64)),
                (
                    "headroom",
                    self.telemetry
                        .headroom(self.config.budget)
                        .map(Json::Num)
                        .unwrap_or(Json::Null),
                ),
                ("stats", self.telemetry.to_json()),
                (
                    "table",
                    Json::Str(
                        self.telemetry
                            .table(self.registry.len(), self.config.budget)
                            .to_markdown(),
                    ),
                ),
            ])),
            Command::Plan => {
                let digest = self.registry.plan_digest();
                let plan = json_parse(&digest).expect("digest is valid JSON");
                Ok(ok_response([("plan", plan)]))
            }
            Command::Replan => self.replan().map(|()| ok_response([])),
            Command::Snapshot { path: Some(path) } => self
                .save_snapshot(&path)
                .map(|()| ok_response([("path", Json::Str(path))])),
            Command::Snapshot { path: None } => {
                let doc = self.snapshot().to_json();
                Ok(ok_response([("snapshot", doc)]))
            }
            Command::Shutdown => return (ok_response([]), true),
        };
        match resp {
            Ok(r) => (r, false),
            Err(e) => (error_response(&e.to_string()), false),
        }
    }

    /// Serves the line protocol until EOF or a `shutdown` command.
    /// Returns true when shutdown was requested (vs. plain EOF).
    pub fn serve<R: BufRead, W: Write>(
        &mut self,
        reader: R,
        writer: &mut W,
    ) -> std::io::Result<bool> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (resp, stop) = self.handle_line(&line);
            writeln!(writer, "{resp}")?;
            writer.flush()?;
            if stop {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Serves connections from `listener` one at a time until a client
    /// sends `shutdown`. Session state persists across connections.
    pub fn serve_tcp(&mut self, listener: &std::net::TcpListener) -> std::io::Result<()> {
        for conn in listener.incoming() {
            let stream = conn?;
            let reader = BufReader::new(stream.try_clone()?);
            let mut writer = stream;
            if self.serve(reader, &mut writer)? {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: &str = "AVG(A,8) < 0.5 AND MAX(B,4) > 0.0";
    const Q2: &str = "(B < 0.2 AND C < 0.3) OR AVG(C,6) > 0.1";
    const Q3: &str = "LAST(A,2) < 0.5";

    fn daemon(budget: Option<f64>) -> Daemon {
        Daemon::new(Config {
            budget,
            ..Config::default()
        })
        .unwrap()
    }

    #[test]
    fn ticks_are_deterministic_under_one_seed() {
        let run = || {
            let mut d = daemon(None);
            d.register(Q1, 1.0).unwrap();
            d.register(Q2, 2.0).unwrap();
            d.run_ticks(25).unwrap().energies
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn budget_bounds_every_tick() {
        let mut d = daemon(Some(10.0));
        d.register(Q1, 1.0).unwrap();
        d.register(Q2, 2.0).unwrap();
        d.register(Q3, 0.5).unwrap();
        let batch = d.run_ticks(40).unwrap();
        for (i, &e) in batch.energies.iter().enumerate() {
            assert!(e <= 10.0 + 1e-9, "tick {i} spent {e}");
        }
        assert!(d.telemetry().deferred > 0, "the budget must actually bind");
    }

    #[test]
    fn unconstrained_daemon_serves_everything_every_tick() {
        let mut d = daemon(None);
        d.register(Q1, 1.0).unwrap();
        d.register(Q3, 1.0).unwrap();
        d.run_ticks(10).unwrap();
        let t = d.telemetry();
        assert_eq!(t.evals, 20);
        assert_eq!(t.shed + t.deferred, 0);
    }

    #[test]
    fn churn_triggers_a_full_replan_at_the_next_tick() {
        let mut d = Daemon::new(Config {
            replan_after: 2,
            ..Config::default()
        })
        .unwrap();
        d.register(Q1, 1.0).unwrap();
        d.register(Q2, 1.0).unwrap();
        assert_eq!(d.churn_since_replan(), 2);
        d.run_ticks(1).unwrap();
        assert_eq!(d.churn_since_replan(), 0);
        assert_eq!(d.telemetry().churn_replans, 1);
    }

    #[test]
    fn protocol_round_trip() {
        let mut d = daemon(None);
        let (r, stop) = d.handle_line(r#"{"cmd":"register","query":"AVG(A,4) < 0.0","weight":2}"#);
        assert!(!stop);
        assert_eq!(r, r#"{"ok":true,"id":0}"#);
        let (r, _) = d.handle_line(r#"{"cmd":"tick","n":3}"#);
        assert!(r.starts_with(r#"{"ok":true,"ticks":3,"tick":3,"#), "{r}");
        let (r, _) = d.handle_line(r#"{"cmd":"stats"}"#);
        assert!(r.contains(r#""sessions":1"#), "{r}");
        assert!(r.contains(r#""ticks":3"#), "{r}");
        let (r, _) = d.handle_line(r#"{"cmd":"plan"}"#);
        assert!(r.contains(r#""order":[0]"#), "{r}");
        let (r, _) = d.handle_line(r#"{"cmd":"unregister","id":0}"#);
        assert_eq!(r, r#"{"ok":true}"#);
        let (r, _) = d.handle_line(r#"{"cmd":"unregister","id":0}"#);
        assert!(r.contains(r#""ok":false"#), "{r}");
        let (r, stop) = d.handle_line(r#"{"cmd":"shutdown"}"#);
        assert_eq!(r, r#"{"ok":true}"#);
        assert!(stop);
    }

    #[test]
    fn serve_loop_answers_line_per_line_and_survives_garbage() {
        let script = concat!(
            "{\"cmd\":\"register\",\"query\":\"a < 1\"}\n",
            "this is not json\n",
            "\n",
            "{\"cmd\":\"tick\"}\n",
            "{\"cmd\":\"shutdown\"}\n",
        );
        let mut out = Vec::new();
        let mut d = daemon(None);
        let shutdown = d
            .serve(BufReader::new(script.as_bytes()), &mut out)
            .unwrap();
        assert!(shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 4, "one response per non-empty line");
        assert!(lines[0].contains(r#""ok":true"#));
        assert!(lines[1].contains(r#""ok":false"#));
    }

    #[test]
    fn tcp_serving_works_end_to_end() {
        use std::io::{BufRead, Write};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut d = daemon(None);
            d.serve_tcp(&listener).unwrap();
            d.telemetry().ticks
        });
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut ask = |line: &str| {
            writeln!(writer, "{line}").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            resp
        };
        assert!(ask(r#"{"cmd":"register","query":"AVG(x,3) > 0.0"}"#).contains(r#""id":0"#));
        assert!(ask(r#"{"cmd":"tick","n":5}"#).contains(r#""ok":true"#));
        assert!(ask(r#"{"cmd":"shutdown"}"#).contains(r#""ok":true"#));
        assert_eq!(server.join().unwrap(), 5);
    }
}
