//! Versioned on-disk daemon state.
//!
//! A snapshot captures everything the daemon cannot recompute: the
//! configuration, the union catalog, every session's source text,
//! calibration estimators, current schedule and pending request, the
//! joint execution order, and the telemetry counters. Sensor data is
//! *not* persisted — stream `k`'s items are a pure function of
//! `(seed, k, tick)`, so a restore replays each stream to the snapshot
//! tick and serving continues on the data the uninterrupted run would
//! have produced.
//!
//! The format is versioned single-line JSON. Rendering is
//! deterministic: parsing a rendered snapshot and rendering it again
//! reproduces the bytes exactly (pinned by test and by the committed
//! compatibility fixture). Corrupt or truncated input surfaces as a
//! typed [`SnapshotError`], never a panic.

use crate::daemon::Config;
use crate::json::{parse, Json, JsonError};
use crate::registry::{schedule_from_pairs, Session, SessionRegistry};
use crate::telemetry::Telemetry;
use crate::{Error, Result};
use paotr_core::stream::StreamCatalog;
use paotr_exec::DriftState;
use std::collections::BTreeMap;
use std::sync::Arc;
use stream_sim::{SimLeaf, SimQuery};

/// Current snapshot format version. Version 2 added the optional
/// `arrangements` section (and arrangement telemetry); daemons without
/// arrangements still write version 1, and this build reads both.
pub const SNAPSHOT_VERSION: u64 = 2;

/// Why a snapshot failed to save or load.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(String),
    /// The document is not valid JSON (corrupted or truncated file).
    Json(JsonError),
    /// The document is JSON but not a valid snapshot.
    Invalid(String),
    /// The document's version is not supported by this build.
    UnsupportedVersion(u64),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(m) => write!(f, "io: {m}"),
            SnapshotError::Json(e) => write!(f, "not valid JSON: {e}"),
            SnapshotError::Invalid(m) => write!(f, "invalid snapshot: {m}"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads 1..={SNAPSHOT_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One persisted session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnap {
    /// Session id.
    pub id: u64,
    /// The registered qlang source.
    pub source: String,
    /// Admission weight.
    pub weight: f64,
    /// Tick the session was registered at.
    pub registered_tick: u64,
    /// Calibrated per-leaf probabilities (flat term-major order).
    pub calibrated: Vec<f64>,
    /// Observed per-leaf successes.
    pub successes: Vec<u64>,
    /// Observed per-leaf totals.
    pub totals: Vec<u64>,
    /// The session's leaf schedule as `(term, leaf)` pairs.
    pub schedule: Vec<(usize, usize)>,
    /// Tick of the session's pending request, when one was in flight.
    pub pending_since: Option<u64>,
}

/// One persisted arrangement shell. Ring contents are *not* persisted:
/// stream data is a pure function of `(seed, k, tick)`, so a restore
/// refills each ring from the replayed streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrangeEntrySnap {
    /// Arranged stream index.
    pub stream: usize,
    /// Window spec (ring capacity).
    pub window: u32,
    /// Live reader refcount.
    pub readers: u32,
    /// Timestamp of the newest maintained item (0 = never maintained).
    pub maintained_to: u64,
    /// Store clock at which the reader count hit zero, while in grace.
    pub zero_reader_since: Option<u64>,
}

/// The persisted arrangement store: lifetime counters plus the live
/// arrangement shells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrangeSnap {
    /// Maintenance ticks seen (drives grace-period eviction).
    pub clock: u64,
    /// Reads served from maintained state.
    pub hits: u64,
    /// Items served from maintained state.
    pub hit_items: u64,
    /// Items fetched by maintenance.
    pub maintained_items: u64,
    /// Arrangements evicted after their grace period.
    pub evictions: u64,
    /// Live arrangements in `(stream, window)` order.
    pub entries: Vec<ArrangeEntrySnap>,
}

/// The daemon's complete persistent state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Daemon configuration.
    pub config: Config,
    /// Tick the snapshot was taken at.
    pub tick: u64,
    /// Next session id to assign (ids never recycle).
    pub next_id: u64,
    /// Churn events since the last full joint re-plan.
    pub churn_since_replan: u64,
    /// Whether execution shares one device memory per tick.
    pub shared: bool,
    /// The union catalog as `(name, cost)` in stream-id order.
    pub catalog: Vec<(String, f64)>,
    /// Live sessions in id order.
    pub sessions: Vec<SessionSnap>,
    /// Joint execution order (session ids).
    pub order: Vec<u64>,
    /// Lifetime counters.
    pub telemetry: Telemetry,
    /// Persistent arrangement store (version >= 2, arrangements on).
    pub arrangements: Option<ArrangeSnap>,
}

impl Snapshot {
    /// Serializes to the snapshot JSON document.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version", Json::from_u64(self.version)),
            ("config", self.config.to_json()),
            ("tick", Json::from_u64(self.tick)),
            ("next_id", Json::from_u64(self.next_id)),
            (
                "churn_since_replan",
                Json::from_u64(self.churn_since_replan),
            ),
            ("shared", Json::Bool(self.shared)),
            (
                "catalog",
                Json::Arr(
                    self.catalog
                        .iter()
                        .map(|(name, cost)| {
                            Json::obj([
                                ("name", Json::Str(name.clone())),
                                ("cost", Json::Num(*cost)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "sessions",
                Json::Arr(self.sessions.iter().map(session_to_json).collect()),
            ),
            ("order", Json::u64_arr(self.order.iter().copied())),
            ("telemetry", self.telemetry.to_json()),
        ];
        if let Some(a) = &self.arrangements {
            fields.push(("arrangements", arrange_to_json(a)));
        }
        Json::obj(fields)
    }

    /// The canonical one-line file rendering (trailing newline).
    /// Deterministic: `parse(render(s)).render() == render(s)`.
    pub fn render(&self) -> String {
        let mut s = self.to_json().to_string_compact();
        s.push('\n');
        s
    }

    /// Parses a rendered snapshot.
    pub fn parse(input: &str) -> std::result::Result<Snapshot, SnapshotError> {
        let v = parse(input.trim_end()).map_err(SnapshotError::Json)?;
        let invalid = |m: &str| SnapshotError::Invalid(m.to_string());
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| invalid("missing `version`"))?;
        if !(1..=SNAPSHOT_VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let config = Config::from_json(v.get("config").ok_or_else(|| invalid("missing `config`"))?)
            .map_err(SnapshotError::Invalid)?;
        let u = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| SnapshotError::Invalid(format!("missing or invalid `{k}`")))
        };
        let catalog = v
            .get("catalog")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("missing `catalog`"))?
            .iter()
            .map(|e| {
                Some((
                    e.get("name")?.as_str()?.to_string(),
                    e.get("cost")?.as_f64()?,
                ))
            })
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| invalid("malformed catalog entry"))?;
        let sessions = v
            .get("sessions")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("missing `sessions`"))?
            .iter()
            .map(session_from_json)
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let order = v
            .get("order")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("missing `order`"))?
            .iter()
            .map(|x| x.as_u64())
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| invalid("malformed order entry"))?;
        let telemetry = Telemetry::from_json(
            v.get("telemetry")
                .ok_or_else(|| invalid("missing `telemetry`"))?,
        )
        .map_err(SnapshotError::Invalid)?;
        let arrangements = match v.get("arrangements") {
            None | Some(Json::Null) => None,
            Some(a) => Some(arrange_from_json(a)?),
        };
        Ok(Snapshot {
            version,
            config,
            tick: u("tick")?,
            next_id: u("next_id")?,
            churn_since_replan: u("churn_since_replan")?,
            shared: v
                .get("shared")
                .and_then(Json::as_bool)
                .ok_or_else(|| invalid("missing `shared`"))?,
            catalog,
            sessions,
            order,
            telemetry,
            arrangements,
        })
    }

    /// Writes the rendered snapshot to `path` (write-then-rename, so a
    /// crash never leaves a truncated snapshot in place). An existing
    /// snapshot is first rotated to `<path>.1` as the last-good
    /// generation, so even if the new primary is later corrupted on
    /// disk, [`Snapshot::load_with_fallback`] still has a complete
    /// document to restore from.
    pub fn save(&self, path: &str) -> std::result::Result<(), SnapshotError> {
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, self.render())
            .map_err(|e| SnapshotError::Io(format!("write {tmp}: {e}")))?;
        if std::fs::metadata(path).is_ok() {
            let previous = format!("{path}.1");
            std::fs::rename(path, &previous)
                .map_err(|e| SnapshotError::Io(format!("rotate to {previous}: {e}")))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(format!("rename to {path}: {e}")))
    }

    /// Reads and parses a snapshot file.
    pub fn load(path: &str) -> std::result::Result<Snapshot, SnapshotError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SnapshotError::Io(format!("read {path}: {e}")))?;
        Snapshot::parse(&text)
    }

    /// Loads `path`, falling back to the rotated last-good generation
    /// `<path>.1` when the primary is missing, corrupt or truncated.
    /// Returns the snapshot and whether the fallback was used; when
    /// both generations fail, the *primary's* error is reported.
    pub fn load_with_fallback(path: &str) -> std::result::Result<(Snapshot, bool), SnapshotError> {
        match Snapshot::load(path) {
            Ok(snap) => Ok((snap, false)),
            Err(primary) => match Snapshot::load(&format!("{path}.1")) {
                Ok(snap) => Ok((snap, true)),
                Err(_) => Err(primary),
            },
        }
    }

    /// Rebuilds the session registry (and the pending-request map) this
    /// snapshot describes. Every session's source is recompiled against
    /// the persisted catalog; calibration and schedules are adopted
    /// verbatim after validation.
    pub(crate) fn restore_registry(&self) -> Result<(SessionRegistry, BTreeMap<u64, u64>)> {
        let mut catalog = StreamCatalog::new();
        for (name, cost) in &self.catalog {
            catalog
                .add_named(name, *cost)
                .map_err(|e| SnapshotError::Invalid(format!("catalog: {e}")))?;
        }
        let mut sessions = Vec::with_capacity(self.sessions.len());
        let mut pending = BTreeMap::new();
        for snap in &self.sessions {
            let session = restore_session(snap, &catalog)?;
            if let Some(t) = snap.pending_since {
                pending.insert(snap.id, t);
            }
            sessions.push(session);
        }
        let registry = SessionRegistry::from_restored_parts(crate::registry::RestoredParts {
            planner: self.config.planner.clone(),
            max_sessions: self.config.max_sessions,
            max_window: self.config.max_window,
            shared: self.shared,
            catalog,
            sessions,
            order: self.order.clone(),
            next_id: self.next_id,
        })?;
        Ok((registry, pending))
    }
}

fn arrange_to_json(a: &ArrangeSnap) -> Json {
    Json::obj([
        ("clock", Json::from_u64(a.clock)),
        ("hits", Json::from_u64(a.hits)),
        ("hit_items", Json::from_u64(a.hit_items)),
        ("maintained_items", Json::from_u64(a.maintained_items)),
        ("evictions", Json::from_u64(a.evictions)),
        (
            "entries",
            Json::Arr(
                a.entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("stream", Json::from_u64(e.stream as u64)),
                            ("window", Json::from_u64(u64::from(e.window))),
                            ("readers", Json::from_u64(u64::from(e.readers))),
                            ("maintained_to", Json::from_u64(e.maintained_to)),
                            (
                                "zero_reader_since",
                                e.zero_reader_since
                                    .map(Json::from_u64)
                                    .unwrap_or(Json::Null),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn arrange_from_json(v: &Json) -> std::result::Result<ArrangeSnap, SnapshotError> {
    let u = |k: &str| {
        v.get(k).and_then(Json::as_u64).ok_or_else(|| {
            SnapshotError::Invalid(format!("arrangements: missing or invalid `{k}`"))
        })
    };
    let entries = v
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| SnapshotError::Invalid("arrangements: missing `entries`".into()))?
        .iter()
        .map(|e| {
            let eu = |k: &str| e.get(k).and_then(Json::as_u64);
            let zero_reader_since = match e.get("zero_reader_since") {
                None | Some(Json::Null) => None,
                Some(t) => Some(t.as_u64()?),
            };
            Some(ArrangeEntrySnap {
                stream: eu("stream")? as usize,
                window: u32::try_from(eu("window")?).ok()?,
                readers: u32::try_from(eu("readers")?).ok()?,
                maintained_to: eu("maintained_to")?,
                zero_reader_since,
            })
        })
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| SnapshotError::Invalid("arrangements: malformed entry".into()))?;
    Ok(ArrangeSnap {
        clock: u("clock")?,
        hits: u("hits")?,
        hit_items: u("hit_items")?,
        maintained_items: u("maintained_items")?,
        evictions: u("evictions")?,
        entries,
    })
}

fn session_to_json(s: &SessionSnap) -> Json {
    Json::obj([
        ("id", Json::from_u64(s.id)),
        ("source", Json::Str(s.source.clone())),
        ("weight", Json::Num(s.weight)),
        ("registered_tick", Json::from_u64(s.registered_tick)),
        ("calibrated", Json::f64_arr(s.calibrated.iter().copied())),
        ("successes", Json::u64_arr(s.successes.iter().copied())),
        ("totals", Json::u64_arr(s.totals.iter().copied())),
        (
            "schedule",
            Json::Arr(
                s.schedule
                    .iter()
                    .map(|&(t, l)| Json::u64_arr([t as u64, l as u64]))
                    .collect(),
            ),
        ),
        (
            "pending_since",
            s.pending_since.map(Json::from_u64).unwrap_or(Json::Null),
        ),
    ])
}

fn session_from_json(v: &Json) -> std::result::Result<SessionSnap, SnapshotError> {
    let invalid = |m: String| SnapshotError::Invalid(m);
    let u = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| invalid(format!("session: missing or invalid `{k}`")))
    };
    let f64s = |k: &str| {
        v.get(k)
            .and_then(Json::as_arr)
            .and_then(|xs| xs.iter().map(Json::as_f64).collect::<Option<Vec<_>>>())
            .ok_or_else(|| invalid(format!("session: missing or invalid `{k}`")))
    };
    let u64s = |k: &str| {
        v.get(k)
            .and_then(Json::as_arr)
            .and_then(|xs| xs.iter().map(Json::as_u64).collect::<Option<Vec<_>>>())
            .ok_or_else(|| invalid(format!("session: missing or invalid `{k}`")))
    };
    let schedule = v
        .get("schedule")
        .and_then(Json::as_arr)
        .and_then(|xs| {
            xs.iter()
                .map(|pair| {
                    let p = pair.as_arr()?;
                    if p.len() != 2 {
                        return None;
                    }
                    Some((p[0].as_u64()? as usize, p[1].as_u64()? as usize))
                })
                .collect::<Option<Vec<_>>>()
        })
        .ok_or_else(|| invalid("session: missing or invalid `schedule`".into()))?;
    let pending_since = match v.get("pending_since") {
        None | Some(Json::Null) => None,
        Some(t) => Some(
            t.as_u64()
                .ok_or_else(|| invalid("session: invalid `pending_since`".into()))?,
        ),
    };
    Ok(SessionSnap {
        id: u("id")?,
        source: v
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("session: missing `source`".into()))?
            .to_string(),
        weight: v
            .get("weight")
            .and_then(Json::as_f64)
            .ok_or_else(|| invalid("session: missing `weight`".into()))?,
        registered_tick: u("registered_tick")?,
        calibrated: f64s("calibrated")?,
        successes: u64s("successes")?,
        totals: u64s("totals")?,
        schedule,
        pending_since,
    })
}

/// Recompiles one persisted session against the restored catalog and
/// adopts its calibration and schedule after validating both.
fn restore_session(snap: &SessionSnap, catalog: &StreamCatalog) -> Result<Session> {
    let fail = |m: String| Error::Snapshot(SnapshotError::Invalid(m));
    let expr = paotr_qlang::parse(&snap.source).map_err(|e| {
        fail(format!(
            "session {}: unparseable source: {}",
            snap.id, e.message
        ))
    })?;
    let compiled = paotr_qlang::compile(&expr, &std::collections::HashMap::new())
        .map_err(|e| fail(format!("session {}: {}", snap.id, e.message)))?;
    let local_sim = paotr_qlang::to_sim_query(&expr, &compiled)
        .ok_or_else(|| fail(format!("session {}: source is not DNF-shaped", snap.id)))?;
    let mut map = Vec::with_capacity(compiled.catalog.len());
    for k in 0..compiled.catalog.len() {
        let name = compiled.catalog.name(paotr_core::stream::StreamId(k));
        let global = catalog.find(&name).ok_or_else(|| {
            fail(format!(
                "session {}: stream `{name}` missing from catalog",
                snap.id
            ))
        })?;
        map.push(global);
    }
    let sim = SimQuery::new(
        local_sim
            .terms()
            .iter()
            .map(|term| {
                term.iter()
                    .map(|l| SimLeaf {
                        stream: map[l.stream.0],
                        predicate: l.predicate,
                    })
                    .collect()
            })
            .collect(),
    )
    .map_err(|e| fail(format!("session {}: {e}", snap.id)))?;

    if snap.calibrated.len() != sim.num_leaves() {
        return Err(fail(format!(
            "session {}: calibration covers {} leaves, query has {}",
            snap.id,
            snap.calibrated.len(),
            sim.num_leaves()
        )));
    }
    if snap.calibrated.iter().any(|p| !p.is_finite()) {
        return Err(fail(format!(
            "session {}: non-finite calibrated probability",
            snap.id
        )));
    }
    let tree = sim.skeleton(&snap.calibrated);
    let mut drift = DriftState::new(&tree);
    drift
        .restore(
            snap.calibrated.clone(),
            snap.successes.clone(),
            snap.totals.clone(),
        )
        .map_err(|e| fail(format!("session {}: {e}", snap.id)))?;
    let schedule = schedule_from_pairs(&snap.schedule, &tree)
        .map_err(|e| fail(format!("session {}: {e}", snap.id)))?;
    Ok(Session {
        id: snap.id,
        name: format!("c{}", snap.id),
        source: snap.source.clone(),
        weight: snap.weight,
        registered_tick: snap.registered_tick,
        sim,
        tree,
        schedule: Arc::new(schedule),
        drift,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::Daemon;

    fn populated_daemon() -> Daemon {
        let mut d = Daemon::new(Config {
            budget: Some(15.0),
            ..Config::default()
        })
        .unwrap();
        d.register("AVG(A,8) < 0.5 AND MAX(B,4) > 0.0", 1.0)
            .unwrap();
        d.register("(B < 0.2 AND C < 0.3) OR AVG(C,6) > 0.1", 2.0)
            .unwrap();
        d.register("LAST(A,2) < 0.5 @ 0.3", 0.5).unwrap();
        d.run_ticks(30).unwrap();
        d.unregister(1).unwrap();
        d.run_ticks(5).unwrap();
        d
    }

    #[test]
    fn render_parse_render_is_byte_identical() {
        let snap = populated_daemon().snapshot();
        let once = snap.render();
        let reparsed = Snapshot::parse(&once).unwrap();
        assert_eq!(reparsed, snap);
        assert_eq!(reparsed.render(), once, "round trip must be byte-identical");
    }

    #[test]
    fn restore_continues_counters_exactly() {
        let d = populated_daemon();
        let before = d.telemetry().clone();
        let tick = d.tick();
        let restored = Daemon::from_snapshot(&d.snapshot()).unwrap();
        assert_eq!(restored.telemetry(), &before);
        assert_eq!(restored.tick(), tick);
        assert_eq!(restored.registry().len(), 2);
        assert_eq!(restored.registry().order(), d.registry().order());
        assert_eq!(
            restored.registry().plan_digest(),
            d.registry().plan_digest(),
            "plan state survives the round trip"
        );
    }

    #[test]
    fn restored_daemon_serves_the_same_data_as_the_uninterrupted_run() {
        let mut d = populated_daemon();
        let mut restored = Daemon::from_snapshot(&d.snapshot()).unwrap();
        let a = d.run_ticks(20).unwrap();
        let b = restored.run_ticks(20).unwrap();
        assert_eq!(a, b, "restore must replay streams to the snapshot tick");
    }

    fn populated_arranged_daemon() -> Daemon {
        let mut d = Daemon::new(Config {
            budget: Some(15.0),
            arrange: Some(stream_sim::ArrangeConfig::default()),
            ..Config::default()
        })
        .unwrap();
        d.register("AVG(A,8) < 0.5 AND MAX(B,4) > 0.0", 1.0)
            .unwrap();
        d.register("(B < 0.2 AND C < 0.3) OR AVG(C,6) > 0.1", 2.0)
            .unwrap();
        d.register("LAST(A,2) < 0.5 @ 0.3", 0.5).unwrap();
        d.run_ticks(30).unwrap();
        d.unregister(1).unwrap();
        d.run_ticks(5).unwrap();
        d
    }

    #[test]
    fn arranged_snapshot_round_trips_and_replays_tick_for_tick() {
        let mut d = populated_arranged_daemon();
        let snap = d.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        let arr = snap.arrangements.as_ref().expect("store persisted");
        assert!(!arr.entries.is_empty());
        assert!(arr.maintained_items > 0);
        let once = snap.render();
        let reparsed = Snapshot::parse(&once).unwrap();
        assert_eq!(reparsed, snap);
        assert_eq!(reparsed.render(), once);

        // The PR's replay bar: a restore with live arrangements serves
        // the exact energies of the uninterrupted run, and the store
        // counters march in lockstep.
        let mut restored = Daemon::from_snapshot(&snap).unwrap();
        let a = d.run_ticks(20).unwrap();
        let b = restored.run_ticks(20).unwrap();
        assert_eq!(a, b, "arranged replay must be tick-for-tick identical");
        assert_eq!(
            d.arrangements().unwrap().stats(),
            restored.arrangements().unwrap().stats()
        );
        assert_eq!(d.telemetry(), restored.telemetry());
    }

    #[test]
    fn arranged_snapshot_with_wrong_refcounts_fails_typed() {
        let snap = populated_arranged_daemon().snapshot();
        let mut bad = snap.clone();
        bad.arrangements.as_mut().unwrap().entries[0].readers += 1;
        assert!(matches!(
            Daemon::from_snapshot(&bad),
            Err(Error::Snapshot(SnapshotError::Invalid(_)))
        ));
        // Arrangements persisted while the config has them off.
        let mut off = snap;
        off.config.arrange = None;
        assert!(matches!(
            Daemon::from_snapshot(&off),
            Err(Error::Snapshot(SnapshotError::Invalid(_)))
        ));
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let d = populated_daemon();
        let path = std::env::temp_dir().join("paotr_serverd_snapshot_test.json");
        let path = path.to_str().unwrap();
        d.save_snapshot(path).unwrap();
        let restored = Daemon::load_snapshot(path).unwrap();
        assert_eq!(restored.telemetry(), d.telemetry());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_and_truncated_snapshots_fail_typed_not_panicking() {
        let good = populated_daemon().snapshot().render();
        // Truncations at every length must never panic.
        for cut in 0..good.len() {
            let _ = Snapshot::parse(&good[..cut]);
        }
        assert!(matches!(
            Snapshot::parse(&good[..good.len() / 2]),
            Err(SnapshotError::Json(_) | SnapshotError::Invalid(_))
        ));
        assert!(matches!(
            Snapshot::parse("not json at all"),
            Err(SnapshotError::Json(_))
        ));
        let wrong_version = good.replace("\"version\":1", "\"version\":99");
        assert!(matches!(
            Snapshot::parse(&wrong_version),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
        // A schedule that is not a permutation of the tree's leaves.
        let mut bad_schedule = Snapshot::parse(&good).unwrap();
        bad_schedule.sessions[0].schedule = vec![(0, 0), (0, 0)];
        assert!(matches!(
            Daemon::from_snapshot(&bad_schedule),
            Err(Error::Snapshot(SnapshotError::Invalid(_)))
        ));
        // Calibration state that does not fit the query.
        let mut bad_calib = Snapshot::parse(&good).unwrap();
        bad_calib.sessions[0].calibrated = vec![0.5];
        assert!(matches!(
            Daemon::from_snapshot(&bad_calib),
            Err(Error::Snapshot(SnapshotError::Invalid(_)))
        ));
        assert!(matches!(
            Snapshot::load("/nonexistent/paotr.snap"),
            Err(SnapshotError::Io(_))
        ));
    }
}
