//! Simulated data streams.
//!
//! A [`SimStream`] couples a sensor generator with a bounded history ring:
//! the sensor produces one item per tick (on the sensor platform itself —
//! SHIMMER-class devices buffer locally), and the query device *pulls* the
//! most recent `n` items on demand, paying per item. `recent(n)` is the
//! pull interface: it returns the last `n` items, newest first, exactly
//! the "t-th data item" indexing of Section IV-A (the 1st item is the most
//! recent).

use crate::source::SensorSource;
use rand::Rng;
use std::collections::VecDeque;

/// A sensor stream with bounded on-sensor history.
#[derive(Debug, Clone)]
pub struct SimStream {
    source: SensorSource,
    history: VecDeque<f64>,
    capacity: usize,
    produced: u64,
}

impl SimStream {
    /// Creates a stream that retains the last `capacity` items.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(source: SensorSource, capacity: usize) -> SimStream {
        assert!(capacity > 0, "streams must retain at least one item");
        SimStream {
            source,
            history: VecDeque::with_capacity(capacity),
            capacity,
            produced: 0,
        }
    }

    /// Produces the next item (one tick of the sensor).
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.history.len() == self.capacity {
            self.history.pop_front();
        }
        let v = self.source.next_value(rng);
        self.history.push_back(v);
        self.produced += 1;
    }

    /// Timestamp of the most recent item (items are stamped 1, 2, ...;
    /// 0 means nothing has been produced yet).
    pub fn now(&self) -> u64 {
        self.produced
    }

    /// Produces `n` items.
    pub fn advance_by<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) {
        for _ in 0..n {
            self.advance(rng);
        }
    }

    /// Number of items currently buffered.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True when no item has been produced yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The last `n` items, newest first (the pull interface).
    ///
    /// Returns `None` when fewer than `n` items exist — predicates on a
    /// cold stream cannot be evaluated yet.
    pub fn recent(&self, n: usize) -> Option<Vec<f64>> {
        if self.history.len() < n {
            return None;
        }
        Some(self.history.iter().rev().take(n).copied().collect())
    }

    /// The most recent item, if any.
    pub fn latest(&self) -> Option<f64> {
        self.history.back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SensorModel;
    use rand::prelude::*;

    fn counting_stream(capacity: usize) -> (SimStream, StdRng) {
        // Sine with zero amplitude = constant; we instead use a walk with
        // zero step to keep values distinguishable? Use Constant and rely
        // on length logic; separate tests use varying sources.
        (
            SimStream::new(SensorSource::new(SensorModel::Constant(1.0)), capacity),
            StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn ring_buffer_caps_history() {
        let (mut s, mut rng) = counting_stream(3);
        s.advance_by(10, &mut rng);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn recent_returns_newest_first() {
        let mut s = SimStream::new(
            SensorSource::new(SensorModel::Sine {
                offset: 0.0,
                amplitude: 1.0,
                period: 4.0,
                noise: 0.0,
            }),
            8,
        );
        let mut rng = StdRng::seed_from_u64(2);
        s.advance_by(3, &mut rng); // sin(0)=0, sin(pi/2)=1, sin(pi)~0
        let r = s.recent(3).unwrap();
        assert!((r[0] - 0.0).abs() < 1e-9, "newest first: {r:?}");
        assert!((r[1] - 1.0).abs() < 1e-9);
        assert!((r[2] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn recent_on_cold_stream_is_none() {
        let (mut s, mut rng) = counting_stream(5);
        assert!(s.recent(1).is_none());
        s.advance(&mut rng);
        assert!(s.recent(1).is_some());
        assert!(s.recent(2).is_none());
    }

    #[test]
    fn latest_tracks_last_item() {
        let (mut s, mut rng) = counting_stream(2);
        assert!(s.latest().is_none());
        s.advance(&mut rng);
        assert_eq!(s.latest(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_capacity_rejected() {
        let _ = SimStream::new(SensorSource::new(SensorModel::Constant(0.0)), 0);
    }
}
