//! Execution traces and probability calibration.
//!
//! The paper assumes leaf success probabilities are "estimated based on
//! historical traces obtained from previous query evaluations". This
//! module closes that loop: the engine appends a [`LeafRecord`] per leaf
//! evaluation, and [`estimate_probabilities`] turns a trace into per-leaf
//! success-rate estimates (with add-one smoothing so unobserved leaves get
//! a neutral prior rather than a degenerate 0 or 1).

use crate::query::SimQuery;
use paotr_core::leaf::LeafRef;
use paotr_core::tree::DnfTree;

/// One leaf evaluation, as observed by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafRecord {
    /// Stream clock at evaluation time.
    pub tick: u64,
    /// Which leaf was evaluated.
    pub leaf: LeafRef,
    /// The predicate's truth value.
    pub value: bool,
    /// Items actually paid for (after memory reuse).
    pub items_paid: u32,
    /// Energy paid.
    pub cost: f64,
}

/// An append-only log of leaf evaluations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    records: Vec<LeafRecord>,
}

impl TraceLog {
    /// Appends one record.
    pub fn push(&mut self, r: LeafRecord) {
        self.records.push(r);
    }

    /// All records, in evaluation order.
    pub fn records(&self) -> &[LeafRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no leaf has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total energy recorded.
    pub fn total_cost(&self) -> f64 {
        self.records.iter().map(|r| r.cost).sum()
    }

    /// Drops every record, keeping the allocation. Long-running loops
    /// that only inspect the records of the evaluation just executed
    /// (e.g. drift estimation in the serving loop) call this to keep
    /// the log bounded.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// Per-leaf success-probability estimates from a trace, flat term-major
/// order, with add-one (Laplace) smoothing:
/// `(successes + 1) / (observations + 2)`.
pub fn estimate_probabilities(log: &TraceLog, query: &SimQuery) -> Vec<f64> {
    let refs = query.leaf_refs();
    let index_of = |r: LeafRef| -> usize {
        refs.iter()
            .position(|&x| x == r)
            .expect("trace references a query leaf")
    };
    let mut successes = vec![0u64; refs.len()];
    let mut totals = vec![0u64; refs.len()];
    for rec in log.records() {
        let i = index_of(rec.leaf);
        totals[i] += 1;
        successes[i] += u64::from(rec.value);
    }
    successes
        .iter()
        .zip(&totals)
        .map(|(&s, &n)| (s as f64 + 1.0) / (n as f64 + 2.0))
        .collect()
}

/// Convenience: calibrated scheduling skeleton straight from a trace.
pub fn calibrated_skeleton(log: &TraceLog, query: &SimQuery) -> DnfTree {
    query.skeleton(&estimate_probabilities(log, query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Comparator, Predicate, WindowOp};
    use crate::query::SimLeaf;
    use paotr_core::stream::StreamId;

    fn query() -> SimQuery {
        let mk = |s: usize, w: u32| SimLeaf {
            stream: StreamId(s),
            predicate: Predicate::new(WindowOp::Avg, w, Comparator::Lt, 70.0),
        };
        SimQuery::new(vec![vec![mk(0, 5), mk(1, 4)], vec![mk(0, 2)]]).unwrap()
    }

    fn rec(leaf: LeafRef, value: bool) -> LeafRecord {
        LeafRecord {
            tick: 0,
            leaf,
            value,
            items_paid: 1,
            cost: 1.0,
        }
    }

    #[test]
    fn estimates_match_observed_rates_with_smoothing() {
        let q = query();
        let mut log = TraceLog::default();
        // leaf (0,0): 3 of 4 true -> (3+1)/(4+2) = 2/3
        for v in [true, true, true, false] {
            log.push(rec(LeafRef::new(0, 0), v));
        }
        // leaf (1,0): never observed -> 1/2
        let probs = estimate_probabilities(&log, &q);
        assert!((probs[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((probs[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn calibrated_skeleton_has_query_shape() {
        let q = query();
        let log = TraceLog::default();
        let t = calibrated_skeleton(&log, &q);
        assert_eq!(t.num_terms(), 2);
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.leaf(LeafRef::new(0, 1)).items, 4);
        // uninformed prior everywhere
        assert!(t
            .leaves()
            .all(|(_, l)| (l.prob.value() - 0.5).abs() < 1e-12));
    }

    #[test]
    fn trace_accumulates_cost() {
        let mut log = TraceLog::default();
        log.push(rec(LeafRef::new(0, 0), true));
        log.push(rec(LeafRef::new(0, 1), false));
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_cost(), 2.0);
    }
}
