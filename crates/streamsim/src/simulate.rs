//! End-to-end continuous-monitoring simulation — the paper's deployment
//! pipeline.
//!
//! [`run_pipeline`] reproduces the full loop a smartphone would run:
//!
//! 1. **warm-up**: evaluate the query for a number of ticks with a naive
//!    schedule, recording a trace;
//! 2. **calibrate**: estimate leaf probabilities from the trace and build
//!    the scheduling skeleton;
//! 3. **schedule**: apply any scheduling policy — typically a
//!    [`paotr_core::plan::Engine`] plan or one planner from the
//!    [`paotr_core::plan::PlannerRegistry`];
//! 4. **measure**: run the query with the optimized schedule and report
//!    energy statistics.
//!
//! Comparing the measured energy across scheduling policies is the
//! system-level counterpart of the paper's expected-cost comparisons.

use crate::device::MemoryPolicy;
use crate::energy::EnergyModel;
use crate::engine::Engine;
use crate::query::SimQuery;
use crate::source::SensorSource;
use crate::stream::SimStream;
use crate::trace::{calibrated_skeleton, TraceLog};
use paotr_core::schedule::DnfSchedule;
use paotr_core::stream::StreamCatalog;
use paotr_core::tree::DnfTree;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Query evaluations in the calibration phase.
    pub warmup_evaluations: usize,
    /// Query evaluations in the measurement phase.
    pub measure_evaluations: usize,
    /// Sensor ticks between consecutive query evaluations.
    pub ticks_between: usize,
    /// Device memory policy.
    pub policy: MemoryPolicy,
    /// RNG seed for the sensor data.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            warmup_evaluations: 200,
            measure_evaluations: 1000,
            ticks_between: 1,
            policy: MemoryPolicy::ClearEachQuery,
            seed: 0,
        }
    }
}

/// Measurement-phase statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Mean energy per query evaluation in the measurement phase.
    pub mean_cost: f64,
    /// Fraction of evaluations where the query was TRUE.
    pub truth_rate: f64,
    /// Total items pulled per stream in the measurement phase.
    pub items_pulled: Vec<u64>,
    /// The calibrated skeleton used for scheduling.
    pub skeleton: DnfTree,
    /// The schedule the policy chose.
    pub schedule: DnfSchedule,
    /// Empirical per-leaf success-rate estimates (flat order).
    pub estimated_probs: Vec<f64>,
}

/// Runs the calibrate-then-measure pipeline. `make_schedule` receives the
/// calibrated skeleton and the catalog and returns the schedule to use in
/// the measurement phase.
///
/// # Panics
/// Panics if the streams cannot satisfy the query's windows (the stream
/// `capacity` passed here must be at least each stream's largest window,
/// which `run_pipeline` guarantees internally).
pub fn run_pipeline(
    query: &SimQuery,
    models: Vec<SensorSource>,
    catalog: &StreamCatalog,
    config: PipelineConfig,
    make_schedule: impl FnOnce(&DnfTree, &StreamCatalog) -> DnfSchedule,
) -> PipelineReport {
    assert_eq!(models.len(), catalog.len(), "one sensor model per stream");
    let horizons = query.max_windows(catalog.len());
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Streams retain enough history for the largest window.
    let mut streams: Vec<SimStream> = models
        .into_iter()
        .zip(&horizons)
        .map(|(m, &w)| SimStream::new(m, (w.max(1) as usize) * 2))
        .collect();
    // Warm every stream up to its window.
    let max_w = horizons.iter().copied().max().unwrap_or(1).max(1) as usize;
    for s in &mut streams {
        s.advance_by(max_w, &mut rng);
    }

    let energy = EnergyModel::from_catalog(catalog);
    let mut engine = Engine::new(catalog.len(), config.policy, energy.clone());

    // Phase 1: warm-up with the declaration-order schedule, tracing.
    let naive = DnfSchedule::from_order_unchecked(query.leaf_refs());
    let mut log = TraceLog::default();
    for _ in 0..config.warmup_evaluations {
        engine.evaluate(query, &naive, &streams, Some(&mut log));
        for s in &mut streams {
            s.advance_by(config.ticks_between, &mut rng);
        }
    }

    // Phase 2: calibrate.
    let estimated_probs = crate::trace::estimate_probabilities(&log, query);
    let skeleton = calibrated_skeleton(&log, query);

    // Phase 3: schedule.
    let schedule = make_schedule(&skeleton, catalog);

    // Phase 4: measure with a fresh meter.
    let mut engine = Engine::new(catalog.len(), config.policy, energy);
    let mut truths = 0usize;
    let mut items = vec![0u64; catalog.len()];
    for _ in 0..config.measure_evaluations {
        let out = engine.evaluate(query, &schedule, &streams, None);
        truths += usize::from(out.value);
        for (acc, &n) in items.iter_mut().zip(&out.items_pulled) {
            *acc += u64::from(n);
        }
        for s in &mut streams {
            s.advance_by(config.ticks_between, &mut rng);
        }
    }

    PipelineReport {
        mean_cost: engine.total_cost() / config.measure_evaluations.max(1) as f64,
        truth_rate: truths as f64 / config.measure_evaluations.max(1) as f64,
        items_pulled: items,
        skeleton,
        schedule,
        estimated_probs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Comparator, Predicate, WindowOp};
    use crate::query::SimLeaf;
    use crate::source::SensorModel;
    use paotr_core::algo::heuristics::Heuristic;
    use paotr_core::stream::StreamId;

    /// Heart-rate-style scenario: HR sine around 80 bpm, SPO2 walk ~0.97.
    fn telehealth_query() -> (SimQuery, Vec<SensorSource>, StreamCatalog) {
        let hr = SensorModel::Sine {
            offset: 80.0,
            amplitude: 25.0,
            period: 97.0,
            noise: 3.0,
        };
        let spo2 = SensorModel::RandomWalk {
            start: 0.97,
            step: 0.004,
            min: 0.85,
            max: 1.0,
        };
        let q = SimQuery::new(vec![
            vec![SimLeaf {
                stream: StreamId(0),
                predicate: Predicate::new(WindowOp::Avg, 5, Comparator::Gt, 100.0),
            }],
            vec![
                SimLeaf {
                    stream: StreamId(0),
                    predicate: Predicate::new(WindowOp::Avg, 3, Comparator::Lt, 60.0),
                },
                SimLeaf {
                    stream: StreamId(1),
                    predicate: Predicate::new(WindowOp::Min, 4, Comparator::Lt, 0.92),
                },
            ],
        ])
        .unwrap();
        let cat = StreamCatalog::from_costs([1.0, 4.0]).unwrap();
        (q, vec![SensorSource::new(hr), SensorSource::new(spo2)], cat)
    }

    #[test]
    fn pipeline_produces_calibrated_schedule_and_stats() {
        let (q, models, cat) = telehealth_query();
        // Plan through the engine facade: the calibrated skeleton is a
        // shared DNF tree, so the default planner is the paper's best
        // heuristic.
        let engine = paotr_core::plan::Engine::new();
        let report = run_pipeline(
            &q,
            models,
            &cat,
            PipelineConfig {
                warmup_evaluations: 100,
                measure_evaluations: 200,
                ..Default::default()
            },
            |tree, cat| {
                let plan = engine.plan(tree, cat).expect("DNF skeletons always plan");
                plan.body
                    .to_dnf_schedule(tree)
                    .expect("schedule-shaped plan")
            },
        );
        assert!(report.mean_cost > 0.0);
        assert!((0.0..=1.0).contains(&report.truth_rate));
        assert_eq!(report.schedule.len(), 3);
        assert_eq!(report.estimated_probs.len(), 3);
        // HR > 100 happens sometimes (sine peaks at ~105): estimate must
        // be strictly inside (0,1) thanks to smoothing.
        assert!(report.estimated_probs.iter().all(|p| *p > 0.0 && *p < 1.0));
    }

    #[test]
    fn optimized_schedule_is_no_worse_than_naive_on_energy() {
        let (q, models, cat) = telehealth_query();
        let cfg = PipelineConfig {
            warmup_evaluations: 150,
            measure_evaluations: 400,
            ..Default::default()
        };
        let naive = run_pipeline(&q, models.clone(), &cat, cfg, |tree, _| {
            DnfSchedule::from_order_unchecked(tree.leaf_refs().collect())
        });
        let optimized = run_pipeline(&q, models, &cat, cfg, |tree, cat| {
            Heuristic::AndIncCOverPDynamic.schedule(tree, cat)
        });
        // Same data (same seed): the optimized schedule should not spend
        // meaningfully more energy than declaration order.
        assert!(
            optimized.mean_cost <= naive.mean_cost * 1.05,
            "optimized {} vs naive {}",
            optimized.mean_cost,
            naive.mean_cost
        );
    }

    #[test]
    fn retain_policy_is_cheaper_than_clearing() {
        let (q, models, cat) = telehealth_query();
        let base = PipelineConfig {
            warmup_evaluations: 50,
            measure_evaluations: 300,
            ..Default::default()
        };
        let cleared = run_pipeline(&q, models.clone(), &cat, base, |tree, cat| {
            Heuristic::AndIncCStatic.schedule(tree, cat)
        });
        let retained = run_pipeline(
            &q,
            models,
            &cat,
            PipelineConfig {
                policy: MemoryPolicy::Retain,
                ..base
            },
            |tree, cat| Heuristic::AndIncCStatic.schedule(tree, cat),
        );
        assert!(
            retained.mean_cost <= cleared.mean_cost + 1e-9,
            "retain {} vs clear {}",
            retained.mean_cost,
            cleared.mean_cost
        );
    }
}
