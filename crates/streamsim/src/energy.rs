//! Energy accounting.
//!
//! The paper's cost is "e.g., energy consumption due to byte transfers":
//! linear in the number of items pulled, with a per-stream per-item rate
//! `c(S_k)`. [`EnergyModel`] implements that linear model plus an optional
//! per-contact radio wake-up surcharge — an ablation knob: with a non-zero
//! wake-up cost the true cost is no longer exactly linear in items, which
//! lets experiments probe how robust the schedules are to model error.

use paotr_core::stream::{StreamCatalog, StreamId};

/// Energy cost model for pulling items from sensors.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    per_item: Vec<f64>,
    /// Fixed cost charged whenever a pull contacts a sensor (0 in the
    /// paper's model).
    pub wakeup_cost: f64,
}

impl EnergyModel {
    /// Linear model taken from a stream catalog (the paper's model).
    pub fn from_catalog(catalog: &StreamCatalog) -> EnergyModel {
        EnergyModel {
            per_item: catalog.iter().map(|(_, info)| info.cost).collect(),
            wakeup_cost: 0.0,
        }
    }

    /// Adds a per-contact wake-up surcharge.
    pub fn with_wakeup(mut self, wakeup: f64) -> EnergyModel {
        assert!(
            wakeup >= 0.0 && wakeup.is_finite(),
            "wake-up cost must be finite and >= 0"
        );
        self.wakeup_cost = wakeup;
        self
    }

    /// Energy for pulling `items` new items from stream `k`
    /// (zero items = no contact = no cost).
    pub fn pull_cost(&self, k: StreamId, items: u32) -> f64 {
        if items == 0 {
            0.0
        } else {
            self.wakeup_cost + f64::from(items) * self.per_item[k.0]
        }
    }

    /// Number of streams covered.
    pub fn len(&self) -> usize {
        self.per_item.len()
    }

    /// True when no stream is covered.
    pub fn is_empty(&self) -> bool {
        self.per_item.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_matches_catalog() {
        let cat = StreamCatalog::from_costs([2.0, 5.0]).unwrap();
        let e = EnergyModel::from_catalog(&cat);
        assert_eq!(e.pull_cost(StreamId(0), 3), 6.0);
        assert_eq!(e.pull_cost(StreamId(1), 1), 5.0);
        assert_eq!(e.pull_cost(StreamId(1), 0), 0.0);
    }

    #[test]
    fn wakeup_surcharge_applies_per_contact() {
        let cat = StreamCatalog::from_costs([1.0]).unwrap();
        let e = EnergyModel::from_catalog(&cat).with_wakeup(10.0);
        assert_eq!(e.pull_cost(StreamId(0), 2), 12.0);
        assert_eq!(e.pull_cost(StreamId(0), 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "wake-up")]
    fn negative_wakeup_rejected() {
        let cat = StreamCatalog::from_costs([1.0]).unwrap();
        let _ = EnergyModel::from_catalog(&cat).with_wakeup(-1.0);
    }
}
