//! Device-side item memory.
//!
//! "The device that processes the query acquires data items from streams
//! and holds each data item in memory until that data item is no longer
//! relevant", i.e. older than the maximum time-window used for its stream.
//! [`DeviceMemory`] tracks exactly which absolute items (by production
//! tick) are held per stream, so the engine can compute how many *new*
//! items a pull must pay for — the heart of the shared-streams cost model.

use paotr_core::stream::StreamId;
use std::collections::BTreeSet;

/// What happens to memory between consecutive query evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryPolicy {
    /// Clear memory before every query evaluation — each evaluation then
    /// matches the paper's single-evaluation cost model exactly.
    #[default]
    ClearEachQuery,
    /// Keep items across evaluations (pruned by the relevance horizon) —
    /// overlapping windows across ticks make later evaluations cheaper,
    /// a realistic extension beyond the paper's model.
    Retain,
    /// Serve pulls from maintained arrangements where one is current
    /// (see `paotr-arrange`), falling back to cleared per-tick memory
    /// for unarranged streams. The scheduler carries the
    /// `ArrangementStore` itself — the policy stays a plain marker so
    /// it remains `Copy` and comparable.
    Arranged,
}

/// Per-stream sets of held item timestamps.
#[derive(Debug, Clone, Default)]
pub struct DeviceMemory {
    held: Vec<BTreeSet<u64>>,
}

impl DeviceMemory {
    /// Creates memory for `n_streams` streams.
    pub fn new(n_streams: usize) -> DeviceMemory {
        DeviceMemory {
            held: vec![BTreeSet::new(); n_streams],
        }
    }

    /// First existing timestamp of a `window`-item request ending at
    /// `now`: items are stamped 1, 2, ..., so requests reaching past the
    /// start of time are clipped to the items that exist.
    fn window_start(now: u64, window: u32) -> u64 {
        now.saturating_sub(u64::from(window) - 1).max(1)
    }

    /// Number of items of stream `k` that a window of `window` items
    /// ending at timestamp `now` would still need to pull (counting only
    /// items that exist; a window larger than the stream's history is
    /// clipped, matching the engine which never evaluates such windows).
    pub fn missing(&self, k: StreamId, now: u64, window: u32) -> u32 {
        if now == 0 {
            return 0;
        }
        let lo = Self::window_start(now, window);
        let requested = (now - lo + 1) as u32;
        let have = self.held[k.0].range(lo..=now).count() as u32;
        requested - have
    }

    /// Records that the window of `window` items ending at `now` has been
    /// fully acquired.
    pub fn insert_window(&mut self, k: StreamId, now: u64, window: u32) {
        if now == 0 {
            return;
        }
        let lo = Self::window_start(now, window);
        for t in lo..=now {
            self.held[k.0].insert(t);
        }
    }

    /// Drops items of stream `k` older than `horizon` (exclusive).
    pub fn prune(&mut self, k: StreamId, horizon: u64) {
        self.held[k.0] = self.held[k.0].split_off(&horizon);
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        for set in &mut self.held {
            set.clear();
        }
    }

    /// Number of items currently held for stream `k`.
    pub fn held_count(&self, k: StreamId) -> usize {
        self.held[k.0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: StreamId = StreamId(0);

    #[test]
    fn missing_counts_only_window_gaps() {
        let mut m = DeviceMemory::new(1);
        assert_eq!(m.missing(A, 100, 5), 5);
        m.insert_window(A, 100, 5); // holds 96..=100
        assert_eq!(m.missing(A, 100, 5), 0);
        assert_eq!(m.missing(A, 100, 10), 5); // needs 91..=100, has 5
                                              // next tick: window shifts by one
        assert_eq!(m.missing(A, 101, 5), 1);
    }

    #[test]
    fn overlapping_windows_share_items() {
        let mut m = DeviceMemory::new(1);
        m.insert_window(A, 100, 2); // 99, 100
        m.insert_window(A, 100, 6); // 95..=100
        assert_eq!(m.held_count(A), 6);
        assert_eq!(m.missing(A, 100, 6), 0);
    }

    #[test]
    fn prune_drops_stale_items() {
        let mut m = DeviceMemory::new(1);
        m.insert_window(A, 100, 10); // 91..=100
        m.prune(A, 96);
        assert_eq!(m.held_count(A), 5); // 96..=100
        assert_eq!(m.missing(A, 100, 10), 5);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut m = DeviceMemory::new(2);
        m.insert_window(A, 10, 3);
        m.insert_window(StreamId(1), 10, 2);
        m.clear();
        assert_eq!(m.held_count(A), 0);
        assert_eq!(m.held_count(StreamId(1)), 0);
    }

    #[test]
    fn early_timestamps_clip_to_existing_items() {
        let mut m = DeviceMemory::new(1);
        // now = 2 with window 5: only items 1 and 2 exist.
        assert_eq!(m.missing(A, 2, 5), 2);
        m.insert_window(A, 2, 5);
        assert_eq!(m.held_count(A), 2);
        assert_eq!(m.missing(A, 2, 3), 0);
        assert_eq!(m.missing(A, 2, 5), 0);
        // before any item exists, nothing can be missing
        assert_eq!(m.missing(A, 0, 4), 0);
    }
}
