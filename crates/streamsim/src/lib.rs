//! # stream-sim — the sensor-stream substrate
//!
//! The paper's setting is a mobile device evaluating boolean queries over
//! wearable sensor streams (SHIMMER-class platforms). We do not have the
//! hardware, so this crate simulates the whole data path the scheduling
//! problem lives in:
//!
//! * [`source`] — synthetic sensor models (sine, random walk, spikes,
//!   Gaussian), deterministic given a seed;
//! * [`stream`] — per-sensor history buffers with a pull interface
//!   ("give me the last `n` items");
//! * [`device`] — device-side item memory, the mechanism that makes
//!   streams *shared* across leaves;
//! * [`predicate`] — windowed predicates (`AVG(A,5) < 70`, ...);
//! * [`query`] — DNF queries over concrete predicates, and their abstract
//!   scheduling skeletons;
//! * [`energy`] — per-item energy model (plus a wake-up surcharge knob);
//! * [`runtime`] — the **unified tick-driven execution runtime**: the
//!   [`StreamSource`] read interface, the pull-coalescing
//!   [`Scheduler`] and the [`EnergyMeter`] — the single implementation
//!   every execution path (single-query engine, multi-query shared
//!   ticks, the serving loop) runs on;
//! * [`engine`] — the historical single-query surface, now a thin
//!   adapter over [`runtime`];
//! * [`trace`] — execution traces and probability calibration ("inferred
//!   from historical traces", as the paper assumes);
//! * [`simulate`] — the calibrate–schedule–measure pipeline.
#![forbid(unsafe_code)]

pub mod device;
pub mod energy;
pub mod engine;
pub mod predicate;
pub mod query;
pub mod runtime;
pub mod simulate;
pub mod source;
pub mod stream;
pub mod trace;

pub use device::{DeviceMemory, MemoryPolicy};
pub use energy::EnergyModel;
pub use engine::Engine;
pub use paotr_arrange::{ArrangeConfig, ArrangeStats, ArrangementStore};
pub use predicate::{Comparator, Predicate, WindowOp};
pub use query::{SimLeaf, SimQuery};
pub use runtime::{
    gaussian_streams, EnergyMeter, QueryOutcome, ReadAttempt, Scheduler, StreamSource, Verdict,
};
pub use simulate::{run_pipeline, PipelineConfig, PipelineReport};
pub use source::{SensorModel, SensorSource};
pub use stream::SimStream;
pub use trace::{estimate_probabilities, LeafRecord, TraceLog};
