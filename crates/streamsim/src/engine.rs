//! The pull-based query execution engine — now a thin adapter over the
//! unified runtime.
//!
//! Evaluates a [`SimQuery`] at the current tick, following a schedule:
//! leaves are visited in schedule order, skipped when short-circuited,
//! and each evaluated leaf pulls the *missing* items of its window from
//! its stream (shared device memory makes overlapping windows cheap),
//! paying the energy model. This is the concrete counterpart of the
//! abstract cost model in `paotr_core`: there truth values come from an
//! assignment, here from real predicates over real (simulated) data.
//!
//! The scheduling loop, the memory policy and the energy accounting all
//! live in [`crate::runtime`] ([`Scheduler`] + [`EnergyMeter`]); this
//! type only bundles them with the historical `evaluate` /
//! `evaluate_workload` surface.

use crate::device::MemoryPolicy;
use crate::energy::EnergyModel;
use crate::query::SimQuery;
use crate::runtime::{EnergyMeter, Scheduler};
use crate::stream::SimStream;
use crate::trace::TraceLog;
use paotr_core::schedule::DnfSchedule;

pub use crate::runtime::QueryOutcome;

/// The query-processing device: memory, policy and energy meter.
#[derive(Debug, Clone)]
pub struct Engine {
    scheduler: Scheduler,
    meter: EnergyMeter,
}

impl Engine {
    /// Creates an engine over `n_streams` streams.
    pub fn new(n_streams: usize, policy: MemoryPolicy, energy: EnergyModel) -> Engine {
        assert_eq!(
            energy.len(),
            n_streams,
            "energy model must cover every stream"
        );
        Engine {
            scheduler: Scheduler::new(n_streams, policy),
            meter: EnergyMeter::new(energy),
        }
    }

    /// Total energy spent since construction.
    pub fn total_cost(&self) -> f64 {
        self.meter.total_cost()
    }

    /// Number of query evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.meter.evaluations()
    }

    /// Evaluates `query` under `schedule` against the given streams
    /// (`streams[k]` backs `StreamId(k)`), optionally appending per-leaf
    /// records to a trace.
    ///
    /// # Panics
    /// Panics if a stream is too cold to provide a required window (run
    /// the streams for at least the largest window first) or if the
    /// schedule shape does not match the query.
    pub fn evaluate(
        &mut self,
        query: &SimQuery,
        schedule: &DnfSchedule,
        streams: &[SimStream],
        trace: Option<&mut TraceLog>,
    ) -> QueryOutcome {
        self.scheduler
            .begin_tick(std::slice::from_ref(&query), streams);
        self.scheduler
            .run_query(query, schedule, streams, &mut self.meter, trace)
    }

    /// Evaluates a whole workload at the current tick: every query in
    /// order, against **one shared device memory**, so items pulled by
    /// an earlier query are free for every later query this tick
    /// (`shared = true`). The memory policy is applied once per tick
    /// (for [`MemoryPolicy::Retain`], horizons are the per-stream
    /// maxima over the whole workload).
    ///
    /// With `shared = false` the memory policy is instead applied
    /// before *each* query, exactly as if [`Engine::evaluate`] were
    /// called per query: under [`MemoryPolicy::ClearEachQuery`] every
    /// query pays its own pulls (the independent baseline), while
    /// [`MemoryPolicy::Retain`] keeps its usual cross-evaluation
    /// retention semantics.
    ///
    /// # Panics
    /// As [`Engine::evaluate`], for each query/schedule pair.
    pub fn evaluate_workload(
        &mut self,
        queries: &[(&SimQuery, &DnfSchedule)],
        streams: &[SimStream],
        shared: bool,
        trace: Option<&mut TraceLog>,
    ) -> Vec<QueryOutcome> {
        self.scheduler
            .run_tick(queries, streams, shared, &mut self.meter, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Comparator, Predicate, WindowOp};
    use crate::query::SimLeaf;
    use crate::source::{SensorModel, SensorSource};
    use paotr_core::stream::{StreamCatalog, StreamId};
    use rand::prelude::*;

    fn constant_stream(v: f64, ticks: usize) -> SimStream {
        let mut s = SimStream::new(SensorSource::new(SensorModel::Constant(v)), 64);
        let mut rng = StdRng::seed_from_u64(0);
        s.advance_by(ticks, &mut rng);
        s
    }

    fn leaf(stream: usize, window: u32, cmp: Comparator, thr: f64) -> SimLeaf {
        SimLeaf {
            stream: StreamId(stream),
            predicate: Predicate::new(WindowOp::Avg, window, cmp, thr),
        }
    }

    fn engine(costs: &[f64]) -> Engine {
        let cat = StreamCatalog::from_costs(costs.iter().copied()).unwrap();
        Engine::new(
            costs.len(),
            MemoryPolicy::ClearEachQuery,
            EnergyModel::from_catalog(&cat),
        )
    }

    #[test]
    fn true_query_shortcircuits_remaining_terms() {
        // stream 0 constant 50: AVG < 70 true. Term 0 true -> stop.
        let q = SimQuery::new(vec![
            vec![leaf(0, 5, Comparator::Lt, 70.0)],
            vec![leaf(1, 4, Comparator::Gt, 100.0)],
        ])
        .unwrap();
        let streams = vec![constant_stream(50.0, 20), constant_stream(50.0, 20)];
        let mut e = engine(&[1.0, 1.0]);
        let s = DnfSchedule::from_order_unchecked(q.leaf_refs());
        let out = e.evaluate(&q, &s, &streams, None);
        assert!(out.value);
        assert_eq!(out.evaluated, 1);
        assert_eq!(out.cost, 5.0);
        assert_eq!(out.items_pulled, vec![5, 0]);
    }

    #[test]
    fn shared_windows_pay_only_missing_items() {
        // Both leaves on stream 0, same term: windows 5 then 8 -> 5 + 3.
        let q = SimQuery::new(vec![vec![
            leaf(0, 5, Comparator::Lt, 70.0),
            leaf(0, 8, Comparator::Lt, 70.0),
        ]])
        .unwrap();
        let streams = vec![constant_stream(50.0, 20)];
        let mut e = engine(&[2.0]);
        let s = DnfSchedule::from_order_unchecked(q.leaf_refs());
        let out = e.evaluate(&q, &s, &streams, None);
        assert!(out.value);
        assert_eq!(out.items_pulled, vec![8]);
        assert_eq!(out.cost, 16.0);
    }

    #[test]
    fn false_leaf_kills_term_and_skips_its_leaves() {
        let q = SimQuery::new(vec![
            vec![
                leaf(0, 2, Comparator::Gt, 100.0),
                leaf(1, 6, Comparator::Lt, 70.0),
            ],
            vec![leaf(1, 3, Comparator::Lt, 70.0)],
        ])
        .unwrap();
        let streams = vec![constant_stream(50.0, 20), constant_stream(50.0, 20)];
        let mut e = engine(&[1.0, 1.0]);
        let s = DnfSchedule::from_order_unchecked(q.leaf_refs());
        let out = e.evaluate(&q, &s, &streams, None);
        // leaf (0,0): avg 50 > 100 false -> term 0 dead, (0,1) skipped.
        // leaf (1,0): true -> query true. Cost = 2 + 3.
        assert!(out.value);
        assert_eq!(out.evaluated, 2);
        assert_eq!(out.cost, 5.0);
    }

    #[test]
    fn retain_policy_reuses_overlapping_windows_across_ticks() {
        let q = SimQuery::new(vec![vec![leaf(0, 5, Comparator::Lt, 70.0)]]).unwrap();
        let cat = StreamCatalog::from_costs([1.0]).unwrap();
        let mut e = Engine::new(1, MemoryPolicy::Retain, EnergyModel::from_catalog(&cat));
        let mut stream = constant_stream(50.0, 10);
        let s = DnfSchedule::from_order_unchecked(q.leaf_refs());
        let out1 = e.evaluate(&q, &s, std::slice::from_ref(&stream), None);
        assert_eq!(out1.cost, 5.0);
        // advance one tick: only 1 new item needed
        let mut rng = StdRng::seed_from_u64(1);
        stream.advance(&mut rng);
        let out2 = e.evaluate(&q, &s, std::slice::from_ref(&stream), None);
        assert_eq!(out2.cost, 1.0);
        assert_eq!(e.total_cost(), 6.0);
        assert_eq!(e.evaluations(), 2);
    }

    #[test]
    fn clear_policy_matches_abstract_model_every_time() {
        let q = SimQuery::new(vec![vec![leaf(0, 5, Comparator::Lt, 70.0)]]).unwrap();
        let mut e = engine(&[1.0]);
        let mut stream = constant_stream(50.0, 10);
        let s = DnfSchedule::from_order_unchecked(q.leaf_refs());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..3 {
            let out = e.evaluate(&q, &s, std::slice::from_ref(&stream), None);
            assert_eq!(out.cost, 5.0);
            stream.advance(&mut rng);
        }
    }

    #[test]
    fn shared_tick_makes_items_free_for_later_queries() {
        // Two queries reading the same stream: q0 pulls 8 items, q1
        // needs 5 of them.
        let q0 = SimQuery::new(vec![vec![leaf(0, 8, Comparator::Lt, 70.0)]]).unwrap();
        let q1 = SimQuery::new(vec![vec![leaf(0, 5, Comparator::Lt, 70.0)]]).unwrap();
        let streams = vec![constant_stream(50.0, 20)];
        let s0 = DnfSchedule::from_order_unchecked(q0.leaf_refs());
        let s1 = DnfSchedule::from_order_unchecked(q1.leaf_refs());
        let workload = [(&q0, &s0), (&q1, &s1)];

        let mut iso = engine(&[1.0]);
        let outs = iso.evaluate_workload(&workload, &streams, false, None);
        assert_eq!(outs[0].cost, 8.0);
        assert_eq!(outs[1].cost, 5.0, "isolated queries repay the pull");
        assert_eq!(iso.total_cost(), 13.0);

        let mut shared = engine(&[1.0]);
        let outs = shared.evaluate_workload(&workload, &streams, true, None);
        assert_eq!(outs[0].cost, 8.0);
        assert_eq!(outs[1].cost, 0.0, "q0's items are free for q1");
        assert_eq!(shared.total_cost(), 8.0);
        assert_eq!(outs[1].items_pulled, vec![0]);
    }

    #[test]
    fn shared_tick_order_changes_who_pays() {
        let big = SimQuery::new(vec![vec![leaf(0, 8, Comparator::Lt, 70.0)]]).unwrap();
        let small = SimQuery::new(vec![vec![leaf(0, 5, Comparator::Lt, 70.0)]]).unwrap();
        let streams = vec![constant_stream(50.0, 20)];
        let sb = DnfSchedule::from_order_unchecked(big.leaf_refs());
        let ss = DnfSchedule::from_order_unchecked(small.leaf_refs());

        // small first: pays 5, then big tops up 3. Total unchanged.
        let mut e = engine(&[1.0]);
        let outs = e.evaluate_workload(&[(&small, &ss), (&big, &sb)], &streams, true, None);
        assert_eq!(outs[0].cost, 5.0);
        assert_eq!(outs[1].cost, 3.0);
        assert_eq!(e.total_cost(), 8.0);
    }

    #[test]
    fn workload_matches_per_query_evaluate_when_isolated() {
        let q0 = SimQuery::new(vec![vec![
            leaf(0, 4, Comparator::Lt, 70.0),
            leaf(1, 2, Comparator::Gt, 100.0),
        ]])
        .unwrap();
        let q1 = SimQuery::new(vec![vec![leaf(1, 3, Comparator::Lt, 70.0)]]).unwrap();
        let streams = vec![constant_stream(50.0, 20), constant_stream(50.0, 20)];
        let s0 = DnfSchedule::from_order_unchecked(q0.leaf_refs());
        let s1 = DnfSchedule::from_order_unchecked(q1.leaf_refs());

        let mut a = engine(&[1.0, 2.0]);
        let outs = a.evaluate_workload(&[(&q0, &s0), (&q1, &s1)], &streams, false, None);
        let mut b = engine(&[1.0, 2.0]);
        let o0 = b.evaluate(&q0, &s0, &streams, None);
        let o1 = b.evaluate(&q1, &s1, &streams, None);
        assert_eq!(outs, vec![o0, o1]);
        assert_eq!(a.total_cost(), b.total_cost());
        assert_eq!(a.evaluations(), 2);

        // ...including under Retain, whose cross-evaluation retention
        // must not be wiped by the non-shared path.
        let cat = StreamCatalog::from_costs([1.0, 2.0]).unwrap();
        let mut a = Engine::new(2, MemoryPolicy::Retain, EnergyModel::from_catalog(&cat));
        let outs = a.evaluate_workload(&[(&q0, &s0), (&q1, &s1)], &streams, false, None);
        let mut b = Engine::new(2, MemoryPolicy::Retain, EnergyModel::from_catalog(&cat));
        let o0 = b.evaluate(&q0, &s0, &streams, None);
        let o1 = b.evaluate(&q1, &s1, &streams, None);
        assert_eq!(outs, vec![o0, o1]);
        assert!(
            outs[1].items_pulled[1] < 3,
            "retained items from q0 serve part of q1's window"
        );
    }

    #[test]
    fn trace_records_every_evaluated_leaf() {
        let q = SimQuery::new(vec![vec![
            leaf(0, 2, Comparator::Lt, 70.0),
            leaf(1, 3, Comparator::Gt, 100.0),
        ]])
        .unwrap();
        let streams = vec![constant_stream(50.0, 10), constant_stream(50.0, 10)];
        let mut e = engine(&[1.0, 1.0]);
        let s = DnfSchedule::from_order_unchecked(q.leaf_refs());
        let mut log = TraceLog::default();
        let out = e.evaluate(&q, &s, &streams, Some(&mut log));
        assert_eq!(out.evaluated, 2);
        assert_eq!(log.len(), 2);
        assert!(log.records()[0].value);
        assert!(!log.records()[1].value);
    }
}
