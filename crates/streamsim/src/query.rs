//! Concrete (predicate-level) queries.
//!
//! A [`SimQuery`] is a DNF of real windowed predicates over simulated
//! streams — the thing a deployment would actually run. Its *skeleton* is
//! the abstract [`DnfTree`] the scheduling algorithms operate on: same
//! shape, same streams, same window sizes, with success probabilities
//! supplied externally (estimated from traces; see [`crate::trace`]).

use crate::predicate::Predicate;
use paotr_core::error::{Error, Result};
use paotr_core::leaf::{Leaf, LeafRef};
use paotr_core::prob::Prob;
use paotr_core::stream::StreamId;
use paotr_core::tree::DnfTree;

/// One concrete leaf: a predicate over a stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimLeaf {
    /// The stream the predicate reads.
    pub stream: StreamId,
    /// The windowed predicate.
    pub predicate: Predicate,
}

/// A DNF query over concrete predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct SimQuery {
    terms: Vec<Vec<SimLeaf>>,
}

impl SimQuery {
    /// Builds a query; every term must be non-empty.
    pub fn new(terms: Vec<Vec<SimLeaf>>) -> Result<SimQuery> {
        if terms.is_empty() || terms.iter().any(Vec::is_empty) {
            return Err(Error::EmptyTree);
        }
        Ok(SimQuery { terms })
    }

    /// The AND terms.
    pub fn terms(&self) -> &[Vec<SimLeaf>] {
        &self.terms
    }

    /// Leaf at address `r`.
    pub fn leaf(&self, r: LeafRef) -> &SimLeaf {
        &self.terms[r.term][r.leaf]
    }

    /// Total number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.terms.iter().map(Vec::len).sum()
    }

    /// All leaf addresses in declaration order.
    pub fn leaf_refs(&self) -> Vec<LeafRef> {
        self.terms
            .iter()
            .enumerate()
            .flat_map(|(i, t)| (0..t.len()).map(move |j| LeafRef::new(i, j)))
            .collect()
    }

    /// Largest window used on each stream (the relevance horizon for
    /// device-memory pruning); `streams` is the catalog size.
    pub fn max_windows(&self, streams: usize) -> Vec<u32> {
        let mut out = vec![0u32; streams];
        for t in &self.terms {
            for l in t {
                out[l.stream.0] = out[l.stream.0].max(l.predicate.window);
            }
        }
        out
    }

    /// The abstract scheduling tree: same shape/streams/windows, with the
    /// given per-leaf success probabilities (flat, term-major order).
    ///
    /// # Panics
    /// Panics when `probs` has the wrong length.
    pub fn skeleton(&self, probs: &[f64]) -> DnfTree {
        assert_eq!(probs.len(), self.num_leaves(), "one probability per leaf");
        let mut it = probs.iter();
        let terms: Vec<Vec<Leaf>> = self
            .terms
            .iter()
            .map(|t| {
                t.iter()
                    .map(|l| {
                        let p = Prob::clamped(*it.next().expect("length checked"))
                            .expect("probabilities are not NaN");
                        Leaf::raw(l.stream, l.predicate.window, p)
                    })
                    .collect()
            })
            .collect();
        DnfTree::from_leaves(terms).expect("query shape already validated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Comparator, WindowOp};

    fn pred(window: u32) -> Predicate {
        Predicate::new(WindowOp::Avg, window, Comparator::Lt, 70.0)
    }

    fn query() -> SimQuery {
        SimQuery::new(vec![
            vec![
                SimLeaf {
                    stream: StreamId(0),
                    predicate: pred(5),
                },
                SimLeaf {
                    stream: StreamId(1),
                    predicate: pred(4),
                },
            ],
            vec![SimLeaf {
                stream: StreamId(0),
                predicate: pred(10),
            }],
        ])
        .unwrap()
    }

    #[test]
    fn counts_and_addressing() {
        let q = query();
        assert_eq!(q.num_leaves(), 3);
        assert_eq!(q.leaf_refs().len(), 3);
        assert_eq!(q.leaf(LeafRef::new(1, 0)).predicate.window, 10);
    }

    #[test]
    fn max_windows_per_stream() {
        let q = query();
        assert_eq!(q.max_windows(3), vec![10, 4, 0]);
    }

    #[test]
    fn skeleton_carries_windows_and_probs() {
        let q = query();
        let t = q.skeleton(&[0.3, 0.6, 0.9]);
        assert_eq!(t.num_terms(), 2);
        assert_eq!(t.leaf(LeafRef::new(0, 0)).items, 5);
        assert_eq!(t.leaf(LeafRef::new(0, 0)).prob.value(), 0.3);
        assert_eq!(t.leaf(LeafRef::new(1, 0)).items, 10);
        assert_eq!(t.leaf(LeafRef::new(1, 0)).prob.value(), 0.9);
    }

    #[test]
    fn rejects_empty_shapes() {
        assert!(SimQuery::new(vec![]).is_err());
        assert!(SimQuery::new(vec![vec![]]).is_err());
    }
}
