//! Windowed predicates over stream items.
//!
//! The paper's Figure 1 uses predicates like `AVG(A, 5) < 70`,
//! `MAX(B, 4) > 100` and `C < 3`: an aggregation operator over a window of
//! the last `d` items, compared against a threshold. This module
//! implements that predicate language.

use std::fmt;

/// Aggregation applied to the window of most-recent items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowOp {
    /// The most recent item (window of 1 unless specified otherwise).
    Last,
    /// Arithmetic mean of the window.
    Avg,
    /// Maximum of the window.
    Max,
    /// Minimum of the window.
    Min,
    /// Sum of the window.
    Sum,
}

impl WindowOp {
    /// Applies the operator to a window (newest first; order does not
    /// matter for any current operator except `Last`, which takes the
    /// first element).
    ///
    /// # Panics
    /// Panics on an empty window.
    pub fn apply(self, window: &[f64]) -> f64 {
        assert!(!window.is_empty(), "windowed operator on empty window");
        match self {
            WindowOp::Last => window[0],
            WindowOp::Avg => window.iter().sum::<f64>() / window.len() as f64,
            WindowOp::Max => window.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            WindowOp::Min => window.iter().copied().fold(f64::INFINITY, f64::min),
            WindowOp::Sum => window.iter().sum(),
        }
    }

    /// Canonical (query-language) name.
    pub fn name(self) -> &'static str {
        match self {
            WindowOp::Last => "LAST",
            WindowOp::Avg => "AVG",
            WindowOp::Max => "MAX",
            WindowOp::Min => "MIN",
            WindowOp::Sum => "SUM",
        }
    }
}

/// Comparison against the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Comparator {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Comparator {
    /// Evaluates `lhs (cmp) rhs`.
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Comparator::Lt => lhs < rhs,
            Comparator::Le => lhs <= rhs,
            Comparator::Gt => lhs > rhs,
            Comparator::Ge => lhs >= rhs,
        }
    }

    /// Source form.
    pub fn symbol(self) -> &'static str {
        match self {
            Comparator::Lt => "<",
            Comparator::Le => "<=",
            Comparator::Gt => ">",
            Comparator::Ge => ">=",
        }
    }
}

/// A complete leaf predicate: `OP(stream, window) CMP threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    /// Window aggregation.
    pub op: WindowOp,
    /// Window length in items (the leaf's `d`).
    pub window: u32,
    /// Comparison operator.
    pub cmp: Comparator,
    /// Comparison threshold.
    pub threshold: f64,
}

impl Predicate {
    /// Builds a predicate; window must be at least 1.
    pub fn new(op: WindowOp, window: u32, cmp: Comparator, threshold: f64) -> Predicate {
        assert!(window >= 1, "predicates need a window of at least one item");
        Predicate {
            op,
            window,
            cmp,
            threshold,
        }
    }

    /// Evaluates the predicate on a pulled window (newest first). The
    /// window slice must have exactly `self.window` items.
    ///
    /// # Panics
    /// Panics when the slice length does not match the declared window.
    pub fn eval(&self, window: &[f64]) -> bool {
        assert_eq!(window.len(), self.window as usize, "window length mismatch");
        self.cmp.eval(self.op.apply(window), self.threshold)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.op == WindowOp::Last && self.window == 1 {
            write!(f, "x {} {}", self.cmp.symbol(), self.threshold)
        } else {
            write!(
                f,
                "{}(x, {}) {} {}",
                self.op.name(),
                self.window,
                self.cmp.symbol(),
                self.threshold
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_compute_expected_aggregates() {
        let w = [3.0, 1.0, 2.0];
        assert_eq!(WindowOp::Last.apply(&w), 3.0);
        assert_eq!(WindowOp::Avg.apply(&w), 2.0);
        assert_eq!(WindowOp::Max.apply(&w), 3.0);
        assert_eq!(WindowOp::Min.apply(&w), 1.0);
        assert_eq!(WindowOp::Sum.apply(&w), 6.0);
    }

    #[test]
    fn comparators() {
        assert!(Comparator::Lt.eval(1.0, 2.0));
        assert!(!Comparator::Lt.eval(2.0, 2.0));
        assert!(Comparator::Le.eval(2.0, 2.0));
        assert!(Comparator::Gt.eval(3.0, 2.0));
        assert!(Comparator::Ge.eval(2.0, 2.0));
    }

    #[test]
    fn paper_figure_1_predicates() {
        // AVG(A,5) < 70
        let p = Predicate::new(WindowOp::Avg, 5, Comparator::Lt, 70.0);
        assert!(p.eval(&[60.0, 65.0, 70.0, 75.0, 60.0]));
        assert!(!p.eval(&[80.0, 85.0, 70.0, 75.0, 60.0]));
        // MAX(B,4) > 100
        let p = Predicate::new(WindowOp::Max, 4, Comparator::Gt, 100.0);
        assert!(p.eval(&[99.0, 101.0, 50.0, 70.0]));
        // C < 3
        let p = Predicate::new(WindowOp::Last, 1, Comparator::Lt, 3.0);
        assert!(p.eval(&[2.0]));
        assert_eq!(p.to_string(), "x < 3");
    }

    #[test]
    fn display_formats() {
        let p = Predicate::new(WindowOp::Avg, 5, Comparator::Lt, 70.0);
        assert_eq!(p.to_string(), "AVG(x, 5) < 70");
    }

    #[test]
    #[should_panic(expected = "window length mismatch")]
    fn eval_rejects_wrong_window() {
        Predicate::new(WindowOp::Avg, 3, Comparator::Lt, 1.0).eval(&[1.0]);
    }
}
