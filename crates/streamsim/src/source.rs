//! Synthetic sensor models.
//!
//! The paper's motivating deployment reads real sensors (GPS,
//! accelerometer, heart rate, SPO2) on wearable platforms; we do not have
//! that hardware, so this module provides deterministic-given-a-seed
//! synthetic generators that exercise the same code paths: periodic
//! signals (heart rate, accelerometer magnitude), random walks (GPS
//! drift), and spiky signals (event-like sensors). The scheduling problem
//! only observes windowed predicates over these values, so any generator
//! with controllable predicate probabilities is an adequate stand-in
//! (see DESIGN.md, substitutions).

use rand::Rng;

/// A synthetic sensor signal model producing one value per tick.
#[derive(Debug, Clone, PartialEq)]
pub enum SensorModel {
    /// A constant value (degenerate but useful in tests).
    Constant(f64),
    /// `offset + amplitude * sin(2 pi t / period) + uniform(-noise, noise)`.
    Sine {
        /// Mean level.
        offset: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Period in ticks.
        period: f64,
        /// Half-width of the uniform noise term.
        noise: f64,
    },
    /// Gaussian random walk clamped into `[min, max]`.
    RandomWalk {
        /// Starting level.
        start: f64,
        /// Standard deviation of each step.
        step: f64,
        /// Lower clamp.
        min: f64,
        /// Upper clamp.
        max: f64,
    },
    /// Baseline with occasional spikes: with probability `spike_prob` the
    /// value is `spike`, otherwise `base` plus uniform noise.
    Spiky {
        /// Baseline value.
        base: f64,
        /// Spike value.
        spike: f64,
        /// Per-tick spike probability.
        spike_prob: f64,
        /// Half-width of baseline noise.
        noise: f64,
    },
    /// Independent Gaussian samples.
    Gaussian {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
}

/// Stateful generator wrapping a [`SensorModel`].
#[derive(Debug, Clone)]
pub struct SensorSource {
    model: SensorModel,
    tick: u64,
    walk_level: f64,
}

impl SensorSource {
    /// Creates a generator at tick 0.
    pub fn new(model: SensorModel) -> SensorSource {
        let walk_level = match model {
            SensorModel::RandomWalk { start, .. } => start,
            _ => 0.0,
        };
        SensorSource {
            model,
            tick: 0,
            walk_level,
        }
    }

    /// The number of values generated so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Generates the next value.
    pub fn next_value<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let t = self.tick;
        self.tick += 1;
        match self.model {
            SensorModel::Constant(v) => v,
            SensorModel::Sine {
                offset,
                amplitude,
                period,
                noise,
            } => {
                let phase = 2.0 * std::f64::consts::PI * t as f64 / period;
                let n = if noise > 0.0 {
                    rng.gen_range(-noise..noise)
                } else {
                    0.0
                };
                offset + amplitude * phase.sin() + n
            }
            SensorModel::RandomWalk { step, min, max, .. } => {
                self.walk_level = (self.walk_level + gaussian(rng) * step).clamp(min, max);
                self.walk_level
            }
            SensorModel::Spiky {
                base,
                spike,
                spike_prob,
                noise,
            } => {
                if rng.gen::<f64>() < spike_prob {
                    spike
                } else if noise > 0.0 {
                    base + rng.gen_range(-noise..noise)
                } else {
                    base
                }
            }
            SensorModel::Gaussian { mean, std_dev } => mean + gaussian(rng) * std_dev,
        }
    }
}

/// Standard normal sample via Box-Muller (rand's `StandardNormal` lives in
/// `rand_distr`, which we deliberately avoid depending on).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn constant_source_is_constant() {
        let mut s = SensorSource::new(SensorModel::Constant(42.0));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(s.next_value(&mut rng), 42.0);
        }
        assert_eq!(s.tick(), 10);
    }

    #[test]
    fn sine_oscillates_around_offset() {
        let mut s = SensorSource::new(SensorModel::Sine {
            offset: 70.0,
            amplitude: 10.0,
            period: 60.0,
            noise: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<f64> = (0..120).map(|_| s.next_value(&mut rng)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 70.0).abs() < 0.5, "mean {mean}");
        assert!(vals.iter().any(|&v| v > 78.0));
        assert!(vals.iter().any(|&v| v < 62.0));
    }

    #[test]
    fn random_walk_respects_clamps() {
        let mut s = SensorSource::new(SensorModel::RandomWalk {
            start: 0.5,
            step: 0.4,
            min: 0.0,
            max: 1.0,
        });
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = s.next_value(&mut rng);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn spiky_spikes_at_roughly_expected_rate() {
        let mut s = SensorSource::new(SensorModel::Spiky {
            base: 0.0,
            spike: 100.0,
            spike_prob: 0.1,
            noise: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(4);
        let spikes = (0..10_000)
            .filter(|_| s.next_value(&mut rng) == 100.0)
            .count();
        assert!((800..1200).contains(&spikes), "spikes {spikes}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let model = SensorModel::Gaussian {
            mean: 0.0,
            std_dev: 1.0,
        };
        let run = |seed| {
            let mut s = SensorSource::new(model.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| s.next_value(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
