//! The unified tick-driven execution runtime.
//!
//! Every execution path of the workspace — the single-query
//! [`Engine`](crate::engine::Engine), the multi-query shared-pull loop
//! in `paotr_multi::sim`, and the serving loop in `paotr_exec` — runs
//! on the three pieces of this module:
//!
//! * [`StreamSource`] — the read interface a stream must offer the
//!   executor (`now` + `recent`), implemented by the sensor-backed
//!   [`SimStream`] and by anything else that can serve windows;
//! * [`Scheduler`] — the tick-driven pull scheduler: executes any set
//!   of `(SimQuery, DnfSchedule)` pairs against **one shared
//!   [`DeviceMemory`]**, coalescing per-stream pulls (a later leaf or
//!   query only pays for items missing from memory) and applying the
//!   [`MemoryPolicy`] per tick or per query;
//! * [`EnergyMeter`] — the single energy/trace accounting
//!   implementation: per-leaf pull pricing through an [`EnergyModel`],
//!   lifetime totals, and per-stream item counters.
//!
//! The split matters because the pull-coalescing loop is the semantics
//! the paper's cost model prices; having exactly one implementation
//! (instead of the three that previously lived in `engine.rs`,
//! `multi/sim.rs` and `core/cost/execution.rs`) is what makes the
//! serving-layer features — admission control, drift re-planning —
//! safe to build: they observe the same energies the planners predict.

use crate::device::{DeviceMemory, MemoryPolicy};
use crate::energy::EnergyModel;
use crate::query::SimQuery;
use crate::source::{SensorModel, SensorSource};
use crate::stream::SimStream;
use crate::trace::{LeafRecord, TraceLog};
use paotr_arrange::ArrangementStore;
use paotr_core::schedule::DnfSchedule;
use paotr_core::stream::StreamId;
use rand::Rng;
use std::borrow::Borrow;

/// The read interface the [`Scheduler`] needs from a stream: a clock
/// and a window pull. Advancement (producing items) stays with the
/// owner — the serving loop, the simulation pipeline — so data stays
/// deterministic under one seed regardless of how it is executed.
pub trait StreamSource {
    /// Timestamp of the most recent item (items are stamped 1, 2, ...;
    /// 0 means nothing has been produced yet).
    fn now(&self) -> u64;

    /// The last `n` items, newest first; `None` while fewer exist.
    fn recent(&self, n: usize) -> Option<Vec<f64>>;
}

impl StreamSource for SimStream {
    fn now(&self) -> u64 {
        SimStream::now(self)
    }

    fn recent(&self, n: usize) -> Option<Vec<f64>> {
        SimStream::recent(self, n)
    }
}

/// Result of one query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Truth value of the query.
    pub value: bool,
    /// Energy spent on this evaluation.
    pub cost: f64,
    /// Leaves actually evaluated.
    pub evaluated: usize,
    /// Items pulled per stream during this evaluation.
    pub items_pulled: Vec<u32>,
}

/// The single energy/trace accounting implementation: prices every pull
/// through one [`EnergyModel`] and accumulates lifetime totals.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: EnergyModel,
    total: f64,
    maintain_total: f64,
    evaluations: u64,
    items: Vec<u64>,
    maintain_items: Vec<u64>,
}

impl EnergyMeter {
    /// A meter over the given pricing model.
    pub fn new(model: EnergyModel) -> EnergyMeter {
        let items = vec![0; model.len()];
        let maintain_items = vec![0; model.len()];
        EnergyMeter {
            model,
            total: 0.0,
            maintain_total: 0.0,
            evaluations: 0,
            items,
            maintain_items,
        }
    }

    /// The pricing model.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Total energy spent since construction: query pulls plus
    /// arrangement maintenance.
    pub fn total_cost(&self) -> f64 {
        self.total + self.maintain_total
    }

    /// Energy spent on query pulls alone.
    pub fn pull_cost_total(&self) -> f64 {
        self.total
    }

    /// Energy spent on arrangement maintenance alone.
    pub fn maintain_cost_total(&self) -> f64 {
        self.maintain_total
    }

    /// Number of query evaluations metered.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Lifetime items pulled per stream by query evaluation.
    pub fn items_pulled(&self) -> &[u64] {
        &self.items
    }

    /// Lifetime items fetched per stream by arrangement maintenance.
    pub fn items_maintained(&self) -> &[u64] {
        &self.maintain_items
    }

    /// Prices a pull of `items` new items from stream `k`, adds it to
    /// the totals and returns the energy charged.
    pub fn charge(&mut self, k: StreamId, items: u32) -> f64 {
        let cost = self.model.pull_cost(k, items);
        self.total += cost;
        self.items[k.0] += u64::from(items);
        cost
    }

    /// Prices an arrangement-maintenance fetch of `items` from stream
    /// `k` — same per-item rates and wake-up surcharge as a pull, but
    /// accounted separately so serving reports can split "paid to
    /// maintain" from "paid to pull".
    pub fn charge_maintenance(&mut self, k: StreamId, items: u32) -> f64 {
        let cost = self.model.pull_cost(k, items);
        self.maintain_total += cost;
        self.maintain_items[k.0] += u64::from(items);
        cost
    }

    fn count_evaluation(&mut self) {
        self.evaluations += 1;
    }
}

/// The tick-driven pull scheduler: one shared [`DeviceMemory`], a
/// [`MemoryPolicy`], and the short-circuiting schedule interpreter.
/// Under [`MemoryPolicy::Arranged`] the scheduler additionally carries
/// an [`ArrangementStore`]: leaves whose pull a current arrangement
/// covers are served from the maintained ring instead of charging the
/// meter.
#[derive(Debug, Clone)]
pub struct Scheduler {
    memory: DeviceMemory,
    policy: MemoryPolicy,
    arrangements: Option<ArrangementStore>,
}

impl Scheduler {
    /// A scheduler over `n_streams` streams.
    pub fn new(n_streams: usize, policy: MemoryPolicy) -> Scheduler {
        Scheduler {
            memory: DeviceMemory::new(n_streams),
            policy,
            arrangements: None,
        }
    }

    /// A scheduler serving pulls from `store` where possible
    /// ([`MemoryPolicy::Arranged`]).
    pub fn with_arrangements(n_streams: usize, store: ArrangementStore) -> Scheduler {
        Scheduler {
            memory: DeviceMemory::new(n_streams),
            policy: MemoryPolicy::Arranged,
            arrangements: Some(store),
        }
    }

    /// The configured memory policy.
    pub fn policy(&self) -> MemoryPolicy {
        self.policy
    }

    /// The device memory (read access, e.g. for diagnostics).
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// The attached arrangement store, if any.
    pub fn arrangements(&self) -> Option<&ArrangementStore> {
        self.arrangements.as_ref()
    }

    /// Mutable access to the attached arrangement store (refcount
    /// changes between ticks).
    pub fn arrangements_mut(&mut self) -> Option<&mut ArrangementStore> {
        self.arrangements.as_mut()
    }

    /// Lends a store to this scheduler and switches it to
    /// [`MemoryPolicy::Arranged`]. Owners whose store outlives the
    /// scheduler (the serving daemon builds a fresh scheduler per
    /// batch) attach before a batch and [`Scheduler::take_arrangements`]
    /// after.
    pub fn attach_arrangements(&mut self, store: ArrangementStore) {
        self.policy = MemoryPolicy::Arranged;
        self.arrangements = Some(store);
    }

    /// Detaches and returns the store, reverting the policy to
    /// [`MemoryPolicy::ClearEachQuery`].
    pub fn take_arrangements(&mut self) -> Option<ArrangementStore> {
        if self.arrangements.is_some() {
            self.policy = MemoryPolicy::ClearEachQuery;
        }
        self.arrangements.take()
    }

    /// Runs one maintenance round on the attached store: advances the
    /// arrangement clock (evicting arrangements past their zero-reader
    /// grace) and fetches, per stream, the widest catch-up any live
    /// arrangement needs — charged to the meter's maintenance
    /// accounts. Call once per tick, before executing queries; a no-op
    /// without a store.
    pub fn maintain_tick<S: StreamSource>(&mut self, streams: &[S], meter: &mut EnergyMeter) {
        let Some(store) = self.arrangements.as_mut() else {
            return;
        };
        store.begin_tick();
        for (i, stream) in streams.iter().enumerate() {
            let k = StreamId(i);
            let fetched = store.maintain(k, stream.now(), |n| stream.recent(n));
            if fetched > 0 {
                meter.charge_maintenance(k, fetched);
            }
        }
    }

    /// Applies the memory policy for the evaluation of `queries` at the
    /// current tick: clear everything, or ([`MemoryPolicy::Retain`])
    /// prune items older than the set's per-stream relevance horizon.
    pub fn begin_tick<Q: Borrow<SimQuery>, S: StreamSource>(
        &mut self,
        queries: &[Q],
        streams: &[S],
    ) {
        if self.policy != MemoryPolicy::Retain {
            self.memory.clear();
            return;
        }
        let mut horizons = vec![0u32; streams.len()];
        for q in queries {
            for (k, &w) in q.borrow().max_windows(streams.len()).iter().enumerate() {
                horizons[k] = horizons[k].max(w);
            }
        }
        for (k, &w) in horizons.iter().enumerate() {
            if w > 0 {
                let now = streams[k].now();
                let horizon = now.saturating_sub(u64::from(w) - 1);
                self.memory.prune(StreamId(k), horizon);
            }
        }
    }

    /// The evaluation loop proper: follows the schedule with AND/OR
    /// short-circuiting, paying (through `meter`) only for items
    /// missing from memory, optionally appending per-leaf records to a
    /// trace. Call [`Scheduler::begin_tick`] first to apply the memory
    /// policy — or use [`Scheduler::run_tick`], which sequences both.
    ///
    /// # Panics
    /// Panics if a stream is too cold to provide a required window or
    /// if the schedule shape does not match the query.
    pub fn run_query<S: StreamSource>(
        &mut self,
        query: &SimQuery,
        schedule: &DnfSchedule,
        streams: &[S],
        meter: &mut EnergyMeter,
        mut trace: Option<&mut TraceLog>,
    ) -> QueryOutcome {
        assert_eq!(
            schedule.len(),
            query.num_leaves(),
            "schedule does not cover the query's leaves"
        );
        let n_terms = query.terms().len();
        let mut term_failed = vec![false; n_terms];
        let mut remaining: Vec<usize> = query.terms().iter().map(Vec::len).collect();
        let mut alive = n_terms;
        let mut items_pulled = vec![0u32; streams.len()];
        let mut cost = 0.0;
        let mut evaluated = 0;
        let mut value = false;

        for &r in schedule.order() {
            if term_failed[r.term] || remaining[r.term] == 0 {
                continue;
            }
            let leaf = query.leaf(r);
            let k = leaf.stream;
            let stream = &streams[k.0];
            let now = stream.now();
            let window = leaf.predicate.window;
            let mut missing = self.memory.missing(k, now, window);
            let mut pull_cost = 0.0;
            let mut served = None;
            if missing > 0 {
                // A current arrangement substitutes for the paid pull:
                // the maintained items already sit on the device.
                served = self
                    .arrangements
                    .as_mut()
                    .and_then(|store| store.serve(k, now, window));
                if served.is_some() {
                    missing = 0;
                } else {
                    pull_cost = meter.charge(k, missing);
                }
            }
            cost += pull_cost;
            items_pulled[k.0] += missing;
            self.memory.insert_window(k, now, window);
            let data = match served {
                Some(data) => data,
                None => stream
                    .recent(window as usize)
                    .unwrap_or_else(|| panic!("stream {k} too cold for a {window}-item window")),
            };
            let truth = leaf.predicate.eval(&data);
            evaluated += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.push(LeafRecord {
                    tick: now,
                    leaf: r,
                    value: truth,
                    items_paid: missing,
                    cost: pull_cost,
                });
            }
            if truth {
                remaining[r.term] -= 1;
                if remaining[r.term] == 0 {
                    value = true;
                    break;
                }
            } else {
                term_failed[r.term] = true;
                alive -= 1;
                if alive == 0 {
                    break;
                }
            }
        }

        meter.count_evaluation();
        QueryOutcome {
            value,
            cost,
            evaluated,
            items_pulled,
        }
    }

    /// Executes a whole tick: every `(query, schedule)` pair in order.
    ///
    /// With `shared = true` the memory policy is applied once for the
    /// whole set and all queries run against one shared memory — items
    /// pulled by an earlier query are free for every later query this
    /// tick. With `shared = false` the policy is applied before *each*
    /// query, exactly as if the queries were evaluated one at a time
    /// (under [`MemoryPolicy::ClearEachQuery`] every query pays its own
    /// pulls — the independent baseline).
    ///
    /// # Panics
    /// As [`Scheduler::run_query`], for each pair.
    pub fn run_tick<S: StreamSource>(
        &mut self,
        queries: &[(&SimQuery, &DnfSchedule)],
        streams: &[S],
        shared: bool,
        meter: &mut EnergyMeter,
        mut trace: Option<&mut TraceLog>,
    ) -> Vec<QueryOutcome> {
        if shared {
            let all: Vec<&SimQuery> = queries.iter().map(|(q, _)| *q).collect();
            self.begin_tick(&all, streams);
        }
        queries
            .iter()
            .map(|(query, schedule)| {
                if !shared {
                    self.begin_tick(std::slice::from_ref(query), streams);
                }
                self.run_query(query, schedule, streams, meter, trace.as_deref_mut())
            })
            .collect()
    }
}

/// Catalog-backed synthetic sources: one standard-normal Gaussian
/// sensor per stream (`horizons[k]` is stream `k`'s relevance horizon —
/// the widest window any query uses on it), warmed far enough that
/// every window is servable from tick one. Consumes `rng` exactly in
/// stream order, so data is deterministic under one seed.
pub fn gaussian_streams<R: Rng + ?Sized>(horizons: &[u32], rng: &mut R) -> Vec<SimStream> {
    let mut streams: Vec<SimStream> = horizons
        .iter()
        .map(|&w| {
            SimStream::new(
                SensorSource::new(SensorModel::Gaussian {
                    mean: 0.0,
                    std_dev: 1.0,
                }),
                (w.max(1) as usize) * 2,
            )
        })
        .collect();
    let warm = horizons.iter().copied().max().unwrap_or(1).max(1) as usize;
    for s in &mut streams {
        s.advance_by(warm, rng);
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Comparator, Predicate, WindowOp};
    use crate::query::SimLeaf;
    use paotr_core::stream::StreamCatalog;
    use rand::prelude::*;

    fn constant_stream(v: f64, ticks: usize) -> SimStream {
        let mut s = SimStream::new(SensorSource::new(SensorModel::Constant(v)), 64);
        let mut rng = StdRng::seed_from_u64(0);
        s.advance_by(ticks, &mut rng);
        s
    }

    fn leaf(stream: usize, window: u32, thr: f64) -> SimLeaf {
        SimLeaf {
            stream: StreamId(stream),
            predicate: Predicate::new(WindowOp::Avg, window, Comparator::Lt, thr),
        }
    }

    fn meter(costs: &[f64]) -> EnergyMeter {
        let cat = StreamCatalog::from_costs(costs.iter().copied()).unwrap();
        EnergyMeter::new(EnergyModel::from_catalog(&cat))
    }

    #[test]
    fn meter_accumulates_totals_and_items() {
        let mut m = meter(&[2.0, 1.0]);
        assert_eq!(m.charge(StreamId(0), 3), 6.0);
        assert_eq!(m.charge(StreamId(1), 2), 2.0);
        assert_eq!(m.charge(StreamId(0), 0), 0.0);
        assert_eq!(m.total_cost(), 8.0);
        assert_eq!(m.items_pulled(), &[3, 2]);
        assert_eq!(m.evaluations(), 0);
        assert_eq!(m.model().len(), 2);
    }

    #[test]
    fn run_tick_shared_coalesces_pulls_across_queries() {
        let q0 = SimQuery::new(vec![vec![leaf(0, 8, 70.0)]]).unwrap();
        let q1 = SimQuery::new(vec![vec![leaf(0, 5, 70.0)]]).unwrap();
        let streams = vec![constant_stream(50.0, 20)];
        let s0 = DnfSchedule::from_order_unchecked(q0.leaf_refs());
        let s1 = DnfSchedule::from_order_unchecked(q1.leaf_refs());
        let pairs = [(&q0, &s0), (&q1, &s1)];

        let mut sched = Scheduler::new(1, MemoryPolicy::ClearEachQuery);
        let mut m = meter(&[1.0]);
        let outs = sched.run_tick(&pairs, &streams, true, &mut m, None);
        assert_eq!(outs[0].cost, 8.0);
        assert_eq!(outs[1].cost, 0.0, "q0's items are free for q1");
        assert_eq!(m.total_cost(), 8.0);
        assert_eq!(m.evaluations(), 2);

        let mut sched = Scheduler::new(1, MemoryPolicy::ClearEachQuery);
        let mut m = meter(&[1.0]);
        let outs = sched.run_tick(&pairs, &streams, false, &mut m, None);
        assert_eq!(outs[1].cost, 5.0, "isolated queries repay the pull");
        assert_eq!(m.total_cost(), 13.0);
    }

    #[test]
    fn scheduler_policy_and_memory_are_observable() {
        let sched = Scheduler::new(2, MemoryPolicy::Retain);
        assert_eq!(sched.policy(), MemoryPolicy::Retain);
        assert_eq!(sched.memory().held_count(StreamId(0)), 0);
    }

    #[test]
    fn gaussian_streams_are_warm_and_seed_deterministic() {
        let horizons = [3u32, 7, 1];
        let mut rng = StdRng::seed_from_u64(9);
        let streams = gaussian_streams(&horizons, &mut rng);
        assert_eq!(streams.len(), 3);
        for (s, &w) in streams.iter().zip(&horizons) {
            assert_eq!(s.now(), 7, "warmed to the widest horizon");
            assert!(s.recent(w as usize).is_some());
        }
        let mut rng = StdRng::seed_from_u64(9);
        let again = gaussian_streams(&horizons, &mut rng);
        assert_eq!(streams[1].recent(7), again[1].recent(7));
    }

    #[test]
    fn arranged_scheduler_serves_pulls_from_maintained_rings() {
        use paotr_arrange::{ArrangeConfig, ArrangementStore};

        let query = SimQuery::new(vec![vec![leaf(0, 8, 70.0)]]).unwrap();
        let schedule = DnfSchedule::from_order_unchecked(query.leaf_refs());
        let mut rng = StdRng::seed_from_u64(3);
        let mut streams = gaussian_streams(&[8], &mut rng);

        let mut store = ArrangementStore::new(ArrangeConfig::default());
        assert!(store.acquire(StreamId(0), 8));
        let mut arranged = Scheduler::with_arrangements(1, store);
        assert_eq!(arranged.policy(), MemoryPolicy::Arranged);
        let mut plain = Scheduler::new(1, MemoryPolicy::ClearEachQuery);
        let mut am = meter(&[1.0]);
        let mut pm = meter(&[1.0]);

        for tick in 0..5 {
            arranged.maintain_tick(&streams, &mut am);
            arranged.begin_tick(std::slice::from_ref(&query), &streams);
            let a = arranged.run_query(&query, &schedule, &streams, &mut am, None);
            plain.begin_tick(std::slice::from_ref(&query), &streams);
            let p = plain.run_query(&query, &schedule, &streams, &mut pm, None);
            assert_eq!(a.value, p.value, "tick {tick}: truth must not change");
            assert_eq!(a.cost, 0.0, "arranged evaluation pays no pull");
            assert_eq!(a.items_pulled, vec![0]);
            streams[0].advance_by(1, &mut rng);
        }

        // Maintenance: an 8-item fill, then 1 item per subsequent tick.
        assert_eq!(am.items_maintained(), &[8 + 4]);
        assert_eq!(am.items_pulled(), &[0]);
        assert_eq!(pm.items_pulled(), &[8 * 5]);
        assert!(am.total_cost() < pm.total_cost());
        assert_eq!(am.total_cost(), am.maintain_cost_total());
        assert_eq!(am.pull_cost_total(), 0.0);
        let stats = arranged.arrangements().unwrap().stats();
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.hit_items, 40);
        assert_eq!(stats.maintained_items, 12);
    }

    #[test]
    fn unarranged_streams_fall_back_to_priced_pulls() {
        use paotr_arrange::{ArrangeConfig, ArrangementStore};

        // Arrangement only covers a 4-item window; the query needs 8.
        let query = SimQuery::new(vec![vec![leaf(0, 8, 70.0)]]).unwrap();
        let schedule = DnfSchedule::from_order_unchecked(query.leaf_refs());
        let streams = vec![constant_stream(50.0, 20)];

        let mut store = ArrangementStore::new(ArrangeConfig::default());
        assert!(store.acquire(StreamId(0), 4));
        let mut sched = Scheduler::with_arrangements(1, store);
        let mut m = meter(&[1.0]);
        sched.maintain_tick(&streams, &mut m);
        sched.begin_tick(std::slice::from_ref(&query), &streams);
        let out = sched.run_query(&query, &schedule, &streams, &mut m, None);
        assert_eq!(out.items_pulled, vec![8], "4-item ring cannot serve 8");
        assert_eq!(m.items_maintained(), &[4]);
    }

    #[test]
    fn attach_and_take_move_the_store_between_schedulers() {
        use paotr_arrange::{ArrangeConfig, ArrangementStore};

        let mut store = ArrangementStore::new(ArrangeConfig::default());
        assert!(store.acquire(StreamId(0), 3));
        let mut sched = Scheduler::new(1, MemoryPolicy::ClearEachQuery);
        assert!(sched.take_arrangements().is_none());
        assert_eq!(sched.policy(), MemoryPolicy::ClearEachQuery);
        sched.attach_arrangements(store);
        assert_eq!(sched.policy(), MemoryPolicy::Arranged);
        assert_eq!(sched.arrangements().unwrap().len(), 1);
        let back = sched.take_arrangements().expect("store comes back");
        assert_eq!(back.len(), 1);
        assert_eq!(sched.policy(), MemoryPolicy::ClearEachQuery);
        assert!(sched.arrangements().is_none());
    }
}
