//! The unified tick-driven execution runtime.
//!
//! Every execution path of the workspace — the single-query
//! [`Engine`](crate::engine::Engine), the multi-query shared-pull loop
//! in `paotr_multi::sim`, and the serving loop in `paotr_exec` — runs
//! on the three pieces of this module:
//!
//! * [`StreamSource`] — the read interface a stream must offer the
//!   executor (`now` + `recent`), implemented by the sensor-backed
//!   [`SimStream`] and by anything else that can serve windows;
//! * [`Scheduler`] — the tick-driven pull scheduler: executes any set
//!   of `(SimQuery, DnfSchedule)` pairs against **one shared
//!   [`DeviceMemory`]**, coalescing per-stream pulls (a later leaf or
//!   query only pays for items missing from memory) and applying the
//!   [`MemoryPolicy`] per tick or per query;
//! * [`EnergyMeter`] — the single energy/trace accounting
//!   implementation: per-leaf pull pricing through an [`EnergyModel`],
//!   lifetime totals, and per-stream item counters.
//!
//! The split matters because the pull-coalescing loop is the semantics
//! the paper's cost model prices; having exactly one implementation
//! (instead of the three that previously lived in `engine.rs`,
//! `multi/sim.rs` and `core/cost/execution.rs`) is what makes the
//! serving-layer features — admission control, drift re-planning —
//! safe to build: they observe the same energies the planners predict.

use crate::device::{DeviceMemory, MemoryPolicy};
use crate::energy::EnergyModel;
use crate::query::SimQuery;
use crate::source::{SensorModel, SensorSource};
use crate::stream::SimStream;
use crate::trace::{LeafRecord, TraceLog};
use paotr_arrange::ArrangementStore;
use paotr_core::schedule::DnfSchedule;
use paotr_core::stream::StreamId;
use rand::Rng;
use std::borrow::Borrow;

/// The read interface the [`Scheduler`] needs from a stream: a clock
/// and a window pull. Advancement (producing items) stays with the
/// owner — the serving loop, the simulation pipeline — so data stays
/// deterministic under one seed regardless of how it is executed.
pub trait StreamSource {
    /// Timestamp of the most recent item (items are stamped 1, 2, ...;
    /// 0 means nothing has been produced yet).
    fn now(&self) -> u64;

    /// The last `n` items, newest first; `None` while fewer exist.
    fn recent(&self, n: usize) -> Option<Vec<f64>>;

    /// Whether the stream is in a hard outage right now. A source in
    /// outage cannot be contacted at all: pulls fail without charge and
    /// arrangement maintenance skips it. Plain sources are never out.
    fn is_out(&self) -> bool {
        false
    }

    /// One *sensor contact* attempt for the last `n` items. Unlike
    /// [`StreamSource::recent`] (a read of data already on the device),
    /// this models going out to the radio and may fail: decorators such
    /// as `paotr_faults::FaultySource` inject [`ReadAttempt::Transient`]
    /// and [`ReadAttempt::Outage`] keyed on `(stream, now, attempt)` so
    /// a replay under the same fault plan fails identically. The
    /// default implementation never fails.
    fn try_recent(&self, n: usize, attempt: u32) -> ReadAttempt {
        let _ = attempt;
        if self.is_out() {
            return ReadAttempt::Outage;
        }
        match self.recent(n) {
            Some(data) => ReadAttempt::Data(data),
            None => ReadAttempt::Cold,
        }
    }
}

impl StreamSource for SimStream {
    fn now(&self) -> u64 {
        SimStream::now(self)
    }

    fn recent(&self, n: usize) -> Option<Vec<f64>> {
        SimStream::recent(self, n)
    }
}

/// Outcome of one sensor-contact attempt ([`StreamSource::try_recent`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ReadAttempt {
    /// The window, newest first.
    Data(Vec<f64>),
    /// The stream has not produced enough items yet (a programming
    /// error in this workspace — streams are warmed before serving).
    Cold,
    /// A transient failure: the contact was made (and paid for) but no
    /// data came back. Retrying with a higher `attempt` may succeed.
    Transient,
    /// A hard outage: the stream is unreachable; retries are pointless
    /// and nothing is charged.
    Outage,
}

/// Three-valued (Kleene) verdict of a query evaluation. Under fault
/// injection some leaves may be unreadable; a query still resolves to
/// [`Verdict::True`]/[`Verdict::False`] whenever the live leaves alone
/// determine the monotone DNF — otherwise it reports
/// [`Verdict::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Determined true.
    True,
    /// Determined false.
    False,
    /// Undetermined: some unreadable leaf could still flip the result.
    Unknown,
}

impl Verdict {
    /// True iff the verdict is not [`Verdict::Unknown`].
    pub fn is_determined(self) -> bool {
        !matches!(self, Verdict::Unknown)
    }
}

/// Result of one query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Truth value of the query (`verdict == True`; `Unknown` reads as
    /// false here, so fault-free runs are unchanged).
    pub value: bool,
    /// Three-valued verdict. Always determined on fault-free runs.
    pub verdict: Verdict,
    /// The verdict was only reached by substituting stale arrangement
    /// data for unreadable leaves. Degraded verdicts carry no
    /// bit-for-bit guarantee against the fault-free run.
    pub degraded: bool,
    /// Worst staleness (ticks behind `now`) of any stale window used.
    pub staleness: u64,
    /// Leaves answered from a stale arrangement ring.
    pub stale_leaves: u32,
    /// Transient read failures retried during this evaluation.
    pub retries: u32,
    /// Leaves given up on (outage, or retries exhausted).
    pub failed_reads: u32,
    /// Energy spent on this evaluation (including priced retries).
    pub cost: f64,
    /// Leaves actually evaluated.
    pub evaluated: usize,
    /// Items pulled per stream during this evaluation.
    pub items_pulled: Vec<u32>,
}

/// The single energy/trace accounting implementation: prices every pull
/// through one [`EnergyModel`] and accumulates lifetime totals.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: EnergyModel,
    total: f64,
    maintain_total: f64,
    retry_total: f64,
    retry_attempts: u64,
    evaluations: u64,
    items: Vec<u64>,
    maintain_items: Vec<u64>,
}

impl EnergyMeter {
    /// A meter over the given pricing model.
    pub fn new(model: EnergyModel) -> EnergyMeter {
        let items = vec![0; model.len()];
        let maintain_items = vec![0; model.len()];
        EnergyMeter {
            model,
            total: 0.0,
            maintain_total: 0.0,
            retry_total: 0.0,
            retry_attempts: 0,
            evaluations: 0,
            items,
            maintain_items,
        }
    }

    /// The pricing model.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Total energy spent since construction: query pulls plus
    /// arrangement maintenance plus failed-read retries.
    pub fn total_cost(&self) -> f64 {
        self.total + self.maintain_total + self.retry_total
    }

    /// Energy spent on query pulls alone.
    pub fn pull_cost_total(&self) -> f64 {
        self.total
    }

    /// Energy spent on arrangement maintenance alone.
    pub fn maintain_cost_total(&self) -> f64 {
        self.maintain_total
    }

    /// Energy spent on failed sensor contacts (transient-read retries).
    pub fn retry_cost_total(&self) -> f64 {
        self.retry_total
    }

    /// Lifetime count of failed contacts that were charged.
    pub fn retry_attempts(&self) -> u64 {
        self.retry_attempts
    }

    /// Number of query evaluations metered.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Lifetime items pulled per stream by query evaluation.
    pub fn items_pulled(&self) -> &[u64] {
        &self.items
    }

    /// Lifetime items fetched per stream by arrangement maintenance.
    pub fn items_maintained(&self) -> &[u64] {
        &self.maintain_items
    }

    /// Prices a pull of `items` new items from stream `k`, adds it to
    /// the totals and returns the energy charged.
    pub fn charge(&mut self, k: StreamId, items: u32) -> f64 {
        let cost = self.model.pull_cost(k, items);
        self.total += cost;
        self.items[k.0] += u64::from(items);
        cost
    }

    /// Prices an arrangement-maintenance fetch of `items` from stream
    /// `k` — same per-item rates and wake-up surcharge as a pull, but
    /// accounted separately so serving reports can split "paid to
    /// maintain" from "paid to pull".
    pub fn charge_maintenance(&mut self, k: StreamId, items: u32) -> f64 {
        let cost = self.model.pull_cost(k, items);
        self.maintain_total += cost;
        self.maintain_items[k.0] += u64::from(items);
        cost
    }

    /// Prices one *failed* contact with stream `k` that attempted to
    /// pull `items`: a retry is a pull and burns the same energy, but
    /// the items never arrive, so the per-stream pulled counters stay
    /// untouched and the charge lands in a separate retry account.
    pub fn charge_retry(&mut self, k: StreamId, items: u32) -> f64 {
        let cost = self.model.pull_cost(k, items);
        self.retry_total += cost;
        self.retry_attempts += 1;
        cost
    }

    fn count_evaluation(&mut self) {
        self.evaluations += 1;
    }
}

/// The tick-driven pull scheduler: one shared [`DeviceMemory`], a
/// [`MemoryPolicy`], and the short-circuiting schedule interpreter.
/// Under [`MemoryPolicy::Arranged`] the scheduler additionally carries
/// an [`ArrangementStore`]: leaves whose pull a current arrangement
/// covers are served from the maintained ring instead of charging the
/// meter.
#[derive(Debug, Clone)]
pub struct Scheduler {
    memory: DeviceMemory,
    policy: MemoryPolicy,
    arrangements: Option<ArrangementStore>,
    max_attempts: u32,
    stale_fallback: bool,
}

impl Scheduler {
    /// A scheduler over `n_streams` streams.
    pub fn new(n_streams: usize, policy: MemoryPolicy) -> Scheduler {
        Scheduler {
            memory: DeviceMemory::new(n_streams),
            policy,
            arrangements: None,
            max_attempts: 1,
            stale_fallback: false,
        }
    }

    /// A scheduler serving pulls from `store` where possible
    /// ([`MemoryPolicy::Arranged`]).
    pub fn with_arrangements(n_streams: usize, store: ArrangementStore) -> Scheduler {
        Scheduler {
            memory: DeviceMemory::new(n_streams),
            policy: MemoryPolicy::Arranged,
            arrangements: Some(store),
            max_attempts: 1,
            stale_fallback: false,
        }
    }

    /// Configures fault handling: up to `max_attempts` sensor contacts
    /// per leaf (each failed attempt priced as a retry through the
    /// meter), and, when `stale_fallback` is set and a store is
    /// attached, unreadable leaves may be answered from a stale
    /// arrangement ring — producing *degraded* verdicts flagged on the
    /// outcome. Defaults are one attempt and no stale serving, which is
    /// exactly the fault-free behaviour.
    ///
    /// # Panics
    /// Panics if `max_attempts` is zero.
    pub fn set_fault_policy(&mut self, max_attempts: u32, stale_fallback: bool) {
        assert!(max_attempts >= 1, "at least one attempt is required");
        self.max_attempts = max_attempts;
        self.stale_fallback = stale_fallback;
    }

    /// The configured memory policy.
    pub fn policy(&self) -> MemoryPolicy {
        self.policy
    }

    /// The device memory (read access, e.g. for diagnostics).
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// The attached arrangement store, if any.
    pub fn arrangements(&self) -> Option<&ArrangementStore> {
        self.arrangements.as_ref()
    }

    /// Mutable access to the attached arrangement store (refcount
    /// changes between ticks).
    pub fn arrangements_mut(&mut self) -> Option<&mut ArrangementStore> {
        self.arrangements.as_mut()
    }

    /// Lends a store to this scheduler and switches it to
    /// [`MemoryPolicy::Arranged`]. Owners whose store outlives the
    /// scheduler (the serving daemon builds a fresh scheduler per
    /// batch) attach before a batch and [`Scheduler::take_arrangements`]
    /// after.
    pub fn attach_arrangements(&mut self, store: ArrangementStore) {
        self.policy = MemoryPolicy::Arranged;
        self.arrangements = Some(store);
    }

    /// Detaches and returns the store, reverting the policy to
    /// [`MemoryPolicy::ClearEachQuery`].
    pub fn take_arrangements(&mut self) -> Option<ArrangementStore> {
        if self.arrangements.is_some() {
            self.policy = MemoryPolicy::ClearEachQuery;
        }
        self.arrangements.take()
    }

    /// Runs one maintenance round on the attached store: advances the
    /// arrangement clock (evicting arrangements past their zero-reader
    /// grace) and fetches, per stream, the widest catch-up any live
    /// arrangement needs — charged to the meter's maintenance
    /// accounts. Call once per tick, before executing queries; a no-op
    /// without a store.
    pub fn maintain_tick<S: StreamSource>(&mut self, streams: &[S], meter: &mut EnergyMeter) {
        let Some(store) = self.arrangements.as_mut() else {
            return;
        };
        store.begin_tick();
        for (i, stream) in streams.iter().enumerate() {
            // An out stream cannot be contacted: its arrangements fall
            // behind and catch up (capped at the ring width) once the
            // outage lifts. Their stale contents stay servable through
            // `serve_stale` in the meantime.
            if stream.is_out() {
                continue;
            }
            let k = StreamId(i);
            let fetched = store.maintain(k, stream.now(), |n| stream.recent(n));
            if fetched > 0 {
                meter.charge_maintenance(k, fetched);
            }
        }
    }

    /// Applies the memory policy for the evaluation of `queries` at the
    /// current tick: clear everything, or ([`MemoryPolicy::Retain`])
    /// prune items older than the set's per-stream relevance horizon.
    pub fn begin_tick<Q: Borrow<SimQuery>, S: StreamSource>(
        &mut self,
        queries: &[Q],
        streams: &[S],
    ) {
        if self.policy != MemoryPolicy::Retain {
            self.memory.clear();
            return;
        }
        let mut horizons = vec![0u32; streams.len()];
        for q in queries {
            for (k, &w) in q.borrow().max_windows(streams.len()).iter().enumerate() {
                horizons[k] = horizons[k].max(w);
            }
        }
        for (k, &w) in horizons.iter().enumerate() {
            if w > 0 {
                let now = streams[k].now();
                let horizon = now.saturating_sub(u64::from(w) - 1);
                self.memory.prune(StreamId(k), horizon);
            }
        }
    }

    /// The evaluation loop proper: follows the schedule with AND/OR
    /// short-circuiting, paying (through `meter`) only for items
    /// missing from memory, optionally appending per-leaf records to a
    /// trace. Call [`Scheduler::begin_tick`] first to apply the memory
    /// policy — or use [`Scheduler::run_tick`], which sequences both.
    ///
    /// Under fault injection (sources whose [`StreamSource::try_recent`]
    /// can fail) evaluation is three-valued: an unreadable leaf becomes
    /// `unknown` instead of aborting. Because the DNF is monotone, the
    /// query still resolves whenever the *live* leaves determine it — a
    /// term completing all-true forces [`Verdict::True`], every term
    /// holding a live false leaf forces [`Verdict::False`] — and those
    /// determined verdicts are bit-for-bit what a fault-free run
    /// produces, since live reads see identical data. Early exits only
    /// ever fire on live determinations. Anything else reports
    /// [`Verdict::Unknown`] unless the stale fallback
    /// ([`Scheduler::set_fault_policy`]) resolves it from arrangement
    /// rings, in which case the outcome is marked `degraded` and
    /// carries its worst-case staleness.
    ///
    /// # Panics
    /// Panics if a stream is too cold to provide a required window or
    /// if the schedule shape does not match the query.
    pub fn run_query<S: StreamSource>(
        &mut self,
        query: &SimQuery,
        schedule: &DnfSchedule,
        streams: &[S],
        meter: &mut EnergyMeter,
        mut trace: Option<&mut TraceLog>,
    ) -> QueryOutcome {
        assert_eq!(
            schedule.len(),
            query.num_leaves(),
            "schedule does not cover the query's leaves"
        );
        let n_terms = query.terms().len();
        // Two truth lattices per term. The *live* lattice only counts
        // leaves evaluated on real data and is what determines
        // fault-free-equivalent verdicts; the *degraded* lattice
        // additionally folds in stale-ring answers and is consulted
        // only when the live lattice ends undetermined.
        let mut term_failed = vec![false; n_terms];
        let mut remaining: Vec<usize> = query.terms().iter().map(Vec::len).collect();
        let mut live_unknown = vec![0usize; n_terms];
        let mut deg_failed = vec![false; n_terms];
        let mut deg_unknown = vec![0usize; n_terms];
        let mut alive = n_terms;
        let mut items_pulled = vec![0u32; streams.len()];
        let mut cost = 0.0;
        let mut evaluated = 0;
        let mut retries = 0u32;
        let mut failed_reads = 0u32;
        let mut stale_leaves = 0u32;
        let mut staleness = 0u64;
        let mut verdict = Verdict::Unknown;
        let mut decided = false;

        for &r in schedule.order() {
            if term_failed[r.term] || remaining[r.term] == 0 {
                continue;
            }
            let leaf = query.leaf(r);
            let k = leaf.stream;
            let stream = &streams[k.0];
            let now = stream.now();
            let window = leaf.predicate.window;
            let mut missing = self.memory.missing(k, now, window);
            let mut pull_cost = 0.0;
            // `data` is the leaf's *live* window: from a current
            // arrangement, a (possibly retried) sensor contact, or —
            // when nothing is missing — the copy already on the device.
            let data: Option<Vec<f64>> =
                if missing > 0 {
                    // A current arrangement substitutes for the paid pull:
                    // the maintained items already sit on the device.
                    let mut data = self
                        .arrangements
                        .as_mut()
                        .and_then(|store| store.serve(k, now, window));
                    if data.is_some() {
                        missing = 0;
                    } else {
                        // Sensor contact required — the only point where
                        // injected faults can bite.
                        let mut attempt = 0u32;
                        loop {
                            match stream.try_recent(window as usize, attempt) {
                                ReadAttempt::Data(d) => {
                                    pull_cost += meter.charge(k, missing);
                                    data = Some(d);
                                    break;
                                }
                                ReadAttempt::Cold => {
                                    panic!("stream {k} too cold for a {window}-item window")
                                }
                                ReadAttempt::Outage => break,
                                ReadAttempt::Transient => {
                                    // The failed contact still burnt a
                                    // pull's worth of energy.
                                    pull_cost += meter.charge_retry(k, missing);
                                    retries += 1;
                                    attempt += 1;
                                    if attempt >= self.max_attempts {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    data
                } else {
                    Some(stream.recent(window as usize).unwrap_or_else(|| {
                        panic!("stream {k} too cold for a {window}-item window")
                    }))
                };
            cost += pull_cost;
            evaluated += 1;
            remaining[r.term] -= 1;
            if let Some(data) = data {
                items_pulled[k.0] += missing;
                self.memory.insert_window(k, now, window);
                let truth = leaf.predicate.eval(&data);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(LeafRecord {
                        tick: now,
                        leaf: r,
                        value: truth,
                        items_paid: missing,
                        cost: pull_cost,
                    });
                }
                if truth {
                    if remaining[r.term] == 0 && live_unknown[r.term] == 0 {
                        verdict = Verdict::True;
                        decided = true;
                        break;
                    }
                } else {
                    term_failed[r.term] = true;
                    deg_failed[r.term] = true;
                    alive -= 1;
                    if alive == 0 {
                        verdict = Verdict::False;
                        decided = true;
                        break;
                    }
                }
            } else {
                // Unreadable leaf: unknown in the live lattice. No
                // memory insert (nothing arrived), no trace record
                // (drift estimation must only see live observations).
                failed_reads += 1;
                live_unknown[r.term] += 1;
                let stale = if self.stale_fallback {
                    self.arrangements
                        .as_ref()
                        .and_then(|store| store.serve_stale(k, now, window))
                } else {
                    None
                };
                match stale {
                    Some((data, age)) => {
                        stale_leaves += 1;
                        staleness = staleness.max(age);
                        if !leaf.predicate.eval(&data) {
                            deg_failed[r.term] = true;
                        }
                    }
                    None => deg_unknown[r.term] += 1,
                }
            }
        }

        let mut degraded = false;
        if !decided {
            // The live lattice ended undetermined (a live determination
            // would have broken out above). Try the degraded lattice:
            // same monotone-DNF rules with stale answers filled in.
            let deg_true =
                (0..n_terms).any(|t| !term_failed[t] && !deg_failed[t] && deg_unknown[t] == 0);
            let deg_false = (0..n_terms).all(|t| term_failed[t] || deg_failed[t]);
            if deg_true {
                verdict = Verdict::True;
                degraded = true;
            } else if deg_false {
                verdict = Verdict::False;
                degraded = true;
            }
        }

        meter.count_evaluation();
        QueryOutcome {
            value: verdict == Verdict::True,
            verdict,
            degraded,
            staleness,
            stale_leaves,
            retries,
            failed_reads,
            cost,
            evaluated,
            items_pulled,
        }
    }

    /// Executes a whole tick: every `(query, schedule)` pair in order.
    ///
    /// With `shared = true` the memory policy is applied once for the
    /// whole set and all queries run against one shared memory — items
    /// pulled by an earlier query are free for every later query this
    /// tick. With `shared = false` the policy is applied before *each*
    /// query, exactly as if the queries were evaluated one at a time
    /// (under [`MemoryPolicy::ClearEachQuery`] every query pays its own
    /// pulls — the independent baseline).
    ///
    /// # Panics
    /// As [`Scheduler::run_query`], for each pair.
    pub fn run_tick<S: StreamSource>(
        &mut self,
        queries: &[(&SimQuery, &DnfSchedule)],
        streams: &[S],
        shared: bool,
        meter: &mut EnergyMeter,
        mut trace: Option<&mut TraceLog>,
    ) -> Vec<QueryOutcome> {
        if shared {
            let all: Vec<&SimQuery> = queries.iter().map(|(q, _)| *q).collect();
            self.begin_tick(&all, streams);
        }
        queries
            .iter()
            .map(|(query, schedule)| {
                if !shared {
                    self.begin_tick(std::slice::from_ref(query), streams);
                }
                self.run_query(query, schedule, streams, meter, trace.as_deref_mut())
            })
            .collect()
    }
}

/// Catalog-backed synthetic sources: one standard-normal Gaussian
/// sensor per stream (`horizons[k]` is stream `k`'s relevance horizon —
/// the widest window any query uses on it), warmed far enough that
/// every window is servable from tick one. Consumes `rng` exactly in
/// stream order, so data is deterministic under one seed.
pub fn gaussian_streams<R: Rng + ?Sized>(horizons: &[u32], rng: &mut R) -> Vec<SimStream> {
    let mut streams: Vec<SimStream> = horizons
        .iter()
        .map(|&w| {
            SimStream::new(
                SensorSource::new(SensorModel::Gaussian {
                    mean: 0.0,
                    std_dev: 1.0,
                }),
                (w.max(1) as usize) * 2,
            )
        })
        .collect();
    let warm = horizons.iter().copied().max().unwrap_or(1).max(1) as usize;
    for s in &mut streams {
        s.advance_by(warm, rng);
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Comparator, Predicate, WindowOp};
    use crate::query::SimLeaf;
    use paotr_core::stream::StreamCatalog;
    use rand::prelude::*;

    fn constant_stream(v: f64, ticks: usize) -> SimStream {
        let mut s = SimStream::new(SensorSource::new(SensorModel::Constant(v)), 64);
        let mut rng = StdRng::seed_from_u64(0);
        s.advance_by(ticks, &mut rng);
        s
    }

    fn leaf(stream: usize, window: u32, thr: f64) -> SimLeaf {
        SimLeaf {
            stream: StreamId(stream),
            predicate: Predicate::new(WindowOp::Avg, window, Comparator::Lt, thr),
        }
    }

    fn meter(costs: &[f64]) -> EnergyMeter {
        let cat = StreamCatalog::from_costs(costs.iter().copied()).unwrap();
        EnergyMeter::new(EnergyModel::from_catalog(&cat))
    }

    #[test]
    fn meter_accumulates_totals_and_items() {
        let mut m = meter(&[2.0, 1.0]);
        assert_eq!(m.charge(StreamId(0), 3), 6.0);
        assert_eq!(m.charge(StreamId(1), 2), 2.0);
        assert_eq!(m.charge(StreamId(0), 0), 0.0);
        assert_eq!(m.total_cost(), 8.0);
        assert_eq!(m.items_pulled(), &[3, 2]);
        assert_eq!(m.evaluations(), 0);
        assert_eq!(m.model().len(), 2);
    }

    #[test]
    fn run_tick_shared_coalesces_pulls_across_queries() {
        let q0 = SimQuery::new(vec![vec![leaf(0, 8, 70.0)]]).unwrap();
        let q1 = SimQuery::new(vec![vec![leaf(0, 5, 70.0)]]).unwrap();
        let streams = vec![constant_stream(50.0, 20)];
        let s0 = DnfSchedule::from_order_unchecked(q0.leaf_refs());
        let s1 = DnfSchedule::from_order_unchecked(q1.leaf_refs());
        let pairs = [(&q0, &s0), (&q1, &s1)];

        let mut sched = Scheduler::new(1, MemoryPolicy::ClearEachQuery);
        let mut m = meter(&[1.0]);
        let outs = sched.run_tick(&pairs, &streams, true, &mut m, None);
        assert_eq!(outs[0].cost, 8.0);
        assert_eq!(outs[1].cost, 0.0, "q0's items are free for q1");
        assert_eq!(m.total_cost(), 8.0);
        assert_eq!(m.evaluations(), 2);

        let mut sched = Scheduler::new(1, MemoryPolicy::ClearEachQuery);
        let mut m = meter(&[1.0]);
        let outs = sched.run_tick(&pairs, &streams, false, &mut m, None);
        assert_eq!(outs[1].cost, 5.0, "isolated queries repay the pull");
        assert_eq!(m.total_cost(), 13.0);
    }

    #[test]
    fn scheduler_policy_and_memory_are_observable() {
        let sched = Scheduler::new(2, MemoryPolicy::Retain);
        assert_eq!(sched.policy(), MemoryPolicy::Retain);
        assert_eq!(sched.memory().held_count(StreamId(0)), 0);
    }

    #[test]
    fn gaussian_streams_are_warm_and_seed_deterministic() {
        let horizons = [3u32, 7, 1];
        let mut rng = StdRng::seed_from_u64(9);
        let streams = gaussian_streams(&horizons, &mut rng);
        assert_eq!(streams.len(), 3);
        for (s, &w) in streams.iter().zip(&horizons) {
            assert_eq!(s.now(), 7, "warmed to the widest horizon");
            assert!(s.recent(w as usize).is_some());
        }
        let mut rng = StdRng::seed_from_u64(9);
        let again = gaussian_streams(&horizons, &mut rng);
        assert_eq!(streams[1].recent(7), again[1].recent(7));
    }

    #[test]
    fn arranged_scheduler_serves_pulls_from_maintained_rings() {
        use paotr_arrange::{ArrangeConfig, ArrangementStore};

        let query = SimQuery::new(vec![vec![leaf(0, 8, 70.0)]]).unwrap();
        let schedule = DnfSchedule::from_order_unchecked(query.leaf_refs());
        let mut rng = StdRng::seed_from_u64(3);
        let mut streams = gaussian_streams(&[8], &mut rng);

        let mut store = ArrangementStore::new(ArrangeConfig::default());
        assert!(store.acquire(StreamId(0), 8));
        let mut arranged = Scheduler::with_arrangements(1, store);
        assert_eq!(arranged.policy(), MemoryPolicy::Arranged);
        let mut plain = Scheduler::new(1, MemoryPolicy::ClearEachQuery);
        let mut am = meter(&[1.0]);
        let mut pm = meter(&[1.0]);

        for tick in 0..5 {
            arranged.maintain_tick(&streams, &mut am);
            arranged.begin_tick(std::slice::from_ref(&query), &streams);
            let a = arranged.run_query(&query, &schedule, &streams, &mut am, None);
            plain.begin_tick(std::slice::from_ref(&query), &streams);
            let p = plain.run_query(&query, &schedule, &streams, &mut pm, None);
            assert_eq!(a.value, p.value, "tick {tick}: truth must not change");
            assert_eq!(a.cost, 0.0, "arranged evaluation pays no pull");
            assert_eq!(a.items_pulled, vec![0]);
            streams[0].advance_by(1, &mut rng);
        }

        // Maintenance: an 8-item fill, then 1 item per subsequent tick.
        assert_eq!(am.items_maintained(), &[8 + 4]);
        assert_eq!(am.items_pulled(), &[0]);
        assert_eq!(pm.items_pulled(), &[8 * 5]);
        assert!(am.total_cost() < pm.total_cost());
        assert_eq!(am.total_cost(), am.maintain_cost_total());
        assert_eq!(am.pull_cost_total(), 0.0);
        let stats = arranged.arrangements().unwrap().stats();
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.hit_items, 40);
        assert_eq!(stats.maintained_items, 12);
    }

    #[test]
    fn unarranged_streams_fall_back_to_priced_pulls() {
        use paotr_arrange::{ArrangeConfig, ArrangementStore};

        // Arrangement only covers a 4-item window; the query needs 8.
        let query = SimQuery::new(vec![vec![leaf(0, 8, 70.0)]]).unwrap();
        let schedule = DnfSchedule::from_order_unchecked(query.leaf_refs());
        let streams = vec![constant_stream(50.0, 20)];

        let mut store = ArrangementStore::new(ArrangeConfig::default());
        assert!(store.acquire(StreamId(0), 4));
        let mut sched = Scheduler::with_arrangements(1, store);
        let mut m = meter(&[1.0]);
        sched.maintain_tick(&streams, &mut m);
        sched.begin_tick(std::slice::from_ref(&query), &streams);
        let out = sched.run_query(&query, &schedule, &streams, &mut m, None);
        assert_eq!(out.items_pulled, vec![8], "4-item ring cannot serve 8");
        assert_eq!(m.items_maintained(), &[4]);
    }

    /// A source whose first `fail_first` contacts per read fail
    /// transiently, or which is in permanent outage.
    struct Flaky {
        inner: SimStream,
        fail_first: u32,
        out: bool,
    }

    impl StreamSource for Flaky {
        fn now(&self) -> u64 {
            self.inner.now()
        }

        fn recent(&self, n: usize) -> Option<Vec<f64>> {
            self.inner.recent(n)
        }

        fn is_out(&self) -> bool {
            self.out
        }

        fn try_recent(&self, n: usize, attempt: u32) -> ReadAttempt {
            if self.out {
                return ReadAttempt::Outage;
            }
            if attempt < self.fail_first {
                return ReadAttempt::Transient;
            }
            match self.recent(n) {
                Some(data) => ReadAttempt::Data(data),
                None => ReadAttempt::Cold,
            }
        }
    }

    #[test]
    fn retries_are_priced_and_the_verdict_stays_determined() {
        let query = SimQuery::new(vec![vec![leaf(0, 4, 70.0)]]).unwrap();
        let schedule = DnfSchedule::from_order_unchecked(query.leaf_refs());
        let streams = vec![Flaky {
            inner: constant_stream(50.0, 20),
            fail_first: 2,
            out: false,
        }];
        let mut sched = Scheduler::new(1, MemoryPolicy::ClearEachQuery);
        sched.set_fault_policy(3, false);
        let mut m = meter(&[1.0]);
        let out = sched.run_query(&query, &schedule, &streams, &mut m, None);
        assert_eq!(out.verdict, Verdict::True);
        assert!(out.value && !out.degraded);
        assert_eq!(out.retries, 2);
        assert_eq!(out.failed_reads, 0);
        assert_eq!(out.cost, 12.0, "two failed 4-item contacts plus the pull");
        assert_eq!(m.retry_cost_total(), 8.0);
        assert_eq!(m.retry_attempts(), 2);
        assert_eq!(m.total_cost(), 12.0);
        assert_eq!(m.items_pulled(), &[4], "failed contacts deliver no items");
    }

    #[test]
    fn exhausted_retries_leave_the_leaf_unknown() {
        let query = SimQuery::new(vec![vec![leaf(0, 4, 70.0)]]).unwrap();
        let schedule = DnfSchedule::from_order_unchecked(query.leaf_refs());
        let streams = vec![Flaky {
            inner: constant_stream(50.0, 20),
            fail_first: 10,
            out: false,
        }];
        let mut sched = Scheduler::new(1, MemoryPolicy::ClearEachQuery);
        sched.set_fault_policy(3, false);
        let mut m = meter(&[1.0]);
        let out = sched.run_query(&query, &schedule, &streams, &mut m, None);
        assert_eq!(out.verdict, Verdict::Unknown);
        assert!(!out.value);
        assert_eq!(out.retries, 3, "every allowed attempt was made and priced");
        assert_eq!(out.failed_reads, 1);
        assert_eq!(m.total_cost(), 12.0);
        assert_eq!(m.items_pulled(), &[0]);
    }

    #[test]
    fn outages_charge_nothing_and_live_leaves_still_determine() {
        // (A) OR (B): A is out; B alone determines the query.
        let query = SimQuery::new(vec![vec![leaf(0, 4, 70.0)], vec![leaf(1, 4, 70.0)]]).unwrap();
        let schedule = DnfSchedule::from_order_unchecked(query.leaf_refs());
        let mk = |v: f64, out: bool| Flaky {
            inner: constant_stream(v, 20),
            fail_first: 0,
            out,
        };

        // B true -> live True despite A's outage.
        let streams = vec![mk(50.0, true), mk(50.0, false)];
        let mut sched = Scheduler::new(2, MemoryPolicy::ClearEachQuery);
        let mut m = meter(&[1.0, 1.0]);
        let out = sched.run_query(&query, &schedule, &streams, &mut m, None);
        assert_eq!(out.verdict, Verdict::True);
        assert!(!out.degraded);
        assert_eq!(out.failed_reads, 1);
        assert_eq!(out.cost, 4.0, "only B's pull is paid; outages are free");
        assert_eq!(out.items_pulled, vec![0, 4]);

        // B false -> A's outage leaves the verdict open.
        let streams = vec![mk(50.0, true), mk(90.0, false)];
        let mut sched = Scheduler::new(2, MemoryPolicy::ClearEachQuery);
        let mut m = meter(&[1.0, 1.0]);
        let out = sched.run_query(&query, &schedule, &streams, &mut m, None);
        assert_eq!(out.verdict, Verdict::Unknown);
        assert!(!out.value && !out.degraded);
    }

    #[test]
    fn stale_fallback_resolves_outages_with_a_degraded_verdict() {
        use paotr_arrange::{ArrangeConfig, ArrangementStore};

        let query = SimQuery::new(vec![vec![leaf(0, 4, 70.0)]]).unwrap();
        let schedule = DnfSchedule::from_order_unchecked(query.leaf_refs());
        let mut rng = StdRng::seed_from_u64(0);
        let mut inner = SimStream::new(SensorSource::new(SensorModel::Constant(50.0)), 64);
        inner.advance_by(10, &mut rng);

        let mut store = ArrangementStore::new(ArrangeConfig::default());
        assert!(store.acquire(StreamId(0), 4));
        let mut sched = Scheduler::with_arrangements(1, store);
        sched.set_fault_policy(1, true);
        let mut m = meter(&[1.0]);

        // Maintain while healthy, then the stream advances and dies:
        // the ring is one tick behind and the only source of data.
        let healthy = [Flaky {
            inner,
            fail_first: 0,
            out: false,
        }];
        sched.maintain_tick(&healthy, &mut m);
        let [mut flaky] = healthy;
        flaky.inner.advance_by(1, &mut rng);
        flaky.out = true;
        let streams = [flaky];
        sched.maintain_tick(&streams, &mut m); // skipped: stream is out
        sched.begin_tick(std::slice::from_ref(&query), &streams);
        let out = sched.run_query(&query, &schedule, &streams, &mut m, None);
        assert_eq!(out.verdict, Verdict::True, "stale constant window is < 70");
        assert!(out.degraded, "stale answers carry no live guarantee");
        assert_eq!(out.staleness, 1);
        assert_eq!(out.stale_leaves, 1);
        assert_eq!(out.cost, 0.0);
        let stats = sched.arrangements().unwrap().stats();
        assert_eq!(stats.hits, 0, "stale serves do not count as hits");
    }

    #[test]
    fn attach_and_take_move_the_store_between_schedulers() {
        use paotr_arrange::{ArrangeConfig, ArrangementStore};

        let mut store = ArrangementStore::new(ArrangeConfig::default());
        assert!(store.acquire(StreamId(0), 3));
        let mut sched = Scheduler::new(1, MemoryPolicy::ClearEachQuery);
        assert!(sched.take_arrangements().is_none());
        assert_eq!(sched.policy(), MemoryPolicy::ClearEachQuery);
        sched.attach_arrangements(store);
        assert_eq!(sched.policy(), MemoryPolicy::Arranged);
        assert_eq!(sched.arrangements().unwrap().len(), 1);
        let back = sched.take_arrangements().expect("store comes back");
        assert_eq!(back.len(), 1);
        assert_eq!(sched.policy(), MemoryPolicy::ClearEachQuery);
        assert!(sched.arrangements().is_none());
    }
}
