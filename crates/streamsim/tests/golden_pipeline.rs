// Golden constants are pinned at full captured precision on purpose.
#![allow(clippy::excessive_precision)]

//! Golden pin of the calibrate–schedule–measure pipeline on the seed
//! telehealth scenario, captured before the engine was ported onto the
//! unified runtime (`Scheduler` + `EnergyMeter`). The adapter must
//! reproduce the pre-refactor energies and calibration estimates.

use paotr_core::stream::{StreamCatalog, StreamId};
use stream_sim::{
    run_pipeline, Comparator, PipelineConfig, Predicate, SensorModel, SensorSource, SimLeaf,
    SimQuery, WindowOp,
};

#[test]
fn telehealth_pipeline_matches_pre_refactor_trace() {
    let hr = SensorModel::Sine {
        offset: 80.0,
        amplitude: 25.0,
        period: 97.0,
        noise: 3.0,
    };
    let spo2 = SensorModel::RandomWalk {
        start: 0.97,
        step: 0.004,
        min: 0.85,
        max: 1.0,
    };
    let q = SimQuery::new(vec![
        vec![SimLeaf {
            stream: StreamId(0),
            predicate: Predicate::new(WindowOp::Avg, 5, Comparator::Gt, 100.0),
        }],
        vec![
            SimLeaf {
                stream: StreamId(0),
                predicate: Predicate::new(WindowOp::Avg, 3, Comparator::Lt, 60.0),
            },
            SimLeaf {
                stream: StreamId(1),
                predicate: Predicate::new(WindowOp::Min, 4, Comparator::Lt, 0.92),
            },
        ],
    ])
    .unwrap();
    let cat = StreamCatalog::from_costs([1.0, 4.0]).unwrap();
    let engine = paotr_core::plan::Engine::new();
    let report = run_pipeline(
        &q,
        vec![SensorSource::new(hr), SensorSource::new(spo2)],
        &cat,
        PipelineConfig {
            warmup_evaluations: 100,
            measure_evaluations: 200,
            ..Default::default()
        },
        |tree, cat| {
            let plan = engine.plan(tree, cat).expect("DNF skeletons plan");
            plan.body
                .to_dnf_schedule(tree)
                .expect("schedule-shaped plan")
        },
    );
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
    assert!(
        close(report.mean_cost, 8.35999999999999943e0),
        "mean_cost {:.17e}",
        report.mean_cost
    );
    assert!(close(report.truth_rate, 4.24999999999999989e-1));
    assert_eq!(report.items_pulled, vec![1000, 168]);
    let golden_probs = [
        1.86274509803921573e-1,
        2.38095238095238082e-1,
        4.76190476190476164e-2,
    ];
    assert_eq!(report.estimated_probs.len(), golden_probs.len());
    for (got, want) in report.estimated_probs.iter().zip(&golden_probs) {
        assert!(close(*got, *want), "prob {got:.17e} vs {want:.17e}");
    }
}
