//! Property tests for the simulation substrate.

use paotr_core::stream::StreamId;
use proptest::prelude::*;
use stream_sim::{Comparator, DeviceMemory, Predicate, WindowOp};

proptest! {
    /// Device memory: after inserting a window ending at `now`, nothing in
    /// that window is missing, and a *wider* window at the same time is
    /// missing exactly the difference (clipped to items that exist —
    /// timestamps start at 1).
    #[test]
    fn memory_window_accounting(now in 1u64..10_000, w1 in 1u32..50, w2 in 1u32..50) {
        let mut m = DeviceMemory::new(1);
        let k = StreamId(0);
        m.insert_window(k, now, w1);
        prop_assert_eq!(m.missing(k, now, w1), 0);
        let exist = |w: u32| u64::from(w).min(now) as u32;
        if w2 > w1 {
            prop_assert_eq!(m.missing(k, now, w2), exist(w2) - exist(w1));
        } else {
            prop_assert_eq!(m.missing(k, now, w2), 0);
        }
    }

    /// Advancing time by `s` ticks leaves a `w`-window missing exactly
    /// `min(s, w)` items.
    #[test]
    fn memory_shift_accounting(now in 100u64..10_000, w in 1u32..50, s in 0u64..100) {
        let mut m = DeviceMemory::new(1);
        let k = StreamId(0);
        m.insert_window(k, now, w);
        let missing = m.missing(k, now + s, w);
        prop_assert_eq!(u64::from(missing), s.min(u64::from(w)));
    }

    /// Pruning to the relevance horizon never makes a current window
    /// report fewer missing items than an unpruned memory would.
    #[test]
    fn pruning_is_conservative(now in 100u64..5_000, w in 1u32..30) {
        let k = StreamId(0);
        let mut pruned = DeviceMemory::new(1);
        let mut full = DeviceMemory::new(1);
        pruned.insert_window(k, now, w);
        full.insert_window(k, now, w);
        let later = now + 10;
        pruned.prune(k, later.saturating_sub(u64::from(w) - 1));
        prop_assert!(pruned.missing(k, later, w) >= full.missing(k, later, w));
        // ...but for the *relevant* window they agree exactly:
        prop_assert_eq!(pruned.missing(k, later, w), full.missing(k, later, w));
    }

    /// Window operators are within the window's min/max bounds, and AVG
    /// is order-invariant.
    #[test]
    fn operator_bounds(window in prop::collection::vec(-100.0f64..100.0, 1..20)) {
        let lo = window.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(WindowOp::Min.apply(&window), lo);
        prop_assert_eq!(WindowOp::Max.apply(&window), hi);
        let avg = WindowOp::Avg.apply(&window);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
        let mut rev = window.clone();
        rev.reverse();
        prop_assert!((WindowOp::Avg.apply(&rev) - avg).abs() < 1e-9);
    }

    /// Predicates are monotone in their threshold: if `x < t` holds, it
    /// holds for every larger `t`.
    #[test]
    fn predicate_threshold_monotonicity(
        window in prop::collection::vec(-50.0f64..50.0, 1..10),
        t1 in -60.0f64..60.0,
        bump in 0.0f64..20.0,
    ) {
        let w = window.len() as u32;
        let lt1 = Predicate::new(WindowOp::Avg, w, Comparator::Lt, t1);
        let lt2 = Predicate::new(WindowOp::Avg, w, Comparator::Lt, t1 + bump);
        if lt1.eval(&window) {
            prop_assert!(lt2.eval(&window));
        }
        let gt1 = Predicate::new(WindowOp::Max, w, Comparator::Gt, t1 + bump);
        let gt2 = Predicate::new(WindowOp::Max, w, Comparator::Gt, t1);
        if gt1.eval(&window) {
            prop_assert!(gt2.eval(&window));
        }
    }
}
