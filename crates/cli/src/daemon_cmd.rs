//! `paotr serve --daemon` — the long-running serving daemon.
//!
//! Speaks the newline-delimited JSON protocol from `paotr_serverd` over
//! stdin/stdout, or over TCP with `--listen ADDR` (concurrent clients,
//! one thread per connection over the shared daemon). With `--snapshot
//! PATH` the daemon restores its state from `PATH` at startup (when the
//! file exists) and writes it back on clean shutdown, so restarts
//! continue tick-for-tick where the previous process stopped.

use paotr_serverd::{Config, Daemon, FaultSpec, TcpOptions};
use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub fn run(args: &[String]) -> Result<(), String> {
    let mut config = Config::default();
    let mut listen: Option<String> = None;
    let mut snapshot: Option<String> = None;
    let mut tcp = TcpOptions::default();

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        let take = |name: &str| -> Result<String, String> {
            value
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag {
            "--seed" => {
                config.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
                i += 2;
            }
            "--planner" => {
                config.planner = take("--planner")?;
                i += 2;
            }
            "--budget" => {
                let b: f64 = take("--budget")?
                    .parse()
                    .map_err(|_| "--budget expects a number".to_string())?;
                if !(b.is_finite() && b >= 0.0) {
                    return Err("--budget expects a finite energy value >= 0".into());
                }
                config.budget = Some(b);
                i += 2;
            }
            "--shed" => {
                config.defer = false;
                i += 1;
            }
            "--replan-after" => {
                config.replan_after = take("--replan-after")?
                    .parse()
                    .map_err(|_| "--replan-after expects an integer (0 = never)".to_string())?;
                i += 2;
            }
            "--max-sessions" => {
                config.max_sessions = take("--max-sessions")?
                    .parse()
                    .map_err(|_| "--max-sessions expects an integer >= 1".to_string())?;
                i += 2;
            }
            "--max-window" => {
                config.max_window = take("--max-window")?
                    .parse()
                    .map_err(|_| "--max-window expects an integer >= 1".to_string())?;
                i += 2;
            }
            "--arrange" => {
                config.arrange.get_or_insert_with(Default::default);
                i += 1;
            }
            "--arrange-grace" => {
                let grace = take("--arrange-grace")?
                    .parse()
                    .map_err(|_| "--arrange-grace expects an integer".to_string())?;
                config.arrange.get_or_insert_with(Default::default).grace = grace;
                i += 2;
            }
            "--listen" => {
                listen = Some(take("--listen")?);
                i += 2;
            }
            "--snapshot" => {
                snapshot = Some(take("--snapshot")?);
                i += 2;
            }
            "--idle-timeout" => {
                let ms: u64 = take("--idle-timeout")?
                    .parse()
                    .map_err(|_| "--idle-timeout expects milliseconds".to_string())?;
                tcp.idle_timeout = Some(Duration::from_millis(ms));
                i += 2;
            }
            "--faults" => {
                config.faults.get_or_insert_with(FaultSpec::default);
                i += 1;
            }
            "--fault-seed" => {
                config.faults.get_or_insert_with(FaultSpec::default).seed = take("--fault-seed")?
                    .parse()
                    .map_err(|_| "--fault-seed expects an integer".to_string())?;
                i += 2;
            }
            "--fault-rate" => {
                let r: f64 = take("--fault-rate")?
                    .parse()
                    .map_err(|_| "--fault-rate expects a number".to_string())?;
                if !(r.is_finite() && (0.0..=1.0).contains(&r)) {
                    return Err("--fault-rate expects a probability in [0, 1]".into());
                }
                config
                    .faults
                    .get_or_insert_with(FaultSpec::default)
                    .transient_rate = r;
                i += 2;
            }
            "--outage-streams" => {
                let share: f64 = take("--outage-streams")?
                    .parse()
                    .map_err(|_| "--outage-streams expects a number".to_string())?;
                if !(share.is_finite() && (0.0..=1.0).contains(&share)) {
                    return Err("--outage-streams expects a share in [0, 1]".into());
                }
                config
                    .faults
                    .get_or_insert_with(FaultSpec::default)
                    .outage_streams = share;
                i += 2;
            }
            "--outage-len" => {
                config
                    .faults
                    .get_or_insert_with(FaultSpec::default)
                    .outage_len = take("--outage-len")?
                    .parse()
                    .map_err(|_| "--outage-len expects an integer".to_string())?;
                i += 2;
            }
            "--outage-gap" => {
                config
                    .faults
                    .get_or_insert_with(FaultSpec::default)
                    .outage_gap = take("--outage-gap")?
                    .parse()
                    .map_err(|_| "--outage-gap expects an integer".to_string())?;
                i += 2;
            }
            "--retries" => {
                let attempts: u32 = take("--retries")?
                    .parse()
                    .map_err(|_| "--retries expects an integer >= 1".to_string())?;
                if attempts == 0 {
                    return Err("--retries expects an integer >= 1".into());
                }
                config
                    .faults
                    .get_or_insert_with(FaultSpec::default)
                    .max_attempts = attempts;
                i += 2;
            }
            "--no-stale" => {
                config
                    .faults
                    .get_or_insert_with(FaultSpec::default)
                    .stale_serve = false;
                i += 1;
            }
            other => return Err(format!("unknown daemon flag `{other}`")),
        }
    }
    if config.max_sessions == 0 {
        return Err("--max-sessions expects an integer >= 1".into());
    }
    if config.max_window == 0 {
        return Err("--max-window expects an integer >= 1".into());
    }

    // Restore from the snapshot when one exists; the snapshot's embedded
    // config wins so the restored run replays the original stream data.
    let mut daemon = match &snapshot {
        Some(path) if std::path::Path::new(path).exists() => {
            let d = Daemon::load_snapshot(path).map_err(|e| e.to_string())?;
            eprintln!(
                "restored snapshot {path}: tick {}, {} sessions",
                d.tick(),
                d.registry().len()
            );
            d
        }
        _ => Daemon::new(config).map_err(|e| e.to_string())?,
    };

    let shutdown = if let Some(addr) = listen {
        let listener = TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
        eprintln!(
            "daemon listening on {}",
            listener.local_addr().map_err(|e| e.to_string())?
        );
        let shared = Arc::new(Mutex::new(daemon));
        Daemon::serve_tcp_shared_with(Arc::clone(&shared), &listener, tcp)
            .map_err(|e| format!("serve: {e}"))?;
        daemon = Arc::try_unwrap(shared)
            .map_err(|_| "a connection thread outlived the serve loop".to_string())?
            .into_inner()
            .map_err(|_| "a connection thread panicked holding the daemon".to_string())?;
        true
    } else {
        let stdin = std::io::stdin();
        let mut stdout = std::io::stdout();
        let done = daemon
            .serve(BufReader::new(stdin.lock()), &mut stdout)
            .map_err(|e| format!("serve: {e}"))?;
        stdout.flush().ok();
        done
    };

    if let Some(path) = &snapshot {
        daemon.save_snapshot(path).map_err(|e| e.to_string())?;
        eprintln!("saved snapshot {path} at tick {}", daemon.tick());
    }
    if !shutdown {
        eprintln!("input closed without a shutdown command");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn rejects_bad_flags() {
        assert!(super::run(&["--bogus".into()]).is_err());
        assert!(super::run(&["--budget".into(), "-1".into()]).is_err());
        assert!(super::run(&["--max-sessions".into(), "0".into()]).is_err());
        assert!(super::run(&["--replan-after".into()]).is_err());
        assert!(super::run(&["--fault-rate".into(), "2".into()]).is_err());
        assert!(super::run(&["--outage-streams".into(), "-1".into()]).is_err());
        assert!(super::run(&["--retries".into(), "0".into()]).is_err());
        assert!(super::run(&["--idle-timeout".into(), "soon".into()]).is_err());
    }
}
