//! Unit tests for CLI argument handling.

use crate::{heuristic_by_name, parse_common};
use paotr_core::algo::heuristics::Heuristic;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn parses_query_and_costs() {
    let a = args(&["A < 1 AND B < 2", "--costs", "A=2,B=0.5"]);
    let c = parse_common(&a).unwrap();
    assert_eq!(c.query, "A < 1 AND B < 2");
    assert_eq!(c.costs["A"], 2.0);
    assert_eq!(c.costs["B"], 0.5);
    assert!(c.rest.is_empty());
}

#[test]
fn collects_unknown_flags_for_subcommands() {
    let a = args(&["A < 1", "--heuristic", "leaf-inc-c", "--all"]);
    let c = parse_common(&a).unwrap();
    assert_eq!(c.rest.len(), 2);
    assert_eq!(c.rest[0], ("--heuristic".to_string(), Some("leaf-inc-c".to_string())));
    assert_eq!(c.rest[1], ("--all".to_string(), None));
}

#[test]
fn rejects_missing_query() {
    assert!(parse_common(&args(&[])).is_err());
    assert!(parse_common(&args(&["--costs", "A=1"])).is_err());
}

#[test]
fn rejects_malformed_costs() {
    assert!(parse_common(&args(&["A < 1", "--costs", "A"])).is_err());
    assert!(parse_common(&args(&["A < 1", "--costs", "A=x"])).is_err());
}

#[test]
fn resolves_every_documented_heuristic_name() {
    for name in [
        "stream-ordered",
        "leaf-random",
        "leaf-dec-q",
        "leaf-inc-c",
        "leaf-inc-cq",
        "and-dec-p",
        "and-inc-c-stat",
        "and-inc-cp-stat",
        "and-inc-c-dyn",
        "and-inc-cp-dyn",
    ] {
        assert!(heuristic_by_name(name, 1).is_ok(), "{name}");
    }
    assert!(heuristic_by_name("bogus", 1).is_err());
    assert!(matches!(
        heuristic_by_name("and-inc-cp-dyn", 1).unwrap(),
        Heuristic::AndIncCOverPDynamic
    ));
}

#[test]
fn compile_reports_parse_errors_with_rendering() {
    let a = args(&["A <"]);
    let c = parse_common(&a).unwrap();
    let err = crate::compile(&c).unwrap_err();
    assert!(err.contains('^'), "rendered caret expected: {err}");
}
