//! Unit tests for CLI argument handling.

use crate::{parse_common, plan_by_name};
use paotr_core::plan::Engine;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn parses_query_and_costs() {
    let a = args(&["A < 1 AND B < 2", "--costs", "A=2,B=0.5"]);
    let c = parse_common(&a).unwrap();
    assert_eq!(c.query, "A < 1 AND B < 2");
    assert_eq!(c.costs["A"], 2.0);
    assert_eq!(c.costs["B"], 0.5);
    assert!(c.rest.is_empty());
}

#[test]
fn collects_unknown_flags_for_subcommands() {
    let a = args(&["A < 1", "--heuristic", "leaf-inc-c", "--all"]);
    let c = parse_common(&a).unwrap();
    assert_eq!(c.rest.len(), 2);
    assert_eq!(
        c.rest[0],
        ("--heuristic".to_string(), Some("leaf-inc-c".to_string()))
    );
    assert_eq!(c.rest[1], ("--all".to_string(), None));
}

#[test]
fn rejects_missing_query() {
    assert!(parse_common(&args(&[])).is_err());
    assert!(parse_common(&args(&["--costs", "A=1"])).is_err());
}

#[test]
fn rejects_malformed_costs() {
    assert!(parse_common(&args(&["A < 1", "--costs", "A"])).is_err());
    assert!(parse_common(&args(&["A < 1", "--costs", "A=x"])).is_err());
}

#[test]
fn accepts_exactly_the_registry_names() {
    let engine = Engine::new();
    let query = paotr_qlang::compile_str("(A < 1 AND B < 2) OR A > 9").unwrap();
    let dnf = query.tree.as_dnf().unwrap();
    // every registry name is accepted (planners that do not support the
    // query class report UnsupportedQuery, not an unknown-name error)
    for name in engine.registry().names() {
        match plan_by_name(&engine, name, 1, &dnf, &query.catalog) {
            // Seeded heuristics fold the non-default seed into the
            // reported planner name (it is their cache identity).
            Ok(plan) => assert!(
                plan.planner == name || plan.planner == format!("{name}@seed=1"),
                "`{name}` reported planner `{}`",
                plan.planner
            ),
            Err(e) => assert!(
                e.contains("does not support"),
                "`{name}` should be a known planner, got: {e}"
            ),
        }
    }
    // ...and nothing else is
    let err = plan_by_name(&engine, "bogus", 1, &dnf, &query.catalog).unwrap_err();
    assert!(err.contains("unknown planner"), "{err}");
}

#[test]
fn seed_flag_reaches_the_random_heuristic() {
    let engine = Engine::new();
    let query = paotr_qlang::compile_str("(A < 1 AND B < 2) OR (C < 3 AND D < 4)").unwrap();
    let dnf = query.tree.as_dnf().unwrap();
    let a = plan_by_name(&engine, "leaf-random", 7, &dnf, &query.catalog).unwrap();
    let b = plan_by_name(&engine, "leaf-random", 7, &dnf, &query.catalog).unwrap();
    assert_eq!(a, b, "same seed, same plan");
    let c = (0..32)
        .map(|s| plan_by_name(&engine, "leaf-random", s, &dnf, &query.catalog).unwrap())
        .any(|p| p != a);
    assert!(c, "some seed must permute four leaves differently");
}

#[test]
fn compile_reports_parse_errors_with_rendering() {
    let a = args(&["A <"]);
    let c = parse_common(&a).unwrap();
    let err = crate::compile(&c).unwrap_err();
    assert!(err.contains('^'), "rendered caret expected: {err}");
}

#[test]
fn check_rejects_unknown_subjects_and_flags() {
    assert!(crate::check_cmd::run(&args(&[])).is_err());
    assert!(crate::check_cmd::run(&args(&["plans"])).is_err());
    assert!(crate::check_cmd::run(&args(&["workload", "--bogus"])).is_err());
}

#[test]
fn check_workload_passes_for_every_planner() {
    let a = args(&["workload", "--queries", "4", "--all"]);
    crate::check_cmd::run(&a).unwrap();
}

#[test]
fn check_query_flags_lints_with_nonzero_result() {
    // clean query: ok
    crate::check_cmd::run(&args(&["query", "A < 1 AND B > 2"])).unwrap();
    // absorbed term: reported as an error result
    assert!(crate::check_cmd::run(&args(&["query", "A < 1 OR (A < 1 AND B > 2)"])).is_err());
    // syntax errors surface the parser's caret diagnostic
    let err = crate::check_cmd::run(&args(&["query", "AND AND"])).unwrap_err();
    assert!(err.contains("^"), "{err}");
}

#[test]
fn check_snapshot_accepts_committed_fixtures() {
    for fixture in [
        "tests/fixtures/snapshot_v1.snap",
        "tests/fixtures/snapshot_v2.snap",
    ] {
        // cargo test runs with cwd = crates/cli
        let path = format!("../serverd/{fixture}");
        crate::check_cmd::run(&args(&["snapshot", &path])).unwrap();
    }
    let bad = "../check/tests/fixtures/snapshot_refcount_imbalance.snap";
    assert!(crate::check_cmd::run(&args(&["snapshot", bad])).is_err());
}
