//! `paotr` — command-line front end for the PAOTR library.
//!
//! ```text
//! paotr schedule "(AVG(A,5) < 70 @0.6 AND MAX(B,4) > 100 @0.2) OR C < 3 @0.5" \
//!       [--costs A=1,B=2.5,C=8] [--heuristic NAME | --all | --optimal]
//! paotr explain  "<query>" [--costs ...]      # heuristic metrics per leaf/AND/stream
//! paotr simulate "<query>" [--costs ...] [--evals N] [--retain]
//! paotr workload [--queries N] [--overlap F] [--seed S] [--planner NAME | --compare]
//! paotr serve    [--queries N] [--arrivals poisson|periodic] [--budget J] [--compare]
//! paotr serve    --daemon [--budget J] [--listen ADDR] [--snapshot PATH]
//! paotr check    snapshot <path> | query "<q>" | workload [--planner NAME | --all]
//! ```
//!
//! Probabilities come from `@` annotations (default 0.5). Stream costs
//! default to 1.0.

#![forbid(unsafe_code)]
mod check_cmd;
mod daemon_cmd;
mod explain;
mod schedule_cmd;
mod serve_cmd;
mod simulate_cmd;
#[cfg(test)]
mod tests;
mod workload_cmd;

use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        print_help();
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "schedule" => schedule_cmd::run(rest),
        "explain" => explain::run(rest),
        "simulate" => simulate_cmd::run(rest),
        "workload" => workload_cmd::run(rest),
        "serve" => serve_cmd::run(rest),
        "check" => check_cmd::run(rest),
        "--help" | "-h" | "help" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "paotr — cost-optimal execution of boolean query trees with shared streams\n\n\
         usage:\n\
         \x20 paotr schedule \"<query>\" [--costs A=1,B=2] [--heuristic NAME | --all | --optimal]\n\
         \x20 paotr explain  \"<query>\" [--costs A=1,B=2]\n\
         \x20 paotr simulate \"<query>\" [--costs A=1,B=2] [--evals N] [--retain] [--seed S]\n\
         \x20 paotr workload [--queries N] [--overlap F] [--seed S] [--evals N]\n\
         \x20                [--planner independent|shared-greedy|batch-aware | --compare]\n\
         \x20                [--no-sim] [--threads N]\n\
         \x20 paotr serve    [--queries N] [--overlap F] [--seed S] [--ticks N]\n\
         \x20                [--arrivals poisson|periodic] [--rate F] [--every N]\n\
         \x20                [--budget J] [--defer] [--no-drift] [--drift-tolerance F]\n\
         \x20                [--planner NAME | --compare] [--check-budget J]\n\
         \x20 paotr serve    --daemon [--seed S] [--planner NAME] [--budget J] [--shed]\n\
         \x20                [--replan-after N] [--max-sessions N] [--max-window N]\n\
         \x20                [--listen ADDR] [--snapshot PATH]\n\
         \x20 paotr check    snapshot <path>\n\
         \x20 paotr check    query \"<query or file>\" [--costs A=1,B=2]\n\
         \x20 paotr check    workload [--queries N] [--overlap F] [--seed S]\n\
         \x20                [--planner NAME | --all] [--budget J]\n\n\
         query syntax: AVG|MAX|MIN|SUM|LAST(stream, window) CMP threshold [@ prob],\n\
         \x20 bare `stream CMP x` = LAST(stream,1); AND/&& binds tighter than OR/||.\n\n\
         planner names (for --heuristic; default and-inc-cp-dyn):"
    );
    // One source of truth: the registry, not a hand-rolled name table.
    let registry = paotr_core::plan::PlannerRegistry::with_defaults();
    let names = registry.names().join(", ");
    println!("  {names}");
}

/// Shared argument plumbing for the subcommands.
pub(crate) struct CommonArgs {
    pub query: String,
    pub costs: HashMap<String, f64>,
    pub rest: Vec<(String, Option<String>)>,
}

pub(crate) fn parse_common(args: &[String]) -> Result<CommonArgs, String> {
    let Some((query, flags)) = args.split_first() else {
        return Err("expected a query string".into());
    };
    if query.starts_with("--") {
        return Err("the query string must come before flags".into());
    }
    let mut costs = HashMap::new();
    let mut rest = Vec::new();
    let mut i = 0;
    while i < flags.len() {
        let flag = &flags[i];
        if !flag.starts_with("--") {
            return Err(format!("unexpected argument `{flag}`"));
        }
        let value = flags.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
        if flag == "--costs" {
            let spec = value.clone().ok_or("--costs expects e.g. A=1,B=2.5")?;
            for pair in spec.split(',') {
                let (name, cost) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad cost `{pair}`"))?;
                let cost: f64 = cost
                    .parse()
                    .map_err(|_| format!("bad cost value `{cost}`"))?;
                costs.insert(name.trim().to_string(), cost);
            }
        } else {
            rest.push((flag.clone(), value.clone()));
        }
        i += if value.is_some() { 2 } else { 1 };
    }
    Ok(CommonArgs {
        query: query.clone(),
        costs,
        rest,
    })
}

/// Plans `query` with the planner named `name`, honoring `--seed` for
/// the seeded heuristics. The accepted names are exactly
/// [`paotr_core::plan::PlannerRegistry::names`]; heuristic names parse
/// through [`Heuristic`](paotr_core::algo::heuristics::Heuristic)'s
/// `FromStr`, so the CLI has no name table of its own.
pub(crate) fn plan_by_name<'a>(
    engine: &paotr_core::plan::Engine,
    name: &str,
    seed: u64,
    query: impl Into<paotr_core::plan::QueryRef<'a>>,
    catalog: &paotr_core::stream::StreamCatalog,
) -> Result<paotr_core::plan::Plan, String> {
    use paotr_core::algo::heuristics::Heuristic;
    use paotr_core::plan::{planners::HeuristicPlanner, Planner};
    if engine.registry().get(name).is_none() {
        return Err(format!("unknown planner `{name}` (see --help)"));
    }
    match name.parse::<Heuristic>() {
        // Seeded heuristics bypass the cache so --seed is honored.
        Ok(h) if h.with_seed(seed) != h => HeuristicPlanner::new(h.with_seed(seed))
            .plan(&query.into(), catalog)
            .map_err(|e| e.to_string()),
        _ => engine
            .plan_with(name, query, catalog)
            .map_err(|e| e.to_string()),
    }
}

/// Parses the query and compiles it against the cost table.
pub(crate) fn compile(
    common: &CommonArgs,
) -> Result<(paotr_qlang::Expr, paotr_qlang::Compiled), String> {
    let expr =
        paotr_qlang::parse(&common.query).map_err(|e| format!("\n{}", e.render(&common.query)))?;
    let compiled = paotr_qlang::compile(&expr, &common.costs)
        .map_err(|e| format!("\n{}", e.render(&common.query)))?;
    Ok((expr, compiled))
}
