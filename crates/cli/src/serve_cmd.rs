//! `paotr serve` — serve a generated workload through the tick-driven
//! serving runtime: arrival processes, admission control and drift
//! re-planning, with a live summary rendered through `paotr_stats`.

use paotr_core::plan::Engine;
use paotr_exec::{
    AcceptAll, AdmissionPolicy, ArrivalSpec, DriftConfig, EnergyBudget, FaultSpec, ServeConfig,
    ServeLoop, ServeReport,
};
use paotr_gen::workload::{workload_instance, WorkloadConfig};
use paotr_multi::{planner_by_name, planner_names, Workload};

pub fn run(args: &[String]) -> Result<(), String> {
    // `--daemon` switches to the long-running protocol daemon; every
    // other flag then belongs to `daemon_cmd`.
    if args.iter().any(|a| a == "--daemon") {
        let rest: Vec<String> = args.iter().filter(|a| *a != "--daemon").cloned().collect();
        return crate::daemon_cmd::run(&rest);
    }
    let mut queries = 16usize;
    let mut overlap = 0.5f64;
    let mut seed = 0u64;
    let mut ticks = 400usize;
    let mut arrivals = "poisson".to_string();
    let mut rate = 0.5f64;
    let mut every = 1u64;
    let mut budget: Option<f64> = None;
    let mut defer = false;
    let mut drift = true;
    let mut drift_tolerance = 0.15f64;
    let mut planner: Option<String> = None;
    let mut compare_all = false;
    let mut check_budget: Option<f64> = None;
    let mut arrange = false;
    let mut arrange_grace = paotr_exec::ArrangeConfig::default().grace;
    let mut faults: Option<FaultSpec> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        let take = |name: &str| -> Result<String, String> {
            value
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        let parse_num = |name: &str, out: &mut f64| -> Result<(), String> {
            *out = take(name)?
                .parse()
                .map_err(|_| format!("{name} expects a number"))?;
            Ok(())
        };
        match flag {
            "--queries" => {
                queries = take("--queries")?
                    .parse()
                    .map_err(|_| "--queries expects an integer".to_string())?;
                i += 2;
            }
            "--overlap" => {
                parse_num("--overlap", &mut overlap)?;
                i += 2;
            }
            "--seed" => {
                seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
                i += 2;
            }
            "--ticks" => {
                ticks = take("--ticks")?
                    .parse()
                    .map_err(|_| "--ticks expects an integer".to_string())?;
                i += 2;
            }
            "--arrivals" => {
                arrivals = take("--arrivals")?;
                i += 2;
            }
            "--rate" => {
                parse_num("--rate", &mut rate)?;
                i += 2;
            }
            "--every" => {
                every = take("--every")?
                    .parse()
                    .map_err(|_| "--every expects an integer >= 1".to_string())?;
                i += 2;
            }
            "--budget" => {
                let mut b = 0.0;
                parse_num("--budget", &mut b)?;
                budget = Some(b);
                i += 2;
            }
            "--defer" => {
                defer = true;
                i += 1;
            }
            "--no-drift" => {
                drift = false;
                i += 1;
            }
            "--drift-tolerance" => {
                parse_num("--drift-tolerance", &mut drift_tolerance)?;
                i += 2;
            }
            "--planner" => {
                planner = Some(take("--planner")?);
                i += 2;
            }
            "--compare" => {
                compare_all = true;
                i += 1;
            }
            "--check-budget" => {
                let mut b = 0.0;
                parse_num("--check-budget", &mut b)?;
                check_budget = Some(b);
                i += 2;
            }
            "--arrange" => {
                arrange = true;
                i += 1;
            }
            "--arrange-grace" => {
                arrange_grace = take("--arrange-grace")?
                    .parse()
                    .map_err(|_| "--arrange-grace expects an integer".to_string())?;
                i += 2;
            }
            "--faults" => {
                faults.get_or_insert_with(FaultSpec::default);
                i += 1;
            }
            "--fault-seed" => {
                faults.get_or_insert_with(FaultSpec::default).seed = take("--fault-seed")?
                    .parse()
                    .map_err(|_| "--fault-seed expects an integer".to_string())?;
                i += 2;
            }
            "--fault-rate" => {
                let mut r = 0.0;
                parse_num("--fault-rate", &mut r)?;
                faults.get_or_insert_with(FaultSpec::default).transient_rate = r;
                i += 2;
            }
            "--outage-streams" => {
                let mut share = 0.0;
                parse_num("--outage-streams", &mut share)?;
                faults.get_or_insert_with(FaultSpec::default).outage_streams = share;
                i += 2;
            }
            "--outage-len" => {
                faults.get_or_insert_with(FaultSpec::default).outage_len = take("--outage-len")?
                    .parse()
                    .map_err(|_| "--outage-len expects an integer".to_string())?;
                i += 2;
            }
            "--outage-gap" => {
                faults.get_or_insert_with(FaultSpec::default).outage_gap = take("--outage-gap")?
                    .parse()
                    .map_err(|_| "--outage-gap expects an integer".to_string())?;
                i += 2;
            }
            "--retries" => {
                faults.get_or_insert_with(FaultSpec::default).max_attempts = take("--retries")?
                    .parse()
                    .map_err(|_| "--retries expects an integer >= 1".to_string())?;
                i += 2;
            }
            "--no-stale" => {
                faults.get_or_insert_with(FaultSpec::default).stale_serve = false;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if queries == 0 {
        return Err("--queries must be at least 1".into());
    }
    if ticks == 0 {
        return Err("--ticks must be at least 1".into());
    }
    let arrivals = match arrivals.as_str() {
        "poisson" => {
            if !(rate.is_finite() && rate > 0.0) {
                return Err("--rate expects a finite number > 0".into());
            }
            ArrivalSpec::Poisson { rate }
        }
        "periodic" => {
            if every == 0 {
                return Err("--every expects an integer >= 1".into());
            }
            ArrivalSpec::Periodic { every }
        }
        other => {
            return Err(format!(
                "--arrivals expects poisson|periodic, got `{other}`"
            ))
        }
    };
    if let Some(b) = budget {
        if !(b.is_finite() && b >= 0.0) {
            return Err("--budget expects a finite energy value >= 0".into());
        }
    }
    if let Some(b) = check_budget {
        if !(b.is_finite() && b >= 0.0) {
            return Err("--check-budget expects a finite energy value >= 0".into());
        }
    }
    if let Some(f) = &faults {
        if !(0.0..=1.0).contains(&f.transient_rate) || !f.transient_rate.is_finite() {
            return Err("--fault-rate expects a probability in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&f.outage_streams) || !f.outage_streams.is_finite() {
            return Err("--outage-streams expects a share in [0, 1]".into());
        }
        if f.max_attempts == 0 {
            return Err("--retries expects an integer >= 1".into());
        }
    }

    let config = WorkloadConfig::with_overlap(queries, overlap);
    let (trees, catalog) = workload_instance(config, seed as usize);
    let workload = Workload::from_trees(trees, catalog).map_err(|e| e.to_string())?;
    let engine = Engine::new();

    let serve_config = ServeConfig {
        ticks,
        seed,
        arrivals,
        ticks_between: 1,
        drift: drift.then_some(DriftConfig {
            tolerance: drift_tolerance,
            ..Default::default()
        }),
        arrange: arrange.then_some(paotr_exec::ArrangeConfig {
            grace: arrange_grace,
        }),
        faults,
        record_verdicts: false,
    };

    println!(
        "serving            : {} queries, {} streams, {} ticks, {} arrivals ({})",
        workload.len(),
        workload.catalog().len(),
        ticks,
        arrivals.name(),
        match arrivals {
            ArrivalSpec::Poisson { rate } => format!("rate {rate}/tick"),
            ArrivalSpec::Periodic { every } => format!("every {every} ticks"),
        }
    );
    println!(
        "admission          : {}",
        match (budget, defer) {
            (None, _) => "accept-all (no budget)".to_string(),
            (Some(b), false) => format!("energy-budget {b} J/tick, shed"),
            (Some(b), true) => format!("energy-budget {b} J/tick, defer"),
        }
    );
    println!(
        "drift re-planning  : {}",
        if drift {
            format!("tolerance {drift_tolerance}")
        } else {
            "off".into()
        }
    );
    if let Some(f) = &faults {
        println!(
            "fault injection    : seed {}, transient rate {}, outages {:.0}% of streams \
             ({} down / {} up ticks), {} attempts, stale serving {}",
            f.seed,
            f.transient_rate,
            f.outage_streams * 100.0,
            f.outage_len,
            f.outage_gap,
            f.max_attempts,
            if f.stale_serve { "on" } else { "off" }
        );
    }
    println!();

    let chosen: Vec<String> = if compare_all {
        planner_names().iter().map(|s| s.to_string()).collect()
    } else {
        let name = planner.as_deref().unwrap_or("shared-greedy");
        if planner_by_name(name).is_none() {
            return Err(format!(
                "unknown workload planner `{name}` (expected one of: {})",
                planner_names().join(", ")
            ));
        }
        if name == "independent" {
            vec![name.to_string()]
        } else {
            vec!["independent".to_string(), name.to_string()]
        }
    };

    let mut reports: Vec<ServeReport> = Vec::new();
    for name in &chosen {
        let joint = planner_by_name(name)
            .expect("validated above")
            .plan(&workload, &engine)
            .map_err(|e| e.to_string())?;
        let serve = ServeLoop::new(&workload, &joint, serve_config);
        let mut policy: Box<dyn AdmissionPolicy> = match (budget, defer) {
            (None, _) => Box::new(AcceptAll),
            (Some(b), false) => Box::new(EnergyBudget::shedding(b)),
            (Some(b), true) => Box::new(EnergyBudget::deferring(b)),
        };
        let quarter = (ticks / 4).max(1);
        // Track the hottest tick so a budget violation names the
        // offending tick, not just the worst energy.
        let mut worst_tick = 0u64;
        let mut worst_energy = 0.0f64;
        let report = serve
            .run_with_progress(policy.as_mut(), &engine, |t| {
                if t.energy > worst_energy {
                    worst_energy = t.energy;
                    worst_tick = t.tick;
                }
                if (t.tick + 1) % quarter as u64 == 0 {
                    eprintln!(
                        "  [{name}] tick {:>5}: due {:>3}  admitted {:>3}  shed {:>3}  \
                         deferred {:>3}  energy {:>8.2}",
                        t.tick + 1,
                        t.due,
                        t.admitted,
                        t.shed,
                        t.deferred,
                        t.energy
                    );
                }
            })
            .map_err(|e| e.to_string())?;
        // Hard post-hoc check: `--budget` is enforced by admission, so a
        // violation here is a runtime bug; `--check-budget` audits a run
        // that had no admission ceiling. Either way the offense is fatal.
        if let Some(b) = check_budget.or(budget) {
            if report.max_tick_energy > b + 1e-9 {
                return Err(format!(
                    "budget violated at tick {worst_tick}: {worst_energy:.3} J > {b} J/tick \
                     (planner {name})"
                ));
            }
        }
        reports.push(report);
    }

    println!();
    print!("{}", ServeReport::summary_table(&reports).to_markdown());
    if arrange {
        println!();
        for r in &reports {
            println!(
                "arrangements [{:>13}]: {} maintained, {} items served from rings, \
                 {} pulled + {} maintained items ({:.2} J pulls + {:.2} J maintenance)",
                r.planner,
                r.arrangements,
                r.arrangement_hit_items,
                r.pulled_items,
                r.maintained_items,
                r.pull_energy,
                r.maintain_energy
            );
        }
    }
    if faults.is_some() {
        println!();
        for r in &reports {
            let det = r.determined as f64 / (r.served.max(1)) as f64;
            println!(
                "chaos [{:>13}]: {} retries ({:.2} J), {} failed reads, verdicts \
                 {} determined ({:.1}%) / {} degraded / {} unknown, {} stale leaves \
                 (max staleness {}), {} outage re-plans",
                r.planner,
                r.retries,
                r.retry_energy,
                r.failed_reads,
                r.determined,
                det * 100.0,
                r.degraded_verdicts,
                r.unknown_verdicts,
                r.stale_leaves,
                r.max_staleness,
                r.outage_replans
            );
        }
    }
    if let Some(b) = budget {
        println!();
        println!(
            "per-tick energy stayed within the {b} J budget on every tick of every run \
             (worst observed: {:.2} J)",
            reports
                .iter()
                .map(|r| r.max_tick_energy)
                .fold(0.0, f64::max)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn serves_poisson_with_budget_end_to_end() {
        super::run(&[
            "--queries".into(),
            "6".into(),
            "--ticks".into(),
            "40".into(),
            "--arrivals".into(),
            "poisson".into(),
            "--rate".into(),
            "0.6".into(),
            "--budget".into(),
            "30".into(),
            "--compare".into(),
        ])
        .unwrap();
    }

    #[test]
    fn serves_periodic_accept_all() {
        super::run(&[
            "--queries".into(),
            "4".into(),
            "--ticks".into(),
            "20".into(),
            "--arrivals".into(),
            "periodic".into(),
            "--every".into(),
            "2".into(),
            "--no-drift".into(),
        ])
        .unwrap();
    }

    #[test]
    fn serves_under_fault_injection_with_budget() {
        super::run(&[
            "--queries".into(),
            "6".into(),
            "--ticks".into(),
            "40".into(),
            "--arrivals".into(),
            "periodic".into(),
            "--budget".into(),
            "60".into(),
            "--faults".into(),
            "--fault-seed".into(),
            "42".into(),
            "--outage-streams".into(),
            "0.5".into(),
            "--retries".into(),
            "2".into(),
        ])
        .unwrap();
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(super::run(&["--bogus".into()]).is_err());
        assert!(super::run(&["--arrivals".into(), "nope".into()]).is_err());
        assert!(super::run(&["--planner".into(), "nope".into()]).is_err());
        assert!(super::run(&["--queries".into(), "0".into()]).is_err());
        assert!(super::run(&["--rate".into(), "0".into()]).is_err());
        assert!(super::run(&["--fault-rate".into(), "1.5".into()]).is_err());
        assert!(super::run(&["--outage-streams".into(), "-0.1".into()]).is_err());
        assert!(super::run(&["--retries".into(), "0".into()]).is_err());
        assert!(super::run(&[
            "--arrivals".into(),
            "periodic".into(),
            "--every".into(),
            "0".into()
        ])
        .is_err());
        assert!(super::run(&["--budget".into(), "-1".into()]).is_err());
    }
}
