//! `paotr simulate` — run a query against simulated sensors end to end.
//!
//! Each stream gets a default Gaussian sensor whose mean/spread are
//! derived from the thresholds that mention it, so every predicate has a
//! non-trivial truth probability out of the box. The pipeline calibrates
//! leaf probabilities from a warm-up trace, schedules with the paper's
//! best heuristic, and reports measured energy.

use crate::{compile, parse_common};
use paotr_core::plan::Engine;
use paotr_qlang::Expr;
use stream_sim::{run_pipeline, MemoryPolicy, PipelineConfig, SensorModel, SensorSource};

pub fn run(args: &[String]) -> Result<(), String> {
    let common = parse_common(args)?;
    let mut evals = 1000usize;
    let mut policy = MemoryPolicy::ClearEachQuery;
    let mut seed = 1u64;
    for (flag, value) in &common.rest {
        match flag.as_str() {
            "--evals" => {
                evals = value
                    .as_deref()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--evals expects an integer")?;
            }
            "--retain" => policy = MemoryPolicy::Retain,
            "--seed" => {
                seed = value
                    .as_deref()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed expects an integer")?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    let (expr, compiled) = compile(&common)?;
    let query = paotr_qlang::to_sim_query(&expr, &compiled)
        .ok_or("simulate supports DNF-shaped queries")?;

    // Derive per-stream sensor models from the thresholds mentioning them:
    // Gaussian with mean = average threshold, sd = half the threshold
    // spread (or 25% of |mean|).
    let models: Vec<SensorSource> = (0..compiled.catalog.len())
        .map(|k| {
            let name = compiled.catalog.name(paotr_core::stream::StreamId(k));
            let thresholds = collect_thresholds(&expr, &name);
            let mean = thresholds.iter().sum::<f64>() / thresholds.len().max(1) as f64;
            let spread = thresholds
                .iter()
                .map(|t| (t - mean).abs())
                .fold(0.0f64, f64::max)
                .max(mean.abs() * 0.25)
                .max(1.0);
            SensorSource::new(SensorModel::Gaussian {
                mean,
                std_dev: spread,
            })
        })
        .collect();

    let config = PipelineConfig {
        warmup_evaluations: (evals / 5).max(50),
        measure_evaluations: evals,
        ticks_between: 1,
        policy,
        seed,
    };
    // The engine picks the class default: Greiner on read-once queries,
    // the paper's best heuristic on shared ones. Calibration re-plans
    // with refreshed probabilities, so the plan cache carries repeats.
    let engine = Engine::new();
    let report = run_pipeline(&query, models, &compiled.catalog, config, |tree, cat| {
        engine
            .plan(tree, cat)
            .ok()
            .and_then(|p| p.body.to_dnf_schedule(tree))
            .expect("DNF queries always plan to a schedule")
    });

    println!(
        "calibrated probabilities : {:?}",
        report
            .estimated_probs
            .iter()
            .map(|p| (p * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!("chosen schedule          : {}", report.schedule);
    println!("energy per evaluation    : {:.4}", report.mean_cost);
    println!(
        "query TRUE rate          : {:.1}%",
        report.truth_rate * 100.0
    );
    for (k, items) in report.items_pulled.iter().enumerate() {
        println!(
            "items pulled from {:<6} : {items}",
            compiled.catalog.name(paotr_core::stream::StreamId(k))
        );
    }
    Ok(())
}

fn collect_thresholds(expr: &Expr, stream: &str) -> Vec<f64> {
    match expr {
        Expr::Pred(p) if p.stream == stream => vec![p.threshold],
        Expr::Pred(_) => Vec::new(),
        Expr::And(cs) | Expr::Or(cs) => cs
            .iter()
            .flat_map(|c| collect_thresholds(c, stream))
            .collect(),
    }
}
