//! `paotr workload` — joint planning of multi-query workloads.
//!
//! Generates a random workload over one shared catalog (via
//! `paotr_gen::workload`), analyses cross-query stream interference,
//! plans it with one or all workload planners and — unless `--no-sim` —
//! validates predictions against simulated energy in `stream-sim`'s
//! shared-pull execution path.

use paotr_core::plan::Engine;
use paotr_gen::workload::{workload_instance, WorkloadConfig};
use paotr_multi::{
    compare, default_planners, planner_by_name, SharedGreedyPlanner, SimConfig, Workload,
    WorkloadPlanner,
};

pub fn run(args: &[String]) -> Result<(), String> {
    let mut queries = 16usize;
    let mut overlap = 0.5f64;
    let mut seed = 0usize;
    let mut evals = 300usize;
    let mut planner: Option<String> = None;
    let mut compare_all = false;
    let mut simulate = true;
    let mut threads: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        let take = |name: &str| -> Result<String, String> {
            value
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag {
            "--queries" => {
                queries = take("--queries")?
                    .parse()
                    .map_err(|_| "--queries expects an integer".to_string())?;
                i += 2;
            }
            "--overlap" => {
                overlap = take("--overlap")?
                    .parse()
                    .map_err(|_| "--overlap expects a number in [0, 1]".to_string())?;
                i += 2;
            }
            "--seed" => {
                seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
                i += 2;
            }
            "--evals" => {
                evals = take("--evals")?
                    .parse()
                    .map_err(|_| "--evals expects an integer".to_string())?;
                i += 2;
            }
            "--planner" => {
                planner = Some(take("--planner")?);
                i += 2;
            }
            "--compare" => {
                compare_all = true;
                i += 1;
            }
            "--no-sim" => {
                simulate = false;
                i += 1;
            }
            "--threads" => {
                let t: usize = take("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects an integer >= 1".to_string())?;
                if t == 0 {
                    return Err("--threads expects an integer >= 1".into());
                }
                threads = Some(t);
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if queries == 0 {
        return Err("--queries must be at least 1".into());
    }

    let config = WorkloadConfig::with_overlap(queries, overlap);
    let (trees, catalog) = workload_instance(config, seed);
    let workload = Workload::from_trees(trees, catalog).map_err(|e| e.to_string())?;
    let engine = Engine::new();

    let interference = workload.interference(&engine).map_err(|e| e.to_string())?;
    println!(
        "workload           : {} queries, {} streams, {} leaves (seed {seed})",
        workload.len(),
        workload.catalog().len(),
        workload.num_leaves()
    );
    println!(
        "stream overlap     : {:.1}% mean pairwise ({} streams shared by >1 query)",
        interference.mean_pairwise_overlap() * 100.0,
        interference.shared_streams()
    );
    println!(
        "amortizable pulls  : {:.2} expected items/tick",
        interference.total_expected_overlap()
    );
    println!();

    // `--threads` pins the shared-greedy evaluation pool (planning
    // results are identical at any thread count; this is a wall-clock
    // knob).
    let with_threads = |mut planners: Vec<Box<dyn WorkloadPlanner>>| {
        if let Some(t) = threads {
            for p in &mut planners {
                if p.name() == "shared-greedy" {
                    *p = Box::new(SharedGreedyPlanner {
                        threads: paotr_par::ThreadCount::Fixed(t),
                        ..Default::default()
                    });
                }
            }
        }
        planners
    };

    let planners = with_threads(if compare_all {
        default_planners()
    } else {
        let name = planner.as_deref().unwrap_or("shared-greedy");
        let chosen = planner_by_name(name).ok_or_else(|| {
            format!(
                "unknown workload planner `{name}` (expected one of: {})",
                paotr_multi::planner_names().join(", ")
            )
        })?;
        if name == "independent" {
            vec![chosen]
        } else {
            // keep the baseline so sharing ratio / sim speedup are defined
            vec![planner_by_name("independent").expect("built-in"), chosen]
        }
    });

    let sim = simulate.then_some(SimConfig {
        ticks: evals,
        seed: seed as u64,
        ticks_between: 1,
    });
    let outcomes = compare(&workload, &engine, &planners, sim).map_err(|e| e.to_string())?;

    println!(
        "{:<15} {:>10} {:>9} {:>9} {:>16} {:>12}",
        "planner", "E[cost]", "sharing", "speedup", "sim energy/tick", "sim speedup"
    );
    for o in &outcomes {
        let sim_energy = o
            .simulated_energy
            .map(|e| format!("{e:.2}"))
            .unwrap_or_else(|| "-".into());
        let sim_speedup = o
            .simulated_speedup
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<15} {:>10.2} {:>8.1}% {:>8.2}x {:>16} {:>12}",
            o.planner,
            o.aggregate_predicted,
            o.sharing_ratio * 100.0,
            o.speedup,
            sim_energy,
            sim_speedup
        );
    }

    // Plan-cache attribution: how much planning work the engine paid for
    // once vs. served again from the cache — the cross-planner sharing
    // win in wall-clock terms.
    let stats = engine.cache_stats();
    println!();
    println!(
        "plan cache         : {} hits / {} misses ({:.1}% hit rate, {} entries)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries
    );
    println!(
        "planning latency   : {:.3} ms planned (misses) vs {:.3} ms served from cache (hits)",
        stats.planned_time().as_secs_f64() * 1e3,
        stats.served_time().as_secs_f64() * 1e3
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_compare_end_to_end() {
        super::run(&[
            "--queries".into(),
            "6".into(),
            "--overlap".into(),
            "0.6".into(),
            "--evals".into(),
            "40".into(),
            "--compare".into(),
        ])
        .unwrap();
    }

    #[test]
    fn runs_single_planner_without_simulation() {
        super::run(&[
            "--queries".into(),
            "4".into(),
            "--planner".into(),
            "batch-aware".into(),
            "--no-sim".into(),
        ])
        .unwrap();
    }

    #[test]
    fn rejects_unknown_flags_and_planners() {
        assert!(super::run(&["--bogus".into()]).is_err());
        assert!(super::run(&["--planner".into(), "nope".into()]).is_err());
        assert!(super::run(&["--queries".into(), "0".into()]).is_err());
        assert!(super::run(&["--threads".into(), "zero".into()]).is_err());
        assert!(super::run(&["--threads".into(), "0".into()]).is_err());
    }

    #[test]
    fn threads_flag_pins_the_shared_greedy_pool() {
        super::run(&[
            "--queries".into(),
            "5".into(),
            "--threads".into(),
            "2".into(),
            "--no-sim".into(),
            "--compare".into(),
        ])
        .unwrap();
    }
}
