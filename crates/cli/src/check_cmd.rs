//! `paotr check` — static verification without executing anything.
//!
//! ```text
//! paotr check snapshot <path>
//! paotr check query "<query or file>" [--costs A=1,B=2]
//! paotr check workload [--queries N] [--overlap F] [--seed S]
//!                      [--planner NAME | --all] [--budget J]
//! ```
//!
//! Exit status is non-zero when any violation is found, so the command
//! doubles as a CI gate.

use paotr_check::{check_snapshot_file, lint_query, verify_energy, verify_joint, CheckReport};
use paotr_core::plan::Engine;
use paotr_exec::EnergyBudget;
use paotr_gen::workload::{workload_instance, WorkloadConfig};
use paotr_multi::{default_planners, planner_by_name, Workload, WorkloadPlanner};

pub fn run(args: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(
            "expected a subject: `check snapshot <path>`, `check query <q>`, \
             or `check workload [...]`"
                .into(),
        );
    };
    match sub.as_str() {
        "snapshot" => snapshot(rest),
        "query" => query(rest),
        "workload" => workload(rest),
        other => Err(format!(
            "unknown check subject `{other}` (expected snapshot, query, or workload)"
        )),
    }
}

/// Renders a report and turns a dirty one into a CLI error.
fn finish(report: CheckReport) -> Result<(), String> {
    print!("{report}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} violation(s) found", report.errors.len()))
    }
}

fn snapshot(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: paotr check snapshot <path>".into());
    };
    finish(check_snapshot_file(path).map_err(|e| e.to_string())?)
}

fn query(args: &[String]) -> Result<(), String> {
    let common = crate::parse_common(args)?;
    if let Some((flag, _)) = common.rest.first() {
        return Err(format!("unknown flag `{flag}`"));
    }
    // A query argument naming a readable file is linted from the file;
    // anything else is treated as inline source.
    let source = match std::fs::read_to_string(&common.query) {
        Ok(text) => text.trim_end().to_string(),
        Err(_) => common.query.clone(),
    };
    // Surface parse errors through the parser's own caret diagnostic.
    paotr_qlang::parse(&source).map_err(|e| format!("\n{}", e.render(&source)))?;
    let report = lint_query(&source, &common.costs);
    for e in &report.errors {
        if let paotr_check::CheckError::Lint(l) = e {
            println!("{}\n", l.render(&source));
        }
    }
    finish(report)
}

fn workload(args: &[String]) -> Result<(), String> {
    let mut queries = 16usize;
    let mut overlap = 0.5f64;
    let mut seed = 0usize;
    let mut planner: Option<String> = None;
    let mut all = false;
    let mut budget: Option<f64> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        let take = |name: &str| -> Result<String, String> {
            value
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag {
            "--queries" => {
                queries = take("--queries")?
                    .parse()
                    .map_err(|_| "--queries expects an integer".to_string())?;
                i += 2;
            }
            "--overlap" => {
                overlap = take("--overlap")?
                    .parse()
                    .map_err(|_| "--overlap expects a number in [0, 1]".to_string())?;
                i += 2;
            }
            "--seed" => {
                seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
                i += 2;
            }
            "--planner" => {
                planner = Some(take("--planner")?);
                i += 2;
            }
            "--all" => {
                all = true;
                i += 1;
            }
            "--budget" => {
                budget = Some(
                    take("--budget")?
                        .parse()
                        .map_err(|_| "--budget expects a number".to_string())?,
                );
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if queries == 0 {
        return Err("--queries must be at least 1".into());
    }

    let config = WorkloadConfig::with_overlap(queries, overlap);
    let (trees, catalog) = workload_instance(config, seed);
    let workload = Workload::from_trees(trees, catalog).map_err(|e| e.to_string())?;
    let engine = Engine::new();

    let planners: Vec<Box<dyn WorkloadPlanner>> = if all {
        default_planners()
    } else {
        let name = planner.as_deref().unwrap_or("shared-greedy");
        vec![planner_by_name(name).ok_or_else(|| {
            format!(
                "unknown workload planner `{name}` (expected one of: {})",
                paotr_multi::planner_names().join(", ")
            )
        })?]
    };

    let mut combined = CheckReport::new(format!(
        "workload (queries={queries}, overlap={overlap}, seed={seed})"
    ));
    for p in planners {
        let joint = p.plan(&workload, &engine).map_err(|e| e.to_string())?;
        let mut report = verify_joint(&joint, &workload);
        if let Some(j) = budget {
            report.merge(verify_energy(
                &joint,
                &workload,
                &EnergyBudget::shedding(j),
                1.0,
            ));
        }
        println!(
            "{:<14} {} checks, {} violations",
            p.name(),
            report.checks_run,
            report.errors.len()
        );
        combined.merge(report);
    }
    finish(combined)
}
