//! `paotr explain` — print the metrics every heuristic family sorts by.
//!
//! For a DNF query this shows, side by side, exactly the numbers the
//! paper's heuristics compare: per-leaf `C`, `q`, `C/q` (leaf-ordered
//! family), per-AND `C`, `p`, `C/p` (AND-ordered family, static), and
//! per-stream `R(S)` (the Lim et al. stream-ordered metric).

use crate::{compile, parse_common};
use paotr_core::algo::heuristics::stream_ordered;
use paotr_core::cost::and_eval;

pub fn run(args: &[String]) -> Result<(), String> {
    let common = parse_common(args)?;
    if let Some((flag, _)) = common.rest.first() {
        return Err(format!("unknown flag `{flag}`"));
    }
    let (_, compiled) = compile(&common)?;
    let dnf = compiled
        .tree
        .as_dnf()
        .ok_or("explain currently supports DNF-shaped queries")?;
    let cat = &compiled.catalog;

    println!("Leaf metrics (leaf-ordered heuristics sort by these):");
    println!(
        "{:<10} {:<10} {:>8} {:>8} {:>8} {:>10}",
        "leaf", "stream", "d", "C=d*c", "q", "C/q"
    );
    for (r, leaf) in dnf.leaves() {
        let c = leaf.standalone_cost(cat);
        let q = leaf.fail();
        let ratio = if q > 0.0 { c / q } else { f64::INFINITY };
        println!(
            "{:<10} {:<10} {:>8} {:>8.3} {:>8.3} {:>10.3}",
            r.to_string(),
            cat.name(leaf.stream),
            leaf.items,
            c,
            q,
            ratio
        );
    }

    println!("\nAND-node metrics (AND-ordered heuristics; leaves via Algorithm 1):");
    println!("{:<8} {:>10} {:>8} {:>10}", "AND", "C", "p", "C/p");
    for (i, term) in dnf.terms().iter().enumerate() {
        use paotr_core::plan::{planners::GreedyPlanner, Planner, QueryRef};
        let at = term.as_and_tree();
        let plan = GreedyPlanner
            .plan(&QueryRef::from(&at), cat)
            .map_err(|e| e.to_string())?;
        let s = plan
            .body
            .as_and()
            .expect("AND-tree planner emits an AND schedule");
        let (c, p) = and_eval::expected_cost_and_prob(&at, cat, s);
        let ratio = if p > 0.0 { c / p } else { f64::INFINITY };
        println!("and{:<5} {:>10.4} {:>8.4} {:>10.4}", i + 1, c, p, ratio);
    }

    println!("\nStream metrics (stream-ordered heuristic, increasing R):");
    println!("{:<10} {:>10}", "stream", "R(S)");
    let mut metrics = stream_ordered::stream_metrics(&dnf, cat);
    metrics.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (k, r) in metrics {
        println!("{:<10} {:>10.4}", cat.name(k), r);
    }
    Ok(())
}
