//! `paotr schedule` — compute and price schedules for a query.

use crate::{compile, heuristic_by_name, parse_common};
use paotr_core::algo::exhaustive;
use paotr_core::algo::heuristics::paper_set;
use paotr_core::cost::dnf_eval;
use paotr_core::tree::display;

pub fn run(args: &[String]) -> Result<(), String> {
    let common = parse_common(args)?;
    let (_, compiled) = compile(&common)?;
    let Some(dnf) = compiled.tree.as_dnf() else {
        // General trees: use the recursive heuristic.
        let order = paotr_core::algo::general::schedule(&compiled.tree, &compiled.catalog);
        println!("{}", display::render_query_tree(&compiled.tree));
        println!("general AND-OR tree ({} leaves); recursive heuristic order:", order.len());
        println!("  {:?}", order);
        if compiled.tree.num_leaves() <= 12 {
            let cost = paotr_core::algo::general::expected_cost(
                &compiled.tree,
                &compiled.catalog,
                &order,
            );
            println!("  expected cost: {cost:.6}");
        }
        return Ok(());
    };

    println!("{}", display::render_dnf_named(&dnf, &compiled.catalog));
    let mut which_all = false;
    let mut which_optimal = false;
    let mut heuristic_name = "and-inc-cp-dyn".to_string();
    let mut seed = 42u64;
    for (flag, value) in &common.rest {
        match flag.as_str() {
            "--all" => which_all = true,
            "--optimal" => which_optimal = true,
            "--heuristic" => {
                heuristic_name = value.clone().ok_or("--heuristic expects a name")?;
            }
            "--seed" => {
                seed = value
                    .as_deref()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed expects an integer")?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    let print_one = |name: &str, schedule: &paotr_core::schedule::DnfSchedule, cost: f64| {
        println!("{name:<28} E[cost] = {cost:<10.4} {schedule}");
    };

    if which_all {
        for h in paper_set(seed) {
            let (s, c) = h.schedule_with_cost(&dnf, &compiled.catalog);
            print_one(h.name(), &s, c);
        }
    } else {
        let h = heuristic_by_name(&heuristic_name, seed)?;
        let (s, c) = h.schedule_with_cost(&dnf, &compiled.catalog);
        print_one(h.name(), &s, c);
    }
    if which_optimal || which_all {
        if dnf.num_leaves() <= 24 {
            let (s, c) = exhaustive::dnf_optimal(&dnf, &compiled.catalog);
            let check = dnf_eval::expected_cost(&dnf, &compiled.catalog, &s);
            debug_assert!((c - check).abs() < 1e-9);
            print_one("OPTIMAL (exhaustive DF)", &s, c);
        } else {
            println!("(tree too large for the exhaustive optimum; {} leaves)", dnf.num_leaves());
        }
    }
    Ok(())
}
