//! `paotr schedule` — compute and price schedules for a query.
//!
//! All planning is routed through [`paotr_core::plan::Engine`]: the
//! default planner per query class, `--heuristic NAME` for any registry
//! planner, `--all` for the paper's heuristic set, `--optimal` for the
//! exhaustive baseline.

use crate::{compile, parse_common, plan_by_name};
use paotr_core::plan::{Engine, Plan, QueryRef};
use paotr_core::tree::display;

pub fn run(args: &[String]) -> Result<(), String> {
    let common = parse_common(args)?;
    let (_, compiled) = compile(&common)?;
    let engine = Engine::new();

    let print_one = |plan: &Plan| {
        let cost = match plan.expected_cost {
            Some(c) => format!("{c:<10.4}"),
            None => "(n/a)     ".to_string(),
        };
        println!(
            "{:<28} E[cost] = {cost} {}",
            plan.planner,
            plan.body_display()
        );
    };

    let Some(dnf) = compiled.tree.as_dnf() else {
        // General trees: the engine dispatches to the recursive heuristic.
        let query = QueryRef::from(&compiled.tree);
        let plan = engine
            .plan(query, &compiled.catalog)
            .map_err(|e| e.to_string())?;
        println!("{}", display::render_query_tree(&compiled.tree));
        println!(
            "general AND-OR tree ({} leaves); `{}` planner order:",
            compiled.tree.num_leaves(),
            plan.planner
        );
        print_one(&plan);
        return Ok(());
    };

    println!("{}", display::render_dnf_named(&dnf, &compiled.catalog));
    let mut which_all = false;
    let mut which_optimal = false;
    let mut planner_name: Option<String> = None;
    let mut seed = 42u64;
    for (flag, value) in &common.rest {
        match flag.as_str() {
            "--all" => which_all = true,
            "--optimal" => which_optimal = true,
            "--heuristic" | "--planner" => {
                planner_name = Some(value.clone().ok_or("--heuristic expects a name")?);
            }
            "--seed" => {
                seed = value
                    .as_deref()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed expects an integer")?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    let query = QueryRef::from(&dnf);
    if which_all {
        // Iterate the registry's paper-set view, not a hard-coded list.
        for planner in engine.registry().paper_set() {
            let plan = plan_by_name(&engine, planner.name(), seed, query, &compiled.catalog)?;
            print_one(&plan);
        }
    } else {
        let name = planner_name.unwrap_or_else(|| "and-inc-cp-dyn".to_string());
        let plan = plan_by_name(&engine, &name, seed, query, &compiled.catalog)?;
        print_one(&plan);
    }
    if which_optimal || which_all {
        match engine.plan_with("exhaustive", query, &compiled.catalog) {
            Ok(plan) => {
                println!(
                    "{:<28} E[cost] = {:<10.4} {}",
                    "OPTIMAL (exhaustive DF)",
                    plan.cost_or_nan(),
                    plan.body_display()
                );
            }
            Err(e) => println!("(no exhaustive optimum: {e})"),
        }
    }
    Ok(())
}
