//! Integration tests for `paotr serve` daemon mode and the hard
//! budget-violation exit, run against the real binary.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_paotr");

fn run_daemon(extra: &[&str], script: &str) -> std::process::Output {
    let mut child = Command::new(BIN)
        .args(["serve", "--daemon", "--seed", "3"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    child.wait_with_output().expect("daemon exit")
}

#[test]
fn daemon_serves_a_scripted_session_over_stdin() {
    let script = "\
{\"cmd\":\"register\",\"query\":\"AVG(hr, 4) > 0.2 AND spo2 < 0.5\"}\n\
{\"cmd\":\"register\",\"query\":\"MAX(accel, 6) > 0.0 @ 0.4\",\"weight\":2.0}\n\
{\"cmd\":\"tick\",\"n\":10}\n\
{\"cmd\":\"unregister\",\"id\":0}\n\
{\"cmd\":\"tick\",\"n\":5}\n\
{\"cmd\":\"stats\"}\n\
{\"cmd\":\"shutdown\"}\n";
    let out = run_daemon(&["--budget", "15"], script);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 7, "one response per command: {stdout}");
    for line in &lines {
        assert!(line.starts_with("{\"ok\":true"), "bad response: {line}");
    }
    assert!(lines[5].contains("\"tick\":15"), "stats: {}", lines[5]);
    assert!(lines[5].contains("\"registers\":2"), "stats: {}", lines[5]);
}

#[test]
fn daemon_snapshot_flag_survives_a_restart() {
    let path = std::env::temp_dir().join("paotr_daemon_cli.snap");
    let path = path.to_str().unwrap();
    std::fs::remove_file(path).ok();

    let out = run_daemon(
        &["--snapshot", path],
        "{\"cmd\":\"register\",\"query\":\"AVG(hr, 4) > 0.2\"}\n\
         {\"cmd\":\"tick\",\"n\":8}\n\
         {\"cmd\":\"shutdown\"}\n",
    );
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("saved snapshot"),
        "first run must save the snapshot"
    );

    let out = run_daemon(
        &["--snapshot", path],
        "{\"cmd\":\"stats\"}\n{\"cmd\":\"shutdown\"}\n",
    );
    std::fs::remove_file(path).ok();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("restored snapshot"),
        "second run must restore the snapshot"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.lines().next().unwrap().contains("\"tick\":8"),
        "restored daemon must continue from tick 8: {stdout}"
    );
}

#[test]
fn malformed_requests_get_error_responses_but_do_not_kill_the_daemon() {
    let out = run_daemon(
        &[],
        "not json\n{\"cmd\":\"nope\"}\n{\"cmd\":\"stats\"}\n{\"cmd\":\"shutdown\"}\n",
    );
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4);
    assert!(lines[0].starts_with("{\"ok\":false"));
    assert!(lines[1].starts_with("{\"ok\":false"));
    assert!(lines[2].starts_with("{\"ok\":true"));
}

/// The hard budget-violation check exits non-zero and prints the
/// offending tick. `--check-budget` audits without an admission
/// ceiling, so an impossibly small budget is guaranteed to fire.
#[test]
fn budget_violation_exits_nonzero_and_names_the_offending_tick() {
    let out = Command::new(BIN)
        .args([
            "serve",
            "--queries",
            "4",
            "--ticks",
            "10",
            "--arrivals",
            "periodic",
            "--every",
            "1",
            "--no-drift",
            "--check-budget",
            "0.0001",
        ])
        .output()
        .expect("run serve");
    assert_eq!(
        out.status.code(),
        Some(1),
        "a budget violation must exit with code 1"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("budget violated at tick"),
        "stderr must name the offending tick: {stderr}"
    );
}

/// A generous `--check-budget` on the same run passes: the violation
/// path only fires when a tick actually exceeds the limit.
#[test]
fn generous_check_budget_passes() {
    let out = Command::new(BIN)
        .args([
            "serve",
            "--queries",
            "4",
            "--ticks",
            "10",
            "--arrivals",
            "periodic",
            "--every",
            "1",
            "--no-drift",
            "--check-budget",
            "1000000",
        ])
        .output()
        .expect("run serve");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
