//! Serving-runtime benchmarks: the tick loop's throughput under the
//! accept-all baseline, budgeted admission, and drift tracking. This is
//! the `BENCH_serve.json` source in CI
//! (`cargo bench --bench serve -- --smoke`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paotr_core::plan::Engine;
use paotr_exec::{AcceptAll, ArrivalSpec, DriftConfig, EnergyBudget, ServeConfig, ServeLoop};
use paotr_gen::workload::{workload_instance, WorkloadConfig};
use paotr_multi::{planner_by_name, Workload};

fn serve_loop(drift: bool) -> (ServeLoop, Engine) {
    let (trees, catalog) = workload_instance(WorkloadConfig::with_overlap(16, 0.6), 0);
    let workload = Workload::from_trees(trees, catalog).expect("generated workloads validate");
    let engine = Engine::new();
    let joint = planner_by_name("shared-greedy")
        .expect("built-in")
        .plan(&workload, &engine)
        .expect("workloads plan");
    let config = ServeConfig {
        ticks: 100,
        seed: 1,
        arrivals: ArrivalSpec::Poisson { rate: 0.8 },
        ticks_between: 1,
        drift: drift.then(DriftConfig::default),
        arrange: None,
        faults: None,
        record_verdicts: false,
    };
    (ServeLoop::new(&workload, &joint, config), engine)
}

/// One hundred served ticks of a 16-query workload, per policy.
fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    let (serve, engine) = serve_loop(false);
    group.bench_function(BenchmarkId::new("accept-all", "16q_100ticks"), |b| {
        b.iter(|| serve.run(&mut AcceptAll, &engine).expect("serve runs"))
    });
    group.bench_function(BenchmarkId::new("energy-budget", "16q_100ticks"), |b| {
        b.iter(|| {
            serve
                .run(&mut EnergyBudget::shedding(300.0), &engine)
                .expect("serve runs")
        })
    });
    let (drifting, engine) = serve_loop(true);
    group.bench_function(BenchmarkId::new("drift-tracking", "16q_100ticks"), |b| {
        b.iter(|| drifting.run(&mut AcceptAll, &engine).expect("serve runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
