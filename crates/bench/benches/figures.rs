//! One benchmark per paper figure: each measures the full per-instance
//! pipeline the corresponding experiment runs, on a representative batch.
//! (The `paotr-experiments` binary regenerates the figures themselves;
//! these benches track the cost of doing so.)

use criterion::{criterion_group, criterion_main, Criterion};
use paotr_core::algo::exhaustive::{dnf_search, SearchOptions};
use paotr_core::algo::heuristics::paper_set;
use paotr_core::plan::planners::{GreedyPlanner, SmithPlanner};
use paotr_core::plan::{Planner as _, QueryRef};
use paotr_gen::{fig4_instance, fig5_instance, fig6_instance};
use std::hint::black_box;

/// Figure 4 pipeline: generate instance, schedule with both algorithms,
/// evaluate both schedules. Batch of 50 instances across the grid.
fn bench_fig4_pipeline(c: &mut Criterion) {
    c.bench_function("fig4_pipeline_x50", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..50 {
                let (tree, catalog) = fig4_instance(i * 3 % 157, i);
                let q = QueryRef::from(&tree);
                let opt = GreedyPlanner.plan(&q, &catalog).unwrap().cost_or_nan();
                let ro = SmithPlanner.plan(&q, &catalog).unwrap().cost_or_nan();
                acc += ro / opt.max(1e-300);
            }
            black_box(acc)
        })
    });
}

/// Figure 5 pipeline: ten heuristics + exact optimum per instance.
/// Batch of 10 small instances (bounded node budget).
fn bench_fig5_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    let heuristics = paper_set(1);
    group.bench_function("pipeline_x10", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10 {
                let inst = fig5_instance(i * 21 % 216, i);
                let costs: Vec<f64> = heuristics
                    .iter()
                    .map(|h| h.schedule_with_cost(&inst.tree, &inst.catalog).1)
                    .collect();
                let incumbent = costs.iter().copied().fold(f64::INFINITY, f64::min);
                let r = dnf_search(
                    &inst.tree,
                    &inst.catalog,
                    SearchOptions {
                        incumbent: incumbent * (1.0 + 1e-9),
                        node_limit: 200_000,
                        ..Default::default()
                    },
                );
                acc += r.cost.min(incumbent);
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Figure 6 pipeline: ten heuristics per large instance. Batch of 5.
fn bench_fig6_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    let heuristics = paper_set(1);
    group.bench_function("pipeline_x5", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..5 {
                let inst = fig6_instance(i * 61 % 324, i);
                for h in &heuristics {
                    acc += h.schedule_with_cost(&inst.tree, &inst.catalog).1;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4_pipeline,
    bench_fig5_pipeline,
    bench_fig6_pipeline
);
criterion_main!(benches);
