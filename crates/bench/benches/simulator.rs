//! Benchmarks of the sensor-stream substrate: raw stream advance, engine
//! evaluation throughput, and the full calibrate-schedule-measure
//! pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use paotr_core::algo::heuristics::Heuristic;
use paotr_core::prelude::*;
use rand::prelude::*;
use std::hint::black_box;
use stream_sim::{
    Comparator, EnergyModel, Engine, MemoryPolicy, PipelineConfig, Predicate, SensorModel,
    SensorSource, SimLeaf, SimQuery, SimStream, WindowOp,
};

fn query() -> (SimQuery, StreamCatalog) {
    let mk = |s: usize, op: WindowOp, w: u32, cmp: Comparator, thr: f64| SimLeaf {
        stream: StreamId(s),
        predicate: Predicate::new(op, w, cmp, thr),
    };
    (
        SimQuery::new(vec![
            vec![
                mk(0, WindowOp::Avg, 5, Comparator::Gt, 100.0),
                mk(1, WindowOp::Max, 10, Comparator::Lt, 0.2),
            ],
            vec![
                mk(0, WindowOp::Avg, 3, Comparator::Lt, 60.0),
                mk(2, WindowOp::Min, 4, Comparator::Lt, 0.92),
            ],
        ])
        .expect("valid query"),
        StreamCatalog::from_costs([1.0, 0.5, 6.0]).expect("valid costs"),
    )
}

fn sensors() -> Vec<SensorSource> {
    vec![
        SensorSource::new(SensorModel::Sine {
            offset: 82.0,
            amplitude: 24.0,
            period: 181.0,
            noise: 4.0,
        }),
        SensorSource::new(SensorModel::Spiky {
            base: 0.8,
            spike: 0.05,
            spike_prob: 0.25,
            noise: 0.15,
        }),
        SensorSource::new(SensorModel::RandomWalk {
            start: 0.97,
            step: 0.005,
            min: 0.85,
            max: 1.0,
        }),
    ]
}

fn bench_stream_advance(c: &mut Criterion) {
    c.bench_function("stream_advance_x1000", |b| {
        let mut stream = SimStream::new(
            SensorSource::new(SensorModel::Gaussian {
                mean: 0.0,
                std_dev: 1.0,
            }),
            64,
        );
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            stream.advance_by(1000, &mut rng);
            black_box(stream.latest())
        })
    });
}

fn bench_engine_evaluation(c: &mut Criterion) {
    let (q, cat) = query();
    let mut rng = StdRng::seed_from_u64(2);
    let mut streams: Vec<SimStream> = sensors()
        .into_iter()
        .map(|s| SimStream::new(s, 32))
        .collect();
    for s in &mut streams {
        s.advance_by(16, &mut rng);
    }
    let schedule = DnfSchedule::from_order_unchecked(q.leaf_refs());
    let mut engine = Engine::new(
        cat.len(),
        MemoryPolicy::ClearEachQuery,
        EnergyModel::from_catalog(&cat),
    );
    c.bench_function("engine_evaluate", |b| {
        b.iter(|| black_box(engine.evaluate(&q, &schedule, &streams, None)))
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let (q, cat) = query();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("calibrate_schedule_measure_500", |b| {
        b.iter(|| {
            let report = stream_sim::run_pipeline(
                &q,
                sensors(),
                &cat,
                PipelineConfig {
                    warmup_evaluations: 100,
                    measure_evaluations: 400,
                    ..Default::default()
                },
                |tree, cat| Heuristic::AndIncCOverPDynamic.schedule(tree, cat),
            );
            black_box(report.mean_cost)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stream_advance,
    bench_engine_evaluation,
    bench_full_pipeline
);
criterion_main!(benches);
