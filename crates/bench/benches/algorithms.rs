//! Benchmarks of the optimal algorithms.
//!
//! * Algorithm 1 (`O(m^2)`) vs Smith's greedy (`O(m log m)`) across tree
//!   sizes — the price of shared-stream optimality;
//! * the depth-first branch-and-bound, with and without its pruning
//!   reductions (the DESIGN.md ablation, as a timing benchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paotr_core::algo::exhaustive::{dnf_search, SearchOptions};
use paotr_core::plan::planners::{GreedyPlanner, SmithPlanner};
use paotr_core::plan::{Planner as _, QueryRef};
use paotr_gen::{
    fig4_grid, random_and_instance, random_dnf_instance, AndConfig, DnfConfig, ParamDistributions,
    Shape,
};
use rand::prelude::*;
use std::hint::black_box;

fn bench_and_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("and_tree_scheduling");
    let dist = ParamDistributions::paper();
    for m in [5usize, 20, 100, 500] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let (tree, catalog) = random_and_instance(
            AndConfig {
                leaves: m,
                rho: 2.0,
            },
            &dist,
            &mut rng,
        );
        group.bench_with_input(BenchmarkId::new("algorithm_1", m), &tree, |b, tree| {
            b.iter(|| black_box(GreedyPlanner.plan(&QueryRef::from(tree), &catalog)))
        });
        group.bench_with_input(BenchmarkId::new("smith", m), &tree, |b, tree| {
            b.iter(|| black_box(SmithPlanner.plan(&QueryRef::from(tree), &catalog)))
        });
    }
    group.finish();
}

fn bench_dnf_branch_and_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnf_branch_and_bound");
    group.sample_size(10);
    let dist = ParamDistributions::paper();
    let mut rng = StdRng::seed_from_u64(31337);
    let inst = random_dnf_instance(
        DnfConfig {
            terms: 4,
            shape: Shape::TotalWithCap { total: 12, cap: 4 },
            rho: 2.0,
        },
        &dist,
        &mut rng,
    );
    let incumbent = paotr_core::algo::heuristics::best_of_paper_set(&inst.tree, &inst.catalog, 1).1;
    for (name, opts) in [
        (
            "full_reductions",
            SearchOptions {
                incumbent: incumbent * (1.0 + 1e-9),
                ..Default::default()
            },
        ),
        (
            "no_prop1",
            SearchOptions {
                prop1_ordering: false,
                incumbent: incumbent * (1.0 + 1e-9),
                ..Default::default()
            },
        ),
        ("no_incumbent", SearchOptions::default()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, &opts| {
            b.iter(|| black_box(dnf_search(&inst.tree, &inst.catalog, opts)))
        });
    }
    group.finish();
}

fn bench_fig4_config_sweep(c: &mut Criterion) {
    // One full Figure-4 grid cell: generate + schedule both ways +
    // evaluate, for 100 instances (1/10 of the paper's per-cell count).
    let grid = fig4_grid();
    let config = grid[grid.len() - 1]; // m = 20, rho = 10
    let dist = ParamDistributions::paper();
    c.bench_function("fig4_cell_m20_rho10_x100", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..100u64 {
                let mut rng = StdRng::seed_from_u64(i);
                let (tree, catalog) = random_and_instance(config, &dist, &mut rng);
                let q = QueryRef::from(&tree);
                let opt = GreedyPlanner.plan(&q, &catalog).unwrap().cost_or_nan();
                let ro = SmithPlanner.plan(&q, &catalog).unwrap().cost_or_nan();
                total += ro / opt.max(1e-300);
            }
            black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_and_schedulers,
    bench_dnf_branch_and_bound,
    bench_fig4_config_sweep
);
criterion_main!(benches);
