//! Multi-query workload benchmarks: joint planning cost and the
//! predicted benefit of sharing, across workload sizes and overlap
//! degrees. This is the `BENCH_workload.json` source in CI
//! (`cargo bench --bench workload -- --smoke`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paotr_core::plan::Engine;
use paotr_gen::workload::{workload_instance, WorkloadConfig, LARGE_WORKLOAD_QUERIES};
use paotr_multi::{planner_by_name, simulate, SimConfig, Workload};

fn workload(queries: usize, overlap: f64, seed: usize) -> Workload {
    // At 128 queries this config is exactly the seed-stable
    // `large_workload` preset shared with the experiments sweep
    // (`WorkloadConfig::large_workload` delegates to `with_overlap`).
    let (trees, catalog) = workload_instance(WorkloadConfig::with_overlap(queries, overlap), seed);
    Workload::from_trees(trees, catalog).expect("generated workloads validate")
}

/// Planning wall-time of every workload planner, across sizes (128 =
/// the `large_workload` preset).
fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_plan");
    group.sample_size(10);
    for &queries in &[4usize, 16, 64, LARGE_WORKLOAD_QUERIES] {
        let w = workload(queries, 0.6, 0);
        for name in paotr_multi::planner_names() {
            let planner = planner_by_name(name).expect("built-in");
            group.bench_with_input(BenchmarkId::new(name, queries), &w, |b, w| {
                b.iter(|| {
                    // fresh engine: measure real planning, not cache hits
                    let engine = Engine::new();
                    planner.plan(w, &engine).expect("workloads plan")
                })
            });
        }
        // Per-round fan-out over the persistent worker pool: gates the
        // round-dispatch overhead (one condvar broadcast per round, no
        // thread spawning) alongside the sequential planner above.
        if queries >= 64 {
            let pooled = paotr_multi::SharedGreedyPlanner {
                threads: paotr_par::ThreadCount::Fixed(4),
                replan_bound: 0.0,
            };
            group.bench_with_input(
                BenchmarkId::new("shared-greedy-pool4", queries),
                &w,
                |b, w| {
                    b.iter(|| {
                        let engine = Engine::new();
                        paotr_multi::WorkloadPlanner::plan(&pooled, w, &engine)
                            .expect("workloads plan")
                    })
                },
            );
        }
    }
    group.finish();
}

/// Shared-tick simulation throughput: joint vs. independent execution.
fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_sim");
    group.sample_size(10);
    let engine = Engine::new();
    let w = workload(16, 0.6, 0);
    let cfg = SimConfig {
        ticks: 50,
        seed: 1,
        ticks_between: 1,
    };
    for name in ["independent", "shared-greedy"] {
        let joint = planner_by_name(name)
            .expect("built-in")
            .plan(&w, &engine)
            .expect("workloads plan");
        group.bench_function(BenchmarkId::new("16q_50ticks", name), |b| {
            b.iter(|| simulate(&w, &joint, cfg))
        });
    }
    group.finish();
}

/// Interference analysis cost (the pre-planning pass serving dashboards).
fn bench_interference(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_interference");
    group.sample_size(10);
    let engine = Engine::new();
    for &queries in &[16usize, 64] {
        let w = workload(queries, 0.5, 0);
        group.bench_with_input(BenchmarkId::from_parameter(queries), &w, |b, w| {
            b.iter(|| w.interference(&engine).expect("analysis succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planning, bench_execution, bench_interference);
criterion_main!(benches);
