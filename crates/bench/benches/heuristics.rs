//! Benchmarks of the ten DNF heuristics, including the paper's STAT6
//! runtime claim: scheduling a 10-AND x 20-leaf tree took the authors
//! "less than 5 seconds on a 1.86 GHz core" with the best heuristic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paotr_core::algo::heuristics::paper_set;
use paotr_core::prelude::*;
use paotr_gen::{random_dnf_instance, DnfConfig, ParamDistributions, Shape};
use rand::prelude::*;
use std::hint::black_box;

fn instance(terms: usize, per_term: usize) -> DnfInstance {
    let mut rng = StdRng::seed_from_u64((terms * 1000 + per_term) as u64);
    random_dnf_instance(
        DnfConfig {
            terms,
            shape: Shape::PerTerm(per_term),
            rho: 2.0,
        },
        &ParamDistributions::paper(),
        &mut rng,
    )
}

fn bench_all_heuristics_small(c: &mut Criterion) {
    let inst = instance(4, 4);
    let mut group = c.benchmark_group("heuristics_4x4");
    for h in paper_set(1) {
        group.bench_with_input(BenchmarkId::from_parameter(h.name()), &h, |b, h| {
            b.iter(|| black_box(h.schedule(&inst.tree, &inst.catalog)))
        });
    }
    group.finish();
}

fn bench_reference_heuristic_10x20(c: &mut Criterion) {
    // STAT6: the paper's 10 ANDs x 20 leaves workload.
    let inst = instance(10, 20);
    let h = Heuristic::AndIncCOverPDynamic;
    c.bench_function("stat6_and_ord_inc_cp_dyn_10x20", |b| {
        b.iter(|| black_box(h.schedule(&inst.tree, &inst.catalog)))
    });
}

fn bench_heuristic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_heuristic_scaling");
    group.sample_size(20);
    for (n, m) in [(2usize, 5usize), (5, 10), (10, 20), (16, 25)] {
        let inst = instance(n, m);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{m}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    black_box(Heuristic::AndIncCOverPDynamic.schedule(&inst.tree, &inst.catalog))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_all_heuristics_small,
    bench_reference_heuristic_10x20,
    bench_heuristic_scaling
);
criterion_main!(benches);
