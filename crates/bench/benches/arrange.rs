//! Arrangement benchmarks: recurring high-overlap serving with
//! maintained arrangements vs. per-tick re-pull, at 16/64/256 queries.
//! This is the `BENCH_arrange.json` source in CI
//! (`cargo bench --bench arrange -- --smoke`).
//!
//! The point under test is wall-clock, not energy (the energy win is
//! asserted by `paotr-exec`'s acceptance test): serving through rings
//! must not cost more runtime than it saves in pull bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paotr_core::plan::Engine;
use paotr_exec::{AcceptAll, ArrangeConfig, ArrivalSpec, ServeConfig, ServeLoop};
use paotr_gen::workload::{workload_instance, WorkloadConfig};
use paotr_multi::{planner_by_name, Workload};

/// A recurring (periodic, every tick) high-overlap serving loop.
fn serve_loop(queries: usize, arrange: bool) -> (ServeLoop, Engine) {
    let (trees, catalog) = workload_instance(WorkloadConfig::with_overlap(queries, 0.6), 0);
    let workload = Workload::from_trees(trees, catalog).expect("generated workloads validate");
    let engine = Engine::new();
    let joint = planner_by_name("shared-greedy")
        .expect("built-in")
        .plan(&workload, &engine)
        .expect("workloads plan");
    let config = ServeConfig {
        ticks: 60,
        seed: 1,
        arrivals: ArrivalSpec::Periodic { every: 1 },
        ticks_between: 1,
        drift: None,
        arrange: arrange.then(ArrangeConfig::default),
        faults: None,
        record_verdicts: false,
    };
    (ServeLoop::new(&workload, &joint, config), engine)
}

/// Sixty recurring ticks per mode and workload size.
fn bench_arrange(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrange");
    group.sample_size(10);
    for queries in [16usize, 64, 256] {
        let (repull, engine) = serve_loop(queries, false);
        group.bench_function(BenchmarkId::new("repull", format!("{queries}q")), |b| {
            b.iter(|| repull.run(&mut AcceptAll, &engine).expect("serve runs"))
        });
        let (arranged, engine) = serve_loop(queries, true);
        group.bench_function(BenchmarkId::new("maintained", format!("{queries}q")), |b| {
            b.iter(|| arranged.run(&mut AcceptAll, &engine).expect("serve runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arrange);
criterion_main!(benches);
