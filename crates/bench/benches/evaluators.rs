//! Benchmarks of the schedule cost evaluators.
//!
//! Verifies the complexity story of Section IV-A: the Proposition 2
//! evaluator is `O(|L| * D * N^2)`-ish, the literal transcription pays a
//! constant-factor penalty over the incremental one, and the closed-form
//! AND evaluator is linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paotr_core::cost::{and_eval, dnf_eval, CostModel, DnfCostEvaluator};
use paotr_core::plan::planners::ReadOnceDnfPlanner;
use paotr_core::plan::{Planner, QueryRef};
use paotr_core::prelude::*;
use paotr_gen::{random_dnf_instance, DnfConfig, ParamDistributions, Shape};
use rand::prelude::*;
use std::hint::black_box;

fn instance(terms: usize, per_term: usize, rho: f64, seed: u64) -> DnfInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    random_dnf_instance(
        DnfConfig {
            terms,
            shape: Shape::PerTerm(per_term),
            rho,
        },
        &ParamDistributions::paper(),
        &mut rng,
    )
}

fn bench_dnf_evaluators(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnf_expected_cost");
    for (n, m) in [(2usize, 5usize), (5, 10), (10, 20)] {
        let inst = instance(n, m, 2.0, 42);
        let schedule = DnfSchedule::declaration_order(&inst.tree);
        group.bench_with_input(
            BenchmarkId::new("literal_prop2", format!("{n}x{m}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    black_box(dnf_eval::expected_cost(
                        &inst.tree,
                        &inst.catalog,
                        black_box(&schedule),
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental", format!("{n}x{m}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    black_box(dnf_eval::expected_cost_fast(
                        &inst.tree,
                        &inst.catalog,
                        black_box(&schedule),
                    ))
                })
            },
        );
    }
    group.finish();
}

/// The compiled arena kernel vs. the literal transcription and the
/// incremental evaluator — the `BENCH_core.json` group CI
/// regression-checks (planners bottom out in thousands of these calls
/// per joint-planning invocation).
fn bench_cost_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_kernel");
    for (n, m) in [(2usize, 5usize), (5, 10), (10, 20)] {
        let inst = instance(n, m, 2.0, 42);
        let schedule = DnfSchedule::declaration_order(&inst.tree);
        let label = format!("{n}x{m}");
        group.bench_with_input(BenchmarkId::new("literal", &label), &inst, |b, inst| {
            b.iter(|| {
                black_box(dnf_eval::expected_cost(
                    &inst.tree,
                    &inst.catalog,
                    black_box(&schedule),
                ))
            })
        });
        let model = CostModel::new(&inst.tree, &inst.catalog);
        let mut scratch = model.make_scratch();
        group.bench_function(BenchmarkId::new("kernel", &label), |b| {
            b.iter(|| black_box(model.expected_cost(black_box(&schedule), &mut scratch)))
        });
        let coverage: Vec<f64> = (0..inst.catalog.len())
            .map(|k| (k % 3) as f64 * 0.75)
            .collect();
        group.bench_function(BenchmarkId::new("kernel_coverage", &label), |b| {
            b.iter(|| {
                black_box(model.expected_cost_with_coverage(
                    black_box(schedule.order()),
                    &coverage,
                    &mut scratch,
                ))
            })
        });
        // End-to-end heuristic planning on the kernel: the dynamic
        // AND-ordered planner (the paper's best heuristic) prices every
        // candidate term every round through the frozen-prefix
        // schedule-delta path — the hot loop this group gates in CI.
        group.bench_function(BenchmarkId::new("heuristic_and_inc_cp_dyn", &label), |b| {
            b.iter(|| black_box(Heuristic::AndIncCOverPDynamic.schedule(&inst.tree, &inst.catalog)))
        });
        group.bench_function(BenchmarkId::new("heuristic_read_once_dnf", &label), |b| {
            b.iter(|| {
                black_box(ReadOnceDnfPlanner.plan(&QueryRef::from(&inst.tree), &inst.catalog))
            })
        });
    }
    group.finish();

    // Model compilation cost, reported but not CI-gated: a sub-µs
    // allocation-bound number whose run-to-run medians are too noisy
    // for the 25% regression gate on shared runners.
    let mut build = c.benchmark_group("cost_kernel_build");
    for (n, m) in [(2usize, 5usize), (10, 20)] {
        let inst = instance(n, m, 2.0, 42);
        build.bench_function(BenchmarkId::new("compile", format!("{n}x{m}")), |b| {
            b.iter(|| black_box(CostModel::new(&inst.tree, &inst.catalog)))
        });
    }
    build.finish();
}

fn bench_incremental_clone(c: &mut Criterion) {
    // The branch-and-bound clones an evaluator per surviving child; clone
    // cost is therefore part of the search's inner loop.
    let inst = instance(5, 10, 2.0, 7);
    let mut eval = DnfCostEvaluator::new(&inst.tree, &inst.catalog);
    for r in inst.tree.leaf_refs().take(25) {
        eval.push(r);
    }
    c.bench_function("evaluator_clone_5x10_half_full", |b| {
        b.iter(|| black_box(eval.clone()))
    });
}

fn bench_and_evaluator(c: &mut Criterion) {
    let mut group = c.benchmark_group("and_expected_cost");
    for m in [5usize, 20, 100] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let catalog = StreamCatalog::from_costs((0..4).map(|_| rng.gen_range(1.0..10.0)))
            .expect("valid costs");
        let tree = AndTree::new(
            (0..m)
                .map(|_| {
                    Leaf::raw(
                        StreamId(rng.gen_range(0..4)),
                        rng.gen_range(1..=5),
                        Prob::new(rng.gen_range(0.0..1.0)).expect("valid"),
                    )
                })
                .collect(),
        )
        .expect("non-empty");
        let schedule = AndSchedule::identity(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &tree, |b, tree| {
            b.iter(|| {
                black_box(and_eval::expected_cost(
                    tree,
                    &catalog,
                    black_box(&schedule),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dnf_evaluators,
    bench_cost_kernel,
    bench_incremental_clone,
    bench_and_evaluator
);
criterion_main!(benches);
