//! Benchmarks of the parallel-map substrate: dispatch overhead and
//! scaling against the serial baseline on experiment-shaped workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paotr_core::plan::planners::GreedyPlanner;
use paotr_core::plan::{Planner as _, QueryRef};
use paotr_gen::{random_and_instance, AndConfig, ParamDistributions};
use paotr_par::ThreadCount;
use rand::prelude::*;
use std::hint::black_box;

/// The per-task body used by the Figure 4 sweep.
fn fig4_task(i: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(i as u64);
    let (tree, catalog) = random_and_instance(
        AndConfig {
            leaves: 20,
            rho: 2.0,
        },
        &ParamDistributions::paper(),
        &mut rng,
    );
    GreedyPlanner
        .plan(&QueryRef::from(&tree), &catalog)
        .expect("plans")
        .cost_or_nan()
}

fn bench_par_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_tasks_fig4_x256");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let out = paotr_par::par_tasks(256, ThreadCount::Fixed(threads), fig4_task);
                    black_box(out.iter().sum::<f64>())
                })
            },
        );
    }
    group.finish();
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    // Tiny tasks measure scheduling overhead per item.
    c.bench_function("par_tasks_trivial_x10000", |b| {
        b.iter(|| {
            let out = paotr_par::par_tasks(10_000, ThreadCount::Fixed(2), |i| i as u64 * 2);
            black_box(out.last().copied())
        })
    });
}

criterion_group!(benches, bench_par_tasks, bench_dispatch_overhead);
criterion_main!(benches);
