//! Serving-daemon benchmarks: session churn through the incremental
//! re-plan path, the steady-state tick loop, and snapshot round trips.
//! This is the `BENCH_daemon.json` source in CI
//! (`cargo bench --bench daemon -- --smoke`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paotr_gen::{churn_script, random_query_source, ChurnConfig, ChurnEvent};
use paotr_serverd::{Config, Daemon, Snapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn daemon_config() -> Config {
    Config {
        seed: 1,
        budget: Some(20.0),
        max_window: 16,
        ..Config::default()
    }
}

/// A daemon warmed up with `n` registered sessions.
fn warm_daemon(n: usize) -> Daemon {
    let cfg = ChurnConfig::default();
    let mut rng = StdRng::seed_from_u64(9);
    let mut daemon = Daemon::new(daemon_config()).unwrap();
    for _ in 0..n {
        let src = random_query_source(&cfg, &mut rng);
        daemon.register(&src, 1.0).unwrap();
    }
    daemon
}

fn bench_daemon(c: &mut Criterion) {
    let mut group = c.benchmark_group("daemon");
    group.sample_size(10);

    // 200 scripted register/unregister/tick events, including the
    // churn-triggered incremental re-plans.
    let script = churn_script(
        &ChurnConfig {
            events: 200,
            ..ChurnConfig::default()
        },
        0,
        0,
    );
    group.bench_function(BenchmarkId::new("churn", "200ev"), |b| {
        b.iter(|| {
            let mut daemon = Daemon::new(daemon_config()).unwrap();
            let mut live: Vec<u64> = Vec::new();
            for ev in &script {
                match ev {
                    ChurnEvent::Register { source, weight } => {
                        live.push(daemon.register(source, *weight).unwrap());
                    }
                    ChurnEvent::Unregister { nth_live } => {
                        daemon.unregister(live.remove(*nth_live)).unwrap();
                    }
                    ChurnEvent::Tick { n } => {
                        daemon.run_ticks(*n).unwrap();
                    }
                }
            }
            daemon.tick()
        })
    });

    // Steady state: 100 budgeted ticks over 16 live sessions, no churn.
    group.bench_function(BenchmarkId::new("tick", "16q_100ticks"), |b| {
        let mut daemon = warm_daemon(16);
        b.iter(|| daemon.run_ticks(100).unwrap().total_energy())
    });

    // Snapshot round trip: render, parse, and restore 16 sessions.
    group.bench_function(BenchmarkId::new("snapshot-roundtrip", "16q"), |b| {
        let mut daemon = warm_daemon(16);
        daemon.run_ticks(50).unwrap();
        b.iter(|| {
            let rendered = daemon.snapshot().render();
            let snap = Snapshot::parse(&rendered).unwrap();
            Daemon::from_snapshot(&snap).unwrap().tick()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_daemon);
criterion_main!(benches);
