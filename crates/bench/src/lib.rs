#![forbid(unsafe_code)]

// Criterion benches live under benches/.
