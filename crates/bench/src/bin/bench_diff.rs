//! `bench-diff` — compares a fresh criterion-shim JSON bench artifact
//! against a committed baseline and fails on median regressions.
//!
//! ```text
//! bench-diff <baseline.json> <fresh.json> \
//!     [--max-regression 0.25] [--groups workload_plan,cost_kernel] \
//!     [--normalize <benchmark-name>]
//! ```
//!
//! * Only benchmarks whose name starts with one of `--groups` (prefix
//!   before the first `/`) gate the exit code; everything else is
//!   reported informationally.
//! * A gated benchmark present in the baseline but missing from the
//!   fresh run fails the check (silent coverage loss reads as a pass).
//! * Regression = `fresh_median > baseline_median * (1 + max_regression)`.
//! * `--normalize <name>` divides every median by that benchmark's
//!   median *from the same file* before comparing. The committed
//!   baselines are produced on whatever machine regenerated them last,
//!   while CI runs on shared runners — absolute medians would gate
//!   hardware, not code. Normalizing compares machine-independent
//!   ratios instead. The special value `@gated-sum` uses the sum of
//!   the gated group's medians (over benchmarks present in both files)
//!   as the reference — far more noise-resistant than any single
//!   benchmark, at the cost of not detecting a perfectly uniform
//!   slowdown of the whole group (indistinguishable from a slower
//!   machine anyway).
//!
//! The JSON format is the criterion shim's: an array of
//! `{"name": ..., "mean_ns": ..., "median_ns": ...}` rows (`median_ns`
//! falls back to `mean_ns` for artifacts produced before medians were
//! recorded). Parsing is a deliberately tiny hand-rolled scanner so the
//! tool stays dependency-free.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut max_regression = 0.25f64;
    let mut groups: Vec<String> = vec!["workload_plan".into(), "cost_kernel".into()];
    let mut normalize: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regression" => {
                max_regression = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--max-regression expects a number"));
                i += 2;
            }
            "--normalize" => {
                normalize = Some(
                    args.get(i + 1)
                        .unwrap_or_else(|| usage("--normalize expects a benchmark name"))
                        .clone(),
                );
                i += 2;
            }
            "--groups" => {
                groups = args
                    .get(i + 1)
                    .unwrap_or_else(|| usage("--groups expects a comma-separated list"))
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                i += 2;
            }
            p if !p.starts_with("--") => {
                paths.push(&args[i]);
                i += 1;
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if paths.len() != 2 {
        usage("expected exactly two JSON paths: <baseline> <fresh>");
    }
    let mut baseline = load(paths[0]);
    let mut fresh = load(paths[1]);
    // Raw (pre-normalization) medians: failure messages always report
    // the offending entry's actual median pair, not just its group or
    // its machine-relative ratio.
    let raw_baseline = baseline.clone();
    let raw_fresh = fresh.clone();
    let in_groups = |name: &str, groups: &[String]| {
        let group = name.split('/').next().unwrap_or(name);
        groups.iter().any(|g| g == group)
    };
    if let Some(reference) = &normalize {
        if reference == "@gated-sum" {
            // Reference = sum of gated medians over the benchmarks both
            // files measured, so the denominators aggregate identical
            // workloads.
            let shared: Vec<&String> = baseline
                .keys()
                .filter(|n| fresh.contains_key(*n) && in_groups(n, &groups))
                .collect();
            if shared.is_empty() {
                usage("no gated benchmarks shared by both files to normalize by");
            }
            let base_sum: f64 = shared.iter().map(|n| baseline[*n]).sum();
            let fresh_sum: f64 = shared.iter().map(|n| fresh[*n]).sum();
            if base_sum <= 0.0 || fresh_sum <= 0.0 {
                usage("gated-sum reference is zero");
            }
            for v in baseline.values_mut() {
                *v /= base_sum;
            }
            for v in fresh.values_mut() {
                *v /= fresh_sum;
            }
        } else {
            rescale(&mut baseline, reference, paths[0]);
            rescale(&mut fresh, reference, paths[1]);
        }
    }

    let gated = |name: &str| in_groups(name, &groups);

    let mut failures = Vec::new();
    // A gated group that is absent from either file means the gate is
    // not testing anything — fail loudly instead of passing silently
    // (a renamed group or a bench target that stopped running would
    // otherwise disable its own regression check).
    for group in &groups {
        let in_base = baseline
            .keys()
            .any(|n| in_groups(n, std::slice::from_ref(group)));
        let in_fresh = fresh
            .keys()
            .any(|n| in_groups(n, std::slice::from_ref(group)));
        match (in_base, in_fresh) {
            (false, _) => failures.push(format!(
                "gated group `{group}` has no benchmarks in the baseline {} — \
                 regenerate the baseline or fix --groups",
                paths[0]
            )),
            (true, false) => failures.push(format!(
                "gated group `{group}` missing entirely from the fresh run {} — \
                 did the bench target run?",
                paths[1]
            )),
            (true, true) => {}
        }
    }
    let unit = if normalize.is_some() { "ratio" } else { "µs" };
    println!(
        "{:<64} {:>12} {:>12} {:>8}  gate",
        "benchmark",
        format!("base {unit}"),
        format!("fresh {unit}"),
        "delta"
    );
    for (name, base_ns) in &baseline {
        let Some(fresh_ns) = fresh.get(name) else {
            if gated(name) {
                failures.push(format!(
                    "`{name}` missing from the fresh run (baseline median {:.4} µs)",
                    raw_baseline[name] / 1e3
                ));
            }
            continue;
        };
        let delta = if *base_ns > 0.0 {
            fresh_ns / base_ns - 1.0
        } else {
            0.0
        };
        let is_gated = gated(name);
        let regressed = is_gated && delta > max_regression;
        let scale = if normalize.is_some() { 1.0 } else { 1e3 };
        println!(
            "{:<64} {:>12.4} {:>12.4} {:>+7.1}%  {}{}",
            name,
            base_ns / scale,
            fresh_ns / scale,
            delta * 100.0,
            if is_gated { "yes" } else { "-" },
            if regressed { "  << REGRESSION" } else { "" }
        );
        if regressed {
            // Always lead with the entry's raw median pair — under
            // normalization the gated values are unitless ratios, which
            // tell a reader *that* something regressed but not by how
            // many microseconds.
            let mut msg = format!(
                "`{name}` regressed {:.1}% (median {:.4} µs -> {:.4} µs",
                delta * 100.0,
                raw_baseline[name] / 1e3,
                raw_fresh[name] / 1e3,
            );
            if normalize.is_some() {
                msg.push_str(&format!(
                    "; normalized {:.4} -> {:.4}",
                    base_ns / scale,
                    fresh_ns / scale
                ));
            }
            msg.push_str(&format!(", limit +{:.0}%)", max_regression * 100.0));
            failures.push(msg);
        }
    }
    for name in fresh.keys() {
        if !baseline.contains_key(name) {
            println!("{name:<64} (new benchmark, no baseline)");
        }
    }

    if failures.is_empty() {
        println!(
            "\nbench-diff: OK — no gated median regressed more than {:.0}% (groups: {})",
            max_regression * 100.0,
            groups.join(", ")
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench-diff: FAILED");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "bench-diff: {msg}\n\
         usage: bench-diff <baseline.json> <fresh.json> \
         [--max-regression F] [--groups a,b,...] [--normalize <benchmark>]"
    );
    std::process::exit(2)
}

/// Divides every median in `rows` by the reference benchmark's median
/// (same file), turning absolute times into machine-relative ratios.
fn rescale(rows: &mut BTreeMap<String, f64>, reference: &str, path: &str) {
    let Some(&denom) = rows.get(reference) else {
        usage(&format!(
            "normalize reference `{reference}` missing from {path}"
        ));
    };
    if denom <= 0.0 {
        usage(&format!(
            "normalize reference `{reference}` is zero in {path}"
        ));
    }
    for v in rows.values_mut() {
        *v /= denom;
    }
}

/// Loads `{name -> median_ns}` from a criterion-shim JSON artifact
/// (`mean_ns` when no median was recorded).
fn load(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let Some(name) = str_field(line, "name") else {
            continue;
        };
        let value = num_field(line, "median_ns").or_else(|| num_field(line, "mean_ns"));
        if let Some(v) = value {
            out.insert(name, v);
        }
    }
    if out.is_empty() {
        usage(&format!("{path} holds no benchmark rows"));
    }
    out
}

/// Extracts `"key": "value"` from a single-row JSON object (shim rows
/// never contain escaped quotes in practice; escapes are unescaped for
/// completeness).
fn str_field(row: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let rest = &row[row.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extracts `"key": <number>` from a single-row JSON object.
fn num_field(row: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &row[row.find(&tag)? + tag.len()..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}
