//! Monte-Carlo estimation of schedule costs.
//!
//! Samples truth assignments from the leaf probabilities and runs the
//! ground-truth interpreter. This gives a *statistical* cross-check of the
//! analytic evaluators (used heavily in tests) and is the only tractable
//! exact-semantics estimator for large general trees.

use crate::cost::execution::{execute_and_tree_impl, execute_dnf_impl};
use crate::schedule::{AndSchedule, DnfSchedule};
use crate::stream::StreamCatalog;
use crate::tree::{AndTree, DnfTree};
use rand::Rng;

/// A Monte-Carlo estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean of the cost.
    pub mean: f64,
    /// Standard error of the mean (`sigma / sqrt(n)`).
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: usize,
    /// Fraction of runs in which the query evaluated to TRUE.
    pub truth_rate: f64,
}

impl Estimate {
    /// True when `value` lies within `k` standard errors of the mean
    /// (with a small absolute floor for near-deterministic cases).
    pub fn consistent_with(&self, value: f64, k: f64) -> bool {
        let tol = k * self.std_error + 1e-9;
        (self.mean - value).abs() <= tol
    }
}

fn summarize(costs: &[f64], truths: usize) -> Estimate {
    let n = costs.len();
    let mean = costs.iter().sum::<f64>() / n as f64;
    let var = costs.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (n.max(2) - 1) as f64;
    Estimate {
        mean,
        std_error: (var / n as f64).sqrt(),
        samples: n,
        truth_rate: truths as f64 / n as f64,
    }
}

/// Estimates the expected cost of an AND-tree schedule from `samples`
/// random executions.
pub fn and_tree_cost<R: Rng + ?Sized>(
    tree: &AndTree,
    catalog: &StreamCatalog,
    schedule: &AndSchedule,
    samples: usize,
    rng: &mut R,
) -> Estimate {
    assert!(samples > 0, "need at least one sample");
    let probs: Vec<f64> = tree.leaves().iter().map(|l| l.prob.value()).collect();
    let mut assignment = vec![false; probs.len()];
    let mut costs = Vec::with_capacity(samples);
    let mut truths = 0;
    for _ in 0..samples {
        for (a, &p) in assignment.iter_mut().zip(&probs) {
            *a = rng.gen::<f64>() < p;
        }
        let e = execute_and_tree_impl(tree, catalog, schedule, &assignment);
        costs.push(e.cost);
        truths += usize::from(e.value);
    }
    summarize(&costs, truths)
}

/// Estimates the expected cost of a DNF schedule from `samples` random
/// executions.
pub fn dnf_cost<R: Rng + ?Sized>(
    tree: &DnfTree,
    catalog: &StreamCatalog,
    schedule: &DnfSchedule,
    samples: usize,
    rng: &mut R,
) -> Estimate {
    assert!(samples > 0, "need at least one sample");
    let probs: Vec<f64> = tree.leaves().map(|(_, l)| l.prob.value()).collect();
    let mut assignment = vec![false; probs.len()];
    let mut costs = Vec::with_capacity(samples);
    let mut truths = 0;
    for _ in 0..samples {
        for (a, &p) in assignment.iter_mut().zip(&probs) {
            *a = rng.gen::<f64>() < p;
        }
        let e = execute_dnf_impl(tree, catalog, schedule, &assignment);
        costs.push(e.cost);
        truths += usize::from(e.value);
    }
    summarize(&costs, truths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{and_eval, dnf_eval};
    use crate::leaf::Leaf;
    use crate::prob::Prob;
    use crate::stream::StreamId;
    use rand::prelude::*;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    #[test]
    fn and_tree_estimate_converges_to_analytic_cost() {
        let t = AndTree::new(vec![leaf(0, 1, 0.75), leaf(0, 2, 0.1), leaf(1, 1, 0.5)]).unwrap();
        let cat = StreamCatalog::unit(2);
        let s = AndSchedule::identity(3);
        let mut rng = StdRng::seed_from_u64(1);
        let est = and_tree_cost(&t, &cat, &s, 200_000, &mut rng);
        let analytic = and_eval::expected_cost(&t, &cat, &s);
        assert!(est.consistent_with(analytic, 4.0), "{est:?} vs {analytic}");
    }

    #[test]
    fn dnf_estimate_converges_to_analytic_cost() {
        let t = DnfTree::from_leaves(vec![
            vec![leaf(0, 3, 0.4), leaf(1, 1, 0.7)],
            vec![leaf(0, 5, 0.6), leaf(1, 2, 0.2)],
        ])
        .unwrap();
        let cat = StreamCatalog::from_costs([2.0, 3.0]).unwrap();
        let s = DnfSchedule::declaration_order(&t);
        let mut rng = StdRng::seed_from_u64(2);
        let est = dnf_cost(&t, &cat, &s, 200_000, &mut rng);
        let analytic = dnf_eval::expected_cost(&t, &cat, &s);
        assert!(est.consistent_with(analytic, 4.0), "{est:?} vs {analytic}");
    }

    #[test]
    fn truth_rate_tracks_success_probability() {
        let t = DnfTree::from_leaves(vec![vec![leaf(0, 1, 0.5)], vec![leaf(1, 1, 0.5)]]).unwrap();
        let cat = StreamCatalog::unit(2);
        let s = DnfSchedule::declaration_order(&t);
        let mut rng = StdRng::seed_from_u64(3);
        let est = dnf_cost(&t, &cat, &s, 100_000, &mut rng);
        assert!((est.truth_rate - 0.75).abs() < 0.01);
    }

    #[test]
    fn deterministic_instance_has_zero_stderr() {
        let t = AndTree::new(vec![leaf(0, 2, 1.0), leaf(1, 1, 1.0)]).unwrap();
        let cat = StreamCatalog::unit(2);
        let s = AndSchedule::identity(2);
        let mut rng = StdRng::seed_from_u64(4);
        let est = and_tree_cost(&t, &cat, &s, 1000, &mut rng);
        assert_eq!(est.mean, 3.0);
        assert_eq!(est.std_error, 0.0);
        assert_eq!(est.truth_rate, 1.0);
    }
}
