//! Ground-truth schedule interpreter.
//!
//! Given a *complete truth assignment* for the leaves, this module steps
//! through a schedule exactly as the mobile device of the paper would:
//!
//! * evaluate leaves in schedule order;
//! * skip a leaf whose truth value can no longer influence the root
//!   (its AND node already FALSE, or the whole query already resolved);
//! * pay `c(S)` per data item pulled, but keep pulled items in device
//!   memory so later leaves on the same stream only pay for *additional*
//!   items (the shared-streams model);
//! * stop as soon as the root's truth value is determined.
//!
//! The returned cost is the exact cost incurred for that assignment; the
//! analytic evaluators of this crate are all validated against expectations
//! of this interpreter (see [`crate::cost::assignment`]).
//!
//! ## Scope
//!
//! The AND-tree and DNF *simulation* halves of this module duplicate
//! the pull-coalescing loop that now lives once in the unified
//! `stream_sim::runtime::Scheduler`; their public entry points
//! ([`execute_and_tree`], [`execute_dnf`]) are therefore deprecated and
//! gated behind the off-by-default `legacy-api` feature. The
//! enumeration oracles in [`crate::cost::assignment`] and
//! [`crate::cost::montecarlo`] keep using the crate-private
//! implementations (expectations over truth assignments need an
//! in-process interpreter, not a data-path simulator). The
//! general-tree interpreter [`execute_query_tree`] stays public: the
//! runtime executes DNF schedules only, so general AND-OR trees have no
//! replacement there.

use crate::schedule::{AndSchedule, DnfSchedule};
use crate::stream::StreamCatalog;
use crate::tree::general::{Node, QueryTree};
use crate::tree::{AndTree, DnfTree};

/// Outcome of executing a schedule under one truth assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// Total acquisition cost paid.
    pub cost: f64,
    /// Truth value of the root once resolved.
    pub value: bool,
    /// Number of leaves actually evaluated (not short-circuited).
    pub evaluated: usize,
    /// Total data items pulled, per stream (index = stream id).
    pub items_pulled: Vec<u32>,
}

/// Executes an AND-tree schedule under a truth assignment
/// (`assignment[j]` is the value of leaf `j` in declaration order).
///
/// # Panics
/// Panics if `assignment` is shorter than the tree's leaf count.
#[cfg(feature = "legacy-api")]
#[deprecated(
    since = "0.2.0",
    note = "single-assignment simulation lives in `stream_sim::runtime::Scheduler`; \
            the expectation oracles are in `cost::assignment`"
)]
pub fn execute_and_tree(
    tree: &AndTree,
    catalog: &StreamCatalog,
    schedule: &AndSchedule,
    assignment: &[bool],
) -> Execution {
    execute_and_tree_impl(tree, catalog, schedule, assignment)
}

pub(crate) fn execute_and_tree_impl(
    tree: &AndTree,
    catalog: &StreamCatalog,
    schedule: &AndSchedule,
    assignment: &[bool],
) -> Execution {
    assert!(assignment.len() >= tree.len(), "assignment too short");
    let mut acquired = vec![0u32; catalog.len()];
    let mut cost = 0.0;
    let mut evaluated = 0;
    let mut value = true;
    for &j in schedule.order() {
        let leaf = tree.leaf(j);
        let have = acquired[leaf.stream.0];
        if leaf.items > have {
            cost += f64::from(leaf.items - have) * catalog.cost(leaf.stream);
            acquired[leaf.stream.0] = leaf.items;
        }
        evaluated += 1;
        if !assignment[j] {
            value = false;
            break; // AND is FALSE: remaining leaves short-circuited
        }
    }
    Execution {
        cost,
        value,
        evaluated,
        items_pulled: acquired,
    }
}

/// Executes a DNF schedule under a truth assignment
/// (`assignment` in flat term-major order, see [`LeafIndexer`]).
#[cfg(feature = "legacy-api")]
#[deprecated(
    since = "0.2.0",
    note = "single-assignment simulation lives in `stream_sim::runtime::Scheduler`; \
            the expectation oracles are in `cost::assignment`"
)]
pub fn execute_dnf(
    tree: &DnfTree,
    catalog: &StreamCatalog,
    schedule: &DnfSchedule,
    assignment: &[bool],
) -> Execution {
    execute_dnf_impl(tree, catalog, schedule, assignment)
}

pub(crate) fn execute_dnf_impl(
    tree: &DnfTree,
    catalog: &StreamCatalog,
    schedule: &DnfSchedule,
    assignment: &[bool],
) -> Execution {
    assert!(
        assignment.len() >= tree.num_leaves(),
        "assignment too short"
    );
    let n = tree.num_terms();
    // Per-term state: None = still alive, Some(v) = resolved to v.
    let mut term_value: Vec<Option<bool>> = vec![None; n];
    let mut remaining: Vec<usize> = tree.terms().iter().map(|t| t.len()).collect();
    let mut alive_terms = n;
    let mut acquired = vec![0u32; catalog.len()];
    let mut cost = 0.0;
    let mut evaluated = 0;
    let mut value = false;
    let indexer = LeafIndexer::new(tree);

    for &r in schedule.order() {
        if term_value[r.term].is_some() {
            continue; // this AND node is already FALSE (or TRUE): skip leaf
        }
        let leaf = tree.leaf(r);
        let have = acquired[leaf.stream.0];
        if leaf.items > have {
            cost += f64::from(leaf.items - have) * catalog.cost(leaf.stream);
            acquired[leaf.stream.0] = leaf.items;
        }
        evaluated += 1;
        if assignment[indexer.flat(r)] {
            remaining[r.term] -= 1;
            if remaining[r.term] == 0 {
                // whole AND node TRUE: the OR (the query) is TRUE
                term_value[r.term] = Some(true);
                value = true;
                break;
            }
        } else {
            term_value[r.term] = Some(false);
            alive_terms -= 1;
            if alive_terms == 0 {
                // every AND node FALSE: the query is FALSE
                break;
            }
        }
    }
    Execution {
        cost,
        value,
        evaluated,
        items_pulled: acquired,
    }
}

/// Maps `(term, leaf)` addresses of a DNF tree to flat indices
/// (term-major order), the layout used for truth assignments.
#[derive(Debug, Clone)]
pub struct LeafIndexer {
    offsets: Vec<usize>,
    total: usize,
}

impl LeafIndexer {
    /// Builds the index for a tree.
    pub fn new(tree: &DnfTree) -> LeafIndexer {
        let mut offsets = Vec::with_capacity(tree.num_terms());
        let mut acc = 0;
        for t in tree.terms() {
            offsets.push(acc);
            acc += t.len();
        }
        LeafIndexer {
            offsets,
            total: acc,
        }
    }

    /// Flat index of address `r`.
    #[inline]
    pub fn flat(&self, r: crate::leaf::LeafRef) -> usize {
        self.offsets[r.term] + r.leaf
    }

    /// Total number of leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when the tree has no leaves.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// Executes a schedule over a *general* AND-OR tree.
///
/// `schedule` is an order on flat leaf indices (left-to-right leaf
/// numbering of the tree); `assignment` gives each leaf's truth value in
/// the same numbering. Short-circuit semantics: a leaf is skipped when any
/// ancestor operator node is already resolved; execution stops when the
/// root resolves.
pub fn execute_query_tree(
    tree: &QueryTree,
    catalog: &StreamCatalog,
    schedule: &[usize],
    assignment: &[bool],
) -> Execution {
    let arena = Arena::build(tree);
    assert_eq!(
        schedule.len(),
        arena.leaves.len(),
        "schedule/leaf count mismatch"
    );
    assert!(
        assignment.len() >= arena.leaves.len(),
        "assignment too short"
    );

    let mut status: Vec<Option<bool>> = vec![None; arena.nodes.len()];
    let mut pending: Vec<usize> = arena.nodes.iter().map(|n| n.num_children).collect();
    let mut acquired = vec![0u32; catalog.len()];
    let mut cost = 0.0;
    let mut evaluated = 0;

    'leaves: for &li in schedule {
        if status[arena.root].is_some() {
            break;
        }
        let node_id = arena.leaves[li];
        // A leaf is relevant only if no ancestor (nor itself) is resolved.
        let mut cursor = node_id;
        loop {
            if status[cursor].is_some() {
                continue 'leaves;
            }
            match arena.nodes[cursor].parent {
                Some(p) => cursor = p,
                None => break,
            }
        }
        let leaf = match &arena.nodes[node_id].kind {
            Kind::Leaf(l) => l,
            _ => unreachable!("leaf ids point at leaf nodes"),
        };
        let have = acquired[leaf.stream.0];
        if leaf.items > have {
            cost += f64::from(leaf.items - have) * catalog.cost(leaf.stream);
            acquired[leaf.stream.0] = leaf.items;
        }
        evaluated += 1;
        resolve(&arena, &mut status, &mut pending, node_id, assignment[li]);
    }

    Execution {
        cost,
        value: status[arena.root].unwrap_or(false),
        evaluated,
        items_pulled: acquired,
    }
}

#[derive(Debug)]
enum Kind {
    Leaf(crate::leaf::Leaf),
    And,
    Or,
}

#[derive(Debug)]
struct ArenaNode {
    kind: Kind,
    parent: Option<usize>,
    num_children: usize,
}

#[derive(Debug)]
struct Arena {
    nodes: Vec<ArenaNode>,
    leaves: Vec<usize>,
    root: usize,
}

impl Arena {
    fn build(tree: &QueryTree) -> Arena {
        let mut arena = Arena {
            nodes: Vec::new(),
            leaves: Vec::new(),
            root: 0,
        };
        let root = arena.add(tree.root(), None);
        arena.root = root;
        arena
    }

    fn add(&mut self, node: &Node, parent: Option<usize>) -> usize {
        let id = self.nodes.len();
        match node {
            Node::Leaf(l) => {
                self.nodes.push(ArenaNode {
                    kind: Kind::Leaf(*l),
                    parent,
                    num_children: 0,
                });
                self.leaves.push(id);
            }
            Node::And(cs) => {
                self.nodes.push(ArenaNode {
                    kind: Kind::And,
                    parent,
                    num_children: cs.len(),
                });
                for c in cs {
                    self.add(c, Some(id));
                }
            }
            Node::Or(cs) => {
                self.nodes.push(ArenaNode {
                    kind: Kind::Or,
                    parent,
                    num_children: cs.len(),
                });
                for c in cs {
                    self.add(c, Some(id));
                }
            }
        }
        id
    }
}

/// Sets `node`'s value and propagates resolution towards the root:
/// an AND resolves FALSE on any FALSE child and TRUE when all children are
/// TRUE; dually for OR.
fn resolve(
    arena: &Arena,
    status: &mut [Option<bool>],
    pending: &mut [usize],
    node: usize,
    value: bool,
) {
    status[node] = Some(value);
    let mut child_value = value;
    let mut cursor = arena.nodes[node].parent;
    while let Some(p) = cursor {
        if status[p].is_some() {
            break;
        }
        let resolved = match arena.nodes[p].kind {
            Kind::And => {
                if !child_value {
                    Some(false)
                } else {
                    pending[p] -= 1;
                    if pending[p] == 0 {
                        Some(true)
                    } else {
                        None
                    }
                }
            }
            Kind::Or => {
                if child_value {
                    Some(true)
                } else {
                    pending[p] -= 1;
                    if pending[p] == 0 {
                        Some(false)
                    } else {
                        None
                    }
                }
            }
            Kind::Leaf(_) => unreachable!("leaves have no children"),
        };
        match resolved {
            Some(v) => {
                status[p] = Some(v);
                child_value = v;
                cursor = arena.nodes[p].parent;
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaf::{Leaf, LeafRef};
    use crate::prob::Prob;
    use crate::stream::StreamId;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    fn fig2() -> (AndTree, StreamCatalog) {
        let t = AndTree::new(vec![leaf(0, 1, 0.75), leaf(0, 2, 0.1), leaf(1, 1, 0.5)]).unwrap();
        (t, StreamCatalog::unit(2))
    }

    #[test]
    fn and_tree_all_true_pays_shared_items_once() {
        let (t, cat) = fig2();
        let s = AndSchedule::identity(3);
        let e = execute_and_tree_impl(&t, &cat, &s, &[true, true, true]);
        // l1 pulls A:1, l2 pulls A:+1, l3 pulls B:1 -> cost 3
        assert_eq!(e.cost, 3.0);
        assert!(e.value);
        assert_eq!(e.evaluated, 3);
        assert_eq!(e.items_pulled, vec![2, 1]);
    }

    #[test]
    fn and_tree_shortcircuits_on_false() {
        let (t, cat) = fig2();
        let s = AndSchedule::identity(3);
        let e = execute_and_tree_impl(&t, &cat, &s, &[false, true, true]);
        assert_eq!(e.cost, 1.0);
        assert!(!e.value);
        assert_eq!(e.evaluated, 1);
    }

    #[test]
    fn and_tree_reversed_schedule_pays_larger_item_count_first() {
        let (t, cat) = fig2();
        let s = AndSchedule::new(vec![1, 0, 2], &t).unwrap();
        let e = execute_and_tree_impl(&t, &cat, &s, &[true, true, true]);
        // l2 pulls A:2 (cost 2), l1 free, l3 pulls B:1
        assert_eq!(e.cost, 3.0);
        let e = execute_and_tree_impl(&t, &cat, &s, &[true, false, true]);
        // l2 pulls 2 items then fails
        assert_eq!(e.cost, 2.0);
        assert_eq!(e.evaluated, 1);
    }

    fn fig3() -> (DnfTree, StreamCatalog) {
        let t = DnfTree::from_leaves(vec![
            vec![leaf(0, 1, 0.5), leaf(2, 1, 0.5), leaf(3, 1, 0.5)],
            vec![leaf(1, 1, 0.5), leaf(2, 1, 0.5)],
            vec![leaf(1, 1, 0.5), leaf(3, 1, 0.5)],
        ])
        .unwrap();
        (t, StreamCatalog::unit(4))
    }

    /// The paper's Figure 3 schedule: l1..l7 numbered across ANDs:
    /// l1=(0,0) l2=(1,0) l3=(0,1) l4=(0,2) l5=(1,1) l6=(2,0) l7=(2,1).
    fn fig3_schedule(tree: &DnfTree) -> DnfSchedule {
        DnfSchedule::new(
            vec![
                LeafRef::new(0, 0),
                LeafRef::new(1, 0),
                LeafRef::new(0, 1),
                LeafRef::new(0, 2),
                LeafRef::new(1, 1),
                LeafRef::new(2, 0),
                LeafRef::new(2, 1),
            ],
            tree,
        )
        .unwrap()
    }

    #[test]
    fn dnf_first_and_true_resolves_query() {
        let (t, cat) = fig3();
        let s = fig3_schedule(&t);
        // assignment flat order: (0,0),(0,1),(0,2),(1,0),(1,1),(2,0),(2,1)
        let e = execute_dnf_impl(&t, &cat, &s, &[true, true, true, true, true, true, true]);
        // evaluates l1 (A), l2 (B), l3 (C), l4 (D) -> AND1 true, stop.
        assert_eq!(e.evaluated, 4);
        assert_eq!(e.cost, 4.0);
        assert!(e.value);
    }

    #[test]
    fn dnf_shared_item_is_free_for_second_and() {
        let (t, cat) = fig3();
        let s = fig3_schedule(&t);
        // AND1 fails at l3=(0,1) (C false kills AND2's C-leaf too... but they
        // are different leaves, independent values). Set: l1 true, l3 false.
        // Flat: (0,0)=t,(0,1)=f,(0,2)=x,(1,0)=t,(1,1)=t,(2,0)...
        let e = execute_dnf_impl(&t, &cat, &s, &[true, false, true, true, true, false, true]);
        // l1: A pulled (1). l2: B pulled (1). l3: C pulled (1) -> AND1 false.
        // l4 skipped. l5=(1,1): C already in memory -> free, true ->
        // AND2 complete -> TRUE.
        assert!(e.value);
        assert_eq!(e.cost, 3.0);
        assert_eq!(e.evaluated, 4);
    }

    #[test]
    fn dnf_all_false_costs_only_first_leaves() {
        let (t, cat) = fig3();
        let s = fig3_schedule(&t);
        let e = execute_dnf_impl(&t, &cat, &s, &[false; 7]);
        // l1 false (A, cost1) kills AND1; l2 false (B cost 1) kills AND2;
        // l6=(2,0) is B: free, false kills AND3 -> query FALSE.
        assert!(!e.value);
        assert_eq!(e.cost, 2.0);
        assert_eq!(e.evaluated, 3);
    }

    #[test]
    fn general_tree_matches_dnf_interpreter() {
        let (t, cat) = fig3();
        let qt = QueryTree::from(t.clone());
        let s = fig3_schedule(&t);
        let indexer = LeafIndexer::new(&t);
        let flat: Vec<usize> = s.order().iter().map(|&r| indexer.flat(r)).collect();
        for mask in 0..(1u32 << 7) {
            let assignment: Vec<bool> = (0..7).map(|b| mask >> b & 1 == 1).collect();
            let e1 = execute_dnf_impl(&t, &cat, &s, &assignment);
            let e2 = execute_query_tree(&qt, &cat, &flat, &assignment);
            assert_eq!(e1.cost, e2.cost, "mask {mask}");
            assert_eq!(e1.value, e2.value, "mask {mask}");
            assert_eq!(e1.evaluated, e2.evaluated, "mask {mask}");
        }
    }

    mod equivalence_props {
        use super::*;
        use proptest::prelude::*;
        use rand::prelude::*;

        fn dnf_instance() -> impl Strategy<Value = (DnfTree, StreamCatalog)> {
            let leaf_s = (0usize..3, 1u32..=4, 0.0f64..=1.0);
            let term = prop::collection::vec(leaf_s, 1..=2);
            let terms = prop::collection::vec(term, 1..=3);
            let costs = prop::collection::vec(0.1f64..10.0, 3);
            (terms, costs).prop_map(|(terms, costs)| {
                let catalog = StreamCatalog::from_costs(costs).expect("valid costs");
                let tree = DnfTree::from_leaves(
                    terms
                        .into_iter()
                        .map(|t| t.into_iter().map(|(s, d, p)| leaf(s, d, p)).collect())
                        .collect(),
                )
                .expect("non-empty");
                (tree, catalog)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The general-tree interpreter agrees with the DNF
            /// interpreter on every truth assignment of random shared
            /// instances and random schedules — cost, value and
            /// evaluated count (the per-assignment equivalence the
            /// expectation oracles alone cannot witness: opposite-sign
            /// cost errors would cancel, and truth values never enter
            /// an expected cost).
            #[test]
            fn general_tree_matches_dnf_on_random_instances(
                (tree, catalog) in dnf_instance(),
                seed in proptest::prelude::any::<u64>(),
            ) {
                let mut refs: Vec<LeafRef> = tree.leaf_refs().collect();
                refs.shuffle(&mut StdRng::seed_from_u64(seed));
                let s = DnfSchedule::new(refs, &tree).expect("leaf permutation");
                let qt = QueryTree::from(tree.clone());
                let indexer = LeafIndexer::new(&tree);
                let flat: Vec<usize> =
                    s.order().iter().map(|&r| indexer.flat(r)).collect();
                let n = tree.num_leaves();
                for mask in 0u32..(1 << n) {
                    let assignment: Vec<bool> =
                        (0..n).map(|b| mask >> b & 1 == 1).collect();
                    let a = execute_dnf_impl(&tree, &catalog, &s, &assignment);
                    let b = execute_query_tree(&qt, &catalog, &flat, &assignment);
                    prop_assert_eq!(a.cost, b.cost, "mask {}", mask);
                    prop_assert_eq!(a.value, b.value, "mask {}", mask);
                    prop_assert_eq!(a.evaluated, b.evaluated, "mask {}", mask);
                }
            }
        }
    }

    #[test]
    fn nested_tree_shortcircuits_inner_or() {
        // AND(OR(a, b), c): if a true, b is irrelevant.
        let qt = QueryTree::new(Node::and(vec![
            Node::or(vec![
                Node::Leaf(leaf(0, 1, 0.5)),
                Node::Leaf(leaf(1, 5, 0.5)),
            ]),
            Node::Leaf(leaf(2, 1, 0.5)),
        ]))
        .unwrap();
        let cat = StreamCatalog::unit(3);
        let e = execute_query_tree(&qt, &cat, &[0, 1, 2], &[true, true, true]);
        assert_eq!(e.evaluated, 2); // b skipped
        assert_eq!(e.cost, 2.0);
        assert!(e.value);
        let e = execute_query_tree(&qt, &cat, &[0, 1, 2], &[false, false, true]);
        assert!(!e.value);
        assert_eq!(e.evaluated, 2); // a, b; c short-circuited by AND false
        assert_eq!(e.cost, 6.0);
    }
}
