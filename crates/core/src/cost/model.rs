//! The compiled, allocation-free cost kernel.
//!
//! [`CostModel`] compiles one `(DnfTree, StreamCatalog)` pair into flat
//! arena arrays — leaf probabilities, window sizes and *local* stream
//! ids (only the streams the tree actually touches), term boundaries as
//! index ranges into one backing `Vec` — so that evaluating a schedule
//! costs no heap allocation and no work proportional to the catalog
//! size. A reusable [`EvalScratch`] holds every per-call buffer; after
//! the first evaluation of a given model, repeated calls are pure array
//! arithmetic.
//!
//! Semantics are identical to the literal Proposition 2 transcription in
//! [`crate::cost::dnf_eval`] (property tests pin the two to ≤ 1e-9
//! relative error); this kernel exists because every planner — the
//! greedy multi-query loops above all — bottoms out in thousands of
//! schedule evaluations per planning call. The catalog-size independence
//! matters in multi-query serving: a 128-query workload may catalog
//! hundreds of streams while each query reads a handful.

use crate::leaf::LeafRef;
use crate::schedule::DnfSchedule;
use crate::stream::{StreamCatalog, StreamId};
use crate::tree::DnfTree;

const NO_LOCAL: u32 = u32::MAX;

/// A `(DnfTree, StreamCatalog)` pair compiled for repeated schedule
/// evaluation. Construction is `O(leaves + catalog)`; evaluation via
/// [`CostModel::expected_cost`] / [`CostModel::expected_cost_with_coverage`]
/// allocates nothing when reusing an [`EvalScratch`].
#[derive(Debug, Clone)]
pub struct CostModel {
    n_terms: usize,
    n_local: usize,
    max_d: usize,
    num_leaves: usize,
    catalog_len: usize,
    /// Flat-leaf range of each term: leaves of term `i` occupy
    /// `term_start[i]..term_start[i + 1]`.
    term_start: Vec<u32>,
    /// Per flat leaf: local stream id, window size, success probability.
    leaf_stream: Vec<u32>,
    leaf_items: Vec<u32>,
    leaf_prob: Vec<f64>,
    /// Per term: product of its leaf probabilities.
    term_success: Vec<f64>,
    /// Local stream id -> global [`StreamId`] index.
    global_of_local: Vec<u32>,
    /// Global stream index -> local id (or `NO_LOCAL` when untouched).
    local_of_global: Vec<u32>,
    /// Per local stream: per-item acquisition cost.
    unit_cost: Vec<f64>,
}

/// Reusable per-evaluation buffers for a [`CostModel`]. One scratch per
/// thread; sized on first use and only regrown when bound to a larger
/// model.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Schedule position of each flat leaf.
    pos: Vec<u32>,
    /// Scheduled-leaf count per term (partial-order completion test).
    seen: Vec<u32>,
    /// Items acquired per local stream (isolated term evaluation).
    acquired: Vec<u32>,
    /// Reach probability of each flat leaf within its term.
    eval_prob: Vec<f64>,
    /// Running per-term prefix probability (build-time temporary).
    running: Vec<f64>,
    /// Position after which each term is fully scheduled.
    completed_pos: Vec<u32>,
    /// Items of each (term, local stream) already required by earlier
    /// same-term leaves (the first-case test of Proposition 2).
    covered: Vec<u32>,
    /// Member arena bucketed by `(local stream, item)`: bucket `b` holds
    /// `member_*[bucket_start[b]..bucket_start[b + 1]]`.
    bucket_start: Vec<u32>,
    cursor: Vec<u32>,
    member_term: Vec<u32>,
    member_pos: Vec<u32>,
    member_eval: Vec<f64>,
    /// Term bitmask per bucket (valid when the model has ≤ 64 terms).
    bucket_mask: Vec<u64>,
    /// Expected items pulled per *local* stream — the evaluation output.
    items: Vec<f64>,
    /// Frozen-prefix factor 1 per bucket: `Π (1 - eval_prob)` over the
    /// bucket's members (see [`CostModel::freeze_prefix`]).
    bucket_f1: Vec<f64>,
    /// Frozen-prefix factor 2 per bucket: `Π (1 - success)` over
    /// prefix-completed terms without a member in the bucket.
    bucket_f2: Vec<f64>,
}

impl CostModel {
    /// Compiles `tree` against `catalog`.
    ///
    /// # Panics
    /// Panics when a leaf references a stream outside the catalog (the
    /// same contract as the literal evaluator's indexing).
    pub fn new(tree: &DnfTree, catalog: &StreamCatalog) -> CostModel {
        let n_terms = tree.num_terms();
        let num_leaves = tree.num_leaves();
        let catalog_len = catalog.len();

        let mut local_of_global = vec![NO_LOCAL; catalog_len];
        let mut global_of_local = Vec::new();
        let mut unit_cost = Vec::new();

        let mut term_start = Vec::with_capacity(n_terms + 1);
        let mut leaf_stream = Vec::with_capacity(num_leaves);
        let mut leaf_items = Vec::with_capacity(num_leaves);
        let mut leaf_prob = Vec::with_capacity(num_leaves);
        let mut term_success = Vec::with_capacity(n_terms);
        let mut max_d = 0usize;

        term_start.push(0u32);
        for term in tree.terms() {
            let mut success = 1.0;
            for leaf in term.leaves() {
                let g = leaf.stream.0;
                assert!(g < catalog_len, "leaf stream {g} outside the catalog");
                let local = if local_of_global[g] == NO_LOCAL {
                    let l = global_of_local.len() as u32;
                    local_of_global[g] = l;
                    global_of_local.push(g as u32);
                    unit_cost.push(catalog.cost(leaf.stream));
                    l
                } else {
                    local_of_global[g]
                };
                leaf_stream.push(local);
                leaf_items.push(leaf.items);
                leaf_prob.push(leaf.prob.value());
                max_d = max_d.max(leaf.items as usize);
                success *= leaf.prob.value();
            }
            term_success.push(success);
            term_start.push(leaf_stream.len() as u32);
        }

        CostModel {
            n_terms,
            n_local: global_of_local.len(),
            max_d,
            num_leaves,
            catalog_len,
            term_start,
            leaf_stream,
            leaf_items,
            leaf_prob,
            term_success,
            global_of_local,
            local_of_global,
            unit_cost,
        }
    }

    /// A scratch pre-sized for this model (any [`EvalScratch`] works;
    /// this one avoids even the first-call growth).
    pub fn make_scratch(&self) -> EvalScratch {
        let mut s = EvalScratch::default();
        s.reserve(self);
        s
    }

    /// Number of distinct streams the tree touches.
    #[inline]
    pub fn num_streams_touched(&self) -> usize {
        self.n_local
    }

    /// The global ids of the streams the tree touches, in first-use
    /// order (the kernel's local stream order).
    pub fn touched_streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.global_of_local.iter().map(|&g| StreamId(g as usize))
    }

    /// Expected cost of `schedule` — Proposition 2, arena kernel.
    pub fn expected_cost(&self, schedule: &DnfSchedule, scratch: &mut EvalScratch) -> f64 {
        self.expected_cost_with_coverage(schedule.order(), &[], scratch)
    }

    /// Expected cost of the (possibly partial) schedule `order` under
    /// *prior coverage* (see
    /// [`crate::cost::dnf_eval::expected_items_with_coverage`]).
    /// `coverage` is indexed by global stream id and may be empty (no
    /// coverage). After the call, [`CostModel::items_per_stream`] and
    /// [`CostModel::add_items_to`] expose the per-stream item
    /// decomposition of the returned cost.
    ///
    /// `order` may be any *prefix* of a schedule — a subset of the
    /// model's leaves, each at most once. Terms with unscheduled leaves
    /// are treated as never completing within the prefix, exactly like
    /// [`crate::cost::incremental::DnfCostEvaluator`] after pushing the
    /// same prefix.
    ///
    /// # Panics
    /// Panics when `coverage` is neither empty nor `catalog.len()` long,
    /// or when `order` repeats a leaf (debug builds).
    pub fn expected_cost_with_coverage(
        &self,
        order: &[LeafRef],
        coverage: &[f64],
        scratch: &mut EvalScratch,
    ) -> f64 {
        self.appended_cost(order, &[], coverage, scratch)
    }

    /// Expected cost of `order` when the streams flagged in `arranged`
    /// (catalog-indexed; may be empty) are served from maintained
    /// arrangements: their pulls are free — the maintenance that pays
    /// for them is priced separately, per stream, by
    /// [`crate::cost::arrange::ArrangeTerm`] — while unarranged streams
    /// keep their full re-pull cost. Implemented as full prior coverage
    /// on the arranged streams, so the short-circuiting expectation
    /// stays exact.
    pub fn expected_cost_arranged(
        &self,
        order: &[LeafRef],
        arranged: &[bool],
        scratch: &mut EvalScratch,
    ) -> f64 {
        assert!(
            arranged.is_empty() || arranged.len() == self.catalog_len,
            "arranged must be empty or have one entry per catalog stream"
        );
        if arranged.iter().all(|&a| !a) {
            return self.expected_cost_with_coverage(order, &[], scratch);
        }
        let coverage: Vec<f64> = (0..self.catalog_len)
            .map(|k| {
                if arranged[k] {
                    f64::from(self.max_window(StreamId(k)))
                } else {
                    0.0
                }
            })
            .collect();
        self.expected_cost_with_coverage(order, &coverage, scratch)
    }

    /// Expected cost of the (possibly partial) schedule `prefix ⧺ tail`
    /// without materializing the concatenation — the *schedule-delta*
    /// primitive of the dynamic heuristics: evaluating
    /// `appended_cost(prefix, candidate, ..) - appended_cost(prefix, &[], ..)`
    /// prices a candidate extension with zero allocation.
    pub fn appended_cost(
        &self,
        prefix: &[LeafRef],
        tail: &[LeafRef],
        coverage: &[f64],
        scratch: &mut EvalScratch,
    ) -> f64 {
        assert!(
            coverage.is_empty() || coverage.len() == self.catalog_len,
            "coverage must be empty or have one entry per catalog stream"
        );
        debug_assert!(
            prefix.len() + tail.len() <= self.num_leaves,
            "schedule uses each leaf at most once"
        );
        #[cfg(debug_assertions)]
        {
            // A repeated leaf would double-count `seen` and silently
            // mis-classify its term as completed — catch it loudly.
            let mut used = vec![false; self.num_leaves];
            for &r in prefix.iter().chain(tail) {
                let flat = self.flat(r);
                assert!(!used[flat], "leaf {r:?} appears twice in the order");
                used[flat] = true;
            }
        }
        scratch.reserve(self);
        let order = || prefix.iter().chain(tail);

        let n_terms = self.n_terms;
        let n_local = self.n_local;
        let max_d = self.max_d;
        let n_buckets = n_local * max_d;
        let use_masks = n_terms <= 64;

        // Pass 1: positions, reach probabilities, completion positions.
        for r in &mut scratch.running[..n_terms] {
            *r = 1.0;
        }
        for c in &mut scratch.completed_pos[..n_terms] {
            *c = 0;
        }
        for s in &mut scratch.seen[..n_terms] {
            *s = 0;
        }
        for (p, &r) in order().enumerate() {
            let flat = self.flat(r);
            scratch.pos[flat] = p as u32;
            scratch.eval_prob[flat] = scratch.running[r.term];
            scratch.running[r.term] *= self.leaf_prob[flat];
            scratch.seen[r.term] += 1;
            if scratch.completed_pos[r.term] < p as u32 {
                scratch.completed_pos[r.term] = p as u32;
            }
        }
        // A term with unscheduled leaves never completes within this
        // (possibly partial) order: push its completion past any
        // position so factor 2 ignores it.
        for t in 0..n_terms {
            let len = (self.term_start[t + 1] - self.term_start[t]) as usize;
            if (scratch.seen[t] as usize) < len {
                scratch.completed_pos[t] = u32::MAX;
            }
        }

        // Pass 2: count L_{k,t} members per bucket. Scanning the global
        // order visits each term's leaves in schedule order, which is
        // exactly the per-term walk the literal evaluator sorts for.
        for c in &mut scratch.covered[..n_terms * n_local] {
            *c = 0;
        }
        for b in &mut scratch.bucket_start[..n_buckets + 1] {
            *b = 0;
        }
        for &r in order() {
            let flat = self.flat(r);
            let k = self.leaf_stream[flat] as usize;
            let d = self.leaf_items[flat];
            let cov = &mut scratch.covered[r.term * n_local + k];
            for t in (*cov + 1)..=d.max(*cov) {
                // count into the slot *after* the bucket: prefix-summing
                // turns counts into start offsets in place.
                scratch.bucket_start[k * max_d + t as usize] += 1;
            }
            *cov = (*cov).max(d);
        }
        // Counts were staged one slot after their bucket, so an
        // *inclusive* prefix sum leaves `bucket_start[b]` = first slot of
        // bucket `b` and `bucket_start[b + 1]` = one past its last.
        let mut acc = 0u32;
        for b in &mut scratch.bucket_start[..n_buckets + 1] {
            acc += *b;
            *b = acc;
        }
        let n_members = acc as usize;

        // Pass 3: fill the member arena.
        scratch.cursor[..n_buckets].copy_from_slice(&scratch.bucket_start[..n_buckets]);
        for c in &mut scratch.covered[..n_terms * n_local] {
            *c = 0;
        }
        if use_masks {
            for m in &mut scratch.bucket_mask[..n_buckets] {
                *m = 0;
            }
        }
        scratch.grow_members(n_members);
        for &r in order() {
            let flat = self.flat(r);
            let k = self.leaf_stream[flat] as usize;
            let d = self.leaf_items[flat];
            let cov = &mut scratch.covered[r.term * n_local + k];
            for t in (*cov + 1)..=d.max(*cov) {
                let b = k * max_d + (t - 1) as usize;
                let slot = scratch.cursor[b] as usize;
                scratch.cursor[b] += 1;
                scratch.member_term[slot] = r.term as u32;
                scratch.member_pos[slot] = scratch.pos[flat];
                scratch.member_eval[slot] = scratch.eval_prob[flat];
                if use_masks {
                    scratch.bucket_mask[b] |= 1u64 << (r.term as u32 & 63);
                }
            }
            *cov = (*cov).max(d);
        }

        // Main loop: sum C_{i,j,t} over leaves and items, per stream.
        for i in &mut scratch.items[..n_local] {
            *i = 0.0;
        }
        for &r in order() {
            let flat = self.flat(r);
            let k = self.leaf_stream[flat] as usize;
            let my_pos = scratch.pos[flat];
            let f3 = scratch.eval_prob[flat];
            let cov_k = if coverage.is_empty() {
                0.0
            } else {
                coverage[self.global_of_local[k] as usize]
            };
            let mut leaf_items_out = 0.0;
            for t in 1..=self.leaf_items[flat] {
                let need = (f64::from(t) - cov_k).clamp(0.0, 1.0);
                if need == 0.0 {
                    continue;
                }
                let b = k * max_d + (t - 1) as usize;
                let lo = scratch.bucket_start[b] as usize;
                let hi = scratch.bucket_start[b + 1] as usize;

                // First case of Proposition 2: a same-term member earlier
                // in the schedule makes the item free.
                let mut same_term_earlier = false;
                let mut f1 = 1.0;
                for m in lo..hi {
                    if scratch.member_pos[m] < my_pos {
                        if scratch.member_term[m] as usize == r.term {
                            same_term_earlier = true;
                            break;
                        }
                        f1 *= 1.0 - scratch.member_eval[m];
                    }
                }
                if same_term_earlier {
                    continue;
                }
                // Factor 2: no completed AND node without a member in
                // L_{k,t} evaluated to TRUE.
                let mut f2 = 1.0;
                if use_masks {
                    let mask = scratch.bucket_mask[b];
                    for a in 0..n_terms {
                        if scratch.completed_pos[a] < my_pos && mask >> (a & 63) & 1 == 0 {
                            f2 *= 1.0 - self.term_success[a];
                        }
                    }
                } else {
                    for a in 0..n_terms {
                        if scratch.completed_pos[a] >= my_pos {
                            continue;
                        }
                        let in_set = (lo..hi).any(|m| scratch.member_term[m] as usize == a);
                        if !in_set {
                            f2 *= 1.0 - self.term_success[a];
                        }
                    }
                }
                leaf_items_out += f1 * f2 * need;
            }
            scratch.items[k] += leaf_items_out * f3;
        }

        let mut cost = 0.0;
        for k in 0..n_local {
            cost += scratch.items[k] * self.unit_cost[k];
        }
        cost
    }

    /// Expected cost of many candidate orders over this one compiled
    /// tree with one scratch — the batch shape every heuristic planner's
    /// inner loop reduces to. Each order may be partial (see
    /// [`CostModel::expected_cost_with_coverage`]); results are returned
    /// in input order. Equivalent to (but allocation-free over) one
    /// [`CostModel::expected_cost_with_coverage`] call per order.
    pub fn expected_cost_batch(
        &self,
        orders: &[&[LeafRef]],
        coverage: &[f64],
        scratch: &mut EvalScratch,
    ) -> Vec<f64> {
        orders
            .iter()
            .map(|order| self.appended_cost(order, &[], coverage, scratch))
            .collect()
    }

    /// Evaluates `prefix` and *freezes* its Proposition-2 state in
    /// `scratch`, returning the prefix cost. Afterwards
    /// [`CostModel::frozen_append_cost`] prices whole-term extensions of
    /// the frozen prefix in `O(term leaves · window)` each — the
    /// schedule-delta primitive behind the dynamic AND-ordered
    /// heuristics, which re-score every remaining term every round.
    ///
    /// The frozen factors are per `(stream, item)` bucket: factor 1 is
    /// the product of `1 - eval_prob` over the bucket's prefix members
    /// (every prefix member precedes any extension leaf), factor 2 the
    /// product of `1 - success` over prefix-completed AND nodes without
    /// a member in the bucket. Both are position-independent for
    /// extension leaves, so one pass per round amortizes them over all
    /// candidate terms.
    ///
    /// # Panics
    /// Panics on models with more than 64 terms (the bucket term mask is
    /// one `u64`); callers fall back to [`CostModel::appended_cost`]
    /// deltas there.
    pub fn freeze_prefix(&self, prefix: &[LeafRef], scratch: &mut EvalScratch) -> f64 {
        assert!(
            self.n_terms <= 64,
            "frozen-prefix evaluation is limited to 64 AND nodes"
        );
        let cost = self.appended_cost(prefix, &[], &[], scratch);
        let n_buckets = self.n_local * self.max_d;
        grow(&mut scratch.bucket_f1, n_buckets, 1.0);
        grow(&mut scratch.bucket_f2, n_buckets, 1.0);
        for b in 0..n_buckets {
            let lo = scratch.bucket_start[b] as usize;
            let hi = scratch.bucket_start[b + 1] as usize;
            let mut f1 = 1.0;
            for m in lo..hi {
                f1 *= 1.0 - scratch.member_eval[m];
            }
            scratch.bucket_f1[b] = f1;
            let mask = scratch.bucket_mask[b];
            let mut f2 = 1.0;
            for a in 0..self.n_terms {
                // Completed within the prefix (partial terms carry a
                // `u32::MAX` completion position) and without a member
                // in this bucket.
                if scratch.completed_pos[a] != u32::MAX && mask >> (a & 63) & 1 == 0 {
                    f2 *= 1.0 - self.term_success[a];
                }
            }
            scratch.bucket_f2[b] = f2;
        }
        cost
    }

    /// Marginal expected cost of appending every leaf of `tail` — all
    /// belonging to **one term that has no leaf in the frozen prefix** —
    /// to the prefix frozen by the last [`CostModel::freeze_prefix`] on
    /// `scratch`. Bitwise-stable and allocation-free; the frozen state
    /// is left untouched, so any number of candidate terms can be priced
    /// against one freeze.
    pub fn frozen_append_cost(&self, tail: &[LeafRef], scratch: &mut EvalScratch) -> f64 {
        let Some(&first) = tail.first() else {
            return 0.0;
        };
        let term = first.term;
        let max_d = self.max_d;
        // Within-candidate coverage starts from the term's frozen
        // coverage (zero when the term is absent from the prefix).
        for &r in tail {
            debug_assert_eq!(r.term, term, "extension leaves belong to one term");
            let k = self.leaf_stream[self.flat(r)] as usize;
            scratch.acquired[k] = scratch.covered[term * self.n_local + k];
        }
        let mut reach = scratch.running[term];
        let mut delta = 0.0;
        for &r in tail {
            let flat = self.flat(r);
            let k = self.leaf_stream[flat] as usize;
            let d = self.leaf_items[flat];
            let have = scratch.acquired[k];
            let mut leaf_items_out = 0.0;
            for t in (have + 1)..=d.max(have) {
                let b = k * max_d + (t - 1) as usize;
                // A frozen same-term member (or an earlier tail leaf,
                // via `acquired`) makes the item free.
                if scratch.bucket_mask[b] >> (term as u32 & 63) & 1 == 1 {
                    continue;
                }
                leaf_items_out += scratch.bucket_f1[b] * scratch.bucket_f2[b];
            }
            delta += leaf_items_out * reach * self.unit_cost[k];
            scratch.acquired[k] = have.max(d);
            reach *= self.leaf_prob[flat];
        }
        delta
    }

    /// Commits every leaf of `tail` — one whole term absent from the
    /// frozen prefix — into the frozen state, exactly as if the prefix
    /// had been re-frozen with the term appended: factor-1 products and
    /// term masks gain the new members in schedule order, the term's
    /// reach and coverage advance, and its completion folds into every
    /// factor-2 product without a member of it. `O(leaves · window +
    /// buckets)` — the dynamic heuristics commit each selected term
    /// instead of re-freezing the grown prefix every round.
    pub fn frozen_commit_term(&self, tail: &[LeafRef], scratch: &mut EvalScratch) {
        let Some(&first) = tail.first() else {
            return;
        };
        let term = first.term;
        let max_d = self.max_d;
        let mut reach = scratch.running[term];
        for &r in tail {
            debug_assert_eq!(r.term, term, "committed leaves belong to one term");
            let flat = self.flat(r);
            let k = self.leaf_stream[flat] as usize;
            let d = self.leaf_items[flat];
            let cov = &mut scratch.covered[term * self.n_local + k];
            for t in (*cov + 1)..=d.max(*cov) {
                let b = k * max_d + (t - 1) as usize;
                scratch.bucket_f1[b] *= 1.0 - reach;
                scratch.bucket_mask[b] |= 1u64 << (term as u32 & 63);
            }
            *cov = (*cov).max(d);
            reach *= self.leaf_prob[flat];
        }
        scratch.running[term] = reach;
        // The whole term is now scheduled: it completes, discounting
        // factor 2 of every bucket it has no member in. `0` marks the
        // completion (any value but the `u32::MAX` "open" sentinel).
        scratch.completed_pos[term] = 0;
        for b in 0..self.n_local * max_d {
            if scratch.bucket_mask[b] >> (term as u32 & 63) & 1 == 0 {
                scratch.bucket_f2[b] *= 1.0 - self.term_success[term];
            }
        }
    }

    /// Number of terms (AND nodes) of the compiled tree.
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.n_terms
    }

    /// Number of leaves of term `i`.
    #[inline]
    pub fn term_len(&self, term: usize) -> usize {
        (self.term_start[term + 1] - self.term_start[term]) as usize
    }

    /// Success probability of term `i` — the product of its leaf
    /// probabilities in declaration order (bitwise equal to
    /// `AndTree::success_prob` on the extracted term).
    #[inline]
    pub fn term_success_prob(&self, term: usize) -> f64 {
        self.term_success[term]
    }

    /// Within-term Smith order of term `i`: leaf offsets sorted by
    /// non-decreasing `d·c/q` ratio, ties by offset — the same order
    /// `algo::smith` produces for the term in isolation, computed from
    /// the compiled arrays without building an `AndTree`.
    pub fn term_smith_order(&self, term: usize, out: &mut Vec<usize>) {
        let start = self.term_start[term] as usize;
        out.clear();
        out.extend(0..self.term_len(term));
        out.sort_by(|&a, &b| {
            let ra = self.leaf_smith_ratio(start + a);
            let rb = self.leaf_smith_ratio(start + b);
            ra.total_cmp(&rb).then(a.cmp(&b))
        });
    }

    #[inline]
    fn leaf_smith_ratio(&self, flat: usize) -> f64 {
        crate::algo::smith::smith_ratio(
            self.leaf_items[flat],
            self.unit_cost[self.leaf_stream[flat] as usize],
            1.0 - self.leaf_prob[flat],
        )
    }

    /// Expected cost of evaluating term `i` **in isolation** under the
    /// within-term `order` (leaf offsets) — bitwise equal to
    /// `cost::and_eval::expected_cost` on the extracted term, but using
    /// a local-stream scratch buffer instead of a catalog-wide one.
    pub fn term_isolated_cost(
        &self,
        term: usize,
        order: &[usize],
        scratch: &mut EvalScratch,
    ) -> f64 {
        scratch.reserve(self);
        let start = self.term_start[term] as usize;
        for j in 0..self.term_len(term) {
            scratch.acquired[self.leaf_stream[start + j] as usize] = 0;
        }
        let mut reach = 1.0;
        let mut cost = 0.0;
        for &j in order {
            let flat = start + j;
            let k = self.leaf_stream[flat] as usize;
            let have = scratch.acquired[k];
            if self.leaf_items[flat] > have {
                cost += reach * f64::from(self.leaf_items[flat] - have) * self.unit_cost[k];
                scratch.acquired[k] = self.leaf_items[flat];
            }
            reach *= self.leaf_prob[flat];
        }
        cost
    }

    /// The per-stream item decomposition of the last evaluation run on
    /// `scratch`: `(stream, expected items pulled)` for every touched
    /// stream. Untouched catalog streams pull nothing.
    pub fn items_per_stream<'s>(
        &'s self,
        scratch: &'s EvalScratch,
    ) -> impl Iterator<Item = (StreamId, f64)> + 's {
        self.global_of_local
            .iter()
            .zip(&scratch.items)
            .map(|(&g, &i)| (StreamId(g as usize), i))
    }

    /// Adds the last evaluation's per-stream items into a global,
    /// catalog-indexed accumulator (e.g. a coverage vector).
    pub fn add_items_to(&self, scratch: &EvalScratch, out: &mut [f64]) {
        for (k, &g) in self.global_of_local.iter().enumerate() {
            out[g as usize] += scratch.items[k];
        }
    }

    /// The last evaluation's items as a full catalog-indexed vector
    /// (allocates; for callers that need the literal-evaluator shape).
    pub fn items_vec(&self, scratch: &EvalScratch) -> Vec<f64> {
        let mut out = vec![0.0; self.catalog_len];
        self.add_items_to(scratch, &mut out);
        out
    }

    /// The widest window the tree opens on global stream `k`
    /// (0 when untouched). Used by coverage-discounting planners.
    pub fn max_window(&self, stream: StreamId) -> u32 {
        let local = self.local_of_global[stream.0];
        if local == NO_LOCAL {
            return 0;
        }
        let mut w = 0;
        for (flat, &s) in self.leaf_stream.iter().enumerate() {
            if s == local {
                w = w.max(self.leaf_items[flat]);
            }
        }
        w
    }

    #[inline]
    fn flat(&self, r: LeafRef) -> usize {
        self.term_start[r.term] as usize + r.leaf
    }
}

impl EvalScratch {
    /// A fresh, unsized scratch (grown on first use).
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }

    /// Grows every buffer to fit `model` (no-op once large enough).
    fn reserve(&mut self, model: &CostModel) {
        let n_buckets = model.n_local * model.max_d;
        grow(&mut self.pos, model.num_leaves, 0);
        grow(&mut self.seen, model.n_terms, 0);
        grow(&mut self.acquired, model.n_local, 0);
        grow(&mut self.eval_prob, model.num_leaves, 0.0);
        grow(&mut self.running, model.n_terms, 1.0);
        grow(&mut self.completed_pos, model.n_terms, 0);
        grow(&mut self.covered, model.n_terms * model.n_local, 0);
        grow(&mut self.bucket_start, n_buckets + 1, 0);
        grow(&mut self.cursor, n_buckets, 0);
        grow(&mut self.bucket_mask, n_buckets, 0);
        grow(&mut self.items, model.n_local, 0.0);
    }

    fn grow_members(&mut self, n: usize) {
        grow(&mut self.member_term, n, 0);
        grow(&mut self.member_pos, n, 0);
        grow(&mut self.member_eval, n, 0.0);
    }
}

fn grow<T: Clone>(v: &mut Vec<T>, len: usize, fill: T) {
    if v.len() < len {
        v.resize(len, fill);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::dnf_eval;
    use crate::leaf::Leaf;
    use crate::prob::Prob;
    use rand::prelude::*;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    fn example() -> (DnfTree, StreamCatalog) {
        (
            DnfTree::from_leaves(vec![
                vec![leaf(0, 3, 0.4), leaf(1, 1, 0.7)],
                vec![leaf(0, 5, 0.6), leaf(1, 2, 0.2)],
                vec![leaf(2, 1, 0.9), leaf(0, 2, 0.5)],
            ])
            .unwrap(),
            StreamCatalog::from_costs([2.0, 3.0, 0.5]).unwrap(),
        )
    }

    #[test]
    fn kernel_matches_literal_on_random_schedules() {
        let (t, cat) = example();
        let model = CostModel::new(&t, &cat);
        let mut scratch = model.make_scratch();
        let mut rng = StdRng::seed_from_u64(99);
        let mut refs: Vec<LeafRef> = t.leaf_refs().collect();
        for _ in 0..60 {
            refs.shuffle(&mut rng);
            let s = DnfSchedule::new(refs.clone(), &t).unwrap();
            let literal = dnf_eval::expected_cost(&t, &cat, &s);
            let kernel = model.expected_cost(&s, &mut scratch);
            assert!(
                (literal - kernel).abs() < 1e-12,
                "literal {literal} vs kernel {kernel}"
            );
        }
    }

    #[test]
    fn arranged_streams_cost_nothing_to_pull() {
        let (t, cat) = example();
        let model = CostModel::new(&t, &cat);
        let mut scratch = model.make_scratch();
        let s = DnfSchedule::declaration_order(&t);
        let full = model.expected_cost_arranged(s.order(), &[], &mut scratch);
        assert_eq!(full, model.expected_cost(&s, &mut scratch));
        // Arranging stream 0 removes exactly its item contribution.
        let arranged = model.expected_cost_arranged(s.order(), &[true, false, false], &mut scratch);
        model.expected_cost(&s, &mut scratch);
        let items0 = model
            .items_per_stream(&scratch)
            .find(|(k, _)| *k == StreamId(0))
            .map(|(_, i)| i)
            .unwrap();
        let expect = model.expected_cost(&s, &mut scratch) - items0 * 2.0;
        assert!((arranged - expect).abs() < 1e-12, "{arranged} vs {expect}");
        // Arranging everything makes evaluation free.
        let all = model.expected_cost_arranged(s.order(), &[true, true, true], &mut scratch);
        assert!(all.abs() < 1e-12, "{all}");
    }

    #[test]
    fn kernel_matches_literal_under_coverage() {
        let (t, cat) = example();
        let model = CostModel::new(&t, &cat);
        let mut scratch = model.make_scratch();
        let s = DnfSchedule::declaration_order(&t);
        for coverage in [
            vec![0.0, 0.0, 0.0],
            vec![1.5, 0.25, 1.0],
            vec![9.0, 9.0, 9.0],
        ] {
            let literal = dnf_eval::expected_items_with_coverage(&t, &cat, &s, &coverage);
            let cost = model.expected_cost_with_coverage(s.order(), &coverage, &mut scratch);
            let items = model.items_vec(&scratch);
            for (k, (a, b)) in literal.iter().zip(&items).enumerate() {
                assert!((a - b).abs() < 1e-12, "stream {k}: literal {a} kernel {b}");
            }
            let dot: f64 = literal
                .iter()
                .enumerate()
                .map(|(k, i)| i * cat.cost(StreamId(k)))
                .sum();
            assert!((dot - cost).abs() < 1e-12);
        }
    }

    #[test]
    fn local_streams_ignore_catalog_width() {
        // Same tree over a catalog with 100 unused streams: identical
        // results, and the kernel only tracks the 3 touched streams.
        let (t, _) = example();
        let mut costs = vec![7.0; 100];
        costs[0] = 2.0;
        costs[1] = 3.0;
        costs[2] = 0.5;
        let wide = StreamCatalog::from_costs(costs).unwrap();
        let model = CostModel::new(&t, &wide);
        assert_eq!(model.num_streams_touched(), 3);
        let mut scratch = model.make_scratch();
        let s = DnfSchedule::declaration_order(&t);
        let kernel = model.expected_cost(&s, &mut scratch);
        let literal = dnf_eval::expected_cost(&t, &wide, &s);
        assert!((kernel - literal).abs() < 1e-12);
        let touched: Vec<usize> = model.touched_streams().map(|s| s.0).collect();
        assert_eq!(touched, vec![0, 1, 2]);
        assert_eq!(model.max_window(StreamId(0)), 5);
        assert_eq!(model.max_window(StreamId(50)), 0);
    }

    #[test]
    fn scratch_is_reusable_across_models() {
        let (t, cat) = example();
        let small = DnfTree::from_leaves(vec![vec![leaf(0, 2, 0.5)]]).unwrap();
        let m1 = CostModel::new(&t, &cat);
        let m2 = CostModel::new(&small, &cat);
        let mut scratch = EvalScratch::new();
        let s1 = DnfSchedule::declaration_order(&t);
        let s2 = DnfSchedule::declaration_order(&small);
        for _ in 0..3 {
            let a = m1.expected_cost(&s1, &mut scratch);
            let b = m2.expected_cost(&s2, &mut scratch);
            assert!((a - dnf_eval::expected_cost(&t, &cat, &s1)).abs() < 1e-12);
            assert!((b - dnf_eval::expected_cost(&small, &cat, &s2)).abs() < 1e-12);
        }
    }

    #[test]
    fn prefix_costs_match_the_incremental_evaluator_bitwise_totals() {
        use crate::cost::incremental::DnfCostEvaluator;
        let (t, cat) = example();
        let model = CostModel::new(&t, &cat);
        let mut scratch = model.make_scratch();
        let mut rng = StdRng::seed_from_u64(17);
        let mut refs: Vec<LeafRef> = t.leaf_refs().collect();
        for _ in 0..30 {
            refs.shuffle(&mut rng);
            let mut eval = DnfCostEvaluator::new(&t, &cat);
            for cut in 0..=refs.len() {
                let kernel = model.expected_cost_with_coverage(&refs[..cut], &[], &mut scratch);
                assert!(
                    (kernel - eval.total_cost()).abs() < 1e-12,
                    "prefix len {cut}: kernel {kernel} vs incremental {}",
                    eval.total_cost()
                );
                if cut < refs.len() {
                    eval.push(refs[cut]);
                }
            }
        }
    }

    #[test]
    fn appended_cost_equals_concatenated_evaluation() {
        let (t, cat) = example();
        let model = CostModel::new(&t, &cat);
        let mut scratch = model.make_scratch();
        let refs: Vec<LeafRef> = t.leaf_refs().collect();
        for cut in 0..=refs.len() {
            let (prefix, tail) = refs.split_at(cut);
            let chained = model.appended_cost(prefix, tail, &[], &mut scratch);
            let whole = model.expected_cost_with_coverage(&refs, &[], &mut scratch);
            assert_eq!(chained, whole, "cut {cut}");
        }
    }

    #[test]
    fn batch_evaluation_matches_one_at_a_time() {
        let (t, cat) = example();
        let model = CostModel::new(&t, &cat);
        let mut scratch = model.make_scratch();
        let mut rng = StdRng::seed_from_u64(23);
        let mut refs: Vec<LeafRef> = t.leaf_refs().collect();
        let orders: Vec<Vec<LeafRef>> = (0..8)
            .map(|_| {
                refs.shuffle(&mut rng);
                let cut = rng.gen_range(1..=refs.len());
                refs[..cut].to_vec()
            })
            .collect();
        let views: Vec<&[LeafRef]> = orders.iter().map(|o| o.as_slice()).collect();
        let coverage = vec![0.5, 0.0, 1.5];
        let batch = model.expected_cost_batch(&views, &coverage, &mut scratch);
        for (order, got) in orders.iter().zip(&batch) {
            let one = model.expected_cost_with_coverage(order, &coverage, &mut scratch);
            assert_eq!(one, *got);
        }
    }

    #[test]
    fn frozen_append_cost_matches_incremental_marginals() {
        use crate::cost::incremental::DnfCostEvaluator;
        let (t, cat) = example();
        let model = CostModel::new(&t, &cat);
        let mut scratch = model.make_scratch();
        // Freeze every whole-term prefix; price each remaining term.
        let term_refs: Vec<Vec<LeafRef>> = (0..t.num_terms())
            .map(|i| (0..t.term(i).len()).map(|j| LeafRef::new(i, j)).collect())
            .collect();
        for placed in 0..t.num_terms() {
            let prefix: Vec<LeafRef> = term_refs[..placed].concat();
            let frozen_cost = model.freeze_prefix(&prefix, &mut scratch);
            let mut eval = DnfCostEvaluator::new(&t, &cat);
            for &r in &prefix {
                eval.push(r);
            }
            assert!((frozen_cost - eval.total_cost()).abs() < 1e-12);
            for (candidate, refs) in term_refs.iter().enumerate().skip(placed) {
                let fast = model.frozen_append_cost(refs, &mut scratch);
                let mut probe = eval.clone();
                let mut slow = 0.0;
                for &r in refs {
                    slow += probe.push(r);
                }
                assert!(
                    (fast - slow).abs() < 1e-12,
                    "prefix {placed} term {candidate}: frozen {fast} vs marginals {slow}"
                );
            }
        }
        assert_eq!(model.frozen_append_cost(&[], &mut scratch), 0.0);
    }

    #[test]
    fn committing_terms_matches_refreezing_the_grown_prefix() {
        let (t, cat) = example();
        let model = CostModel::new(&t, &cat);
        let term_refs: Vec<Vec<LeafRef>> = (0..t.num_terms())
            .map(|i| (0..t.term(i).len()).map(|j| LeafRef::new(i, j)).collect())
            .collect();
        // Walk the terms in a non-trivial order, committing one by one.
        let walk = [2usize, 0, 1];
        let mut committed = model.make_scratch();
        model.freeze_prefix(&[], &mut committed);
        let mut prefix: Vec<LeafRef> = Vec::new();
        for (step, &i) in walk.iter().enumerate() {
            model.frozen_commit_term(&term_refs[i], &mut committed);
            prefix.extend(term_refs[i].iter().copied());
            let mut fresh = model.make_scratch();
            model.freeze_prefix(&prefix, &mut fresh);
            for (cand, refs) in term_refs.iter().enumerate() {
                if walk[..=step].contains(&cand) {
                    continue;
                }
                let a = model.frozen_append_cost(refs, &mut committed);
                let b = model.frozen_append_cost(refs, &mut fresh);
                assert!(
                    (a - b).abs() < 1e-12,
                    "step {step} candidate {cand}: committed {a} vs refrozen {b}"
                );
            }
        }
    }

    #[test]
    fn term_helpers_match_the_and_tree_path_bitwise() {
        use crate::cost::and_eval;
        let (t, cat) = example();
        let model = CostModel::new(&t, &cat);
        let mut scratch = model.make_scratch();
        let mut order = Vec::new();
        for (i, term) in t.terms().iter().enumerate() {
            assert_eq!(model.term_len(i), term.len());
            let at = term.as_and_tree();
            let smith = crate::algo::smith::schedule_impl(&at, &cat);
            model.term_smith_order(i, &mut order);
            assert_eq!(order.as_slice(), smith.order(), "term {i}");
            let (cost, prob) = and_eval::expected_cost_and_prob(&at, &cat, &smith);
            let kernel_cost = model.term_isolated_cost(i, &order, &mut scratch);
            assert_eq!(kernel_cost, cost, "term {i} cost");
            assert_eq!(model.term_success_prob(i), prob, "term {i} prob");
        }
    }

    #[test]
    fn more_than_64_terms_falls_back_to_the_scan_path() {
        let mut rng = StdRng::seed_from_u64(3);
        let terms: Vec<Vec<Leaf>> = (0..70)
            .map(|_| {
                vec![leaf(
                    rng.gen_range(0..3),
                    rng.gen_range(1..=3),
                    rng.gen_range(0.05..0.95),
                )]
            })
            .collect();
        let t = DnfTree::from_leaves(terms).unwrap();
        let cat = StreamCatalog::from_costs([1.0, 2.0, 3.0]).unwrap();
        let model = CostModel::new(&t, &cat);
        let mut scratch = model.make_scratch();
        let s = DnfSchedule::declaration_order(&t);
        let literal = dnf_eval::expected_cost(&t, &cat, &s);
        let kernel = model.expected_cost(&s, &mut scratch);
        assert!((literal - kernel).abs() < 1e-9, "{literal} vs {kernel}");
    }
}
