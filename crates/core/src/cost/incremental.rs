//! Incremental DNF schedule cost evaluation.
//!
//! [`DnfCostEvaluator`] maintains the Proposition 2 state while leaves are
//! appended one at a time, returning each leaf's marginal expected cost.
//! It is the workhorse behind:
//!
//! * the branch-and-bound optimal search (clone the evaluator at each
//!   branching point, prune when the running total exceeds the incumbent —
//!   marginal costs are non-negative so the running total is a valid lower
//!   bound);
//! * the *dynamic* AND-ordered heuristics, which repeatedly ask "what would
//!   appending this AND node cost, given everything scheduled so far?".
//!
//! The state is kept in **flat** vectors (no nested allocations) because
//! the branch-and-bound clones an evaluator at every search node: a clone
//! is four `memcpy`-able buffers, independent of how many `L_{k,t}` sets
//! exist.

use crate::leaf::LeafRef;
use crate::stream::StreamCatalog;
use crate::tree::DnfTree;

/// One `L_{k,t}` membership entry: the first leaf of AND node `term` (in
/// schedule order) requiring item `t` of stream `stream`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Member {
    stream: u32,
    /// Item index `t` (1-based).
    t: u32,
    term: u32,
    /// Probability the leaf is reached within its AND node when pushed.
    eval_prob: f64,
}

/// One frame of the undo stack: everything [`DnfCostEvaluator::push`]
/// changed, captured so [`DnfCostEvaluator::pop`] can restore the state
/// *bitwise* (no floating-point divisions on the undo path, so a
/// push/pop pair is exactly the identity).
#[derive(Debug, Clone, Copy)]
struct UndoFrame {
    leaf: LeafRef,
    prev_total: f64,
    prev_prefix: f64,
    prev_covered: u32,
    members_added: u32,
    completed_term: bool,
}

/// Reusable buffers for [`DnfCostEvaluator::completion_lower_bound`]
/// (one per search; reused across every node so the bound allocates
/// nothing in steady state).
#[derive(Debug, Clone, Default)]
pub struct BoundScratch {
    /// Per stream: widest window among the open term's remaining leaves.
    demand: Vec<u32>,
    /// Per `(stream, item)`: max success probability over remaining
    /// leaves whose window covers that item.
    pmax: Vec<f64>,
    /// Streams the remaining leaves touch (sparse reset list).
    touched: Vec<usize>,
    /// Layout this scratch is currently sized for.
    n_streams: usize,
    max_d: usize,
}

impl BoundScratch {
    /// A fresh scratch (sized on first use).
    pub fn new() -> BoundScratch {
        BoundScratch::default()
    }

    fn reserve(&mut self, n_streams: usize, max_d: usize) {
        if self.n_streams == n_streams && self.max_d == max_d {
            return;
        }
        // Layout change: rebuild zeroed (stale entries under the old
        // stride would corrupt the bound).
        self.n_streams = n_streams;
        self.max_d = max_d;
        self.demand.clear();
        self.demand.resize(n_streams, 0);
        self.pmax.clear();
        self.pmax.resize(n_streams * max_d, 0.0);
        self.touched.clear();
    }
}

/// Append-only expected-cost evaluator for DNF schedules (Proposition 2).
#[derive(Debug, Clone)]
pub struct DnfCostEvaluator<'a> {
    tree: &'a DnfTree,
    catalog: &'a StreamCatalog,
    n_streams: usize,
    /// Widest window any leaf opens (for the completion bound).
    max_d: u32,
    /// Product of `p` over scheduled leaves of each term (the probability
    /// that the next leaf of that term is reached within its AND node).
    prefix_prob: Vec<f64>,
    /// Number of scheduled leaves per term.
    seen: Vec<u32>,
    /// Fully scheduled terms, with their success probabilities.
    completed: Vec<(u32, f64)>,
    /// `covered[term * n_streams + stream]`: items of `stream` already
    /// required by scheduled leaves of `term` (the first-case test of
    /// Proposition 2).
    covered: Vec<u32>,
    /// All `L_{k,t}` membership entries so far, in schedule order.
    members: Vec<Member>,
    /// Total expected cost of the schedule so far.
    total: f64,
    /// Number of leaves pushed.
    scheduled: usize,
    /// Undo frames for [`DnfCostEvaluator::pop`], one per pushed leaf.
    undo: Vec<UndoFrame>,
}

impl<'a> DnfCostEvaluator<'a> {
    /// Creates an evaluator for an empty schedule prefix.
    ///
    /// # Panics
    /// Panics on trees with more than 64 AND nodes (a `u64` bitmask is
    /// used to track `L_{k,t}` term membership; the paper's experiments
    /// use at most 10).
    pub fn new(tree: &'a DnfTree, catalog: &'a StreamCatalog) -> DnfCostEvaluator<'a> {
        let n_terms = tree.num_terms();
        assert!(n_terms <= 64, "evaluator limited to 64 AND nodes");
        let n_streams = catalog.len();
        DnfCostEvaluator {
            tree,
            catalog,
            n_streams,
            max_d: tree.max_items(),
            prefix_prob: vec![1.0; n_terms],
            seen: vec![0; n_terms],
            completed: Vec::with_capacity(n_terms),
            covered: vec![0; n_terms * n_streams],
            members: Vec::with_capacity(tree.num_leaves()),
            total: 0.0,
            scheduled: 0,
            undo: Vec::with_capacity(tree.num_leaves()),
        }
    }

    /// The marginal expected cost leaf `r` would contribute if appended
    /// now, without mutating the evaluator. `push` returns the same value;
    /// `peek` lets searches rank candidates before committing to a clone.
    pub fn peek(&self, r: LeafRef) -> f64 {
        let leaf = self.tree.leaf(r);
        let k = leaf.stream.0;
        let f3 = self.prefix_prob[r.term];
        let unit = self.catalog.cost(leaf.stream);
        let cov = self.covered[r.term * self.n_streams + k];

        let mut marginal = 0.0;
        // Items 1..=cov are the first case of Proposition 2 (cost 0);
        // items cov+1..=d are the second case.
        for t in (cov + 1)..=leaf.items.max(cov) {
            // One scan over the flat membership list yields both factor 1
            // (product over earlier members of this (k, t)) and the set of
            // terms that own such a member (excluded from factor 2).
            let mut f1 = 1.0;
            let mut term_mask = 0u64;
            for m in &self.members {
                if m.stream == k as u32 && m.t == t {
                    f1 *= 1.0 - m.eval_prob;
                    term_mask |= 1 << m.term;
                }
            }
            let mut f2 = 1.0;
            for &(a, sp) in &self.completed {
                if term_mask >> a & 1 == 0 {
                    f2 *= 1.0 - sp;
                }
            }
            marginal += f1 * f2;
        }
        marginal * f3 * unit
    }

    /// Appends leaf `r` to the schedule and returns its marginal expected
    /// cost (the sum of its `C_{i,j,t}` over the items it requires).
    ///
    /// # Panics
    /// Debug-asserts the leaf has not been pushed already.
    pub fn push(&mut self, r: LeafRef) -> f64 {
        let leaf = self.tree.leaf(r);
        let k = leaf.stream.0;
        let f3 = self.prefix_prob[r.term];
        let cov = self.covered[r.term * self.n_streams + k];
        let marginal = self.peek(r);
        let frame = UndoFrame {
            leaf: r,
            prev_total: self.total,
            prev_prefix: f3,
            prev_covered: cov,
            members_added: leaf.items.max(cov) - cov,
            completed_term: false,
        };
        self.total += marginal;

        // State updates: L_{k,t} membership, coverage, prefix products,
        // term completion.
        for t in (cov + 1)..=leaf.items.max(cov) {
            self.members.push(Member {
                stream: k as u32,
                t,
                term: r.term as u32,
                eval_prob: f3,
            });
        }
        self.covered[r.term * self.n_streams + k] = cov.max(leaf.items);
        self.prefix_prob[r.term] *= leaf.prob.value();
        self.seen[r.term] += 1;
        debug_assert!(
            self.seen[r.term] as usize <= self.tree.term(r.term).len(),
            "leaf pushed twice or term over-filled"
        );
        let completed_term = self.seen[r.term] as usize == self.tree.term(r.term).len();
        if completed_term {
            self.completed
                .push((r.term as u32, self.prefix_prob[r.term]));
        }
        self.undo.push(UndoFrame {
            completed_term,
            ..frame
        });
        self.scheduled += 1;
        marginal
    }

    /// Reverts the most recent [`DnfCostEvaluator::push`], restoring the
    /// evaluator to the exact (bitwise) prior state, and returns the leaf
    /// that was removed. Push/pop pairs let the branch-and-bound explore
    /// a search tree on **one** evaluator instead of cloning at every
    /// node.
    ///
    /// # Panics
    /// Panics when no leaf has been pushed.
    pub fn pop(&mut self) -> LeafRef {
        let frame = self.undo.pop().expect("pop on an empty schedule");
        let r = frame.leaf;
        let k = self.tree.leaf(r).stream.0;
        if frame.completed_term {
            self.completed.pop();
        }
        self.seen[r.term] -= 1;
        self.prefix_prob[r.term] = frame.prev_prefix;
        self.covered[r.term * self.n_streams + k] = frame.prev_covered;
        self.members
            .truncate(self.members.len() - frame.members_added as usize);
        self.total = frame.prev_total;
        self.scheduled -= 1;
        r
    }

    /// Expected cost of the prefix pushed so far.
    #[inline]
    pub fn total_cost(&self) -> f64 {
        self.total
    }

    /// Number of leaves pushed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.scheduled
    }

    /// True when no leaf has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.scheduled == 0
    }

    /// Number of leaves of `term` still unscheduled.
    #[inline]
    pub fn remaining_in_term(&self, term: usize) -> usize {
        self.tree.term(term).len() - self.seen[term] as usize
    }

    /// Probability that execution is still "live" when the prefix ends:
    /// no completed AND node evaluated to TRUE.
    pub fn survival_prob(&self) -> f64 {
        self.completed.iter().map(|&(_, sp)| 1.0 - sp).product()
    }

    /// An **admissible lower bound** on the cost any depth-first
    /// completion adds while finishing open term `term`, whose
    /// still-unscheduled leaves are `remaining`.
    ///
    /// While a term is open, a depth-first schedule places *all* of its
    /// remaining leaves before anything else, so during that phase the
    /// completed-term set and the cross-term `L_{k,t}` members are
    /// frozen: factors 1 and 2 of Proposition 2 are exactly computable
    /// *now* for every item the phase must pay for (items above the
    /// term's current same-stream coverage, up to its widest remaining
    /// window). Only the payer's reach probability is unknown; it is
    /// bounded below by reaching the payer *last*
    /// (`prefix · Π remaining p / p_payer`, maximized over eligible
    /// payers). Summing these floors over the phase's uncovered items
    /// never exceeds the true completion cost, so branch-and-bound may
    /// prune on `total_cost() + bound ≥ incumbent` without losing the
    /// optimum.
    pub fn completion_lower_bound(
        &self,
        term: usize,
        remaining: &[LeafRef],
        scratch: &mut BoundScratch,
    ) -> f64 {
        if remaining.is_empty() {
            return 0.0;
        }
        let prefix = self.prefix_prob[term];
        if prefix <= 0.0 {
            return 0.0;
        }
        let max_d = self.max_d as usize;
        scratch.reserve(self.n_streams, max_d);
        for &k in &scratch.touched {
            scratch.demand[k] = 0;
            for t in 0..max_d {
                scratch.pmax[k * max_d + t] = 0.0;
            }
        }
        scratch.touched.clear();

        let mut p_rem = 1.0;
        for &r in remaining {
            debug_assert_eq!(r.term, term, "remaining leaves belong to the open term");
            let leaf = self.tree.leaf(r);
            let k = leaf.stream.0;
            let p = leaf.prob.value();
            p_rem *= p;
            if scratch.demand[k] == 0 {
                scratch.touched.push(k);
            }
            scratch.demand[k] = scratch.demand[k].max(leaf.items);
            for t in 0..leaf.items as usize {
                let slot = &mut scratch.pmax[k * max_d + t];
                if *slot < p {
                    *slot = p;
                }
            }
        }

        let mut bound = 0.0;
        for &k in &scratch.touched {
            let unit = self.catalog.cost(crate::stream::StreamId(k));
            if unit <= 0.0 {
                continue;
            }
            let cov = self.covered[term * self.n_streams + k];
            for t in (cov + 1)..=scratch.demand[k] {
                // Factors 1 and 2 from the frozen pre-phase state; a
                // single member scan yields both (cf. `peek`).
                let mut f1 = 1.0;
                let mut term_mask = 0u64;
                for m in &self.members {
                    if m.stream == k as u32 && m.t == t {
                        f1 *= 1.0 - m.eval_prob;
                        term_mask |= 1 << m.term;
                    }
                }
                let mut f2 = 1.0;
                for &(a, sp) in &self.completed {
                    if term_mask >> a & 1 == 0 {
                        f2 *= 1.0 - sp;
                    }
                }
                let pmax = scratch.pmax[k * max_d + (t - 1) as usize];
                let f3_floor = if pmax > 0.0 {
                    prefix * p_rem / pmax
                } else {
                    0.0
                };
                bound += unit * f1 * f2 * f3_floor;
            }
        }
        bound
    }

    /// The tree this evaluator is bound to.
    #[inline]
    pub fn tree(&self) -> &'a DnfTree {
        self.tree
    }

    /// The catalog this evaluator is bound to.
    #[inline]
    pub fn catalog(&self) -> &'a StreamCatalog {
        self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{assignment, dnf_eval};
    use crate::leaf::Leaf;
    use crate::prob::Prob;
    use crate::schedule::DnfSchedule;
    use crate::stream::StreamId;
    use rand::prelude::*;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    fn example_tree() -> (DnfTree, StreamCatalog) {
        (
            DnfTree::from_leaves(vec![
                vec![leaf(0, 3, 0.4), leaf(1, 1, 0.7)],
                vec![leaf(0, 5, 0.6), leaf(1, 2, 0.2)],
                vec![leaf(0, 2, 0.9), leaf(2, 1, 0.5)],
            ])
            .unwrap(),
            StreamCatalog::from_costs([2.0, 3.0, 0.5]).unwrap(),
        )
    }

    #[test]
    fn marginals_sum_to_total() {
        let (t, cat) = example_tree();
        let s = DnfSchedule::declaration_order(&t);
        let mut eval = DnfCostEvaluator::new(&t, &cat);
        let mut sum = 0.0;
        for &r in s.order() {
            sum += eval.push(r);
        }
        assert!((sum - eval.total_cost()).abs() < 1e-12);
    }

    #[test]
    fn matches_literal_evaluator_on_random_schedules() {
        let (t, cat) = example_tree();
        let mut rng = StdRng::seed_from_u64(42);
        let mut refs: Vec<LeafRef> = t.leaf_refs().collect();
        for _ in 0..50 {
            refs.shuffle(&mut rng);
            let s = DnfSchedule::new(refs.clone(), &t).unwrap();
            let literal = dnf_eval::expected_cost(&t, &cat, &s);
            let mut eval = DnfCostEvaluator::new(&t, &cat);
            for &r in s.order() {
                eval.push(r);
            }
            assert!(
                (literal - eval.total_cost()).abs() < 1e-10,
                "literal {literal} vs incremental {}",
                eval.total_cost()
            );
        }
    }

    #[test]
    fn matches_enumeration_on_random_schedules() {
        let (t, cat) = example_tree();
        let mut rng = StdRng::seed_from_u64(7);
        let mut refs: Vec<LeafRef> = t.leaf_refs().collect();
        for _ in 0..10 {
            refs.shuffle(&mut rng);
            let s = DnfSchedule::new(refs.clone(), &t).unwrap();
            let exact = assignment::dnf_expected_cost(&t, &cat, &s);
            let mut eval = DnfCostEvaluator::new(&t, &cat);
            for &r in s.order() {
                eval.push(r);
            }
            assert!((exact - eval.total_cost()).abs() < 1e-10);
        }
    }

    #[test]
    fn clone_preserves_independent_state() {
        let (t, cat) = example_tree();
        let order: Vec<LeafRef> = t.leaf_refs().collect();
        let mut a = DnfCostEvaluator::new(&t, &cat);
        a.push(order[0]);
        let mut b = a.clone();
        a.push(order[1]);
        b.push(order[2]);
        assert_ne!(a.total_cost(), b.total_cost());
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn survival_prob_tracks_completed_terms() {
        let (t, cat) = example_tree();
        let mut eval = DnfCostEvaluator::new(&t, &cat);
        assert_eq!(eval.survival_prob(), 1.0);
        eval.push(LeafRef::new(0, 0));
        eval.push(LeafRef::new(0, 1));
        // term 0 success prob = 0.4 * 0.7 = 0.28
        assert!((eval.survival_prob() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn remaining_counts() {
        let (t, cat) = example_tree();
        let mut eval = DnfCostEvaluator::new(&t, &cat);
        assert_eq!(eval.remaining_in_term(1), 2);
        eval.push(LeafRef::new(1, 0));
        assert_eq!(eval.remaining_in_term(1), 1);
    }

    #[test]
    fn marginal_of_covered_item_is_zero() {
        // Second leaf of a term on the same stream with smaller d: free.
        let t = DnfTree::from_leaves(vec![vec![leaf(0, 5, 0.5), leaf(0, 3, 0.5)]]).unwrap();
        let cat = StreamCatalog::unit(1);
        let mut eval = DnfCostEvaluator::new(&t, &cat);
        assert!(eval.push(LeafRef::new(0, 0)) > 0.0);
        assert_eq!(eval.push(LeafRef::new(0, 1)), 0.0);
    }

    #[test]
    fn pop_restores_state_bitwise() {
        let (t, cat) = example_tree();
        let refs: Vec<LeafRef> = t.leaf_refs().collect();
        let mut eval = DnfCostEvaluator::new(&t, &cat);
        eval.push(refs[0]);
        eval.push(refs[2]);
        // Snapshot through observable behaviour: every peek must be
        // identical after a push/pop round-trip (bitwise, not approx).
        let before: Vec<f64> = refs[3..].iter().map(|&r| eval.peek(r)).collect();
        let total = eval.total_cost();
        for &r in &refs[3..] {
            eval.push(r);
        }
        for _ in &refs[3..] {
            eval.pop();
        }
        assert_eq!(eval.total_cost(), total, "total restored exactly");
        assert_eq!(eval.len(), 2);
        let after: Vec<f64> = refs[3..].iter().map(|&r| eval.peek(r)).collect();
        assert_eq!(before, after, "peeks restored exactly");
        assert_eq!(eval.pop(), refs[2], "pop returns the removed leaf");
    }

    #[test]
    fn push_pop_interleaving_matches_fresh_evaluator() {
        let (t, cat) = example_tree();
        let mut rng = StdRng::seed_from_u64(77);
        let mut refs: Vec<LeafRef> = t.leaf_refs().collect();
        for _ in 0..20 {
            refs.shuffle(&mut rng);
            let mut walker = DnfCostEvaluator::new(&t, &cat);
            // Random walk: push, sometimes pop and re-push.
            for &r in &refs {
                walker.push(r);
                if rng.gen_bool(0.5) {
                    walker.pop();
                    walker.push(r);
                }
            }
            let mut fresh = DnfCostEvaluator::new(&t, &cat);
            for &r in &refs {
                fresh.push(r);
            }
            assert_eq!(
                walker.total_cost(),
                fresh.total_cost(),
                "walked state equals freshly built state"
            );
        }
    }

    #[test]
    fn completion_bound_is_admissible_for_open_terms() {
        let (t, cat) = example_tree();
        let mut rng = StdRng::seed_from_u64(5);
        let mut scratch = BoundScratch::new();
        for _ in 0..200 {
            // Random prefix that leaves term `open` partially scheduled.
            let open = rng.gen_range(0..t.num_terms());
            let mut prefix: Vec<LeafRef> = Vec::new();
            let mut rest: Vec<LeafRef> = Vec::new();
            for (i, term) in t.terms().iter().enumerate() {
                let mut refs: Vec<LeafRef> = (0..term.len()).map(|j| LeafRef::new(i, j)).collect();
                refs.shuffle(&mut rng);
                if i == open {
                    let keep = rng.gen_range(0..term.len());
                    rest = refs.split_off(keep);
                    prefix.extend(refs);
                } else if rng.gen_bool(0.5) {
                    prefix.extend(refs);
                }
            }
            // schedule prefix terms first (depth-first-ish), open last
            let mut eval = DnfCostEvaluator::new(&t, &cat);
            for &r in &prefix {
                eval.push(r);
            }
            let bound = eval.completion_lower_bound(open, &rest, &mut scratch);
            // true cost of completing the open term, any order of `rest`
            let mut completion = eval.clone();
            let mut true_cost = 0.0;
            for &r in &rest {
                true_cost += completion.push(r);
            }
            assert!(
                bound <= true_cost + 1e-9,
                "bound {bound} exceeds true completion {true_cost}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "64 AND nodes")]
    fn rejects_too_many_terms() {
        let terms: Vec<Vec<Leaf>> = (0..65).map(|_| vec![leaf(0, 1, 0.5)]).collect();
        let t = DnfTree::from_leaves(terms).unwrap();
        let cat = StreamCatalog::unit(1);
        let _ = DnfCostEvaluator::new(&t, &cat);
    }
}
