//! Expected cost of DNF schedules — Proposition 2 of the paper.
//!
//! In the shared model the memory content a leaf observes is *random*: it
//! depends on which earlier leaves were actually evaluated. Section IV-A
//! derives the expected cost of acquiring the `t`-th item of stream `S_k`
//! at leaf `l_{i,j}` as a product of three probabilities:
//!
//! 1. no earlier leaf that is "first of its AND node to require item
//!    `(k,t)`" (the set `L_{k,t}`) has been evaluated — otherwise the item
//!    is already in memory;
//! 2. no AND node that completed earlier evaluated to TRUE — otherwise the
//!    query is already resolved (AND nodes with a leaf in `L_{k,t}` are
//!    excluded: factor 1 already conditions on that leaf not having been
//!    evaluated, which implies those AND nodes are FALSE);
//! 3. every leaf before `l_{i,j}` inside its own AND node evaluated to
//!    TRUE — otherwise `l_{i,j}` is short-circuited.
//!
//! This module is a *literal transcription* of that formula, using
//! explicitly materialized `L_{k,t}` sets; it favours fidelity to the paper
//! over speed. The production evaluator (same semantics, incremental,
//! clonable for branch-and-bound) lives in [`crate::cost::incremental`];
//! tests assert the two agree to machine precision, and both agree with
//! assignment enumeration.

use crate::leaf::LeafRef;
use crate::schedule::DnfSchedule;
use crate::stream::StreamCatalog;
use crate::tree::DnfTree;

/// One member of a set `L_{k,t}`: the first leaf of AND node `term` (in
/// schedule order) that requires the `t`-th item of stream `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Member {
    term: usize,
    pos: usize,
    /// Probability the leaf is reached within its AND node:
    /// `prod` of `p` over same-term leaves scheduled before it.
    eval_prob: f64,
}

/// Expected cost of `schedule` on `tree` — Proposition 2, literal form.
pub fn expected_cost(tree: &DnfTree, catalog: &StreamCatalog, schedule: &DnfSchedule) -> f64 {
    expected_items_per_stream(tree, catalog, schedule)
        .iter()
        .enumerate()
        .map(|(k, items)| items * catalog.cost(crate::stream::StreamId(k)))
        .sum()
}

/// Expected number of items pulled from each stream by `schedule` —
/// the cost-free decomposition of Proposition 2 (`expected_cost` is the
/// dot product of this vector with the per-item costs). The multi-query
/// subsystem uses it to quantify how much of a stream's traffic each
/// query accounts for.
pub fn expected_items_per_stream(
    tree: &DnfTree,
    catalog: &StreamCatalog,
    schedule: &DnfSchedule,
) -> Vec<f64> {
    expected_items_with_coverage(tree, catalog, schedule, &vec![0.0; catalog.len()])
}

/// [`expected_items_per_stream`] under *prior coverage*: `coverage[k]`
/// is the expected number of leading (most recent) items of stream `k`
/// already resident in device memory before this query starts — e.g.
/// pulled by queries evaluated earlier in the same tick. Item `t` of a
/// stream then only costs its marginal uncovered fraction
/// `clamp(t - coverage[k], 0, 1)`; zero coverage reduces exactly to
/// Proposition 2. Fractional coverage is the expected-state
/// approximation the joint workload planners optimize against.
///
/// # Panics
/// Panics when `coverage.len() != catalog.len()`.
pub fn expected_items_with_coverage(
    tree: &DnfTree,
    catalog: &StreamCatalog,
    schedule: &DnfSchedule,
    coverage: &[f64],
) -> Vec<f64> {
    assert_eq!(
        coverage.len(),
        catalog.len(),
        "one coverage entry per stream"
    );
    let order = schedule.order();
    let n_terms = tree.num_terms();
    let n_streams = catalog.len();
    let max_d = tree.max_items() as usize;

    // Position of each leaf in the schedule.
    let mut pos = vec![vec![0usize; 0]; n_terms];
    for (i, t) in tree.terms().iter().enumerate() {
        pos[i] = vec![usize::MAX; t.len()];
    }
    for (p, &r) in order.iter().enumerate() {
        pos[r.term][r.leaf] = p;
    }

    // eval_prob[r] = prod of p over same-term leaves scheduled before r.
    let mut eval_prob = vec![vec![1.0f64; 0]; n_terms];
    for (i, t) in tree.terms().iter().enumerate() {
        eval_prob[i] = vec![1.0; t.len()];
    }
    {
        let mut running = vec![1.0f64; n_terms];
        for &r in order {
            eval_prob[r.term][r.leaf] = running[r.term];
            running[r.term] *= tree.leaf(r).prob.value();
        }
    }

    // Position after which each AND node is fully scheduled, and its
    // success probability (product of all its leaf probabilities).
    let completed_pos: Vec<usize> = (0..n_terms)
        .map(|i| pos[i].iter().copied().max().expect("terms are non-empty"))
        .collect();
    let term_success: Vec<f64> = tree
        .terms()
        .iter()
        .map(|t| t.success_prob().value())
        .collect();

    // Materialize L_{k,t}: members[k][t-1] = the first leaf of each AND
    // node (in schedule order) requiring the t-th item of stream k.
    let mut members: Vec<Vec<Vec<Member>>> = vec![vec![Vec::new(); max_d]; n_streams];
    for (i, term) in tree.terms().iter().enumerate() {
        // leaves of term i grouped by stream, in schedule order
        let mut by_stream: Vec<Vec<LeafRef>> = vec![Vec::new(); n_streams];
        let mut refs: Vec<LeafRef> = (0..term.len()).map(|j| LeafRef::new(i, j)).collect();
        refs.sort_by_key(|r| pos[r.term][r.leaf]);
        for r in refs {
            by_stream[tree.leaf(r).stream.0].push(r);
        }
        for (k, leaves) in by_stream.iter().enumerate() {
            let mut covered = 0u32;
            for &r in leaves {
                let d = tree.leaf(r).items;
                for t in (covered + 1)..=d.max(covered) {
                    members[k][(t - 1) as usize].push(Member {
                        term: i,
                        pos: pos[r.term][r.leaf],
                        eval_prob: eval_prob[r.term][r.leaf],
                    });
                }
                covered = covered.max(d);
            }
        }
    }

    // Sum C_{i,j,t} over all leaves and items, per stream.
    let mut items_out = vec![0.0f64; n_streams];
    for &r in order {
        let leaf = tree.leaf(r);
        let k = leaf.stream.0;
        let my_pos = pos[r.term][r.leaf];
        let f3 = eval_prob[r.term][r.leaf];
        for t in 1..=leaf.items {
            // Fraction of item t not already covered by prior memory.
            let need = (f64::from(t) - coverage[k]).clamp(0.0, 1.0);
            if need == 0.0 {
                continue;
            }
            let set = &members[k][(t - 1) as usize];
            // First case of Proposition 2: a same-term leaf in L_{k,t}
            // precedes l_{i,j} -> the item is free (either already in
            // memory, or l_{i,j} is short-circuited).
            let same_term_earlier = set.iter().any(|m| m.term == r.term && m.pos < my_pos);
            if same_term_earlier {
                continue;
            }
            // Factor 1: none of the earlier L_{k,t} members was evaluated.
            let f1: f64 = set
                .iter()
                .filter(|m| m.pos < my_pos)
                .map(|m| 1.0 - m.eval_prob)
                .product();
            // Factor 2: no fully-evaluated AND node (without a leaf in
            // L_{k,t}) evaluated to TRUE.
            let f2: f64 = (0..tree.num_terms())
                .filter(|&a| completed_pos[a] < my_pos)
                .filter(|&a| !set.iter().any(|m| m.term == a))
                .map(|a| 1.0 - term_success[a])
                .product();
            items_out[k] += f1 * f2 * f3 * need;
        }
    }
    items_out
}

/// Expected cost via the incremental evaluator (same semantics, faster).
/// See [`crate::cost::incremental::DnfCostEvaluator`].
pub fn expected_cost_fast(tree: &DnfTree, catalog: &StreamCatalog, schedule: &DnfSchedule) -> f64 {
    let mut eval = crate::cost::incremental::DnfCostEvaluator::new(tree, catalog);
    for &r in schedule.order() {
        eval.push(r);
    }
    eval.total_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::assignment;
    use crate::leaf::Leaf;
    use crate::prob::Prob;
    use crate::stream::StreamId;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    fn fig3(p: [f64; 7]) -> (DnfTree, StreamCatalog) {
        (
            DnfTree::from_leaves(vec![
                vec![leaf(0, 1, p[0]), leaf(2, 1, p[2]), leaf(3, 1, p[3])],
                vec![leaf(1, 1, p[1]), leaf(2, 1, p[4])],
                vec![leaf(1, 1, p[5]), leaf(3, 1, p[6])],
            ])
            .unwrap(),
            StreamCatalog::unit(4),
        )
    }

    fn fig3_schedule(tree: &DnfTree) -> DnfSchedule {
        DnfSchedule::new(
            vec![
                LeafRef::new(0, 0),
                LeafRef::new(1, 0),
                LeafRef::new(0, 1),
                LeafRef::new(0, 2),
                LeafRef::new(1, 1),
                LeafRef::new(2, 0),
                LeafRef::new(2, 1),
            ],
            tree,
        )
        .unwrap()
    }

    #[test]
    fn reproduces_section_ii_b_closed_form() {
        let p = [0.3, 0.6, 0.8, 0.25, 0.9, 0.4, 0.7];
        let (t, cat) = fig3(p);
        let s = fig3_schedule(&t);
        let (p1, p2, p3, _p4, p5, p6, _p7) = (p[0], p[1], p[2], p[3], p[4], p[5], p[6]);
        let expect =
            1.0 + 1.0 + (p1 + (1.0 - p1) * p2) + (p1 * p3 + (1.0 - p1 * p3) * (1.0 - p2 * p5) * p6);
        let got = expected_cost(&t, &cat, &s);
        assert!((got - expect).abs() < 1e-12, "got {got} expected {expect}");
    }

    #[test]
    fn agrees_with_enumeration_on_uniform_probabilities() {
        let (t, cat) = fig3([0.5; 7]);
        let s = fig3_schedule(&t);
        let analytic = expected_cost(&t, &cat, &s);
        let exact = assignment::dnf_expected_cost(&t, &cat, &s);
        assert!((analytic - exact).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_enumeration_on_multi_item_leaves() {
        // Shared stream with different item counts across AND nodes.
        let t = DnfTree::from_leaves(vec![
            vec![leaf(0, 3, 0.4), leaf(1, 1, 0.7)],
            vec![leaf(0, 5, 0.6), leaf(1, 2, 0.2)],
            vec![leaf(0, 2, 0.9)],
        ])
        .unwrap();
        let cat = StreamCatalog::from_costs([2.0, 3.0]).unwrap();
        let s = DnfSchedule::declaration_order(&t);
        let analytic = expected_cost(&t, &cat, &s);
        let exact = assignment::dnf_expected_cost(&t, &cat, &s);
        assert!((analytic - exact).abs() < 1e-10, "{analytic} vs {exact}");
    }

    #[test]
    fn interleaved_non_depth_first_schedule_is_supported() {
        let (t, cat) = fig3([0.2, 0.9, 0.5, 0.5, 0.1, 0.8, 0.3]);
        // interleave terms deliberately
        let s = DnfSchedule::new(
            vec![
                LeafRef::new(2, 1),
                LeafRef::new(0, 2),
                LeafRef::new(1, 0),
                LeafRef::new(0, 0),
                LeafRef::new(2, 0),
                LeafRef::new(1, 1),
                LeafRef::new(0, 1),
            ],
            &t,
        )
        .unwrap();
        let analytic = expected_cost(&t, &cat, &s);
        let exact = assignment::dnf_expected_cost(&t, &cat, &s);
        assert!((analytic - exact).abs() < 1e-10, "{analytic} vs {exact}");
    }

    #[test]
    fn fast_path_matches_literal_path() {
        let (t, cat) = fig3([0.15, 0.35, 0.55, 0.75, 0.95, 0.25, 0.45]);
        let s = fig3_schedule(&t);
        let a = expected_cost(&t, &cat, &s);
        let b = expected_cost_fast(&t, &cat, &s);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn per_stream_items_decompose_the_expected_cost() {
        let t = DnfTree::from_leaves(vec![
            vec![leaf(0, 3, 0.4), leaf(1, 1, 0.7)],
            vec![leaf(0, 5, 0.6), leaf(1, 2, 0.2)],
            vec![leaf(0, 2, 0.9)],
        ])
        .unwrap();
        let cat = StreamCatalog::from_costs([2.0, 3.0]).unwrap();
        let s = DnfSchedule::declaration_order(&t);
        let items = expected_items_per_stream(&t, &cat, &s);
        assert_eq!(items.len(), 2);
        let dot = items[0] * 2.0 + items[1] * 3.0;
        let direct = expected_cost(&t, &cat, &s);
        assert!((dot - direct).abs() < 1e-12, "{dot} vs {direct}");
        // every stream sees at least one guaranteed first pull
        assert!(items.iter().all(|&i| i > 0.0));
    }

    #[test]
    fn coverage_discounts_monotonically_down_to_zero() {
        let (t, cat) = fig3([0.3, 0.6, 0.8, 0.25, 0.9, 0.4, 0.7]);
        let s = fig3_schedule(&t);
        let base = expected_items_with_coverage(&t, &cat, &s, &[0.0; 4]);
        let partial = expected_items_with_coverage(&t, &cat, &s, &[0.5, 0.0, 1.0, 0.25]);
        let full = expected_items_with_coverage(&t, &cat, &s, &[9.0; 4]);
        for k in 0..4 {
            assert!(partial[k] <= base[k] + 1e-12, "stream {k}");
            assert!(
                full[k].abs() < 1e-12,
                "full coverage leaves nothing to pull"
            );
        }
        // stream 2 fully covered (window 1, coverage 1): nothing missing
        assert!(partial[2].abs() < 1e-12);
        // half-covered single-item stream pays half an item in expectation
        assert!((partial[0] - base[0] * 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_term_dnf_matches_and_tree_evaluator() {
        let at =
            crate::tree::AndTree::new(vec![leaf(0, 1, 0.75), leaf(0, 2, 0.1), leaf(1, 1, 0.5)])
                .unwrap();
        let cat = StreamCatalog::unit(2);
        let dnf = DnfTree::from_and_tree(&at);
        let ds = DnfSchedule::declaration_order(&dnf);
        let as_ = crate::schedule::AndSchedule::identity(3);
        let a = expected_cost(&dnf, &cat, &ds);
        let b = crate::cost::and_eval::expected_cost(&at, &cat, &as_);
        assert!((a - b).abs() < 1e-12);
    }
}
