//! Closed-form expected cost of AND-tree schedules (shared streams).
//!
//! In an AND-tree, leaf `sigma(j)` is evaluated iff every earlier leaf in
//! the schedule evaluated to TRUE (otherwise the AND is already FALSE and
//! everything after is short-circuited). When it *is* evaluated, every
//! earlier leaf was evaluated too, so the device memory deterministically
//! holds, for each stream, the maximum item count requested so far.
//! The expected cost is therefore
//!
//! ```text
//! sum_j  [ prod_{i scheduled before j} p_i ]
//!        * max(0, d_j - max items already pulled from S(j)) * c(S(j))
//! ```
//!
//! which is computable in `O(m)` per schedule — unlike DNF trees, where the
//! memory content seen by a leaf is itself random (see
//! [`crate::cost::dnf_eval`]).

use crate::schedule::AndSchedule;
use crate::stream::StreamCatalog;
use crate::tree::AndTree;

/// Expected cost of evaluating `tree` under `schedule`.
pub fn expected_cost(tree: &AndTree, catalog: &StreamCatalog, schedule: &AndSchedule) -> f64 {
    let mut acquired = vec![0u32; catalog.len()];
    let mut reach = 1.0; // probability all previously scheduled leaves were TRUE
    let mut cost = 0.0;
    for &j in schedule.order() {
        let leaf = tree.leaf(j);
        let have = acquired[leaf.stream.0];
        if leaf.items > have {
            cost += reach * f64::from(leaf.items - have) * catalog.cost(leaf.stream);
            acquired[leaf.stream.0] = leaf.items;
        }
        reach *= leaf.prob.value();
    }
    cost
}

/// Expected cost and success probability of an AND-tree schedule, as a
/// pair. The AND-ordered DNF heuristics need both (they sort AND nodes by
/// `C`, `p`, or `C/p`).
pub fn expected_cost_and_prob(
    tree: &AndTree,
    catalog: &StreamCatalog,
    schedule: &AndSchedule,
) -> (f64, f64) {
    let cost = expected_cost(tree, catalog, schedule);
    let prob = tree.success_prob().value();
    (cost, prob)
}

/// Expected cost in the *read-once* model (every leaf pays its full
/// stand-alone cost), i.e. the objective Smith's greedy optimizes. For
/// read-once trees this coincides with [`expected_cost`]; for shared trees
/// it over-counts — exposed for experiments contrasting the two models.
pub fn read_once_expected_cost(
    tree: &AndTree,
    catalog: &StreamCatalog,
    schedule: &AndSchedule,
) -> f64 {
    let mut reach = 1.0;
    let mut cost = 0.0;
    for &j in schedule.order() {
        let leaf = tree.leaf(j);
        cost += reach * leaf.standalone_cost(catalog);
        reach *= leaf.prob.value();
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::assignment;
    use crate::leaf::Leaf;
    use crate::prob::Prob;
    use crate::stream::StreamId;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    fn fig2() -> (AndTree, StreamCatalog) {
        (
            AndTree::new(vec![leaf(0, 1, 0.75), leaf(0, 2, 0.1), leaf(1, 1, 0.5)]).unwrap(),
            StreamCatalog::unit(2),
        )
    }

    #[test]
    fn matches_paper_section_ii_a() {
        let (t, cat) = fig2();
        let costs = [
            (vec![2, 0, 1], 1.875),
            (vec![2, 1, 0], 2.0),
            (vec![0, 1, 2], 1.825),
        ];
        for (order, expect) in costs {
            let s = AndSchedule::new(order, &t).unwrap();
            assert!((expected_cost(&t, &cat, &s) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn agrees_with_enumeration_on_all_schedules() {
        let (t, cat) = fig2();
        // all 6 permutations
        let perms = [
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        for p in perms {
            let s = AndSchedule::new(p, &t).unwrap();
            let analytic = expected_cost(&t, &cat, &s);
            let exact = assignment::and_tree_expected_cost(&t, &cat, &s);
            assert!((analytic - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn read_once_matches_shared_when_streams_distinct() {
        let t = AndTree::new(vec![leaf(0, 2, 0.4), leaf(1, 3, 0.7), leaf(2, 1, 0.9)]).unwrap();
        let cat = StreamCatalog::from_costs([1.0, 2.0, 3.0]).unwrap();
        let s = AndSchedule::identity(3);
        assert!(
            (expected_cost(&t, &cat, &s) - read_once_expected_cost(&t, &cat, &s)).abs() < 1e-12
        );
    }

    #[test]
    fn read_once_formula_overcounts_shared_items() {
        let (t, cat) = fig2();
        let s = AndSchedule::identity(3);
        assert!(read_once_expected_cost(&t, &cat, &s) > expected_cost(&t, &cat, &s));
    }

    #[test]
    fn cost_and_prob_pair() {
        let (t, cat) = fig2();
        let s = AndSchedule::identity(3);
        let (c, p) = expected_cost_and_prob(&t, &cat, &s);
        assert!((c - 1.825).abs() < 1e-12);
        assert!((p - 0.75 * 0.1 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn certain_leaves_do_not_discount_later_costs() {
        let t = AndTree::new(vec![leaf(0, 1, 1.0), leaf(1, 1, 0.5)]).unwrap();
        let cat = StreamCatalog::unit(2);
        let s = AndSchedule::identity(2);
        assert!((expected_cost(&t, &cat, &s) - 2.0).abs() < 1e-12);
    }
}
