//! Schedule cost evaluation.
//!
//! Four independent implementations of the same semantics, used to
//! cross-validate one another:
//!
//! | module | method | scope | complexity |
//! |---|---|---|---|
//! | [`execution`] | ground-truth interpreter (one assignment) | any tree | `O(L)` per run |
//! | [`assignment`] | exact expectation by enumeration | any tree, small `L` | `O(2^L * L)` |
//! | [`and_eval`] | closed form | AND-trees | `O(m)` |
//! | [`dnf_eval`] / [`incremental`] | Proposition 2 | DNF trees | `O(L * D * N^2)` |
//! | [`model`] | Proposition 2, compiled arenas | DNF trees | same, allocation-free |
//! | [`montecarlo`] | sampling | any tree | `O(samples * L)` |

pub mod and_eval;
pub mod arrange;
pub mod assignment;
pub mod dnf_eval;
pub mod execution;
pub mod incremental;
pub mod model;
pub mod montecarlo;

pub use arrange::ArrangeTerm;
pub use execution::{Execution, LeafIndexer};
pub use incremental::DnfCostEvaluator;
pub use model::{CostModel, EvalScratch};
pub use montecarlo::Estimate;
