//! Exact expected cost by truth-assignment enumeration.
//!
//! The expected cost of a schedule is, by definition,
//! `sum over assignments A of P(A) * cost(schedule, A)`. Enumerating all
//! `2^L` assignments is exponential but exact and *independent* of the
//! closed-form analysis of the paper, which makes it the reference
//! implementation the analytic evaluators ([`crate::cost::and_eval`],
//! [`crate::cost::dnf_eval`]) are validated against.

use crate::cost::execution::{execute_and_tree_impl, execute_dnf_impl, execute_query_tree};
use crate::schedule::{AndSchedule, DnfSchedule};
use crate::stream::StreamCatalog;
use crate::tree::general::QueryTree;
use crate::tree::{AndTree, DnfTree};

/// Practical cap on exhaustive enumeration (2^25 assignments).
pub const MAX_ENUM_LEAVES: usize = 25;

/// Exact expected cost of an AND-tree schedule via full enumeration.
///
/// # Panics
/// Panics if the tree has more than [`MAX_ENUM_LEAVES`] leaves.
pub fn and_tree_expected_cost(
    tree: &AndTree,
    catalog: &StreamCatalog,
    schedule: &AndSchedule,
) -> f64 {
    let m = tree.len();
    assert!(
        m <= MAX_ENUM_LEAVES,
        "enumeration over {m} leaves is intractable"
    );
    let probs: Vec<f64> = tree.leaves().iter().map(|l| l.prob.value()).collect();
    expected_over_assignments(&probs, |assignment| {
        execute_and_tree_impl(tree, catalog, schedule, assignment).cost
    })
}

/// Exact expected cost of a DNF schedule via full enumeration.
/// Assignments are in flat term-major leaf order.
///
/// # Panics
/// Panics if the tree has more than [`MAX_ENUM_LEAVES`] leaves.
pub fn dnf_expected_cost(tree: &DnfTree, catalog: &StreamCatalog, schedule: &DnfSchedule) -> f64 {
    let m = tree.num_leaves();
    assert!(
        m <= MAX_ENUM_LEAVES,
        "enumeration over {m} leaves is intractable"
    );
    let probs: Vec<f64> = tree.leaves().map(|(_, l)| l.prob.value()).collect();
    expected_over_assignments(&probs, |assignment| {
        execute_dnf_impl(tree, catalog, schedule, assignment).cost
    })
}

/// Exact expected cost of a general-tree schedule (flat leaf order) via
/// full enumeration.
///
/// # Panics
/// Panics if the tree has more than [`MAX_ENUM_LEAVES`] leaves.
pub fn query_tree_expected_cost(
    tree: &QueryTree,
    catalog: &StreamCatalog,
    schedule: &[usize],
) -> f64 {
    let m = tree.num_leaves();
    assert!(
        m <= MAX_ENUM_LEAVES,
        "enumeration over {m} leaves is intractable"
    );
    let probs: Vec<f64> = tree.leaves().iter().map(|l| l.prob.value()).collect();
    expected_over_assignments(&probs, |assignment| {
        execute_query_tree(tree, catalog, schedule, assignment).cost
    })
}

/// Probability that the root evaluates to TRUE, computed by enumeration —
/// a sanity check for the closed-form `success_prob` methods.
pub fn dnf_truth_probability(tree: &DnfTree, catalog: &StreamCatalog) -> f64 {
    let m = tree.num_leaves();
    assert!(
        m <= MAX_ENUM_LEAVES,
        "enumeration over {m} leaves is intractable"
    );
    let probs: Vec<f64> = tree.leaves().map(|(_, l)| l.prob.value()).collect();
    let schedule = DnfSchedule::declaration_order(tree);
    expected_over_assignments(&probs, |assignment| {
        if execute_dnf_impl(tree, catalog, &schedule, assignment).value {
            1.0
        } else {
            0.0
        }
    })
}

/// Sums `weight(A) * f(A)` over all `2^L` truth assignments, where
/// `weight` is the product of independent leaf probabilities.
fn expected_over_assignments(probs: &[f64], mut f: impl FnMut(&[bool]) -> f64) -> f64 {
    let m = probs.len();
    let mut assignment = vec![false; m];
    let mut total = 0.0;
    for mask in 0u64..(1u64 << m) {
        let mut weight = 1.0;
        for (b, a) in assignment.iter_mut().enumerate() {
            let v = mask >> b & 1 == 1;
            *a = v;
            weight *= if v { probs[b] } else { 1.0 - probs[b] };
        }
        if weight > 0.0 {
            total += weight * f(&assignment);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaf::Leaf;
    use crate::prob::Prob;
    use crate::stream::StreamId;

    fn leaf(s: usize, d: u32, p: f64) -> Leaf {
        Leaf::new(StreamId(s), d, Prob::new(p).unwrap()).unwrap()
    }

    /// Section II-A works out the costs of three schedules of the Figure 2
    /// AND-tree by hand; the enumeration must reproduce them exactly.
    #[test]
    fn reproduces_paper_section_ii_a_costs() {
        let t = AndTree::new(vec![leaf(0, 1, 0.75), leaf(0, 2, 0.1), leaf(1, 1, 0.5)]).unwrap();
        let cat = StreamCatalog::unit(2);

        // schedule l3, l1, l2: cost = 1 + 0.5*(1 + 0.75*1) = 1.875
        let s = AndSchedule::new(vec![2, 0, 1], &t).unwrap();
        assert!((and_tree_expected_cost(&t, &cat, &s) - 1.875).abs() < 1e-12);

        // schedule l3, l2, l1: cost = 1 + 0.5*(2 + 0.1*0) = 2
        let s = AndSchedule::new(vec![2, 1, 0], &t).unwrap();
        assert!((and_tree_expected_cost(&t, &cat, &s) - 2.0).abs() < 1e-12);

        // schedule l1, l2, l3: cost = 1 + 0.75*(1 + 0.1*1) = 1.825
        let s = AndSchedule::new(vec![0, 1, 2], &t).unwrap();
        assert!((and_tree_expected_cost(&t, &cat, &s) - 1.825).abs() < 1e-12);
    }

    /// Section II-B works out the Figure 3 DNF schedule cost symbolically:
    /// C = c(A) + c(B) + (p1 + (1-p1) p2) c(C)
    ///   + (p1 p3 + (1 - p1 p3)(1 - p2 p5) p6) c(D).
    #[test]
    fn reproduces_paper_section_ii_b_cost() {
        // Use distinct probabilities to exercise the formula fully.
        let (p1, p2, p3, p4, p5, p6, p7) = (0.3, 0.6, 0.8, 0.25, 0.9, 0.4, 0.7);
        let t = DnfTree::from_leaves(vec![
            vec![leaf(0, 1, p1), leaf(2, 1, p3), leaf(3, 1, p4)],
            vec![leaf(1, 1, p2), leaf(2, 1, p5)],
            vec![leaf(1, 1, p6), leaf(3, 1, p7)],
        ])
        .unwrap();
        let cat = StreamCatalog::unit(4);
        let s = DnfSchedule::new(
            vec![
                crate::leaf::LeafRef::new(0, 0), // l1
                crate::leaf::LeafRef::new(1, 0), // l2
                crate::leaf::LeafRef::new(0, 1), // l3
                crate::leaf::LeafRef::new(0, 2), // l4
                crate::leaf::LeafRef::new(1, 1), // l5
                crate::leaf::LeafRef::new(2, 0), // l6
                crate::leaf::LeafRef::new(2, 1), // l7
            ],
            &t,
        )
        .unwrap();
        let expect =
            1.0 + 1.0 + (p1 + (1.0 - p1) * p2) + (p1 * p3 + (1.0 - p1 * p3) * (1.0 - p2 * p5) * p6);
        let got = dnf_expected_cost(&t, &cat, &s);
        assert!((got - expect).abs() < 1e-12, "got {got}, expected {expect}");
    }

    #[test]
    fn truth_probability_matches_closed_form() {
        let t = DnfTree::from_leaves(vec![
            vec![leaf(0, 1, 0.3), leaf(1, 1, 0.6)],
            vec![leaf(2, 1, 0.8)],
        ])
        .unwrap();
        let cat = StreamCatalog::unit(3);
        let got = dnf_truth_probability(&t, &cat);
        assert!((got - t.success_prob().value()).abs() < 1e-12);
    }

    #[test]
    fn general_tree_enumeration_agrees_with_dnf_view() {
        let t = DnfTree::from_leaves(vec![
            vec![leaf(0, 2, 0.3), leaf(1, 1, 0.6)],
            vec![leaf(0, 3, 0.8), leaf(2, 1, 0.5)],
        ])
        .unwrap();
        let cat = StreamCatalog::from_costs([2.0, 1.0, 5.0]).unwrap();
        let s = DnfSchedule::declaration_order(&t);
        let qt = QueryTree::from(t.clone());
        let flat: Vec<usize> = (0..4).collect();
        let a = dnf_expected_cost(&t, &cat, &s);
        let b = query_tree_expected_cost(&qt, &cat, &flat);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_leaves_are_skipped_in_weighting() {
        // A single leaf with p = 0: expected cost is just its acquisition.
        let t = AndTree::new(vec![leaf(0, 3, 0.0)]).unwrap();
        let cat = StreamCatalog::from_costs([2.0]).unwrap();
        let s = AndSchedule::identity(1);
        assert!((and_tree_expected_cost(&t, &cat, &s) - 6.0).abs() < 1e-12);
    }
}
