//! The arrangement term: maintain-vs-repull crossover.
//!
//! A maintained arrangement (see the `paotr-arrange` crate) turns a
//! stream's recurring window pulls into incremental maintenance: after
//! a one-time fill of `window` items, each serving tick fetches only
//! the `delta` items produced since the last tick, and *every* reader
//! of the stream is served from the maintained ring for free. Whether
//! that trade pays depends on three quantities:
//!
//! * **re-pull traffic** — the expected items per tick the stream
//!   costs *without* the arrangement. Under shared execution this is
//!   the expected widest window among the readers that actually touch
//!   the stream in a tick (short-circuiting means a reader's leaves
//!   are only sometimes reached), so it grows with the reader count;
//! * **tick rate** — `delta`, the items produced between consecutive
//!   serving ticks: maintenance pays `min(delta, window)` per tick
//!   (a gap wider than the window just rebuilds the ring);
//! * **fill amortization** — the one-time `window`-item fill spread
//!   over the `horizon` ticks the arrangement is expected to live.
//!
//! [`ArrangeTerm`] packages those into one comparable pair of per-tick
//! item rates; joint planners materialize a stream exactly when
//! [`ArrangeTerm::should_materialize`] holds. Item rates (not energies)
//! are compared because both sides price the same stream: the
//! per-item cost `c(S_k)` cancels.

/// One stream's maintain-vs-repull decision input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrangeTerm {
    /// Widest window any reader needs on the stream (the ring size).
    pub window: u32,
    /// Queries reading the stream under the joint plan.
    pub readers: u32,
    /// Items the stream produces between consecutive serving ticks.
    pub delta: f64,
    /// Expected items per tick the stream costs without an arrangement
    /// (under the joint plan being priced — shared pulls already
    /// coalesced).
    pub repull_items: f64,
    /// Ticks the one-time fill is amortized over (the arrangement's
    /// expected lifetime; recurring serving uses a large horizon).
    pub horizon: f64,
}

/// Default fill-amortization horizon: long-running serving keeps an
/// arrangement for many ticks, so the fill is a rounding term. Kept
/// finite so one-shot workloads (horizon explicitly 1) still price the
/// fill at full weight.
pub const DEFAULT_HORIZON: f64 = 256.0;

impl ArrangeTerm {
    /// The term under the default serving horizon.
    pub fn new(window: u32, readers: u32, delta: f64, repull_items: f64) -> ArrangeTerm {
        ArrangeTerm {
            window,
            readers,
            delta,
            repull_items,
            horizon: DEFAULT_HORIZON,
        }
    }

    /// The analytic re-pull rate when `readers` independent readers
    /// each touch the stream with probability `access_prob` per tick,
    /// all at window `window`: one shared pull of the window whenever
    /// at least one reader accesses. The closed form the crossover
    /// proptest pins against brute-force simulation.
    pub fn independent_readers(
        window: u32,
        readers: u32,
        access_prob: f64,
        delta: f64,
        horizon: f64,
    ) -> ArrangeTerm {
        assert!(
            (0.0..=1.0).contains(&access_prob),
            "access probability must be in [0, 1]"
        );
        let p_any = 1.0 - (1.0 - access_prob).powi(readers as i32);
        ArrangeTerm {
            window,
            readers,
            delta,
            repull_items: f64::from(window) * p_any,
            horizon,
        }
    }

    /// Expected items per tick maintenance costs: the incremental
    /// append (capped at a ring rebuild) plus the amortized fill.
    /// Infinite with no readers — an unread arrangement can never pay.
    pub fn maintain_items(&self) -> f64 {
        if self.readers == 0 {
            return f64::INFINITY;
        }
        let incremental = self.delta.min(f64::from(self.window));
        incremental + f64::from(self.window) / self.horizon.max(1.0)
    }

    /// Expected items per tick the arrangement saves (negative when
    /// maintaining costs more than re-pulling).
    pub fn savings(&self) -> f64 {
        self.repull_items - self.maintain_items()
    }

    /// True when maintaining the stream beats re-pulling it.
    pub fn should_materialize(&self) -> bool {
        self.savings() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_wide_windows_materialize() {
        // 8 readers re-pulling a 16-item window almost every tick vs.
        // one new item per tick: maintenance wins by an order of
        // magnitude.
        let t = ArrangeTerm::independent_readers(16, 8, 0.9, 1.0, 256.0);
        assert!(t.repull_items > 15.9);
        assert!(t.maintain_items() < 1.1);
        assert!(t.should_materialize());
    }

    #[test]
    fn cold_streams_stay_on_repull() {
        // One reader touching the stream 5% of ticks: re-pull costs
        // 0.05 * 4 items per tick, maintenance at least 1.
        let t = ArrangeTerm::independent_readers(4, 1, 0.05, 1.0, 256.0);
        assert!(t.repull_items < 0.25);
        assert!(!t.should_materialize());
        assert!(t.savings() < 0.0);
    }

    #[test]
    fn fast_ticking_streams_cap_maintenance_at_a_rebuild() {
        // 10 items between serving ticks on a 4-item window: maintenance
        // rebuilds the ring (4 items), never pays the full 10.
        let t = ArrangeTerm::new(4, 2, 10.0, 3.9);
        assert!((t.maintain_items() - (4.0 + 4.0 / 256.0)).abs() < 1e-12);
        assert!(!t.should_materialize(), "3.9 re-pulled < 4.015 maintained");
    }

    #[test]
    fn short_horizons_price_the_fill_at_full_weight() {
        // Same traffic, horizon 1: the whole fill lands on one tick.
        let long = ArrangeTerm::independent_readers(8, 4, 0.8, 1.0, 256.0);
        let short = ArrangeTerm {
            horizon: 1.0,
            ..long
        };
        assert!(long.should_materialize());
        assert!(
            !short.should_materialize(),
            "8-item fill per tick never pays"
        );
        assert!(short.maintain_items() > long.maintain_items());
    }

    #[test]
    fn zero_readers_never_materialize() {
        let t = ArrangeTerm::new(8, 0, 1.0, 100.0);
        assert!(t.maintain_items().is_infinite());
        assert!(!t.should_materialize());
    }

    #[test]
    fn more_readers_raise_the_repull_side_only() {
        let few = ArrangeTerm::independent_readers(8, 1, 0.1, 1.0, 256.0);
        let many = ArrangeTerm::independent_readers(8, 16, 0.1, 1.0, 256.0);
        assert!(many.repull_items > few.repull_items);
        assert_eq!(many.maintain_items(), few.maintain_items());
        assert!(!few.should_materialize());
        assert!(many.should_materialize());
    }
}
