//! Data streams and the stream catalog.
//!
//! In the paper's model a query is evaluated over a set of sensor data
//! streams `S = {S_1, ..., S_s}`; stream `S_k` has a *per data item*
//! acquisition cost `c(S_k)` (e.g. the energy, in joules, needed to pull
//! one item over the radio). The [`StreamCatalog`] holds these costs and
//! optional human-readable names; trees refer to streams by [`StreamId`].

use crate::error::{Error, Result};
use std::fmt;

/// Identifier of a data stream: an index into a [`StreamCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub usize);

impl StreamId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StreamId {
    /// Formats a stream id as a spreadsheet-style name: `A`, `B`, ..., `Z`,
    /// `AA`, `AB`, ... matching the paper's examples which call streams
    /// `A`, `B`, `C`, `D`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", default_stream_name(self.0))
    }
}

/// Produces the default display name for stream index `i`
/// (`A`, `B`, ..., `Z`, `AA`, `AB`, ...).
pub fn default_stream_name(mut i: usize) -> String {
    let mut out = Vec::new();
    loop {
        out.push(b'A' + (i % 26) as u8);
        if i < 26 {
            break;
        }
        i = i / 26 - 1;
    }
    out.reverse();
    String::from_utf8(out).expect("ASCII letters")
}

/// Per-stream metadata: acquisition cost per data item and an optional name.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInfo {
    /// Cost of acquiring one data item from this stream (finite, `>= 0`).
    pub cost: f64,
    /// Optional human-readable name (defaults to `A`, `B`, ...).
    pub name: Option<String>,
}

/// The set of streams a query can reference, with per-item costs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamCatalog {
    streams: Vec<StreamInfo>,
}

impl StreamCatalog {
    /// An empty catalog.
    pub fn new() -> StreamCatalog {
        StreamCatalog::default()
    }

    /// Catalog of `n` streams that all have unit per-item cost.
    pub fn unit(n: usize) -> StreamCatalog {
        StreamCatalog {
            streams: vec![
                StreamInfo {
                    cost: 1.0,
                    name: None
                };
                n
            ],
        }
    }

    /// Catalog built from a list of per-item costs.
    pub fn from_costs<I: IntoIterator<Item = f64>>(costs: I) -> Result<StreamCatalog> {
        let mut cat = StreamCatalog::new();
        for c in costs {
            cat.add(c)?;
        }
        Ok(cat)
    }

    /// Adds a stream with the given per-item cost; returns its id.
    pub fn add(&mut self, cost: f64) -> Result<StreamId> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(Error::InvalidCost(cost));
        }
        let id = StreamId(self.streams.len());
        self.streams.push(StreamInfo { cost, name: None });
        Ok(id)
    }

    /// Adds a named stream with the given per-item cost; returns its id.
    /// Names must be unique within the catalog (ids already are by
    /// construction), so [`StreamCatalog::find`] always identifies a
    /// single stream.
    pub fn add_named(&mut self, name: impl Into<String>, cost: f64) -> Result<StreamId> {
        let name = name.into();
        if self.find(&name).is_some() {
            return Err(Error::DuplicateStreamName(name));
        }
        let id = self.add(cost)?;
        self.streams[id.0].name = Some(name);
        Ok(id)
    }

    /// Number of streams in the catalog.
    #[inline]
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when the catalog holds no streams.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Per-item cost of stream `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range; use [`StreamCatalog::get_cost`] for a
    /// checked variant.
    #[inline]
    pub fn cost(&self, id: StreamId) -> f64 {
        self.streams[id.0].cost
    }

    /// Checked per-item cost lookup.
    pub fn get_cost(&self, id: StreamId) -> Result<f64> {
        self.streams
            .get(id.0)
            .map(|s| s.cost)
            .ok_or(Error::UnknownStream {
                stream: id.0,
                catalog_len: self.len(),
            })
    }

    /// Display name for stream `id` (falls back to `A`, `B`, ...).
    pub fn name(&self, id: StreamId) -> String {
        match self.streams.get(id.0).and_then(|s| s.name.clone()) {
            Some(n) => n,
            None => default_stream_name(id.0),
        }
    }

    /// Looks a stream up by name (only finds explicitly named streams).
    pub fn find(&self, name: &str) -> Option<StreamId> {
        self.streams
            .iter()
            .position(|s| s.name.as_deref() == Some(name))
            .map(StreamId)
    }

    /// Iterator over `(StreamId, &StreamInfo)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StreamId, &StreamInfo)> {
        self.streams
            .iter()
            .enumerate()
            .map(|(i, s)| (StreamId(i), s))
    }

    /// Replaces the cost of an existing stream.
    pub fn set_cost(&mut self, id: StreamId, cost: f64) -> Result<()> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(Error::InvalidCost(cost));
        }
        match self.streams.get_mut(id.0) {
            Some(s) => {
                s.cost = cost;
                Ok(())
            }
            None => Err(Error::UnknownStream {
                stream: id.0,
                catalog_len: self.len(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_names_follow_spreadsheet_scheme() {
        assert_eq!(default_stream_name(0), "A");
        assert_eq!(default_stream_name(1), "B");
        assert_eq!(default_stream_name(25), "Z");
        assert_eq!(default_stream_name(26), "AA");
        assert_eq!(default_stream_name(27), "AB");
        assert_eq!(default_stream_name(26 + 26 * 26), "AAA");
    }

    #[test]
    fn unit_catalog_has_unit_costs() {
        let cat = StreamCatalog::unit(3);
        assert_eq!(cat.len(), 3);
        for (id, _) in cat.iter() {
            assert_eq!(cat.cost(id), 1.0);
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut cat = StreamCatalog::new();
        let a = cat.add(2.0).unwrap();
        let b = cat.add_named("heart_rate", 5.0).unwrap();
        assert_eq!(cat.cost(a), 2.0);
        assert_eq!(cat.cost(b), 5.0);
        assert_eq!(cat.name(b), "heart_rate");
        assert_eq!(cat.name(a), "A");
        assert_eq!(cat.find("heart_rate"), Some(b));
        assert_eq!(cat.find("nope"), None);
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut cat = StreamCatalog::new();
        cat.add_named("hr", 1.0).unwrap();
        assert_eq!(
            cat.add_named("hr", 2.0),
            Err(Error::DuplicateStreamName("hr".into()))
        );
        // the failed add must not have grown the catalog
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.cost(StreamId(0)), 1.0);
        // distinct names still work; default (unnamed) streams are exempt
        cat.add_named("spo2", 2.0).unwrap();
        cat.add(3.0).unwrap();
        cat.add(4.0).unwrap();
        assert_eq!(cat.len(), 4);
    }

    #[test]
    fn rejects_bad_costs() {
        let mut cat = StreamCatalog::new();
        assert!(cat.add(-1.0).is_err());
        assert!(cat.add(f64::NAN).is_err());
        assert!(cat.add(f64::INFINITY).is_err());
    }

    #[test]
    fn checked_lookup_detects_unknown_stream() {
        let cat = StreamCatalog::unit(2);
        assert!(cat.get_cost(StreamId(1)).is_ok());
        assert_eq!(
            cat.get_cost(StreamId(2)),
            Err(Error::UnknownStream {
                stream: 2,
                catalog_len: 2
            })
        );
    }

    #[test]
    fn set_cost_updates_and_validates() {
        let mut cat = StreamCatalog::unit(1);
        cat.set_cost(StreamId(0), 4.5).unwrap();
        assert_eq!(cat.cost(StreamId(0)), 4.5);
        assert!(cat.set_cost(StreamId(0), -2.0).is_err());
        assert!(cat.set_cost(StreamId(9), 1.0).is_err());
    }

    #[test]
    fn display_uses_default_name() {
        assert_eq!(StreamId(0).to_string(), "A");
        assert_eq!(StreamId(3).to_string(), "D");
    }
}
