//! # paotr-core — Probabilistic AND-OR Tree Resolution with shared streams
//!
//! Rust implementation of
//! *"Cost-Optimal Execution of Boolean Query Trees with Shared Streams"*
//! (Casanova, Lim, Robert, Vivien, Zaidouni — IPDPS 2014).
//!
//! A query is an AND-OR tree whose leaves are independent probabilistic
//! predicates over sensor data streams; evaluating leaf `l_j` needs the
//! last `d_j` items of stream `S(j)` at `c(S(j))` per item, and pulled
//! items stay in device memory (**shared streams**). The goal is a leaf
//! evaluation order (*schedule*) minimizing expected acquisition cost
//! under AND/OR short-circuiting.
//!
//! ## Map of the crate
//!
//! | concern | module |
//! |---|---|
//! | streams, probabilities, leaves | [`stream`], [`prob`], [`leaf`] |
//! | trees (AND, DNF, general) | [`tree`] |
//! | schedules | [`schedule`] |
//! | cost evaluation (interpreter, enumeration, closed forms, Prop. 2, Monte-Carlo) | [`cost`] |
//! | optimal algorithms & heuristics | [`algo`] |
//! | unified planning surface (trait, registry, caching engine) | [`plan`] |
//!
//! ## Quick start
//!
//! All algorithms are served through one polymorphic surface: wrap a
//! query in a [`plan::QueryRef`] (or pass the tree directly) and let the
//! [`plan::Engine`] dispatch to the optimal planner for its class.
//!
//! ```
//! use paotr_core::plan::Engine;
//! use paotr_core::prelude::*;
//!
//! // The paper's Figure 2 AND-tree: two streams, three leaves.
//! let mut b = InstanceBuilder::new();
//! let a = b.stream("A", 1.0);
//! let bb = b.stream("B", 1.0);
//! let inst = b
//!     .term(|t| t.leaf(a, 1, 0.75).leaf(a, 2, 0.1).leaf(bb, 1, 0.5))
//!     .build()
//!     .unwrap();
//!
//! // AND-trees dispatch to Algorithm 1 (optimal, Theorem 1):
//! let engine = Engine::new();
//! let and_tree = inst.tree.term(0).as_and_tree();
//! let plan = engine.plan(&and_tree, &inst.catalog).unwrap();
//! assert_eq!(plan.planner, "greedy");
//! assert_eq!(plan.body.as_and().unwrap().order(), &[0, 1, 2]);
//! assert!((plan.expected_cost.unwrap() - 1.825).abs() < 1e-12);
//!
//! // Any registered algorithm is one name away:
//! let smith = engine.plan_with("smith", &and_tree, &inst.catalog).unwrap();
//! assert!(smith.expected_cost.unwrap() >= plan.expected_cost.unwrap());
//! ```
//!
//! The pre-`plan` per-algorithm entry points
//! (`algo::greedy::schedule_with_cost` and friends) are deprecated
//! shims, gated behind the off-by-default `legacy-api` cargo feature;
//! new code should go through [`plan`].
#![forbid(unsafe_code)]

pub mod algo;
pub mod cost;
pub mod error;
pub mod leaf;
pub mod plan;
pub mod prob;
pub mod schedule;
pub mod stream;
pub mod tree;

/// Convenient glob-import surface: `use paotr_core::prelude::*`.
pub mod prelude {
    pub use crate::algo::heuristics::{paper_set, Heuristic};
    pub use crate::error::{Error, Result};
    pub use crate::leaf::{Leaf, LeafRef};
    pub use crate::plan::{Engine, Plan, PlanBody, Planner, PlannerRegistry, QueryClass, QueryRef};
    pub use crate::prob::Prob;
    pub use crate::schedule::{AndSchedule, DnfSchedule};
    pub use crate::stream::{StreamCatalog, StreamId};
    pub use crate::tree::{
        AndTerm, AndTree, DnfInstance, DnfTree, InstanceBuilder, Node, QueryTree,
    };
}
