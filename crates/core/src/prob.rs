//! Validated probability newtype.
//!
//! Every leaf predicate in a PAOTR query has a *success probability*
//! `p` (the probability it evaluates to TRUE) and a *failure probability*
//! `q = 1 - p`. Keeping these inside a validated newtype removes a whole
//! class of NaN/out-of-range bugs from the cost evaluators, which multiply
//! long chains of probabilities.

use crate::error::{Error, Result};
use std::fmt;

/// A probability value, guaranteed finite and within `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Prob(f64);

impl Prob {
    /// The impossible event.
    pub const ZERO: Prob = Prob(0.0);
    /// The certain event.
    pub const ONE: Prob = Prob(1.0);
    /// A fair coin flip.
    pub const HALF: Prob = Prob(0.5);

    /// Creates a probability, rejecting NaN and values outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Prob> {
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            Ok(Prob(p))
        } else {
            Err(Error::InvalidProbability(p))
        }
    }

    /// Creates a probability, clamping into `[0, 1]`; NaN becomes an error.
    pub fn clamped(p: f64) -> Result<Prob> {
        if p.is_nan() {
            return Err(Error::InvalidProbability(p));
        }
        Ok(Prob(p.clamp(0.0, 1.0)))
    }

    /// The success probability as an `f64`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The failure probability `q = 1 - p`.
    #[inline]
    pub fn fail(self) -> f64 {
        1.0 - self.0
    }

    /// Complement event probability as a `Prob`.
    #[inline]
    pub fn complement(self) -> Prob {
        Prob(1.0 - self.0)
    }

    /// Probability that two independent events both occur.
    #[inline]
    pub fn and(self, other: Prob) -> Prob {
        Prob(self.0 * other.0)
    }

    /// Probability that at least one of two independent events occurs.
    #[inline]
    pub fn or(self, other: Prob) -> Prob {
        Prob(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }

    /// True if this probability is exactly 1 (the leaf can never
    /// short-circuit an AND node).
    #[inline]
    pub fn is_certain(self) -> bool {
        self.0 == 1.0
    }

    /// True if this probability is exactly 0.
    #[inline]
    pub fn is_impossible(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Prob {
    type Error = Error;
    fn try_from(p: f64) -> Result<Prob> {
        Prob::new(p)
    }
}

impl From<Prob> for f64 {
    fn from(p: Prob) -> f64 {
        p.value()
    }
}

/// Product of the success probabilities of an iterator of `Prob`s
/// (probability that independent events all occur).
pub fn product<I: IntoIterator<Item = Prob>>(iter: I) -> Prob {
    iter.into_iter().fold(Prob::ONE, Prob::and)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_range() {
        for p in [0.0, 0.25, 0.5, 0.999, 1.0] {
            assert_eq!(Prob::new(p).unwrap().value(), p);
        }
    }

    #[test]
    fn rejects_out_of_range_and_nan() {
        assert!(Prob::new(-0.01).is_err());
        assert!(Prob::new(1.01).is_err());
        assert!(Prob::new(f64::NAN).is_err());
        assert!(Prob::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Prob::clamped(-3.0).unwrap(), Prob::ZERO);
        assert_eq!(Prob::clamped(7.0).unwrap(), Prob::ONE);
        assert!(Prob::clamped(f64::NAN).is_err());
    }

    #[test]
    fn fail_is_complement() {
        let p = Prob::new(0.3).unwrap();
        assert!((p.fail() - 0.7).abs() < 1e-12);
        assert!((p.complement().value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn and_or_combinators() {
        let a = Prob::new(0.5).unwrap();
        let b = Prob::new(0.5).unwrap();
        assert!((a.and(b).value() - 0.25).abs() < 1e-12);
        assert!((a.or(b).value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn product_of_probs() {
        let ps = [0.5, 0.5, 0.5].map(|p| Prob::new(p).unwrap());
        assert!((product(ps).value() - 0.125).abs() < 1e-12);
        assert_eq!(product(std::iter::empty::<Prob>()), Prob::ONE);
    }

    #[test]
    fn certain_impossible_flags() {
        assert!(Prob::ONE.is_certain());
        assert!(!Prob::HALF.is_certain());
        assert!(Prob::ZERO.is_impossible());
    }
}
