//! Schedules: total orders on the leaves of a query tree.
//!
//! The paper defines a *schedule* (a "linear strategy") as a sorted
//! sequence of the leaves; the query engine evaluates leaves in that order,
//! skipping any leaf whose truth value can no longer influence the root
//! (short-circuiting). This module provides validated schedule types for
//! AND-trees and DNF trees plus the depth-first test of Theorem 2.

use crate::error::{Error, Result};
use crate::leaf::LeafRef;
use crate::tree::{AndTree, DnfTree};
use std::fmt;

/// A schedule for an [`AndTree`]: a permutation of `0..m` leaf indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AndSchedule(Vec<usize>);

impl AndSchedule {
    /// Wraps an order after checking it is a permutation of the tree's
    /// leaf indices.
    pub fn new(order: Vec<usize>, tree: &AndTree) -> Result<AndSchedule> {
        let m = tree.len();
        if order.len() != m {
            return Err(Error::InvalidSchedule(format!(
                "schedule has {} entries but the tree has {} leaves",
                order.len(),
                m
            )));
        }
        let mut seen = vec![false; m];
        for &j in &order {
            if j >= m {
                return Err(Error::InvalidSchedule(format!(
                    "leaf index {j} out of range"
                )));
            }
            if seen[j] {
                return Err(Error::InvalidSchedule(format!(
                    "leaf index {j} appears twice"
                )));
            }
            seen[j] = true;
        }
        Ok(AndSchedule(order))
    }

    /// Unchecked constructor for algorithm outputs that are permutations by
    /// construction.
    pub fn from_order_unchecked(order: Vec<usize>) -> AndSchedule {
        AndSchedule(order)
    }

    /// The identity schedule `0, 1, ..., m-1`.
    pub fn identity(m: usize) -> AndSchedule {
        AndSchedule((0..m).collect())
    }

    /// Leaf indices in evaluation order.
    #[inline]
    pub fn order(&self) -> &[usize] {
        &self.0
    }

    /// Number of scheduled leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty schedule.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for AndSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|j| format!("l{}", j + 1)).collect();
        write!(f, "{}", parts.join(", "))
    }
}

/// A schedule for a [`DnfTree`]: a permutation of all leaf addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnfSchedule(Vec<LeafRef>);

impl DnfSchedule {
    /// Wraps an order after checking it is a permutation of the tree's
    /// leaf addresses.
    pub fn new(order: Vec<LeafRef>, tree: &DnfTree) -> Result<DnfSchedule> {
        let total = tree.num_leaves();
        if order.len() != total {
            return Err(Error::InvalidSchedule(format!(
                "schedule has {} entries but the tree has {total} leaves",
                order.len()
            )));
        }
        let mut seen = vec![false; total];
        for &r in &order {
            if r.term >= tree.num_terms() || r.leaf >= tree.term(r.term).len() {
                return Err(Error::InvalidSchedule(format!("{r} out of range")));
            }
            let flat = flat_index(tree, r);
            if seen[flat] {
                return Err(Error::InvalidSchedule(format!("{r} appears twice")));
            }
            seen[flat] = true;
        }
        Ok(DnfSchedule(order))
    }

    /// Unchecked constructor for algorithm outputs that are permutations by
    /// construction.
    pub fn from_order_unchecked(order: Vec<LeafRef>) -> DnfSchedule {
        DnfSchedule(order)
    }

    /// The declaration-order schedule (term by term, leaf by leaf).
    pub fn declaration_order(tree: &DnfTree) -> DnfSchedule {
        DnfSchedule(tree.leaf_refs().collect())
    }

    /// Leaf addresses in evaluation order.
    #[inline]
    pub fn order(&self) -> &[LeafRef] {
        &self.0
    }

    /// Number of scheduled leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty schedule.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True when the schedule is *depth-first*: it processes AND nodes one
    /// by one, never starting a new AND node before the current one has all
    /// its leaves scheduled. Theorem 2 shows some optimal schedule always
    /// has this shape.
    pub fn is_depth_first(&self, tree: &DnfTree) -> bool {
        let mut remaining: Vec<usize> = tree.terms().iter().map(|t| t.len()).collect();
        let mut open: Option<usize> = None;
        for r in &self.0 {
            match open {
                Some(t) if t != r.term => return false,
                _ => {}
            }
            remaining[r.term] -= 1;
            open = if remaining[r.term] == 0 {
                None
            } else {
                Some(r.term)
            };
        }
        true
    }

    /// The order in which AND terms are *completed* by this schedule.
    pub fn term_completion_order(&self, tree: &DnfTree) -> Vec<usize> {
        let mut remaining: Vec<usize> = tree.terms().iter().map(|t| t.len()).collect();
        let mut out = Vec::with_capacity(tree.num_terms());
        for r in &self.0 {
            remaining[r.term] -= 1;
            if remaining[r.term] == 0 {
                out.push(r.term);
            }
        }
        out
    }
}

impl fmt::Display for DnfSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|r| r.to_string()).collect();
        write!(f, "{}", parts.join(", "))
    }
}

fn flat_index(tree: &DnfTree, r: LeafRef) -> usize {
    let mut base = 0;
    for t in 0..r.term {
        base += tree.term(t).len();
    }
    base + r.leaf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaf::Leaf;
    use crate::prob::Prob;
    use crate::stream::StreamId;

    fn leaf(s: usize) -> Leaf {
        Leaf::new(StreamId(s), 1, Prob::HALF).unwrap()
    }

    fn tree_2x2() -> DnfTree {
        DnfTree::from_leaves(vec![vec![leaf(0), leaf(1)], vec![leaf(2), leaf(3)]]).unwrap()
    }

    #[test]
    fn and_schedule_validation() {
        let t = AndTree::new(vec![leaf(0), leaf(1), leaf(2)]).unwrap();
        assert!(AndSchedule::new(vec![2, 0, 1], &t).is_ok());
        assert!(AndSchedule::new(vec![0, 1], &t).is_err());
        assert!(AndSchedule::new(vec![0, 0, 1], &t).is_err());
        assert!(AndSchedule::new(vec![0, 1, 3], &t).is_err());
    }

    #[test]
    fn dnf_schedule_validation() {
        let t = tree_2x2();
        let ok = vec![
            LeafRef::new(0, 0),
            LeafRef::new(1, 0),
            LeafRef::new(0, 1),
            LeafRef::new(1, 1),
        ];
        assert!(DnfSchedule::new(ok, &t).is_ok());
        let dup = vec![
            LeafRef::new(0, 0),
            LeafRef::new(0, 0),
            LeafRef::new(0, 1),
            LeafRef::new(1, 1),
        ];
        assert!(DnfSchedule::new(dup, &t).is_err());
        let out = vec![
            LeafRef::new(0, 0),
            LeafRef::new(2, 0),
            LeafRef::new(0, 1),
            LeafRef::new(1, 1),
        ];
        assert!(DnfSchedule::new(out, &t).is_err());
    }

    #[test]
    fn depth_first_detection() {
        let t = tree_2x2();
        let df = DnfSchedule::declaration_order(&t);
        assert!(df.is_depth_first(&t));
        let interleaved = DnfSchedule::new(
            vec![
                LeafRef::new(0, 0),
                LeafRef::new(1, 0),
                LeafRef::new(0, 1),
                LeafRef::new(1, 1),
            ],
            &t,
        )
        .unwrap();
        assert!(!interleaved.is_depth_first(&t));
    }

    #[test]
    fn completion_order() {
        let t = tree_2x2();
        let s = DnfSchedule::new(
            vec![
                LeafRef::new(1, 0),
                LeafRef::new(1, 1),
                LeafRef::new(0, 0),
                LeafRef::new(0, 1),
            ],
            &t,
        )
        .unwrap();
        assert_eq!(s.term_completion_order(&t), vec![1, 0]);
    }

    #[test]
    fn display_format() {
        let t = AndTree::new(vec![leaf(0), leaf(1)]).unwrap();
        let s = AndSchedule::new(vec![1, 0], &t).unwrap();
        assert_eq!(s.to_string(), "l2, l1");
    }
}
